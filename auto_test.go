package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fraz"
)

// noisyField synthesises a low-coherence field: smooth structure buried
// under deterministic high-frequency noise, the kind of data where the
// predictor-based codecs lose their edge.
func noisyField() ([]float32, []int) {
	shape := []int{16, 12, 10}
	data := make([]float32, shape[0]*shape[1]*shape[2])
	rng := uint64(1)
	for i := range data {
		rng = rng*6364136223846793005 + 1442695040888963407
		noise := float64(int64(rng>>33))/float64(1<<30) - 1
		data[i] = float32(math.Sin(float64(i)/3) + 0.8*noise)
	}
	return data, shape
}

func TestAutoCompressRoundTrip(t *testing.T) {
	c, err := fraz.New(fraz.CodecAuto, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	data, shape := testField()
	var buf bytes.Buffer
	res, err := c.Compress(context.Background(), &buf, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection == nil {
		t.Fatal("CompressResult.Selection is nil for a CodecAuto client")
	}
	if res.Selection.Codec != res.Codec {
		t.Errorf("Selection.Codec = %q but sealed codec = %q", res.Selection.Codec, res.Codec)
	}
	if res.Codec == fraz.CodecAuto {
		t.Fatalf("sealed codec is the policy name %q, want a concrete codec", res.Codec)
	}
	if len(res.Selection.Candidates) != len(fraz.Codecs()) {
		t.Errorf("Selection.Candidates covers %d codecs, want all %d", len(res.Selection.Candidates), len(fraz.Codecs()))
	}
	if len(res.Selection.Raced()) == 0 {
		t.Error("Selection.Raced() is empty — no codec competed")
	}

	out, err := c.DecompressFull(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Codec != res.Codec {
		t.Errorf("archive header names %q, compression reported %q", out.Codec, res.Codec)
	}
	if diff := maxAbsDiff(data, out.Data); diff > 1e-2+1e-3 {
		t.Errorf("max abs error %g exceeds the 1e-2 target band", diff)
	}
}

// TestAutoObjectiveReverifies is the cross-codec property test: whatever
// codec the race picks, the objective record its container carries must
// re-verify against the reconstruction — the promise survives selection.
func TestAutoObjectiveReverifies(t *testing.T) {
	fields := map[string]func() ([]float32, []int){"smooth": testField, "noisy": noisyField}
	for name, gen := range fields {
		t.Run(name, func(t *testing.T) {
			data, shape := gen()
			c, err := fraz.New(fraz.CodecAuto, fraz.TargetPSNR(55))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			res, err := c.Compress(context.Background(), &buf, data, shape)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.DecompressFull(context.Background(), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if out.Objective == nil {
				t.Fatalf("codec %s: quality-targeted archive carries no objective record", res.Codec)
			}
			if out.Objective.Name != "psnr" {
				t.Fatalf("objective record names %q, want psnr", out.Objective.Name)
			}
			psnr := measurePSNR(data, out.Data)
			if !out.Objective.InBand(psnr) {
				t.Errorf("codec %s: measured PSNR %.2f outside recorded band %.2f±%.2f",
					res.Codec, psnr, out.Objective.Target, out.Objective.Tolerance)
			}
			if math.Abs(psnr-out.Objective.Achieved) > 1e-6 {
				t.Errorf("codec %s: recorded achieved PSNR %.6f, re-measured %.6f", res.Codec, out.Objective.Achieved, psnr)
			}
		})
	}
}

func measurePSNR(orig, recon []float32) float64 {
	lo, hi := float64(orig[0]), float64(orig[0])
	sum := 0.0
	for i := range orig {
		v := float64(orig[i])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		d := v - float64(recon[i])
		sum += d * d
	}
	mse := sum / float64(len(orig))
	return 20*math.Log10(hi-lo) - 10*math.Log10(mse)
}

// TestAutoCapabilityFilter pins the pre-filter: on 1-D data the rank-2+
// codecs must be skipped with a reason, never raced, and the winner must
// admit rank 1.
func TestAutoCapabilityFilter(t *testing.T) {
	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 40))
	}
	c, err := fraz.New(fraz.CodecAuto, fraz.Ratio(8), fraz.Tolerance(0.5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tune(context.Background(), data, []int{len(data)})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Selection
	if sel == nil {
		t.Fatal("TuneResult.Selection is nil")
	}
	winner, ok := fraz.LookupCodec(sel.Codec)
	if !ok || !winner.SupportsRank(1) {
		t.Fatalf("winner %q does not admit rank-1 data", sel.Codec)
	}
	for _, cand := range sel.Candidates {
		info, ok := fraz.LookupCodec(cand.Codec)
		if !ok {
			t.Fatalf("candidate %q is not a registered codec", cand.Codec)
		}
		switch {
		case !info.SupportsRank(1):
			if cand.Skipped == "" || cand.Feasible {
				t.Errorf("rank-window miss %q was raced anyway: %+v", cand.Codec, cand)
			}
		case info.Lossless:
			if !strings.Contains(cand.Skipped, "lossless") {
				t.Errorf("lossless codec %q not skipped: %+v", cand.Codec, cand)
			}
		case info.FixedRate:
			// A fixed-rate codec hits the ratio by construction, so it is
			// admitted to fixed-ratio races despite not being error-bounded.
			if cand.Skipped != "" {
				t.Errorf("fixed-rate codec %q skipped from a fixed-ratio race: %+v", cand.Codec, cand)
			}
			if cand.Evaluations != 0 {
				t.Errorf("fixed-rate codec %q tuned with %d evaluations, want 0 (direct satisfaction)", cand.Codec, cand.Evaluations)
			}
		case !info.ErrorBounded:
			if cand.Skipped == "" {
				t.Errorf("non-error-bounded codec %q raced for a fixed-ratio archive", cand.Codec)
			}
		}
	}
}

func TestAutoRejectsInvalidConfigs(t *testing.T) {
	if _, err := fraz.New(fraz.CodecAuto, fraz.FixedBound(1e-3)); err == nil {
		t.Error("New(CodecAuto, FixedBound) succeeded, want error")
	}
	c, err := fraz.New(fraz.CodecAuto)
	if err != nil {
		t.Fatal(err)
	}
	data, shape := testField()
	if _, err := c.Compress(context.Background(), &bytes.Buffer{}, data, shape); err == nil {
		t.Error("Compress without a target succeeded, want error")
	}
	if _, err := c.TuneSeries(context.Background(), fraz.Series{}); err == nil {
		t.Error("TuneSeries on an auto client succeeded, want error")
	}
}

// TestAutoSharedCacheAcrossCalls pins the race economics: re-compressing the
// same field must be answered mostly from the shared evaluation cache.
func TestAutoSharedCacheAcrossCalls(t *testing.T) {
	c, err := fraz.New(fraz.CodecAuto, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	data, shape := testField()
	ctx := context.Background()
	if _, err := c.Compress(ctx, &bytes.Buffer{}, data, shape); err != nil {
		t.Fatal(err)
	}
	first := c.Stats()
	if first.Misses == 0 {
		t.Fatal("first compression reported no cache misses — the race did not evaluate anything")
	}
	if _, err := c.Compress(ctx, &bytes.Buffer{}, data, shape); err != nil {
		t.Fatal(err)
	}
	second := c.Stats()
	if second.Misses != first.Misses {
		t.Errorf("re-compressing the identical field cost %d new evaluations, want 0", second.Misses-first.Misses)
	}
	if second.Hits <= first.Hits {
		t.Error("re-compression produced no cache hits")
	}
}

func TestAutoInfeasible(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New(fraz.CodecAuto, fraz.Ratio(1e9), fraz.Tolerance(0.01))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Compress(context.Background(), &bytes.Buffer{}, data, shape)
	if err == nil {
		t.Fatal("Compress at ratio 1e9 succeeded")
	}
	if !errors.Is(err, fraz.ErrInfeasible) {
		t.Errorf("error %v does not match ErrInfeasible", err)
	}
}
