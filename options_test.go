package fraz_test

import (
	"math"
	"testing"

	"fraz"
)

// TestOptionValidation pins the fail-fast contract: every out-of-range
// option value is rejected at New, before any data is touched.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  fraz.Option
	}{
		{"ratio at 1", fraz.Ratio(1)},
		{"ratio below 1", fraz.Ratio(0.5)},
		{"ratio NaN", fraz.Ratio(math.NaN())},
		{"ratio inf", fraz.Ratio(math.Inf(1))},
		{"negative tolerance", fraz.Tolerance(-0.1)},
		{"tolerance at 1", fraz.Tolerance(1)},
		{"negative max error", fraz.MaxError(-1)},
		{"negative blocks", fraz.Blocks(-1)},
		{"negative workers", fraz.Workers(-2)},
		{"negative regions", fraz.Regions(-3)},
		{"zero fixed bound", fraz.FixedBound(0)},
		{"negative fixed bound", fraz.FixedBound(-4)},
		{"empty codec", fraz.Codec("")},
	}
	for _, tc := range cases {
		if _, err := fraz.New("sz:abs", tc.opt); err == nil {
			t.Errorf("%s: New accepted an invalid option", tc.name)
		}
	}
}

func TestCodecOptionOverridesName(t *testing.T) {
	c, err := fraz.New("sz:abs", fraz.Codec("zfp:accuracy"), fraz.Ratio(10))
	if err != nil {
		t.Fatal(err)
	}
	if c.Codec().Name != "zfp:accuracy" {
		t.Errorf("Codec option did not override: %q", c.Codec().Name)
	}
}

func TestValidOptionsAccepted(t *testing.T) {
	_, err := fraz.New("sz:abs",
		fraz.Ratio(12), fraz.Tolerance(0.05), fraz.MaxError(0.1),
		fraz.Blocks(8), fraz.Workers(4), fraz.Regions(6), fraz.Seed(42),
		fraz.ReuseBounds(false))
	if err != nil {
		t.Fatal(err)
	}
}
