// Package fraz is the root of a pure-Go reproduction of "FRaZ: A Generic
// High-Fidelity Fixed-Ratio Lossy Compression Framework for Scientific
// Floating-point Data" (Underwood, Di, Calhoun, Cappello — IPDPS 2020).
//
// The implementation lives under internal/:
//
//   - internal/core      — the FRaZ autotuner and parallel orchestrator, plus
//     the blocked sealing path (tune on a sampled block, compress all blocks
//     concurrently)
//   - internal/pressio   — the generic codec layer (libpressio analogue): codec
//     registry with capabilities, the shared evaluation cache, and the
//     block-parallel SealBlocked/OpenBlocked pipeline
//   - internal/container — the self-describing .fraz on-disk container format
//     (v1 monolithic payload, v2 block index + independently-decodable blocks)
//   - internal/blocks    — slowest-axis block decomposition (split/reassemble)
//   - internal/sz        — SZ-like prediction-based error-bounded compressor
//   - internal/zfp       — ZFP-like transform compressor (accuracy + fixed-rate)
//   - internal/mgard     — MGARD-like multilevel compressor
//   - internal/optim     — Dlib-style global minimiser with cutoff + baselines
//   - internal/dataset   — synthetic SDRBench stand-ins (Hurricane, HACC, CESM, EXAALT, NYX)
//   - internal/metrics   — PSNR, SSIM, ACF(error), ratio/bit-rate metrics
//   - internal/experiments — regenerates every table and figure of the paper
//
// Executables are under cmd/ (fraz, frazbench, datagen) and runnable usage
// examples under examples/; see README.md for a quickstart and the .fraz
// format table. The benchmarks in bench_test.go regenerate the paper's
// evaluation (one benchmark per table/figure) plus ablations of the design
// choices (region parallelism, cutoff, bound reuse, evaluation cache).
package fraz
