// Package fraz is a pure-Go implementation of "FRaZ: A Generic
// High-Fidelity Fixed-Ratio Lossy Compression Framework for Scientific
// Floating-point Data" (Underwood, Di, Calhoun, Cappello — IPDPS 2020).
//
// Scientific users usually know how much storage or bandwidth they have — a
// fixed compression ratio — but error-bounded lossy compressors (SZ, ZFP,
// MGARD) are parameterised by an error bound. FRaZ closes the gap: it
// searches the bound space with a parallel global optimizer until the
// achieved ratio lands inside the requested band, for any codec behind a
// generic adapter layer. This implementation generalises the search to any
// of four objectives — fixed ratio, fixed PSNR, fixed SSIM, fixed measured
// max-error — answering the paper's future-work call for tuning to "the
// quality of a scientist's analysis result".
//
// # Usage
//
// The root package is the public API. Build a Client with functional
// options and stream self-describing .fraz containers:
//
//	c, err := fraz.New("sz:abs", fraz.Ratio(12), fraz.Tolerance(0.05))
//	if err != nil { ... }
//	res, err := c.Compress(ctx, f, data, []int{100, 500, 500})
//	if errors.Is(err, fraz.ErrInfeasible) {
//		// no bound reaches 12:1 ±5% on this data; errors.As on
//		// *fraz.InfeasibleError reports the closest observed ratio.
//	}
//
// Quality targets use the same constructor through the Objective API —
// Ratio is sugar for Target(FixedRatio(r)):
//
//	c, err := fraz.New("sz:abs", fraz.TargetPSNR(60))          // ≥ ~60 dB, as cheap as possible
//	c, err := fraz.New("zfp:accuracy", fraz.TargetSSIM(0.95))  // Baker-style visual criterion
//	c, err := fraz.New("sz:abs", fraz.Target(fraz.FixedMaxError(100).WithTolerance(5)))
//
// Ratio and PSNR bands are fractional (target·(1±ε)); SSIM and max-error
// bands are absolute (target±ε). Quality-targeted archives record the
// objective, target, band, and achieved value in the container header, and
// a holder of the original data can re-verify the promise (see
// ObjectiveByName and Objective.Measure, or `fraz -decompress x.fraz
// -verify`).
//
// One combination needs no search at all: a fixed-ratio objective with the
// truly fixed-rate codec ("frsz:rate", whose compressed size is a
// closed-form function of shape and bits-per-value) is satisfied directly —
// the tuner inverts the target ratio into a whole-bit rate and seals with
// zero compressor evaluations. CompressResult.Direct reports when this fast
// path ran; CodecInfo.FixedRate identifies the codecs that enable it.
//
// Decompression needs no configuration — the container header carries the
// codec, tuned bound, achieved ratio, shape, element type, and (for
// quality-targeted archives) the recorded objective:
//
//	data, shape, err := fraz.Decompress(ctx, f)
//
// # Precision
//
// Every entry point is dtype-generic over float32 and float64 (the Element
// constraint). The one-shot fraz.Compress infers the width from its
// argument; Client methods come in typed pairs (Compress/Compress64,
// Tune/Tune64, Decompress/Decompress64) with generic package-level forms
// (CompressT, TuneT, DecompressAs) for callers that are themselves generic:
//
//	_, err := fraz.Compress(ctx, f, doubles, shape, fraz.Ratio(12)) // doubles is []float64
//	data, shape, err := fraz.DecompressAs[float64](ctx, f)
//
// The element width is recorded in the container's dtype byte:
//
//	dtype  element
//	0      float32 (IEEE-754 single precision)
//	1      float64 (IEEE-754 double precision)
//
// Width is part of the contract, never coerced: decoding a float64 archive
// through a float32 accessor (or vice versa) is an error, and
// DecompressFull returns whichever of Data/Data64 the archive holds.
// Float32 archives written by earlier builds carry dtype 0 and decode
// byte-identically.
//
// One-shot helpers (fraz.Compress, fraz.Decompress) cover single fields;
// Client adds tuning without sealing (Tune, TuneSeries, TuneFields — the
// paper's time-step and field parallelism) and carries the last feasible
// bound across calls as the next search's starting prediction, for every
// objective. Codec discovery goes through fraz.Codecs, which describes each
// registered back end's capabilities (bound semantics, error-boundedness,
// supported ranks and element types — see CodecInfo.SupportsRank and
// CodecInfo.SupportsDType). Failures are errors.Is-able: ErrInfeasible,
// ErrUnknownCodec, ErrCorrupt.
//
// # Multi-field datasets
//
// Real simulation snapshots are many named fields on one grid, and no
// single codec wins on all of them. Dataset bundles them into one .frazd
// archive — each field an embedded .fraz container with its own codec,
// bound, and objective record, indexed by a CRC-guarded directory:
//
//	ds, err := fraz.NewDataset(f, fraz.TargetPSNR(60))
//	_, err = ds.AddField(ctx, "CLOUDf", cloud, shape)   // races codecs, seals with the winner
//	_, err = ds.AddField(ctx, "PRECIPf", precip, shape) // may pick a different codec
//	err = ds.Close()                                    // writes directory + footer
//
// Dataset clients default to fraz.CodecAuto: every field runs a codec race
// (candidates filtered by capability, tried on a sampled block through the
// shared evaluation cache, best ratio at the target quality wins) and the
// winner is recorded per field; CompressResult.Selection reports the full
// scoreboard. Pass fraz.Codec to pin one codec instead, or use CodecAuto
// with a plain Client (fraz.New(fraz.CodecAuto, …)) for single fields.
//
// Time series append without rewriting: AppendStep adds field@step to an
// existing archive (AppendDataset reopens one), leaving earlier payload
// bytes untouched — only the trailing directory is rewritten at Close.
// Reading is lazy: OpenDataset parses just the directory, and
// OpenField/OpenFieldStep decodes a single field without touching its
// neighbours. Dataset errors are errors.Is-able too: ErrFieldNotFound,
// ErrDuplicateField, ErrCorrupt.
//
// # API stability
//
// The root fraz package is the supported surface: additions may happen in
// any release, but existing identifiers keep their signatures and
// semantics, and the .fraz container format stays readable across versions
// (a build decodes every format version up to its own). Everything under
// internal/ is implementation detail with no compatibility promise — the
// Go compiler enforces that outside programs cannot import it. The
// programs under cmd/ and examples/ consume only the public package and
// double as live documentation of it.
//
// # Implementation layout
//
//   - internal/core      — the FRaZ autotuner and parallel orchestrator: the
//     objective-generic search (ratio/PSNR/SSIM/max-error through one
//     region-parallel loop) plus the blocked sealing path (tune on a sampled
//     block, compress all blocks concurrently)
//   - internal/pressio   — the generic codec layer (libpressio analogue): codec
//     registry with capabilities, the shared evaluation cache (compress-only
//     and full round-trip entries, bounded with FIFO eviction), and the
//     block-parallel SealBlocked/OpenBlocked pipeline
//   - internal/container — the self-describing .fraz on-disk container format
//     (v1 monolithic payload, v2 block index + independently-decodable
//     blocks), with streaming WriteTo/ReadFrom and incremental CRC checks
//   - internal/archive   — the .frazd dataset super-container: many named
//     .fraz payloads (field@step) behind a CRC-guarded trailing directory,
//     append-friendly and lazily readable; see docs/format.md
//   - internal/blocks    — slowest-axis block decomposition (split/reassemble)
//   - internal/sz        — SZ-like prediction-based error-bounded compressor
//   - internal/szx       — SZx-style ultra-fast error-bounded compressor
//     (constant-block detection + leading-byte truncation; trades ratio for
//     one to two orders of magnitude more throughput)
//   - internal/frsz      — FRSZ-style true fixed-rate compressor (per-block
//     exponent scaling to fixed-point, exactly N bits per value); its
//     closed-form compressed size powers the tuner's zero-evaluation direct
//     path for fixed-ratio objectives
//   - internal/zfp       — ZFP-like transform compressor (accuracy + fixed-rate)
//   - internal/mgard     — MGARD-like multilevel compressor
//   - internal/pool      — size-bucketed free lists for hot-path scratch
//   - internal/optim     — Dlib-style global minimiser with cutoff + baselines
//   - internal/dataset   — synthetic SDRBench stand-ins (Hurricane, HACC, CESM, EXAALT, NYX)
//   - internal/metrics   — PSNR, SSIM, ACF(error), ratio/bit-rate metrics
//   - internal/experiments — regenerates every table and figure of the paper
//   - internal/analysis  — frazlint, the project's own static-analysis suite
//     (stdlib-only go/analysis analogue): poolcheck, magiccheck, dtypecheck,
//     floateq, and errdrop machine-check the pool-lifecycle, stream-magic,
//     dtype-dispatch, float-comparison, and error-propagation invariants;
//     run it with `go run ./cmd/frazlint ./...`
//   - internal/server    — the frazd HTTP service: tune→seal→archive over
//     HTTP with worker-pool admission control (bounded queue, per-tenant
//     limits, 429/503 + Retry-After backpressure), a server-wide evaluation
//     cache shared across requests via SharedCache, a content-addressed
//     archive store, graceful drain, and a Prometheus-style /metrics
//     surface; see docs/http-api.md for the endpoint reference
//
// Executables are under cmd/ (fraz, frazd, frazbench, datagen, frazperf, frazlint) and runnable usage
// examples under examples/; see README.md for a quickstart and the .fraz
// format table. The benchmarks in bench_test.go regenerate the paper's
// evaluation (one benchmark per table/figure) plus ablations of the design
// choices (region parallelism, cutoff, bound reuse, evaluation cache).
package fraz
