package fraz

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"fraz/internal/archive"
)

// Dataset is the multi-field form of the framework: one `.frazd` archive
// holding many named fields — and, per field, many time steps — each sealed
// as its own embedded `.fraz` container with its own codec, bound, and
// objective record. It is the unit the paper's experiments operate on (a
// simulation snapshot is fields like CLOUD, PRECIP, U, V, W over a shared
// grid), and the natural home of CodecAuto: a dataset built without a Codec
// option races the registered codecs per field and seals each with its
// winner, because one field's best codec is routinely another's worst.
//
// A Dataset is in exactly one mode:
//
//   - NewDataset(w, opts...) writes a fresh archive: AddField/AppendStep
//     compress fields in, Close writes the directory.
//   - AppendDataset(rw, opts...) reopens an existing archive to add steps
//     or fields; prior payload bytes are never rewritten (only the trailing
//     directory and footer move).
//   - OpenDataset(r) reads: Fields lists the directory, OpenField lazily
//     decodes one field without touching the others' bytes.
//
// Methods of the wrong mode fail with an explicit error. A Dataset is safe
// for concurrent use, but writes are serialized — the archive is one
// stream.
type Dataset struct {
	c *Client

	mu     sync.Mutex
	w      *archive.Writer
	r      *archive.Reader
	closed bool
}

// datasetClient builds the compressing client shared by NewDataset and
// AppendDataset: CodecAuto unless the options name a codec.
func datasetClient(opts []Option) (*Client, error) {
	set := defaultSettings()
	set.codec = CodecAuto
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	return newClient(set)
}

// NewDataset starts a fresh dataset archive on w. The options configure the
// per-field compression exactly as New does — a tuning target is required
// before the first AddField — and the codec defaults to CodecAuto, so each
// field is sealed with the winner of its own codec race:
//
//	ds, err := fraz.NewDataset(f, fraz.TargetPSNR(60))
//	_, err = ds.AddField(ctx, "CLOUD", cloud, shape)
//	_, err = ds.AddField(ctx, "PRECIP", precip, shape)
//	err = ds.Close()
//
// Nothing but the fixed 8-byte archive header is written until the first
// field; the directory is written by Close, which must be called for the
// archive to be readable.
func NewDataset(w io.Writer, opts ...Option) (*Dataset, error) {
	c, err := datasetClient(opts)
	if err != nil {
		return nil, err
	}
	aw, err := archive.NewWriter(w)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	return &Dataset{c: c, w: aw}, nil
}

// AppendDataset reopens an existing dataset archive for appending — the
// time-step shape of use, where each simulation step adds field@step entries
// to the same archive. Existing payload bytes keep their offsets and
// content; only the directory and footer at the archive's tail are
// rewritten, by Close. The options configure compression for the new
// entries only (existing entries keep whatever codec sealed them).
func AppendDataset(rw io.ReadWriteSeeker, opts ...Option) (*Dataset, error) {
	c, err := datasetClient(opts)
	if err != nil {
		return nil, err
	}
	aw, err := archive.AppendTo(rw)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	return &Dataset{c: c, w: aw}, nil
}

// OpenDataset opens a dataset archive for reading. Only the directory is
// read eagerly — one seek from the end — so opening a many-gigabyte archive
// to extract one field costs that field's bytes, not the archive's.
// Archives with a bad magic, version, directory CRC, or truncated tail fail
// with ErrCorrupt.
func OpenDataset(r io.ReadSeeker) (*Dataset, error) {
	ar, err := archive.OpenReader(r)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	return &Dataset{r: ar}, nil
}

// FieldInfo describes one directory entry of a dataset archive.
type FieldInfo struct {
	// Name is the field's name; Step its time step (0 for single-snapshot
	// fields).
	Name string
	Step int
	// Offset and Bytes locate the field's embedded .fraz container inside
	// the archive; CRC is the checksum the payload is verified against on
	// open. Offsets of existing entries survive appends — that invariance is
	// what makes AppendDataset cheap and safe.
	Offset int64
	Bytes  int64
	CRC    uint32
}

// FieldResult reports one AddField/AppendStep: the compression outcome (with
// the codec race's Selection when the dataset runs CodecAuto) plus where the
// field landed in the archive.
type FieldResult struct {
	CompressResult
	// Name and Step identify the entry.
	Name string
	Step int
	// Offset is the entry's byte offset in the archive.
	Offset int64
}

// AddField compresses one single-precision field into the dataset at step 0.
// Fields added this way pair with OpenField; time series go through
// AppendStep.
func (d *Dataset) AddField(ctx context.Context, name string, data []float32, shape []int) (*FieldResult, error) {
	return AddFieldT(ctx, d, name, 0, data, shape)
}

// AddField64 is AddField for double-precision fields.
func (d *Dataset) AddField64(ctx context.Context, name string, data []float64, shape []int) (*FieldResult, error) {
	return AddFieldT(ctx, d, name, 0, data, shape)
}

// AppendStep compresses one field at one time step into the dataset. Steps
// need not arrive in order, but each (name, step) pair can exist only once
// (ErrDuplicateField otherwise).
func (d *Dataset) AppendStep(ctx context.Context, name string, step int, data []float32, shape []int) (*FieldResult, error) {
	return AddFieldT(ctx, d, name, step, data, shape)
}

// AppendStep64 is AppendStep for double-precision fields.
func (d *Dataset) AppendStep64(ctx context.Context, name string, step int, data []float64, shape []int) (*FieldResult, error) {
	return AddFieldT(ctx, d, name, step, data, shape)
}

// AddFieldT is the dtype-generic form of AddField/AppendStep, mirroring
// CompressT.
func AddFieldT[T Element](ctx context.Context, d *Dataset, name string, step int, data []T, shape []int) (*FieldResult, error) {
	buf, err := newBuffer(data, shape)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return nil, fmt.Errorf("fraz: dataset is read-only (opened with OpenDataset)")
	}
	if d.closed {
		return nil, fmt.Errorf("fraz: dataset is closed")
	}
	// Tuning can fail (infeasible target, cancelled context); staging the
	// container keeps a failed field from leaving half a payload in the
	// archive.
	var staged bytes.Buffer
	res, err := d.c.compressBuffer(ctx, &staged, buf)
	if err != nil {
		return nil, err
	}
	offset := int64(archive.HeaderSize)
	if n := d.w.Len(); n > 0 {
		last := d.w.Entries()[n-1]
		offset = last.Offset + last.Length
	}
	if err := d.w.Add(name, step, staged.Bytes()); err != nil {
		return nil, wrapStreamErr(err)
	}
	return &FieldResult{CompressResult: *res, Name: name, Step: step, Offset: offset}, nil
}

// Close completes a writable dataset, writing the directory and footer. The
// destination writer is not closed — the Dataset does not own it. Closing a
// read-mode dataset is a no-op (the reader holds no resources of its own).
func (d *Dataset) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == nil {
		return nil
	}
	if d.closed {
		return fmt.Errorf("fraz: dataset already closed")
	}
	d.closed = true
	return wrapStreamErr(d.w.Close())
}

// Fields lists the dataset's directory: every (name, step) entry, sorted by
// name then step. In write mode it reflects what has been added so far.
func (d *Dataset) Fields() []FieldInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	var entries []archive.Entry
	switch {
	case d.r != nil:
		entries = d.r.Entries()
	case d.w != nil:
		entries = d.w.Entries()
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Name != entries[j].Name {
				return entries[i].Name < entries[j].Name
			}
			return entries[i].Step < entries[j].Step
		})
	}
	out := make([]FieldInfo, len(entries))
	for i, e := range entries {
		out[i] = FieldInfo{Name: e.Name, Step: e.Step, Offset: e.Offset, Bytes: e.Length, CRC: e.CRC}
	}
	return out
}

// FieldNames lists the distinct field names in the dataset, sorted.
func (d *Dataset) FieldNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, f := range d.Fields() {
		if !seen[f.Name] {
			seen[f.Name] = true
			names = append(names, f.Name)
		}
	}
	return names
}

// Steps lists the time steps recorded for one field, ascending; empty when
// the field is absent.
func (d *Dataset) Steps(name string) []int {
	var steps []int
	for _, f := range d.Fields() {
		if f.Name == name {
			steps = append(steps, f.Step)
		}
	}
	sort.Ints(steps)
	return steps
}

// OpenField decodes one field at step 0 from a read-mode dataset: its
// payload bytes are read, CRC-verified, and decompressed with whatever
// codec its own container header names — other fields' bytes are never
// touched. Missing fields fail with ErrFieldNotFound.
func (d *Dataset) OpenField(ctx context.Context, name string) (*DecompressResult, error) {
	return d.OpenFieldStep(ctx, name, 0)
}

// OpenFieldStep is OpenField at an explicit time step.
func (d *Dataset) OpenFieldStep(ctx context.Context, name string, step int) (*DecompressResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.r == nil {
		return nil, fmt.Errorf("fraz: dataset is write-only (open it with OpenDataset to read)")
	}
	cn, err := d.r.Open(name, step)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	return decompressContainer(ctx, cn, 0)
}
