// Command frazperf is the repository's performance harness: it benchmarks
// seal/open throughput, allocations per operation, and evaluation-cache hit
// rates for every registered codec at both element widths, monolithic and
// blocked, on a reproducible generated field — and writes the measurements
// to a BENCH_<n>.json report.
//
// Against a committed baseline report it acts as a regression gate:
//
//	frazperf -out BENCH_1.json              # refresh the baseline
//	frazperf -quick -baseline BENCH_1.json  # CI: fail on >20% regression
//
// Throughput is gated on machine-speed-normalized values (each cell divided
// by the run's geomean seal throughput), so a slower CI runner does not trip
// the gate but a single codec regressing does. Allocations per op are gated
// directly. Quick mode shrinks the per-cell measurement budget, never the
// field, so quick runs stay comparable to the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fraz/internal/dataset"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("frazperf", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "reduced measurement budget (same field; for CI smoke)")
		out       = fs.String("out", "", "write the JSON report to this file (default: stdout)")
		baseline  = fs.String("baseline", "", "compare against this committed report and gate")
		gatePct   = fs.Float64("gate", 20, "fail when a metric regresses by more than this percent")
		blocks    = fs.Int("blocks", 4, "block count for the blocked (v2) rows")
		benchTime = fs.Duration("benchtime", 0, "per-cell measurement budget (default 500ms, 100ms with -quick)")
		app       = fs.String("dataset", "Hurricane", "synthetic dataset to benchmark")
		field     = fs.String("field", "CLOUDf", "field of the dataset")
		scale     = fs.String("scale", "small", "field resolution: tiny, small, or medium")
		codecs    = fs.String("codecs", "", "comma-separated codec names (default: all registered)")

		loadgen   = fs.String("loadgen", "", "drive a running frazd at this base URL instead of benchmarking")
		clients   = fs.Int("clients", 4, "loadgen: concurrent uploaders")
		requests  = fs.Int("requests", 64, "loadgen: total requests across all clients")
		timesteps = fs.Int("timesteps", 4, "loadgen: distinct field versions cycled through")
		ratio     = fs.Float64("target", 10, "loadgen: requested compression ratio")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frazperf:", err)
		return 2
	}

	if *loadgen != "" {
		rep, err := runLoadgen(LoadgenConfig{
			URL:       *loadgen,
			Clients:   *clients,
			Requests:  *requests,
			Dataset:   *app,
			Field:     *field,
			Scale:     sc,
			Target:    *ratio,
			Timesteps: *timesteps,
		}, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "frazperf:", err)
			return 1
		}
		printLoadReport(os.Stdout, rep)
		if rep.Requests == 0 {
			fmt.Fprintln(os.Stderr, "frazperf: no request succeeded")
			return 1
		}
		return 0
	}
	cfg := Config{
		Dataset:   *app,
		Field:     *field,
		Scale:     sc,
		BenchTime: *benchTime,
		Blocks:    *blocks,
		Codecs:    splitList(*codecs),
		Quick:     *quick,
	}

	rep, err := run(cfg, func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "frazperf:", err)
		return 1
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "frazperf:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "frazperf:", err)
		return 1
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frazperf:", err)
			return 1
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "frazperf: parse baseline %s: %v\n", *baseline, err)
			return 1
		}
		violations := gate(rep, base, *gatePct)
		if len(violations) > 0 {
			// A quick-budget measurement can lose a cell to scheduler noise.
			// Before declaring a regression, re-measure just the violating
			// codecs at the full budget and gate once more.
			retry := violatingCodecs(violations)
			if len(retry) > 0 {
				fmt.Fprintf(os.Stderr, "frazperf: %d possible regression(s); re-measuring %v at full budget\n", len(violations), retry)
				retryCfg := cfg
				retryCfg.Quick = false
				retryCfg.BenchTime = 0
				retryCfg.Codecs = retry
				rerun, err := run(retryCfg, func(format string, args ...interface{}) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "frazperf:", err)
					return 1
				}
				mergeResults(&rep, rerun.Results)
				violations = gate(rep, base, *gatePct)
			}
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "frazperf: %d regression(s) vs %s:\n", len(violations), *baseline)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  "+v)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "frazperf: no regressions vs %s (gate %g%%)\n", *baseline, *gatePct)
	}
	return 0
}

func parseScale(s string) (dataset.Scale, error) {
	switch s {
	case "tiny":
		return dataset.ScaleTiny, nil
	case "small":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small, or medium)", s)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
