package main

import (
	"encoding/json"
	"testing"
	"time"

	"fraz/internal/dataset"
)

func quickCfg() Config {
	return Config{
		Dataset:   "Hurricane",
		Field:     "CLOUDf",
		Scale:     dataset.ScaleTiny,
		BenchTime: 2 * time.Millisecond,
		Blocks:    2,
		Quick:     true,
	}
}

func discard(string, ...interface{}) {}

func TestRunCoversCodecsAndDtypes(t *testing.T) {
	rep, err := run(quickCfg(), discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	want := map[string]bool{
		"sz:abs|float32|monolithic": false, "sz:abs|float64|monolithic": false,
		"szx:abs|float32|monolithic": false, "szx:abs|float64|monolithic": false,
		"szx:abs|float32|blocked": false, "szx:abs|float64|blocked": false,
	}
	for _, r := range rep.Results {
		if _, ok := want[r.Key()]; ok {
			want[r.Key()] = true
		}
		if r.SealGBps <= 0 || r.OpenGBps <= 0 {
			t.Errorf("%s: non-positive throughput %v/%v", r.Key(), r.SealGBps, r.OpenGBps)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing cell %s", k)
		}
	}
	if len(rep.Cache) == 0 {
		t.Error("no cache results")
	}
	for _, c := range rep.Cache {
		if c.Hits == 0 {
			t.Errorf("cache sweep for %s/%s recorded no hits (repeated bounds must hit)", c.Codec, c.DType)
		}
	}
	if sp := rep.SZXSealSpeedupVsSZ["float32"]; sp <= 1 {
		t.Errorf("szx:abs seal should beat sz:abs even on the tiny field, got %.2fx", sp)
	}

	// The report must survive the JSON round trip the gate relies on.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}
}

func fakeReport(scale float64) Report {
	return Report{
		Version: 1,
		Results: []Result{
			{Codec: "a", DType: "float32", Mode: "monolithic", SealGBps: 1 * scale, OpenGBps: 2 * scale, SealAllocsPerOp: 100, OpenAllocsPerOp: 50},
			{Codec: "b", DType: "float32", Mode: "monolithic", SealGBps: 4 * scale, OpenGBps: 8 * scale, SealAllocsPerOp: 1000, OpenAllocsPerOp: 500},
		},
	}
}

func TestGatePassesOnUniformMachineSpeedChange(t *testing.T) {
	base := fakeReport(1)
	// A runner half as fast shifts every cell equally; normalization must
	// cancel it.
	cur := fakeReport(0.5)
	if v := gate(cur, base, 20); len(v) != 0 {
		t.Fatalf("uniform slowdown should pass the gate, got %v", v)
	}
}

func TestGateCatchesSingleCodecRegression(t *testing.T) {
	base := fakeReport(1)
	cur := fakeReport(1)
	cur.Results[0].SealGBps *= 0.5 // codec "a" seal regressed 2x
	v := gate(cur, base, 20)
	if len(v) == 0 {
		t.Fatal("2x single-codec regression must trip the gate")
	}
}

func TestGateCatchesAllocGrowth(t *testing.T) {
	base := fakeReport(1)
	cur := fakeReport(1)
	cur.Results[1].SealAllocsPerOp = 2000 // 2x allocations
	v := gate(cur, base, 20)
	if len(v) == 0 {
		t.Fatal("2x alloc growth must trip the gate")
	}
}

func TestGateIgnoresMissingCells(t *testing.T) {
	base := fakeReport(1)
	cur := fakeReport(1)
	cur.Results = append(cur.Results, Result{Codec: "new", DType: "float32", Mode: "monolithic", SealGBps: 1, OpenGBps: 1})
	if v := gate(cur, base, 20); len(v) != 0 {
		t.Fatalf("a new cell absent from the baseline must not trip the gate, got %v", v)
	}
}

func TestViolatingCodecsAndMerge(t *testing.T) {
	violations := []string{
		"sz:abs|float32|monolithic: relative seal throughput 0.5, baseline 1.0 (>20% drop)",
		"sz:abs|float64|blocked: open allocs/op 99, baseline 10 (>20% growth)",
		"zfp:rate|float32|monolithic: relative open throughput 0.2, baseline 0.9 (>20% drop)",
		"gate: cannot normalize (non-positive throughput in report)",
	}
	got := violatingCodecs(violations)
	want := []string{"sz:abs", "zfp:rate"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("violatingCodecs = %v, want %v", got, want)
	}

	rep := fakeReport(1)
	key := rep.Results[0].Key()
	fresh := rep.Results[0]
	fresh.SealGBps *= 3
	mergeResults(&rep, []Result{fresh})
	if rep.Results[0].Key() != key || rep.Results[0].SealGBps != fresh.SealGBps {
		t.Fatalf("mergeResults did not replace cell %s", key)
	}
	if rep.Results[1].SealGBps == fresh.SealGBps {
		t.Fatalf("mergeResults touched an unrelated cell")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList("a,b,,c")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList: %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}
