package main

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

// Config controls one harness run.
type Config struct {
	// Dataset and Field name the synthetic SDRBench stand-in to benchmark.
	Dataset, Field string
	// Scale selects the field resolution. The gate compares runs against a
	// committed baseline, so CI and baseline must use the same scale — quick
	// mode shrinks the measurement budget, never the field.
	Scale dataset.Scale
	// BenchTime is the minimum measurement window per (codec, dtype, mode,
	// op) cell; every cell also runs at least minIters iterations.
	BenchTime time.Duration
	// Blocks is the block count for the blocked (v2) seal/open rows.
	Blocks int
	// Codecs restricts the run to the named codecs (empty = all registered).
	Codecs []string
	// Quick marks the reduced-budget mode in the report.
	Quick bool
}

// minIters is the iteration floor per measurement round: enough to absorb a
// single scheduling hiccup without stretching the quick mode.
const minIters = 3

// measureRounds is the best-of-N factor: each measurement budget is split
// into this many independent rounds and the fastest round wins. Timing noise
// is one-sided — preemption and cache pollution only ever slow an iteration
// down — so the minimum over rounds is the robust estimator of the true cost.
const measureRounds = 3

// Result is one benchmarked (codec, dtype, mode) cell.
type Result struct {
	Codec           string  `json:"codec"`
	DType           string  `json:"dtype"`
	Mode            string  `json:"mode"` // "monolithic" or "blocked"
	Blocks          int     `json:"blocks"`
	Bound           float64 `json:"bound"`
	Ratio           float64 `json:"ratio"`
	SealGBps        float64 `json:"seal_gbps"`
	OpenGBps        float64 `json:"open_gbps"`
	SealAllocsPerOp float64 `json:"seal_allocs_per_op"`
	OpenAllocsPerOp float64 `json:"open_allocs_per_op"`
	// TuneEvaluations and TuneMs record what a FixedRatio tune targeting
	// this cell's achieved ratio costs: compressor invocations and
	// wall-clock milliseconds. Fixed-rate codecs satisfy the objective
	// arithmetically (0 evaluations); search-based codecs pay the MaxLIPO
	// loop. Absent (zero) in reports written before these columns existed.
	TuneEvaluations int     `json:"tune_evaluations"`
	TuneMs          float64 `json:"tune_ms"`
}

// Key identifies a cell across runs for baseline comparison.
func (r Result) Key() string { return r.Codec + "|" + r.DType + "|" + r.Mode }

// CacheResult reports the evaluation-cache behaviour of a tuner-shaped bound
// sweep (repeated bounds, as the region search produces) for one codec.
type CacheResult struct {
	Codec   string  `json:"codec"`
	DType   string  `json:"dtype"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Report is the full harness output, serialized to BENCH_<n>.json.
type Report struct {
	Version int           `json:"version"`
	Quick   bool          `json:"quick"`
	Dataset string        `json:"dataset"`
	Shape   []int         `json:"shape"`
	Results []Result      `json:"results"`
	Cache   []CacheResult `json:"cache"`
	// SZXSealSpeedupVsSZ records szx:abs monolithic seal throughput over
	// sz:abs at the same field and relative bound, per dtype.
	SZXSealSpeedupVsSZ map[string]float64 `json:"szx_seal_speedup_vs_sz"`
}

// measure runs fn in measureRounds independent rounds of at least
// budget/measureRounds each (and minIters iterations per round), returning
// the best round's seconds and heap allocations per iteration. A warm-up
// call runs first so one-time costs (pool priming, lazy init) stay out of
// the numbers.
func measure(budget time.Duration, fn func() error) (secPerOp, allocsPerOp float64, err error) {
	if err = fn(); err != nil {
		return 0, 0, err
	}
	roundBudget := budget / measureRounds
	secPerOp = math.Inf(1)
	allocsPerOp = math.Inf(1)
	for round := 0; round < measureRounds; round++ {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		iters := 0
		for {
			if err = fn(); err != nil {
				return 0, 0, err
			}
			iters++
			if iters >= minIters && time.Since(start) >= roundBudget {
				break
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		secPerOp = math.Min(secPerOp, elapsed.Seconds()/float64(iters))
		allocsPerOp = math.Min(allocsPerOp, float64(ms1.Mallocs-ms0.Mallocs)/float64(iters))
	}
	return secPerOp, allocsPerOp, nil
}

// boundFor maps the common 10^-3 relative operating point onto each codec's
// bound semantics: error-bounded codecs take it directly, the MSE-bounded
// MGARD mode takes its square, and the rate/precision modes get a fixed 8
// bits per value / 16 bit planes.
func boundFor(caps pressio.Capabilities, valueRange float64) float64 {
	abs := valueRange * 1e-3
	switch {
	case strings.Contains(caps.BoundName, "bits per value"):
		return 8
	case strings.Contains(caps.BoundName, "bit planes"):
		return 16
	case strings.Contains(caps.BoundName, "mean-squared"):
		return abs * abs
	default:
		return abs
	}
}

// buffers generates the field at both element widths.
func buffers(cfg Config) (pressio.Buffer, pressio.Buffer, error) {
	d, err := dataset.New(cfg.Dataset, cfg.Scale)
	if err != nil {
		return pressio.Buffer{}, pressio.Buffer{}, err
	}
	f32, shape, err := d.Generate(cfg.Field, 0)
	if err != nil {
		return pressio.Buffer{}, pressio.Buffer{}, err
	}
	b32, err := pressio.NewBuffer(f32, shape)
	if err != nil {
		return pressio.Buffer{}, pressio.Buffer{}, err
	}
	f64, _, err := d.Generate64(cfg.Field, 0)
	if err != nil {
		return pressio.Buffer{}, pressio.Buffer{}, err
	}
	b64, err := pressio.NewBufferOf(f64, shape)
	if err != nil {
		return pressio.Buffer{}, pressio.Buffer{}, err
	}
	return b32, b64, nil
}

func wantCodec(cfg Config, name string) bool {
	if len(cfg.Codecs) == 0 {
		return true
	}
	for _, c := range cfg.Codecs {
		if c == name {
			return true
		}
	}
	return false
}

// run executes the harness and returns the report. Codec/dtype combinations
// a codec rejects are skipped with a note on skipped, not treated as errors.
func run(cfg Config, logf func(format string, args ...interface{})) (Report, error) {
	b32, b64, err := buffers(cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Version:            1,
		Quick:              cfg.Quick,
		Dataset:            cfg.Dataset + "/" + cfg.Field,
		Shape:              append([]int(nil), b32.Shape...),
		SZXSealSpeedupVsSZ: map[string]float64{},
	}

	type dtypeCase struct {
		name string
		buf  pressio.Buffer
	}
	cases := []dtypeCase{{"float32", b32}, {"float64", b64}}

	for _, codec := range pressio.Codecs() {
		if !wantCodec(cfg, codec.Name) {
			continue
		}
		if !codec.Caps.SupportsRank(b32.Shape.NDims()) {
			continue
		}
		for _, dc := range cases {
			comp := codec.New()
			if !comp.SupportsShape(dc.buf.Shape) {
				continue
			}
			bound := boundFor(codec.Caps, dc.buf.ValueRange())
			cellStart := len(rep.Results)
			for _, mode := range []struct {
				name   string
				blocks int
			}{{"monolithic", 1}, {"blocked", cfg.Blocks}} {
				res, err := benchCell(comp, dc.buf, bound, mode.blocks, cfg.benchTime())
				if err != nil {
					// A codec that cannot handle this dtype/mode is a gap in
					// the matrix, not a harness failure.
					logf("skip %s/%s/%s: %v", codec.Name, dc.name, mode.name, err)
					continue
				}
				res.Codec = codec.Name
				res.DType = dc.name
				res.Mode = mode.name
				rep.Results = append(rep.Results, res)
				logf("%-14s %-7s %-10s seal %7.3f GB/s (%6.0f allocs)  open %7.3f GB/s (%6.0f allocs)  ratio %.1f",
					codec.Name, dc.name, mode.name, res.SealGBps, res.SealAllocsPerOp, res.OpenGBps, res.OpenAllocsPerOp, res.Ratio)
			}
			// Tuning cost: one FixedRatio tune targeting the monolithic
			// cell's achieved ratio (feasible by construction). The cost is
			// a property of the (codec, dtype) pair, so both mode cells of
			// this dtype get the same columns.
			if mono := findResult(rep.Results[cellStart:], codec.Name, dc.name, "monolithic"); mono != nil && mono.Ratio > 1 {
				evals, ms, err := measureTune(codec.New(), dc.buf, mono.Ratio)
				if err != nil {
					logf("skip tune %s/%s: %v", codec.Name, dc.name, err)
				} else {
					for i := cellStart; i < len(rep.Results); i++ {
						rep.Results[i].TuneEvaluations = evals
						rep.Results[i].TuneMs = ms
					}
					logf("%-14s %-7s tune ratio %.1f: %d evaluations in %.1f ms", codec.Name, dc.name, mono.Ratio, evals, ms)
				}
			}
			cr, err := cacheSweep(codec.Name, comp, dc.buf, bound)
			if err == nil {
				cr.DType = dc.name
				rep.Cache = append(rep.Cache, cr)
			}
		}
	}

	for _, dt := range []string{"float32", "float64"} {
		szx := findResult(rep.Results, "szx:abs", dt, "monolithic")
		sz := findResult(rep.Results, "sz:abs", dt, "monolithic")
		if szx != nil && sz != nil && sz.SealGBps > 0 {
			rep.SZXSealSpeedupVsSZ[dt] = szx.SealGBps / sz.SealGBps
		}
	}
	return rep, nil
}

func (cfg Config) benchTime() time.Duration {
	if cfg.BenchTime > 0 {
		return cfg.BenchTime
	}
	if cfg.Quick {
		return 100 * time.Millisecond
	}
	return 500 * time.Millisecond
}

// benchCell measures seal and open for one (codec, dtype, blocks) cell.
func benchCell(comp pressio.Compressor, buf pressio.Buffer, bound float64, blocks int, budget time.Duration) (Result, error) {
	ctx := context.Background()
	seal := func() (container.Container, error) {
		if blocks <= 1 {
			return pressio.Seal(comp, buf, bound)
		}
		return pressio.SealBlocked(ctx, comp, buf, bound, blocks, 0)
	}

	cn, err := seal()
	if err != nil {
		return Result{}, err
	}
	sealSec, sealAllocs, err := measure(budget, func() error {
		_, err := seal()
		return err
	})
	if err != nil {
		return Result{}, err
	}
	openSec, openAllocs, err := measure(budget, func() error {
		_, err := pressio.OpenBlocked(ctx, cn, 0)
		return err
	})
	if err != nil {
		return Result{}, err
	}

	gb := float64(buf.Bytes()) / 1e9
	return Result{
		Blocks:          blocks,
		Bound:           bound,
		Ratio:           cn.Header.Ratio,
		SealGBps:        gb / sealSec,
		OpenGBps:        gb / openSec,
		SealAllocsPerOp: sealAllocs,
		OpenAllocsPerOp: openAllocs,
	}, nil
}

// measureTune runs one FixedRatio tune against a fresh compressor and
// reports its cost: total compressor evaluations and wall-clock
// milliseconds. Rate-capable codecs resolve the objective arithmetically
// (0 evaluations); the rest pay the per-region search.
func measureTune(comp pressio.Compressor, buf pressio.Buffer, target float64) (evals int, ms float64, err error) {
	tn, err := core.NewTuner(comp, core.Config{TargetRatio: target, Tolerance: 0.1, Seed: 1})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	res, err := tn.TuneBuffer(context.Background(), buf)
	if err != nil {
		return 0, 0, err
	}
	return res.Iterations, float64(time.Since(start).Microseconds()) / 1e3, nil
}

// cacheSweep replays a tuner-shaped bound sequence (a region sweep visited
// twice, as successive search rounds do) through a fresh evaluation cache and
// reports the hit rate.
func cacheSweep(name string, comp pressio.Compressor, buf pressio.Buffer, bound float64) (CacheResult, error) {
	cache := pressio.NewCache()
	ev := pressio.NewEvaluator(cache, comp, buf)
	sweep := []float64{bound, bound / 2, bound / 4, bound / 8}
	for round := 0; round < 2; round++ {
		for _, b := range sweep {
			if _, _, _, err := ev.Ratio(b); err != nil {
				return CacheResult{}, err
			}
		}
	}
	hits, misses, _ := cache.Stats()
	total := hits + misses
	hr := 0.0
	if total > 0 {
		hr = float64(hits) / float64(total)
	}
	return CacheResult{Codec: name, Hits: hits, Misses: misses, HitRate: hr}, nil
}

// violatingCodecs extracts the distinct codec names from gate violation
// strings (each starts with the "codec|dtype|mode" cell key).
func violatingCodecs(violations []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range violations {
		bar := strings.IndexByte(v, '|')
		if bar < 0 {
			continue
		}
		codec := v[:bar]
		if !seen[codec] {
			seen[codec] = true
			out = append(out, codec)
		}
	}
	sort.Strings(out)
	return out
}

// mergeResults replaces cells of rep that were re-measured (matched by cell
// key) with the fresh measurements.
func mergeResults(rep *Report, fresh []Result) {
	byKey := map[string]Result{}
	for _, r := range fresh {
		byKey[r.Key()] = r
	}
	for i, r := range rep.Results {
		if f, ok := byKey[r.Key()]; ok {
			rep.Results[i] = f
		}
	}
}

func findResult(rs []Result, codec, dtype, mode string) *Result {
	for i := range rs {
		if rs[i].Codec == codec && rs[i].DType == dtype && rs[i].Mode == mode {
			return &rs[i]
		}
	}
	return nil
}

// geomeanSeal is the run's machine-speed proxy: the geometric mean of every
// cell's seal throughput. Dividing each cell by it cancels uniform machine
// speed differences between the baseline host and the CI runner, while a
// single codec regressing still shows up as a drop in its normalized value.
func geomeanSeal(rs []Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		if r.SealGBps <= 0 {
			return 0
		}
		sum += math.Log(r.SealGBps)
	}
	return math.Exp(sum / float64(len(rs)))
}

// allocSlack is the absolute allocation headroom before the relative gate
// applies; tiny cells jitter by a few allocations (flate internals, map
// growth) without meaning anything.
const allocSlack = 64

// gate compares a run against a baseline and returns one violation string
// per regressed metric. Throughput is compared after normalizing by each
// run's geomean seal throughput (machine-speed invariant); allocations per
// op are compared directly (machine invariant by construction). Cells
// missing from either side are ignored — the matrix may grow or shrink.
func gate(current, baseline Report, pct float64) []string {
	var out []string
	curNorm := geomeanSeal(current.Results)
	baseNorm := geomeanSeal(baseline.Results)
	if curNorm <= 0 || baseNorm <= 0 {
		return []string{"gate: cannot normalize (non-positive throughput in report)"}
	}
	limit := 1 - pct/100
	base := map[string]Result{}
	for _, r := range baseline.Results {
		base[r.Key()] = r
	}
	keys := make([]string, 0, len(current.Results))
	cur := map[string]Result{}
	for _, r := range current.Results {
		cur[r.Key()] = r
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	for _, k := range keys {
		c, b := cur[k], base[k]
		if b.Codec == "" {
			continue
		}
		if rel, relBase := c.SealGBps/curNorm, b.SealGBps/baseNorm; rel < relBase*limit {
			out = append(out, fmt.Sprintf("%s: relative seal throughput %.3f, baseline %.3f (>%g%% drop)", k, rel, relBase, pct))
		}
		if rel, relBase := c.OpenGBps/curNorm, b.OpenGBps/baseNorm; rel < relBase*limit {
			out = append(out, fmt.Sprintf("%s: relative open throughput %.3f, baseline %.3f (>%g%% drop)", k, rel, relBase, pct))
		}
		if c.SealAllocsPerOp > b.SealAllocsPerOp*(1+pct/100)+allocSlack {
			out = append(out, fmt.Sprintf("%s: seal allocs/op %.0f, baseline %.0f (>%g%% growth)", k, c.SealAllocsPerOp, b.SealAllocsPerOp, pct))
		}
		if c.OpenAllocsPerOp > b.OpenAllocsPerOp*(1+pct/100)+allocSlack {
			out = append(out, fmt.Sprintf("%s: open allocs/op %.0f, baseline %.0f (>%g%% growth)", k, c.OpenAllocsPerOp, b.OpenAllocsPerOp, pct))
		}
	}
	return out
}
