package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fraz/internal/dataset"
	"fraz/internal/server"
)

func discardLogf(string, ...interface{}) {}

func TestLoadgenAgainstService(t *testing.T) {
	// Enough per-tenant headroom that all clients (one shared anonymous
	// tenant) are admitted; backpressure behavior has its own test below.
	ts := httptest.NewServer(server.New(server.Config{
		Concurrency: 4, QueueDepth: 16, PerTenant: 16,
	}).Handler())
	defer ts.Close()

	rep, err := runLoadgen(LoadgenConfig{
		URL:       ts.URL,
		Clients:   3,
		Requests:  9,
		Dataset:   "Hurricane",
		Field:     "CLOUDf",
		Scale:     dataset.ScaleTiny,
		Target:    10,
		Timesteps: 2,
	}, discardLogf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 9 || rep.Errors != 0 {
		t.Fatalf("report: %d ok, %d failed, want 9/0", rep.Requests, rep.Errors)
	}
	if rep.SealedBytes <= 0 || rep.FieldBytes <= 0 {
		t.Fatalf("byte counters: fields %d, sealed %d", rep.FieldBytes, rep.SealedBytes)
	}
	if rep.SealedBytes >= rep.FieldBytes {
		t.Fatalf("archives (%d) not smaller than fields (%d)", rep.SealedBytes, rep.FieldBytes)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("percentiles out of order: p50 %v p99 %v max %v", rep.P50, rep.P99, rep.Max)
	}

	var buf bytes.Buffer
	printLoadReport(&buf, rep)
	out := buf.String()
	for _, want := range []string{"9 ok", "req/s", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestLoadgenCountsBackpressure points the generator at a saturated,
// draining server and checks rejections are classified, not miscounted as
// transport faults.
func TestLoadgenCountsBackpressure(t *testing.T) {
	s := server.New(server.Config{})
	s.BeginDrain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := runLoadgen(LoadgenConfig{
		URL:       ts.URL,
		Clients:   2,
		Requests:  4,
		Dataset:   "Hurricane",
		Field:     "CLOUDf",
		Scale:     dataset.ScaleTiny,
		Timesteps: 1,
	}, discardLogf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 || rep.Rejected != 4 || rep.Errors != 4 {
		t.Fatalf("report: %+v, want 0 ok / 4 rejected", rep)
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 10)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	cases := []struct {
		p    int
		want time.Duration
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("percentile(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}
