package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"fraz/internal/dataset"
)

// This file is frazperf's load-generator mode (-loadgen): instead of
// benchmarking codecs in-process, it drives a running frazd instance with
// concurrent compress requests over real HTTP and reports service-level
// throughput and latency percentiles. The field material is the same
// synthetic SDRBench proxy the benchmark mode uses, cycled across time
// steps so the server sees a realistic mix of repeated and fresh data (the
// repeats exercise its shared evaluation cache).

// LoadgenConfig shapes one load run.
type LoadgenConfig struct {
	URL       string // base URL of the frazd instance, e.g. http://localhost:8080
	Clients   int    // concurrent uploaders
	Requests  int    // total requests across all clients
	Dataset   string
	Field     string
	Scale     dataset.Scale
	Target    float64 // requested compression ratio
	Timesteps int     // distinct field versions cycled through
}

// LoadReport is the run's aggregate outcome.
type LoadReport struct {
	Requests           int           // completed 2xx requests
	Errors             int           // transport failures + non-2xx answers
	Rejected           int           // the 429/503 slice of Errors (backpressure, not faults)
	Wall               time.Duration // wall time for the whole run
	FieldBytes         int64         // raw bytes uploaded by successful requests
	SealedBytes        int64         // archive bytes received
	P50, P90, P99, Max time.Duration
}

func (r LoadReport) throughput() (reqPerSec, fieldMBps, sealedMBps float64) {
	s := r.Wall.Seconds()
	if s <= 0 {
		return 0, 0, 0
	}
	return float64(r.Requests) / s,
		float64(r.FieldBytes) / s / (1 << 20),
		float64(r.SealedBytes) / s / (1 << 20)
}

// loadBodies materializes Timesteps versions of the field as raw
// little-endian uploads.
func loadBodies(cfg LoadgenConfig) (bodies [][]byte, shape string, err error) {
	d, err := dataset.New(cfg.Dataset, cfg.Scale)
	if err != nil {
		return nil, "", err
	}
	for ts := 0; ts < cfg.Timesteps; ts++ {
		f32, dims, err := d.Generate(cfg.Field, ts)
		if err != nil {
			return nil, "", err
		}
		raw := make([]byte, len(f32)*4)
		for i, v := range f32 {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
		}
		bodies = append(bodies, raw)
		shape = dims.String()
	}
	return bodies, shape, nil
}

func runLoadgen(cfg LoadgenConfig, logf func(format string, args ...interface{})) (LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.Timesteps <= 0 {
		cfg.Timesteps = 4
	}
	if cfg.Target <= 0 {
		cfg.Target = 10
	}
	bodies, shape, err := loadBodies(cfg)
	if err != nil {
		return LoadReport{}, err
	}
	logf("loadgen: %d requests, %d clients, field %s/%s %s (%d bytes), %d timesteps, target ratio %g",
		cfg.Requests, cfg.Clients, cfg.Dataset, cfg.Field, shape, len(bodies[0]), cfg.Timesteps, cfg.Target)

	client := &http.Client{}
	target := strconv.FormatFloat(cfg.Target, 'g', -1, 64)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       LoadReport
	)
	// next hands out request indices; the index picks the timestep, so the
	// request mix is deterministic regardless of scheduling.
	next := make(chan int, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body := bodies[i%len(bodies)]
				req, err := http.NewRequest(http.MethodPost, cfg.URL+"/v1/compress", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					rep.Errors++
					mu.Unlock()
					continue
				}
				req.Header.Set("X-Fraz-Shape", shape)
				req.Header.Set("X-Fraz-Target", target)
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					mu.Lock()
					rep.Errors++
					mu.Unlock()
					continue
				}
				sealed, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)

				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK:
					rep.Requests++
					rep.FieldBytes += int64(len(body))
					rep.SealedBytes += sealed
					latencies = append(latencies, lat)
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					rep.Errors++
					rep.Rejected++
				default:
					rep.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.P50 = percentile(latencies, 50)
		rep.P90 = percentile(latencies, 90)
		rep.P99 = percentile(latencies, 99)
		rep.Max = latencies[len(latencies)-1]
	}
	return rep, nil
}

// percentile reads the p-th percentile from an ascending-sorted slice using
// the nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func printLoadReport(w io.Writer, rep LoadReport) {
	reqPerSec, fieldMBps, sealedMBps := rep.throughput()
	fmt.Fprintf(w, "requests     %d ok, %d failed (%d backpressure) in %v\n",
		rep.Requests, rep.Errors, rep.Rejected, rep.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput   %.1f req/s, %.1f MiB/s fields in, %.2f MiB/s archives out\n",
		reqPerSec, fieldMBps, sealedMBps)
	fmt.Fprintf(w, "latency      p50 %v  p90 %v  p99 %v  max %v\n",
		rep.P50.Round(time.Microsecond), rep.P90.Round(time.Microsecond),
		rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond))
}
