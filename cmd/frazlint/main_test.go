package main

import (
	"testing"

	"fraz/internal/analysis/frazlint"
)

// TestRepoLintClean runs the full analyzer suite over every package in the
// module, so a lint violation fails `go test ./...` even where CI is not in
// the loop. The module-path pattern (rather than ./...) keeps the sweep
// repo-wide regardless of the test binary's working directory.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is not short")
	}
	diags, err := frazlint.Lint("fraz/...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d invariant violation(s); annotate deliberate exceptions with //frazlint:allow", len(diags))
	}
}
