// Command frazlint is the project lint driver: it runs the analyzer suite
// from internal/analysis over the packages matching its arguments (default
// ./...) and exits non-zero if any invariant is violated. The suite checks
// the conventions FRaZ's correctness rests on but the compiler cannot see —
// pooled-buffer lifecycles, stream-magic uniqueness and width tagging,
// dtype-dispatch exhaustiveness, floating-point comparison discipline, and
// error propagation through the repository's own APIs.
//
// Usage:
//
//	go run ./cmd/frazlint ./...
//	go run ./cmd/frazlint -list
//
// Deliberate exceptions are annotated in the source with a
// //frazlint:allow <analyzer> comment on (or directly above) the flagged
// line; there is no out-of-band configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"fraz/internal/analysis/frazlint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: frazlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the FRaZ analyzer suite; see -list for the checks.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range frazlint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := frazlint.Lint(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frazlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "frazlint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
