// Command frazd serves fraz's tune→seal→archive pipeline over HTTP: clients
// stream raw fields up, the server tunes the codec's error bound to the
// requested objective, seals a .fraz container, and streams it back (or
// shelves it server-side for later download by id). One process shares a
// single evaluation cache across every request, so a fleet re-compressing
// similar fields converges on cheap tunes.
//
// Run it:
//
//	frazd -addr :8080
//
// Compress a field:
//
//	curl -s --data-binary @field.bin \
//	  -H 'X-Fraz-Shape: 100x500x500' -H 'X-Fraz-Target: 10' \
//	  http://localhost:8080/v1/compress -o field.fraz
//
// Ops surface: /healthz (liveness), /readyz (drops to 503 while draining),
// /metrics (Prometheus text format). SIGTERM/SIGINT begins a graceful
// drain: readiness flips, new work is rejected with 503 + Retry-After, and
// in-flight requests run to completion (bounded by -drain-timeout) before
// the process exits.
//
// See docs/http-api.md for the full endpoint and header reference.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fraz/internal/server"
)

func main() {
	os.Exit(realMain(os.Args[1:], nil))
}

// realMain runs the daemon. started, when non-nil, receives the bound
// listener address once the server is accepting connections — tests use it
// to find the ephemeral port.
func realMain(args []string, started chan<- string) int {
	fs := flag.NewFlagSet("frazd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		concurrency  = fs.Int("concurrency", 0, "worker-pool size (default: GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "admission queue depth beyond the pool (default: 2x concurrency)")
		perTenant    = fs.Int("per-tenant", 0, "per-tenant concurrency limit (default: concurrency)")
		sealWorkers  = fs.Int("seal-workers", 0, "block-compression goroutines per request (default: 1)")
		cacheEntries = fs.Int("cache-entries", 0, "server-wide evaluation cache size (default: 65536)")
		maxField     = fs.Int64("max-field-bytes", 0, "largest accepted raw field (default: 1 GiB)")
		reqTimeout   = fs.Duration("request-timeout", 0, "end-to-end cap per request, queueing included (default: 120s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace for in-flight requests after SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(os.Stderr, "frazd: ", log.LstdFlags)

	srv := server.New(server.Config{
		Concurrency:    *concurrency,
		QueueDepth:     *queue,
		PerTenant:      *perTenant,
		SealWorkers:    *sealWorkers,
		CacheEntries:   *cacheEntries,
		MaxFieldBytes:  *maxField,
		RequestTimeout: *reqTimeout,
		Log:            logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:  srv.Handler(),
		ErrorLog: logger,
		// Generous header/read setup caps; the real per-request budget is
		// the handler-level RequestTimeout.
		ReadHeaderTimeout: 30 * time.Second,
	}

	logger.Printf("listening on %s", ln.Addr())
	if started != nil {
		started <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		logger.Print(err)
		return 1
	case s := <-sig:
		logger.Printf("%s: draining (grace %s)", s, *drainTimeout)
	}

	// Flip readiness + reject new work first, then let the http.Server wait
	// for in-flight handlers.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	stats := srv.CacheStats()
	logger.Printf("drained clean (cache: %d hits, %d misses, %.0f%% hit rate)",
		stats.Hits, stats.Misses, 100*stats.HitRate())
	return 0
}
