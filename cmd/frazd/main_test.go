package main

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeCompressAndDrain boots the real daemon on an ephemeral port,
// round-trips a field through it, and shuts it down with SIGTERM — the
// in-process version of CI's frazd-smoke job.
func TestServeCompressAndDrain(t *testing.T) {
	started := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- realMain([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"}, started)
	}()
	var addr string
	select {
	case addr = <-started:
	case code := <-exited:
		t.Fatalf("daemon exited immediately with %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	// Liveness and readiness.
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
	}

	// Compress a small smooth field, then decompress it back.
	const n = 16 * 12 * 10
	raw := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(math.Sin(float64(i)*0.01))))
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/compress", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Fraz-Shape", "16x12x10")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	archive, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d body %s", resp.StatusCode, archive)
	}
	if len(archive) >= len(raw) {
		t.Fatalf("archive (%d bytes) not smaller than field (%d bytes)", len(archive), len(raw))
	}

	dresp, err := http.Post(base+"/v1/decompress", "application/x-fraz", bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK || len(back) != len(raw) {
		t.Fatalf("decompress: status %d, %d bytes (want %d)", dresp.StatusCode, len(back), len(raw))
	}

	// The metrics surface reports the traffic.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), `frazd_requests_total{code="200",endpoint="compress"}`) &&
		!strings.Contains(string(metrics), `frazd_requests_total{endpoint="compress",code="200"}`) {
		t.Fatalf("compress traffic missing from metrics:\n%s", metrics)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("healthz still answering after shutdown")
	}
}

func TestBadFlags(t *testing.T) {
	if code := realMain([]string{"-definitely-not-a-flag"}, nil); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestListenFailure(t *testing.T) {
	if code := realMain([]string{"-addr", "256.256.256.256:1"}, nil); code != 1 {
		t.Fatalf("bad address: exit %d, want 1", code)
	}
}
