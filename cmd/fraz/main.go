// Command fraz performs fixed-ratio lossy compression of a single field: it
// tunes the chosen compressor's error bound until the achieved compression
// ratio reaches the requested target (within the tolerance), then optionally
// writes a self-describing .fraz container.
//
// The field can come from a raw little-endian float32 file (-in, with -dims)
// or from one of the built-in synthetic SDRBench stand-ins (-dataset/-field).
//
// A .fraz container records the codec, tuned bound, achieved ratio, and
// shape in its header, so decompression needs no flags beyond the file:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
//	fraz -in cloud.f32 -dims 100x500x500 -compressor zfp:accuracy -ratio 25 -out cloud.fraz
//
// With -blocks N the field is split into N slowest-axis blocks: the bound is
// tuned once on a sampled block and all blocks are compressed concurrently
// into a blocked (v2) container whose per-block index lets -decompress
// verify and decode the blocks in parallel too. -decompress auto-detects v1
// versus v2 from the header:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -blocks 8 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/grid"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fraz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fraz", flag.ContinueOnError)
	var (
		decompress = fs.String("decompress", "", "decompress this .fraz container (codec, bound, and shape come from its header)")
		inPath     = fs.String("in", "", "raw little-endian float32 input file")
		dims       = fs.String("dims", "", "input dimensions, slowest first, e.g. 100x500x500 (required with -in)")
		dsName     = fs.String("dataset", "", "built-in synthetic dataset name (Hurricane, HACC, CESM, EXAALT, NYX)")
		fieldName  = fs.String("field", "", "field name within the dataset")
		timeStep   = fs.Int("timestep", 0, "time-step within the dataset")
		scaleName  = fs.String("scale", "small", "synthetic dataset scale: tiny, small, medium")
		compressor = fs.String("compressor", "sz:abs", "compressor to tune: "+strings.Join(pressio.Names(), ", "))
		ratio      = fs.Float64("ratio", 10, "target compression ratio")
		tolerance  = fs.Float64("tolerance", 0.1, "acceptable fractional deviation from the target ratio")
		maxError   = fs.Float64("max-error", 0, "maximum allowed compression error U (0 = value range of the data)")
		regions    = fs.Int("regions", 12, "number of overlapping error-bound search regions")
		blocksN    = fs.Int("blocks", 0, "split the field into N slowest-axis blocks, tune on one sampled block, and compress the blocks in parallel into a blocked (v2) container (0 or 1 = monolithic)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = fs.Int64("seed", 1, "search seed")
		outPath    = fs.String("out", "", "compress: write a .fraz container here; decompress: write raw float32 here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *decompress != "" {
		// Every decompression parameter comes from the container header, so
		// any other flag the user set would be silently ignored — reject it
		// instead of letting them believe it took effect.
		var extra []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "decompress" && f.Name != "out" {
				extra = append(extra, "-"+f.Name)
			}
		})
		if len(extra) > 0 {
			return fmt.Errorf("-decompress reads the codec, bound, and shape from the container header; remove %s", strings.Join(extra, ", "))
		}
		return runDecompress(*decompress, *outPath, out)
	}

	buf, label, err := loadInput(*inPath, *dims, *dsName, *fieldName, *timeStep, *scaleName)
	if err != nil {
		return err
	}

	c, err := pressio.New(*compressor)
	if err != nil {
		return err
	}
	tuner, err := core.NewTuner(c, core.Config{
		TargetRatio: *ratio,
		Tolerance:   *tolerance,
		MaxError:    *maxError,
		Regions:     *regions,
		Workers:     *workers,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}

	if *blocksN > 1 {
		return runBlocked(tuner, buf, label, *blocksN, *ratio, *tolerance, *outPath, out)
	}

	res, err := tuner.TuneBuffer(context.Background(), buf)
	if err != nil {
		return err
	}

	printTuningHeader(out, label, buf, c, *ratio, *tolerance)
	fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
	fmt.Fprintf(out, "achieved ratio:   %.2f (compressed %.2f MB)\n", res.AchievedRatio, float64(res.CompressedSize)/1e6)
	fmt.Fprintf(out, "feasible:         %v\n", res.Feasible)
	fmt.Fprintf(out, "evaluations:      %d in %v (%s)\n", res.Iterations, res.Elapsed, report.Savings(res.CacheHits, res.CacheMisses))
	if !res.Feasible {
		printInfeasibleNote(out)
	}

	if *outPath != "" {
		cn, err := pressio.Seal(c, buf, res.ErrorBound)
		if err != nil {
			return fmt.Errorf("final compression: %w", err)
		}
		enc, err := cn.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to %s (%s)\n", len(enc), *outPath, cn.Header)
	}
	return nil
}

// runBlocked drives the blocked pipeline: tune the bound on one sampled
// block, compress every block concurrently, and (optionally) write the
// blocked (v2) container.
func runBlocked(tuner *core.Tuner, buf pressio.Buffer, label string, blocksN int, ratio, tolerance float64, outPath string, out io.Writer) error {
	c := tuner.Compressor()
	cn, sr, err := tuner.SealBlocked(context.Background(), buf, core.SealOptions{Blocks: blocksN})
	if err != nil {
		return err
	}
	res := sr.Tuning
	printTuningHeader(out, label, buf, c, ratio, tolerance)
	fmt.Fprintf(out, "blocks:           %d (tuned on sampled block %d)\n", sr.Blocks, sr.SampleBlock)
	fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
	fmt.Fprintf(out, "achieved ratio:   %.2f whole-field (%.2f on the sampled block)\n", sr.AchievedRatio, res.AchievedRatio)
	fmt.Fprintf(out, "feasible:         %v (on the sampled block)\n", res.Feasible)
	fmt.Fprintf(out, "evaluations:      %d in %v (%s)\n", res.Iterations, res.Elapsed, report.Savings(res.CacheHits, res.CacheMisses))
	if !res.Feasible {
		printInfeasibleNote(out)
	}
	if outPath != "" {
		enc, err := cn.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to %s (%s, %d blocks)\n", len(enc), outPath, cn.Header, cn.NumBlocks())
	}
	return nil
}

// printTuningHeader writes the report lines shared by the monolithic and
// blocked compression paths.
func printTuningHeader(out io.Writer, label string, buf pressio.Buffer, c pressio.Compressor, ratio, tolerance float64) {
	fmt.Fprintf(out, "input:            %s (%s, %d values, %.2f MB)\n", label, buf.Shape, len(buf.Data), float64(buf.Bytes())/1e6)
	fmt.Fprintf(out, "compressor:       %s (%s)\n", c.Name(), c.BoundName())
	fmt.Fprintf(out, "target ratio:     %.2f (+/- %.0f%%)\n", ratio, tolerance*100)
}

// printInfeasibleNote explains an out-of-band result and how to remedy it.
func printInfeasibleNote(out io.Writer) {
	fmt.Fprintf(out, "note: the target ratio was not reachable within the error-bound range;\n")
	fmt.Fprintf(out, "      the closest observed ratio is reported. Consider relaxing -tolerance,\n")
	fmt.Fprintf(out, "      raising -max-error, or switching -compressor.\n")
}

// runDecompress reverses a .fraz container: every parameter needed — codec,
// bound, shape — is read from the container header, so the only inputs are
// the file itself and an optional raw float32 output path.
func runDecompress(inPath, outPath string, out io.Writer) error {
	enc, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	cn, err := container.Decode(enc)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	buf, err := pressio.Open(cn)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "container:        %s (%s)\n", inPath, cn.Header)
	if cn.Blocks != nil {
		fmt.Fprintf(out, "blocks:           %d (independently verified and decoded in parallel)\n", cn.NumBlocks())
	}
	fmt.Fprintf(out, "reconstructed:    %d values (%s, %.2f MB)\n", len(buf.Data), buf.Shape, float64(buf.Bytes())/1e6)
	if cd, ok := pressio.Lookup(cn.Header.Codec); ok {
		switch {
		case cd.Caps.Lossless:
			fmt.Fprintf(out, "error guarantee:  lossless (bit-exact reconstruction)\n")
		case cd.Caps.ErrorBounded:
			fmt.Fprintf(out, "error guarantee:  %s <= %g\n", cd.Caps.BoundName, cn.Header.Bound)
		}
	}
	if outPath != "" {
		if err := dataset.WriteRaw(outPath, buf.Data); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", buf.Bytes(), outPath)
	}
	return nil
}

func loadInput(inPath, dims, dsName, fieldName string, timeStep int, scaleName string) (pressio.Buffer, string, error) {
	switch {
	case inPath != "":
		shape, err := parseDims(dims)
		if err != nil {
			return pressio.Buffer{}, "", err
		}
		data, err := dataset.ReadRaw(inPath, shape)
		if err != nil {
			return pressio.Buffer{}, "", err
		}
		buf, err := pressio.NewBuffer(data, shape)
		return buf, inPath, err
	case dsName != "":
		if fieldName == "" {
			return pressio.Buffer{}, "", fmt.Errorf("-field is required with -dataset")
		}
		scale, err := parseScale(scaleName)
		if err != nil {
			return pressio.Buffer{}, "", err
		}
		d, err := dataset.New(dsName, scale)
		if err != nil {
			return pressio.Buffer{}, "", err
		}
		data, shape, err := d.Generate(fieldName, timeStep)
		if err != nil {
			return pressio.Buffer{}, "", err
		}
		buf, err := pressio.NewBuffer(data, shape)
		return buf, fmt.Sprintf("%s/%s t=%d", dsName, fieldName, timeStep), err
	default:
		return pressio.Buffer{}, "", fmt.Errorf("either -in or -dataset must be provided")
	}
}

func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required with -in")
	}
	parts := strings.Split(s, "x")
	extents := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", p, err)
		}
		extents = append(extents, v)
	}
	return grid.NewDims(extents...)
}

func parseScale(s string) (dataset.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return dataset.ScaleTiny, nil
	case "small", "":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small, or medium)", s)
	}
}
