// Command fraz performs fixed-ratio lossy compression of a single field: it
// tunes the chosen compressor's error bound until the achieved compression
// ratio reaches the requested target (within the tolerance), then optionally
// writes a self-describing .fraz container. It is a thin shell over the
// public fraz package — every capability here is available to any Go
// program through the same API.
//
// The field can come from a raw little-endian float32 file (-in, with -dims)
// or from one of the built-in synthetic SDRBench stand-ins (-dataset/-field).
//
// A .fraz container records the codec, tuned bound, achieved ratio, and
// shape in its header, so decompression needs no flags beyond the file:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
//	fraz -in cloud.f32 -dims 100x500x500 -compressor zfp:accuracy -ratio 25 -out cloud.fraz
//
// With -blocks N the field is split into N slowest-axis blocks: the bound is
// tuned once on a sampled block and all blocks are compressed concurrently
// into a blocked (v2) container whose per-block index lets -decompress
// verify and decode the blocks in parallel too. -decompress auto-detects v1
// versus v2 from the header:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -blocks 8 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
//
// When the target ratio is not reachable at any admissible error bound the
// command reports the closest observed configuration and exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fraz"
	"fraz/internal/dataset"
	"fraz/internal/grid"
	"fraz/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fraz:", err)
		os.Exit(1)
	}
}

func codecNames() []string {
	infos := fraz.Codecs()
	names := make([]string, len(infos))
	for i, ci := range infos {
		names[i] = ci.Name
	}
	return names
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fraz", flag.ContinueOnError)
	var (
		decompress = fs.String("decompress", "", "decompress this .fraz container (codec, bound, and shape come from its header)")
		inPath     = fs.String("in", "", "raw little-endian float32 input file")
		dims       = fs.String("dims", "", "input dimensions, slowest first, e.g. 100x500x500 (required with -in)")
		dsName     = fs.String("dataset", "", "built-in synthetic dataset name (Hurricane, HACC, CESM, EXAALT, NYX)")
		fieldName  = fs.String("field", "", "field name within the dataset")
		timeStep   = fs.Int("timestep", 0, "time-step within the dataset")
		scaleName  = fs.String("scale", "small", "synthetic dataset scale: tiny, small, medium")
		compressor = fs.String("compressor", fraz.DefaultCodec, "compressor to tune: "+strings.Join(codecNames(), ", "))
		ratio      = fs.Float64("ratio", 10, "target compression ratio")
		tolerance  = fs.Float64("tolerance", 0.1, "acceptable fractional deviation from the target ratio")
		maxError   = fs.Float64("max-error", 0, "maximum allowed compression error U (0 = value range of the data)")
		regions    = fs.Int("regions", 12, "number of overlapping error-bound search regions")
		blocksN    = fs.Int("blocks", 0, "split the field into N slowest-axis blocks, tune on one sampled block, and compress the blocks in parallel into a blocked (v2) container (0 or 1 = monolithic)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = fs.Int64("seed", 1, "search seed")
		outPath    = fs.String("out", "", "compress: write a .fraz container here; decompress: write raw float32 here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *decompress != "" {
		// Every decompression parameter comes from the container header, so
		// any other flag the user set would be silently ignored — reject it
		// instead of letting them believe it took effect.
		var extra []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "decompress" && f.Name != "out" {
				extra = append(extra, "-"+f.Name)
			}
		})
		if len(extra) > 0 {
			return fmt.Errorf("-decompress reads the codec, bound, and shape from the container header; remove %s", strings.Join(extra, ", "))
		}
		return runDecompress(*decompress, *outPath, out)
	}

	data, shape, label, err := loadInput(*inPath, *dims, *dsName, *fieldName, *timeStep, *scaleName)
	if err != nil {
		return err
	}

	blocks := *blocksN
	if blocks <= 1 {
		blocks = 1 // 0 and 1 both mean a monolithic (v1) container
	}
	client, err := fraz.New(*compressor,
		fraz.Ratio(*ratio),
		fraz.Tolerance(*tolerance),
		fraz.MaxError(*maxError),
		fraz.Regions(*regions),
		fraz.Blocks(blocks),
		fraz.Workers(*workers),
		fraz.Seed(*seed),
	)
	if err != nil {
		return err
	}

	// Without -out the container is still produced (compression is the
	// point of the tuning report) but discarded. With -out, the container
	// streams into a temporary file that is renamed over the destination
	// only on success, so a failed run never truncates or deletes an
	// archive already at that path.
	var w io.Writer = io.Discard
	var tmp *os.File
	if *outPath != "" {
		tmp, err = os.CreateTemp(filepath.Dir(*outPath), filepath.Base(*outPath)+".tmp-*")
		if err != nil {
			return err
		}
		// CreateTemp makes the file 0600; restore the 0644 a direct create
		// would have produced so the published archive stays readable by
		// consumers other than its owner.
		if err := tmp.Chmod(0o644); err != nil {
			return err
		}
		defer func() {
			if tmp != nil {
				tmp.Close()
				os.Remove(tmp.Name())
			}
		}()
		w = tmp
	}

	printTuningHeader(out, label, shape, len(data), client.Codec(), *ratio, *tolerance)
	res, err := client.Compress(context.Background(), w, data, []int(shape))
	var infeasible *fraz.InfeasibleError
	if errors.As(err, &infeasible) {
		// Report how close the search got and exit non-zero: an archive
		// that misses its ratio contract must not look like success to
		// scripts. The deferred cleanup discards the temporary file.
		fmt.Fprintf(out, "recommended bound: %g (closest observed)\n", infeasible.ErrorBound)
		fmt.Fprintf(out, "achieved ratio:   %.2f\n", infeasible.ClosestRatio)
		fmt.Fprintf(out, "feasible:         false\n")
		printInfeasibleNote(out)
		return err
	}
	if err != nil {
		return err
	}
	if tmp != nil {
		// Close before declaring success so write-back errors surface, then
		// publish the finished archive atomically.
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			tmp = nil
			return err
		}
		if err := os.Rename(tmp.Name(), *outPath); err != nil {
			os.Remove(tmp.Name())
			tmp = nil
			return err
		}
		tmp = nil
	}

	if res.Blocks > 1 {
		fmt.Fprintf(out, "blocks:           %d (tuned on sampled block %d)\n", res.Blocks, res.SampleBlock)
		fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
		fmt.Fprintf(out, "achieved ratio:   %.2f whole-field (%.2f on the sampled block)\n", res.Ratio, res.SampleRatio)
	} else {
		fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
		fmt.Fprintf(out, "achieved ratio:   %.2f (compressed %.2f MB)\n", res.Ratio, float64(res.BytesWritten)/1e6)
	}
	fmt.Fprintf(out, "feasible:         true\n")
	fmt.Fprintf(out, "evaluations:      %d in %v (%s)\n", res.Evaluations, res.Elapsed,
		report.Savings(res.CacheHits, res.Evaluations-res.CacheHits))
	if *outPath != "" {
		fmt.Fprintf(out, "wrote %d bytes to %s (codec=%s bound=%g ratio=%.2f, %d blocks)\n",
			res.BytesWritten, *outPath, res.Codec, res.ErrorBound, res.Ratio, res.Blocks)
	}
	return nil
}

// printTuningHeader writes the report lines shared by the monolithic and
// blocked compression paths.
func printTuningHeader(out io.Writer, label string, shape grid.Dims, values int, ci fraz.CodecInfo, ratio, tolerance float64) {
	fmt.Fprintf(out, "input:            %s (%s, %d values, %.2f MB)\n", label, shape, values, float64(4*values)/1e6)
	fmt.Fprintf(out, "compressor:       %s (%s)\n", ci.Name, ci.BoundName)
	fmt.Fprintf(out, "target ratio:     %.2f (+/- %.0f%%)\n", ratio, tolerance*100)
}

// printInfeasibleNote explains an out-of-band result and how to remedy it.
func printInfeasibleNote(out io.Writer) {
	fmt.Fprintf(out, "note: the target ratio was not reachable within the error-bound range;\n")
	fmt.Fprintf(out, "      the closest observed ratio is reported. Consider relaxing -tolerance,\n")
	fmt.Fprintf(out, "      raising -max-error, or switching -compressor.\n")
}

// runDecompress reverses a .fraz container: every parameter needed — codec,
// bound, shape — is read from the container header, so the only inputs are
// the file itself and an optional raw float32 output path.
func runDecompress(inPath, outPath string, out io.Writer) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := fraz.DecompressFull(context.Background(), f)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	shape := grid.Dims(res.Shape)
	fmt.Fprintf(out, "container:        %s (.fraz v%d codec=%s shape=%s bound=%g ratio=%.2f)\n",
		inPath, res.Version, res.Codec, shape, res.ErrorBound, res.Ratio)
	if res.Version == 2 {
		fmt.Fprintf(out, "blocks:           %d (independently verified and decoded in parallel)\n", res.Blocks)
	}
	fmt.Fprintf(out, "reconstructed:    %d values (%s, %.2f MB)\n", len(res.Data), shape, float64(4*len(res.Data))/1e6)
	if ci, ok := fraz.LookupCodec(res.Codec); ok {
		switch {
		case ci.Lossless:
			fmt.Fprintf(out, "error guarantee:  lossless (bit-exact reconstruction)\n")
		case ci.ErrorBounded:
			fmt.Fprintf(out, "error guarantee:  %s <= %g\n", ci.BoundName, res.ErrorBound)
		}
	}
	if outPath != "" {
		if err := dataset.WriteRaw(outPath, res.Data); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", 4*len(res.Data), outPath)
	}
	return nil
}

func loadInput(inPath, dims, dsName, fieldName string, timeStep int, scaleName string) ([]float32, grid.Dims, string, error) {
	switch {
	case inPath != "":
		shape, err := parseDims(dims)
		if err != nil {
			return nil, nil, "", err
		}
		data, err := dataset.ReadRaw(inPath, shape)
		if err != nil {
			return nil, nil, "", err
		}
		return data, shape, inPath, nil
	case dsName != "":
		if fieldName == "" {
			return nil, nil, "", fmt.Errorf("-field is required with -dataset")
		}
		scale, err := parseScale(scaleName)
		if err != nil {
			return nil, nil, "", err
		}
		d, err := dataset.New(dsName, scale)
		if err != nil {
			return nil, nil, "", err
		}
		data, shape, err := d.Generate(fieldName, timeStep)
		if err != nil {
			return nil, nil, "", err
		}
		return data, shape, fmt.Sprintf("%s/%s t=%d", dsName, fieldName, timeStep), nil
	default:
		return nil, nil, "", fmt.Errorf("either -in or -dataset must be provided")
	}
}

func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required with -in")
	}
	parts := strings.Split(s, "x")
	extents := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", p, err)
		}
		extents = append(extents, v)
	}
	return grid.NewDims(extents...)
}

func parseScale(s string) (dataset.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return dataset.ScaleTiny, nil
	case "small", "":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small, or medium)", s)
	}
}
