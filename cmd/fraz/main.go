// Command fraz performs target-driven lossy compression of a single field:
// it tunes the chosen compressor's error bound until the achieved value of
// the selected objective — compression ratio by default (-ratio), or a
// quality target (-psnr, -ssim, -target-max-error) — lands in the
// acceptance band, then optionally writes a self-describing .fraz
// container. It is a thin shell over the public fraz package — every
// capability here is available to any Go program through the same API.
//
// Quality-targeted archives record the objective, target, band, and
// achieved value in the container header; `-decompress x.fraz -verify`
// recomputes the promise and exits non-zero if the archive misses it:
//
//	fraz -dataset Hurricane -field TCf -psnr 60 -out tcf.fraz
//	fraz -decompress tcf.fraz -verify -dataset Hurricane -field TCf
//
// The field can come from a raw little-endian float32 file (-in, with -dims)
// or from one of the built-in synthetic SDRBench stand-ins (-dataset/-field).
//
// A .fraz container records the codec, tuned bound, achieved ratio, and
// shape in its header, so decompression needs no flags beyond the file:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
//	fraz -in cloud.f32 -dims 100x500x500 -compressor zfp:accuracy -ratio 25 -out cloud.fraz
//
// With -blocks N the field is split into N slowest-axis blocks: the bound is
// tuned once on a sampled block and all blocks are compressed concurrently
// into a blocked (v2) container whose per-block index lets -decompress
// verify and decode the blocks in parallel too. -decompress auto-detects v1
// versus v2 from the header:
//
//	fraz -dataset Hurricane -field TCf -ratio 10 -blocks 8 -out tcf.fraz
//	fraz -decompress tcf.fraz -out tcf.f32
//
// When the target ratio is not reachable at any admissible error bound the
// command reports the closest observed configuration and exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fraz"
	"fraz/internal/dataset"
	"fraz/internal/grid"
	"fraz/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fraz:", err)
		os.Exit(1)
	}
}

func codecNames() []string {
	infos := fraz.Codecs()
	names := make([]string, len(infos))
	for i, ci := range infos {
		names[i] = ci.Name
	}
	return names
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fraz", flag.ContinueOnError)
	var (
		decompress = fs.String("decompress", "", "decompress this .fraz container (codec, bound, and shape come from its header)")
		inPath     = fs.String("in", "", "raw little-endian float input file (element width set by -dtype)")
		dims       = fs.String("dims", "", "input dimensions, slowest first, e.g. 100x500x500 (required with -in)")
		dtypeName  = fs.String("dtype", "float32", "element type of the input field: float32 or float64 (raw -in files and -dataset generation)")
		dsName     = fs.String("dataset", "", "built-in synthetic dataset name (Hurricane, HACC, CESM, EXAALT, NYX)")
		fieldName  = fs.String("field", "", "field name within the dataset")
		timeStep   = fs.Int("timestep", 0, "time-step within the dataset")
		scaleName  = fs.String("scale", "small", "synthetic dataset scale: tiny, small, medium")
		compressor = fs.String("compressor", fraz.DefaultCodec, "compressor to tune: "+strings.Join(codecNames(), ", ")+", or "+fraz.CodecAuto)
		auto       = fs.Bool("auto", false, "race every capable codec per field and seal with the winner (shorthand for -compressor "+fraz.CodecAuto+")")
		fieldsSpec = fs.String("fields", "", "compress several fields into one .frazd dataset archive: name=path,... (raw files, shared -dims) or name,... with -dataset")
		step       = fs.Int("step", 0, "with -decompress on a .frazd archive: the time step of -field to extract")
		ratio      = fs.Float64("ratio", 10, "target compression ratio")
		psnr       = fs.Float64("psnr", 0, "tune to this reconstruction PSNR in dB instead of a ratio")
		ssim       = fs.Float64("ssim", 0, "tune to this mid-slice SSIM instead of a ratio")
		maxErrTgt  = fs.Float64("target-max-error", 0, "tune to this measured maximum pointwise error instead of a ratio")
		tolerance  = fs.Float64("tolerance", 0.1, "acceptance half-width: fractional for -ratio/-psnr, absolute for -ssim/-target-max-error")
		verify     = fs.Bool("verify", false, "with -decompress: recompute the archive's recorded objective and exit non-zero if it misses the stored band (quality objectives need the original field via -in or -dataset)")
		maxError   = fs.Float64("max-error", 0, "maximum allowed compression error U (0 = value range of the data)")
		regions    = fs.Int("regions", 12, "number of overlapping error-bound search regions")
		blocksN    = fs.Int("blocks", 0, "split the field into N slowest-axis blocks, tune on one sampled block, and compress the blocks in parallel into a blocked (v2) container (0 or 1 = monolithic)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = fs.Int64("seed", 1, "search seed")
		outPath    = fs.String("out", "", "compress: write a .fraz container here; decompress: write raw float32 here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// With -out - the data stream owns standard output, so the report moves
	// to standard error to keep pipelines clean.
	if *outPath == "-" {
		out = stderr
	}

	if *decompress != "" {
		// Every decompression parameter comes from the container header, so
		// any other flag the user set would be silently ignored — reject it
		// instead of letting them believe it took effect. -verify is the
		// exception: it re-measures the archive's promise, and quality
		// promises need the original field, so the input flags are legal
		// alongside it. -field and -step address entries of a .frazd dataset
		// archive.
		allowed := map[string]bool{"decompress": true, "out": true, "verify": true, "field": true, "step": true}
		if *verify {
			for _, name := range []string{"in", "dims", "dataset", "field", "timestep", "scale", "dtype"} {
				allowed[name] = true
			}
		}
		var extra []string
		fs.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				extra = append(extra, "-"+f.Name)
			}
		})
		if len(extra) > 0 {
			return fmt.Errorf("-decompress reads the codec, bound, and shape from the container header; remove %s", strings.Join(extra, ", "))
		}
		// -dtype is validated even here, and cross-checked against the
		// archive: the header is authoritative, so a contradictory flag is a
		// user error, not a conversion request.
		wide, err := parseDType(*dtypeName)
		if err != nil {
			return err
		}
		var wantDType string
		if flagWasSet(fs, "dtype") {
			wantDType = "float32"
			if wide {
				wantDType = "float64"
			}
		}
		ref := refLoader{in: *inPath, dims: *dims, dataset: *dsName, field: *fieldName, timeStep: *timeStep, scale: *scaleName}
		if *decompress != "-" && isDatasetArchive(*decompress) {
			return runDatasetDecompress(*decompress, *fieldName, *step, *outPath, *verify, wantDType, ref, out)
		}
		if flagWasSet(fs, "step") {
			return fmt.Errorf("-step addresses entries of a .frazd dataset archive; %s is a single-field container", *decompress)
		}
		return runDecompress(*decompress, *outPath, *verify, wantDType, ref, out)
	}

	// -auto is shorthand for -compressor auto; naming both a concrete codec
	// and the race is a contradiction, not a preference.
	if *auto {
		if flagWasSet(fs, "compressor") && *compressor != fraz.CodecAuto {
			return fmt.Errorf("-auto races the codecs, -compressor %s names one; pick one of the two", *compressor)
		}
		*compressor = fraz.CodecAuto
	}

	target, targetDesc, err := selectTarget(fs, *ratio, *psnr, *ssim, *maxErrTgt)
	if err != nil {
		return err
	}

	blocks := *blocksN
	if blocks <= 1 {
		blocks = 1 // 0 and 1 both mean a monolithic (v1) container
	}
	opts := []fraz.Option{
		target,
		fraz.MaxError(*maxError),
		fraz.Regions(*regions),
		fraz.Blocks(blocks),
		fraz.Workers(*workers),
		fraz.Seed(*seed),
	}
	if flagWasSet(fs, "tolerance") {
		opts = append(opts, fraz.Tolerance(*tolerance))
	}

	wide, err := parseDType(*dtypeName)
	if err != nil {
		return err
	}

	if *fieldsSpec != "" {
		// Multi-field mode: every named field goes into one dataset archive.
		// The codec policy defaults to the race unless one was named.
		codec := *compressor
		if !*auto && !flagWasSet(fs, "compressor") {
			codec = fraz.CodecAuto
		}
		fields, err := parseFieldsSpec(*fieldsSpec, *dims, *dsName, *timeStep, *scaleName, wide)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "target:           %s\n", targetDesc)
		return runCompressFields(fields, codec, opts, *outPath, out)
	}

	field, err := loadField(*inPath, *dims, *dsName, *fieldName, *timeStep, *scaleName, wide)
	if err != nil {
		return err
	}
	client, err := fraz.New(*compressor, opts...)
	if err != nil {
		return err
	}

	// Without -out the container is still produced (compression is the
	// point of the tuning report) but discarded. With -out, the container
	// streams into a temporary file that is renamed over the destination
	// only on success, so a failed run never truncates or deletes an
	// archive already at that path.
	var w io.Writer = io.Discard
	var tmp *os.File
	if *outPath == "-" {
		w = stdout
	} else if *outPath != "" {
		tmp, err = os.CreateTemp(filepath.Dir(*outPath), filepath.Base(*outPath)+".tmp-*")
		if err != nil {
			return err
		}
		// CreateTemp makes the file 0600; restore the 0644 a direct create
		// would have produced so the published archive stays readable by
		// consumers other than its owner.
		if err := tmp.Chmod(0o644); err != nil {
			return err
		}
		defer func() {
			if tmp != nil {
				tmp.Close()
				os.Remove(tmp.Name())
			}
		}()
		w = tmp
	}

	printTuningHeader(out, field, client.Codec(), targetDesc)
	res, err := field.compress(context.Background(), client, w)
	var infeasible *fraz.InfeasibleError
	if errors.As(err, &infeasible) {
		// Report how close the search got and exit non-zero: an archive
		// that misses its contract must not look like success to scripts.
		// The deferred cleanup discards the temporary file.
		fmt.Fprintf(out, "recommended bound: %g (closest observed)\n", infeasible.ErrorBound)
		if infeasible.Objective != "" && infeasible.Objective != "ratio" {
			fmt.Fprintf(out, "achieved %s:  %.4g (want %g)\n", infeasible.Objective, infeasible.ClosestValue, infeasible.Target)
		}
		fmt.Fprintf(out, "achieved ratio:   %.2f\n", infeasible.ClosestRatio)
		fmt.Fprintf(out, "feasible:         false\n")
		printInfeasibleNote(out)
		return err
	}
	if err != nil {
		return err
	}
	if tmp != nil {
		// Close before declaring success so write-back errors surface, then
		// publish the finished archive atomically.
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			tmp = nil
			return err
		}
		if err := os.Rename(tmp.Name(), *outPath); err != nil {
			os.Remove(tmp.Name())
			tmp = nil
			return err
		}
		tmp = nil
	}

	if res.Blocks > 1 {
		fmt.Fprintf(out, "blocks:           %d (tuned on sampled block %d)\n", res.Blocks, res.SampleBlock)
		fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
		fmt.Fprintf(out, "achieved ratio:   %.2f whole-field (%.2f on the sampled block)\n", res.Ratio, res.SampleRatio)
	} else {
		fmt.Fprintf(out, "recommended bound: %g\n", res.ErrorBound)
		fmt.Fprintf(out, "achieved ratio:   %.2f (compressed %.2f MB)\n", res.Ratio, float64(res.BytesWritten)/1e6)
	}
	if res.Objective != "ratio" {
		fmt.Fprintf(out, "achieved %s:%s%.4g (target %g, recorded in the container header)\n",
			res.Objective, strings.Repeat(" ", max(1, 9-len(res.Objective))), res.AchievedValue, res.Target)
	}
	fmt.Fprintf(out, "feasible:         true\n")
	fmt.Fprintf(out, "evaluations:      %d in %v (%s)\n", res.Evaluations, res.Elapsed,
		report.Savings(res.CacheHits, res.Evaluations-res.CacheHits))
	if res.Direct {
		fmt.Fprintf(out, "direct:           fixed-rate codec satisfied the ratio target arithmetically (no search)\n")
	}
	if *outPath != "" {
		dest := *outPath
		if dest == "-" {
			dest = "<stdout>"
		}
		fmt.Fprintf(out, "wrote %d bytes to %s (codec=%s bound=%g ratio=%.2f, %d blocks)\n",
			res.BytesWritten, dest, res.Codec, res.ErrorBound, res.Ratio, res.Blocks)
	}
	return nil
}

// flagWasSet reports whether the user passed the named flag explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selectTarget maps the mutually exclusive target flags onto one objective
// option and a human-readable description of the request.
func selectTarget(fs *flag.FlagSet, ratio, psnr, ssim, maxErrTgt float64) (fraz.Option, string, error) {
	type candidate struct {
		flag string
		set  bool
		opt  fraz.Option
		desc string
	}
	candidates := []candidate{
		{"psnr", flagWasSet(fs, "psnr"), fraz.TargetPSNR(psnr), fmt.Sprintf("PSNR %.2f dB", psnr)},
		{"ssim", flagWasSet(fs, "ssim"), fraz.TargetSSIM(ssim), fmt.Sprintf("SSIM %.4f", ssim)},
		{"target-max-error", flagWasSet(fs, "target-max-error"), fraz.TargetMaxError(maxErrTgt), fmt.Sprintf("max error %g", maxErrTgt)},
	}
	var chosen []candidate
	for _, c := range candidates {
		if c.set {
			chosen = append(chosen, c)
		}
	}
	if len(chosen) > 1 || (len(chosen) == 1 && flagWasSet(fs, "ratio")) {
		var names []string
		if flagWasSet(fs, "ratio") {
			names = append(names, "-ratio")
		}
		for _, c := range chosen {
			names = append(names, "-"+c.flag)
		}
		return nil, "", fmt.Errorf("pick one tuning target; got %s", strings.Join(names, ", "))
	}
	if len(chosen) == 1 {
		return chosen[0].opt, chosen[0].desc, nil
	}
	return fraz.Ratio(ratio), fmt.Sprintf("ratio %.2f", ratio), nil
}

// printTuningHeader writes the report lines shared by the monolithic and
// blocked compression paths.
func printTuningHeader(out io.Writer, f inputField, ci fraz.CodecInfo, targetDesc string) {
	values := f.values()
	fmt.Fprintf(out, "input:            %s (%s %s, %d values, %.2f MB)\n", f.label, f.shape, f.dtype(), values, float64(f.elemSize()*values)/1e6)
	fmt.Fprintf(out, "compressor:       %s (%s)\n", ci.Name, ci.BoundName)
	fmt.Fprintf(out, "target:           %s\n", targetDesc)
}

// printInfeasibleNote explains an out-of-band result and how to remedy it.
func printInfeasibleNote(out io.Writer) {
	fmt.Fprintf(out, "note: the target was not reachable within the error-bound range;\n")
	fmt.Fprintf(out, "      the closest observed configuration is reported. Consider relaxing\n")
	fmt.Fprintf(out, "      -tolerance, raising -max-error, or switching -compressor.\n")
}

// inputField is a loaded field at either precision: exactly one of f32 and
// f64 is non-nil, mirroring the dtype tag a .fraz container records.
type inputField struct {
	f32   []float32
	f64   []float64
	shape grid.Dims
	label string
}

func (f inputField) values() int {
	if f.f64 != nil {
		return len(f.f64)
	}
	return len(f.f32)
}

func (f inputField) elemSize() int {
	if f.f64 != nil {
		return 8
	}
	return 4
}

func (f inputField) dtype() string {
	if f.f64 != nil {
		return "float64"
	}
	return "float32"
}

// compress tunes and seals the field through the client at its own width.
func (f inputField) compress(ctx context.Context, client *fraz.Client, w io.Writer) (*fraz.CompressResult, error) {
	if f.f64 != nil {
		return client.Compress64(ctx, w, f.f64, []int(f.shape))
	}
	return client.Compress(ctx, w, f.f32, []int(f.shape))
}

// parseDType maps the -dtype flag onto the container's element widths.
func parseDType(s string) (wide bool, err error) {
	switch strings.ToLower(s) {
	case "float32", "f32", "":
		return false, nil
	case "float64", "f64":
		return true, nil
	default:
		return false, fmt.Errorf("unknown dtype %q (want float32 or float64)", s)
	}
}

// refLoader carries the input flags a -verify run uses to load the
// reference (original) field at the width the archive records.
type refLoader struct {
	in, dims, dataset, field string
	timeStep                 int
	scale                    string
}

func (r refLoader) provided() bool { return r.in != "" || r.dataset != "" }

func (r refLoader) load(wide bool) (inputField, error) {
	return loadField(r.in, r.dims, r.dataset, r.field, r.timeStep, r.scale, wide)
}

// runDecompress reverses a .fraz container: every parameter needed — codec,
// bound, shape — is read from the container header, so the only inputs are
// the file itself, an optional raw float32 output path, and (with -verify)
// the reference field the archive's promise is re-measured against.
func runDecompress(inPath, outPath string, verify bool, wantDType string, ref refLoader, out io.Writer) error {
	var r io.Reader
	if inPath == "-" {
		r = stdin
		inPath = "<stdin>"
	} else {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	res, err := fraz.DecompressFull(context.Background(), r)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	if wantDType != "" && wantDType != res.DType {
		return fmt.Errorf("%s holds %s data, but -dtype %s was requested; the header is authoritative, so drop the flag", inPath, res.DType, wantDType)
	}
	shape := grid.Dims(res.Shape)
	fmt.Fprintf(out, "container:        %s (.fraz v%d codec=%s dtype=%s shape=%s bound=%g ratio=%.2f)\n",
		inPath, res.Version, res.Codec, res.DType, shape, res.ErrorBound, res.Ratio)
	if res.Version == 2 {
		fmt.Fprintf(out, "blocks:           %d (independently verified and decoded in parallel)\n", res.Blocks)
	}
	if res.Objective != nil {
		fmt.Fprintf(out, "objective:        %s target %g (±%g), achieved %.6g at seal time\n",
			res.Objective.Name, res.Objective.Target, res.Objective.Tolerance, res.Objective.Achieved)
	}
	values, elemSize := decodedValues(res)
	fmt.Fprintf(out, "reconstructed:    %d values (%s %s, %.2f MB)\n", values, shape, res.DType, float64(elemSize*values)/1e6)
	if ci, ok := fraz.LookupCodec(res.Codec); ok {
		switch {
		case ci.Lossless:
			fmt.Fprintf(out, "error guarantee:  lossless (bit-exact reconstruction)\n")
		case ci.ErrorBounded:
			fmt.Fprintf(out, "error guarantee:  %s <= %g\n", ci.BoundName, res.ErrorBound)
		}
	}
	switch {
	case outPath == "-":
		if _, err := writeRawTo(stdout, res.Data, res.Data64); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to <stdout>\n", elemSize*values)
	case outPath != "":
		var werr error
		if res.Data64 != nil {
			werr = dataset.WriteRaw64(outPath, res.Data64)
		} else {
			werr = dataset.WriteRaw(outPath, res.Data)
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", elemSize*values, outPath)
	}
	if verify {
		return runVerify(res, ref, out)
	}
	return nil
}

// runVerify recomputes the archive's recorded objective and fails (non-zero
// exit through main) if the re-measured value misses the stored band. An
// archive without an objective extension promised only its ratio, which is
// re-derived from the payload and field sizes.
func runVerify(res *fraz.DecompressResult, ref refLoader, out io.Writer) error {
	values, elemSize := decodedValues(res)
	if res.Objective == nil {
		// Pre-extension (or plain fixed-ratio) archive: the promise is the
		// recorded ratio; recompute it from the actual sizes.
		actual := float64(elemSize*values) / float64(res.CompressedBytes)
		fmt.Fprintf(out, "verify:           ratio %.4f recorded, %.4f recomputed from sizes\n", res.Ratio, actual)
		if res.Ratio <= 0 || actual/res.Ratio < 0.99 || actual/res.Ratio > 1.01 {
			return fmt.Errorf("verify failed: recorded ratio %.4f, recomputed %.4f", res.Ratio, actual)
		}
		fmt.Fprintf(out, "verify:           OK\n")
		return nil
	}
	rec := *res.Objective
	obj, err := fraz.ObjectiveByName(rec.Name, rec.Target)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if !ref.provided() {
		return fmt.Errorf("verify: re-measuring %s needs the original field; pass -in or -dataset/-field alongside -verify", rec.Name)
	}
	orig, err := ref.load(res.Data64 != nil)
	if err != nil {
		return fmt.Errorf("verify: loading reference: %w", err)
	}
	if !orig.shape.Equal(grid.Dims(res.Shape)) {
		return fmt.Errorf("verify: reference %s has shape %s, archive holds %s", orig.label, orig.shape, grid.Dims(res.Shape))
	}
	var measured float64
	if res.Data64 != nil {
		measured, err = obj.Measure64(orig.f64, res.Data64, res.Shape, res.CompressedBytes)
	} else {
		measured, err = obj.Measure(orig.f32, res.Data, res.Shape, res.CompressedBytes)
	}
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Fprintf(out, "verify:           %s measured %.6g against %s (band %g ± %g)\n",
		rec.Name, measured, orig.label, rec.Target, rec.Tolerance)
	if !rec.InBand(measured) {
		return fmt.Errorf("verify failed: %s %.6g outside the promised band %g ± %g",
			rec.Name, measured, rec.Target, rec.Tolerance)
	}
	fmt.Fprintf(out, "verify:           OK\n")
	return nil
}

// decodedValues reports the value count and element size of a decompressed
// archive, whichever width it holds.
func decodedValues(res *fraz.DecompressResult) (values, elemSize int) {
	if res.Data64 != nil {
		return len(res.Data64), 8
	}
	return len(res.Data), 4
}

// loadField loads the input field at the requested width: raw files are
// parsed with the matching element size, synthetic datasets generate
// natively at either precision.
func loadField(inPath, dims, dsName, fieldName string, timeStep int, scaleName string, wide bool) (inputField, error) {
	switch {
	case inPath == "-":
		return stdinField(dims, wide)
	case inPath != "":
		shape, err := parseDims(dims)
		if err != nil {
			return inputField{}, err
		}
		f := inputField{shape: shape, label: inPath}
		if wide {
			f.f64, err = dataset.ReadRaw64(inPath, shape)
		} else {
			f.f32, err = dataset.ReadRaw(inPath, shape)
		}
		if err != nil {
			return inputField{}, err
		}
		return f, nil
	case dsName != "":
		if fieldName == "" {
			return inputField{}, fmt.Errorf("-field is required with -dataset")
		}
		scale, err := parseScale(scaleName)
		if err != nil {
			return inputField{}, err
		}
		d, err := dataset.New(dsName, scale)
		if err != nil {
			return inputField{}, err
		}
		f := inputField{label: fmt.Sprintf("%s/%s t=%d", dsName, fieldName, timeStep)}
		if wide {
			f.f64, f.shape, err = d.Generate64(fieldName, timeStep)
		} else {
			f.f32, f.shape, err = d.Generate(fieldName, timeStep)
		}
		if err != nil {
			return inputField{}, err
		}
		return f, nil
	default:
		return inputField{}, fmt.Errorf("either -in or -dataset must be provided")
	}
}

func parseDims(s string) (grid.Dims, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required with -in")
	}
	parts := strings.Split(s, "x")
	extents := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q: %w", p, err)
		}
		extents = append(extents, v)
	}
	return grid.NewDims(extents...)
}

func parseScale(s string) (dataset.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return dataset.ScaleTiny, nil
	case "small", "":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want tiny, small, or medium)", s)
	}
}
