package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fraz"
	"fraz/internal/dataset"
	"fraz/internal/grid"
)

// This file is the CLI's multi-field mode: -fields compresses several named
// fields into one .frazd dataset archive (racing codecs per field unless a
// -compressor is named), and -decompress on a dataset archive lists or
// extracts individual fields.

// namedField pairs a field name with its loaded data.
type namedField struct {
	name  string
	field inputField
}

// parseFieldsSpec resolves the -fields flag. Two forms:
//
//	-fields T=temp.f32,P=pres.f32 -dims 64x64     raw files, shared shape
//	-dataset Hurricane -fields CLOUDf,PRECIPf      synthetic dataset fields
//
// Field order follows the spec, so reports are stable.
func parseFieldsSpec(spec, dims, dsName string, timeStep int, scaleName string, wide bool) ([]namedField, error) {
	parts := strings.Split(spec, ",")
	var out []namedField
	seen := map[string]bool{}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, path, hasPath := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-fields entry %q has an empty name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("-fields names %q twice", name)
		}
		seen[name] = true
		switch {
		case hasPath:
			if dsName != "" {
				return nil, fmt.Errorf("-fields with name=path entries reads raw files; drop -dataset (or list bare field names to use it)")
			}
			f, err := loadField(strings.TrimSpace(path), dims, "", "", 0, "", wide)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", name, err)
			}
			out = append(out, namedField{name: name, field: f})
		case dsName != "":
			f, err := loadField("", "", dsName, name, timeStep, scaleName, wide)
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", name, err)
			}
			out = append(out, namedField{name: name, field: f})
		default:
			return nil, fmt.Errorf("-fields entry %q names no file; use name=path, or add -dataset to generate the field", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fields lists no fields")
	}
	return out, nil
}

// runCompressFields compresses every named field into one dataset archive at
// -out, tuning each to the shared objective. With the auto policy each field
// is sealed with the winner of its own codec race.
func runCompressFields(fields []namedField, codec string, opts []fraz.Option, outPath string, out io.Writer) error {
	if outPath == "" || outPath == "-" {
		return fmt.Errorf("-fields writes a dataset archive and needs -out <file> (stdout is not seekable enough to promise atomic publication)")
	}
	tmp, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".tmp-*")
	if err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	ds, err := fraz.NewDataset(tmp, append([]fraz.Option{fraz.Codec(codec)}, opts...)...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dataset:          %d fields -> %s (codec policy %s)\n", len(fields), outPath, codec)
	var rawBytes, packedBytes int64
	winners := map[string]int{}
	ctx := context.Background()
	for _, nf := range fields {
		var res *fraz.FieldResult
		var err error
		if nf.field.f64 != nil {
			res, err = ds.AppendStep64(ctx, nf.name, 0, nf.field.f64, []int(nf.field.shape))
		} else {
			res, err = ds.AppendStep(ctx, nf.name, 0, nf.field.f32, []int(nf.field.shape))
		}
		var infeasible *fraz.InfeasibleError
		if errors.As(err, &infeasible) {
			fmt.Fprintf(out, "field %-12s infeasible: closest ratio %.2f at bound %g\n", nf.name+":", infeasible.ClosestRatio, infeasible.ErrorBound)
			printInfeasibleNote(out)
			return err
		}
		if err != nil {
			return fmt.Errorf("field %s: %w", nf.name, err)
		}
		rawBytes += int64(nf.field.values() * nf.field.elemSize())
		packedBytes += res.BytesWritten
		winners[res.Codec]++
		line := fmt.Sprintf("field %-12s codec=%s bound=%g ratio=%.2f (%d bytes)", nf.name+":", res.Codec, res.ErrorBound, res.Ratio, res.BytesWritten)
		if res.Selection != nil {
			line += fmt.Sprintf(", raced %d codecs", len(res.Selection.Raced()))
		}
		if res.Objective != "ratio" && res.Objective != "" {
			line += fmt.Sprintf(", %s %.4g", res.Objective, res.AchievedValue)
		}
		fmt.Fprintln(out, line)
	}
	if err := ds.Close(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	if err := os.Rename(tmp.Name(), outPath); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return err
	}
	tmp = nil

	var names []string
	for n := range winners {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s x%d", n, winners[n]))
	}
	fmt.Fprintf(out, "codecs selected:  %s\n", strings.Join(parts, ", "))
	fmt.Fprintf(out, "aggregate ratio:  %.2f (%d raw bytes -> %d archive bytes)\n",
		float64(rawBytes)/float64(packedBytes), rawBytes, archiveSize(outPath))
	return nil
}

func archiveSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// isDatasetArchive sniffs a file's first bytes for the .frazd magic, routing
// -decompress between the single-container and dataset paths.
func isDatasetArchive(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [4]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return head[0] == 'F' && head[1] == 'R' && head[2] == 'Z' && head[3] == 0xA1
}

// runDatasetDecompress lists a dataset archive (no -field) or extracts one
// field@step from it, with the same -out / -verify semantics as the
// single-container path.
func runDatasetDecompress(inPath, fieldName string, step int, outPath string, verify bool, wantDType string, ref refLoader, out io.Writer) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := fraz.OpenDataset(f)
	if err != nil {
		return fmt.Errorf("%s: %w", inPath, err)
	}
	infos := ds.Fields()
	if fieldName == "" {
		fmt.Fprintf(out, "dataset:          %s (.frazd, %d entries)\n", inPath, len(infos))
		for _, fi := range infos {
			fmt.Fprintf(out, "  %s@%d: %d bytes at offset %d\n", fi.Name, fi.Step, fi.Bytes, fi.Offset)
		}
		fmt.Fprintf(out, "pick one with -field <name> (and -step <n> for time series)\n")
		return nil
	}
	res, err := ds.OpenFieldStep(context.Background(), fieldName, step)
	if err != nil {
		return fmt.Errorf("%s: field %s@%d: %w", inPath, fieldName, step, err)
	}
	if wantDType != "" && wantDType != res.DType {
		return fmt.Errorf("%s@%d holds %s data, but -dtype %s was requested; the header is authoritative, so drop the flag", fieldName, step, res.DType, wantDType)
	}
	shape := grid.Dims(res.Shape)
	fmt.Fprintf(out, "field:            %s@%d of %s (codec=%s dtype=%s shape=%s bound=%g ratio=%.2f)\n",
		fieldName, step, inPath, res.Codec, res.DType, shape, res.ErrorBound, res.Ratio)
	if res.Objective != nil {
		fmt.Fprintf(out, "objective:        %s target %g (±%g), achieved %.6g at seal time\n",
			res.Objective.Name, res.Objective.Target, res.Objective.Tolerance, res.Objective.Achieved)
	}
	values, elemSize := decodedValues(res)
	fmt.Fprintf(out, "reconstructed:    %d values (%s %s, %.2f MB)\n", values, shape, res.DType, float64(elemSize*values)/1e6)
	switch {
	case outPath == "-":
		if _, err := writeRawTo(stdout, res.Data, res.Data64); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to <stdout>\n", elemSize*values)
	case outPath != "":
		var werr error
		if res.Data64 != nil {
			werr = dataset.WriteRaw64(outPath, res.Data64)
		} else {
			werr = dataset.WriteRaw(outPath, res.Data)
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", elemSize*values, outPath)
	}
	if verify {
		return runVerify(res, ref, out)
	}
	return nil
}
