package main

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fraz"
	"fraz/internal/container"
	"fraz/internal/dataset"
	"fraz/internal/grid"
)

func TestRunWithSyntheticDataset(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dataset", "NYX", "-field", "temperature", "-scale", "tiny",
		"-ratio", "8", "-regions", "4", "-seed", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"NYX/temperature", "recommended bound", "achieved ratio", "feasible"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWritesCompressedOutput(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "field.fraz")
	var out strings.Builder
	err := run([]string{
		"-dataset", "EXAALT", "-field", "x", "-scale", "tiny",
		"-ratio", "30", "-tolerance", "0.25", "-regions", "8", "-seed", "3", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(outFile)
	if err != nil {
		t.Fatalf("compressed output not written: %v", err)
	}
	if info.Size() == 0 {
		t.Errorf("compressed output is empty")
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("output should mention the written file:\n%s", out.String())
	}
	// The output is a self-describing container, not a bare blob.
	enc, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := container.Decode(enc)
	if err != nil {
		t.Fatalf("written file is not a valid .fraz container: %v", err)
	}
	if cn.Header.Codec != "sz:abs" {
		t.Errorf("container codec = %q, want the tuned default sz:abs", cn.Header.Codec)
	}
}

// TestCompressDecompressRoundTrip drives the full artifact pipeline: tune
// and compress a synthetic field into a .fraz container, decompress it with
// no -dims/-compressor flags (everything comes from the header), and assert
// the reconstruction respects the tuned error bound pointwise.
func TestCompressDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	frazFile := filepath.Join(dir, "tcf.fraz")
	rawFile := filepath.Join(dir, "tcf.f32")

	var out strings.Builder
	err := run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-ratio", "10", "-regions", "4", "-seed", "2", "-out", frazFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	var decOut strings.Builder
	if err := run([]string{"-decompress", frazFile, "-out", rawFile}, &decOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sz:abs", "error guarantee", "wrote"} {
		if !strings.Contains(decOut.String(), want) {
			t.Errorf("decompress output missing %q:\n%s", want, decOut.String())
		}
	}

	// Reconstruct the original field and read back the container header to
	// learn the shape and the tuned bound the CLI settled on.
	enc, err := os.ReadFile(frazFile)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !(cn.Header.Bound > 0) {
		t.Fatalf("container bound = %v", cn.Header.Bound)
	}
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	orig, shape, err := d.Generate("TCf", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !shape.Equal(cn.Header.Shape) {
		t.Fatalf("container shape %v, dataset shape %v", cn.Header.Shape, shape)
	}
	rec, err := dataset.ReadRaw(rawFile, shape)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range orig {
		if diff := math.Abs(float64(rec[i]) - float64(orig[i])); diff > maxErr {
			maxErr = diff
		}
	}
	if maxErr > cn.Header.Bound {
		t.Errorf("pointwise error %g exceeds tuned bound %g", maxErr, cn.Header.Bound)
	}
}

// TestBlockedCompressDecompressRoundTrip drives the blocked pipeline end to
// end: -blocks produces a v2 container, -decompress auto-detects it (no
// extra flags), and the reconstruction respects the tuned bound pointwise.
func TestBlockedCompressDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	frazFile := filepath.Join(dir, "tcf-blocked.fraz")
	rawFile := filepath.Join(dir, "tcf-blocked.f32")

	var out strings.Builder
	err := run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-ratio", "10", "-regions", "4", "-seed", "2", "-blocks", "4", "-out", frazFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "blocks:           4") {
		t.Errorf("compress output should report the block count:\n%s", out.String())
	}

	enc, err := os.ReadFile(frazFile)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Version != container.VersionBlocked || cn.NumBlocks() != 4 {
		t.Fatalf("written container is v%d with %d blocks, want v2 with 4", cn.Header.Version, cn.NumBlocks())
	}

	var decOut strings.Builder
	if err := run([]string{"-decompress", frazFile, "-out", rawFile}, &decOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sz:abs", "blocks:           4", "wrote"} {
		if !strings.Contains(decOut.String(), want) {
			t.Errorf("decompress output missing %q:\n%s", want, decOut.String())
		}
	}

	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	orig, shape, err := d.Generate("TCf", 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dataset.ReadRaw(rawFile, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if diff := math.Abs(float64(rec[i]) - float64(orig[i])); diff > cn.Header.Bound {
			t.Fatalf("value %d error %g exceeds tuned bound %g", i, diff, cn.Header.Bound)
		}
	}
}

// TestInfeasibleTargetExitsNonZero is the regression test for the sentinel
// error path: an unreachable target ratio must surface as an error matching
// fraz.ErrInfeasible (so main exits non-zero), report the closest observed
// configuration, and leave no output file behind.
func TestInfeasibleTargetExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "never.fraz")
	var out strings.Builder
	err := run([]string{
		"-dataset", "NYX", "-field", "temperature", "-scale", "tiny",
		"-ratio", "1000000", "-tolerance", "0.01", "-regions", "2", "-seed", "1", "-out", outFile,
	}, &out)
	if !errors.Is(err, fraz.ErrInfeasible) {
		t.Fatalf("err = %v, want errors.Is(err, fraz.ErrInfeasible)", err)
	}
	text := out.String()
	for _, want := range []string{"feasible:         false", "closest observed", "note:"} {
		if !strings.Contains(text, want) {
			t.Errorf("infeasible output missing %q:\n%s", want, text)
		}
	}
	if _, err := os.Stat(outFile); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("infeasible run should not leave an output file (stat err = %v)", err)
	}

	// A failed run must also leave a pre-existing archive at -out intact:
	// the container streams into a temporary file and only renames over the
	// destination on success.
	if err := os.WriteFile(outFile, []byte("precious archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-dataset", "NYX", "-field", "temperature", "-scale", "tiny",
		"-ratio", "1000000", "-tolerance", "0.01", "-regions", "2", "-seed", "1", "-out", outFile,
	}, &out)
	if !errors.Is(err, fraz.ErrInfeasible) {
		t.Fatalf("err = %v, want errors.Is(err, fraz.ErrInfeasible)", err)
	}
	if got, err := os.ReadFile(outFile); err != nil || string(got) != "precious archive" {
		t.Errorf("failed run clobbered the existing file at -out: %q, %v", got, err)
	}
}

func TestDecompressErrors(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.fraz")
	if err := os.WriteFile(junk, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-decompress", filepath.Join(dir, "missing.fraz")},
		{"-decompress", junk},
		{"-decompress", junk, "-dataset", "NYX"}, // mutually exclusive modes
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunWithRawInputFile(t *testing.T) {
	dir := t.TempDir()
	d, err := dataset.New("CESM", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("CLOUD", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cloud.f32")
	if err := dataset.WriteRaw(path, data); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run([]string{
		"-in", path, "-dims", shape.String(),
		"-compressor", "zfp:accuracy", "-ratio", "6", "-regions", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "zfp:accuracy") {
		t.Errorf("output should mention the compressor:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // neither -in nor -dataset
		{"-dataset", "Hurricane"},           // missing -field
		{"-dataset", "Nope", "-field", "x"}, // unknown dataset
		{"-in", "/does/not/exist", "-dims", "4"},
		{"-in", "x.f32"}, // missing dims
		{"-dataset", "NYX", "-field", "temperature", "-scale", "huge"}, // bad scale
		{"-dataset", "NYX", "-field", "temperature", "-ratio", "0.5"},  // bad ratio
		{"-dataset", "NYX", "-field", "temperature", "-compressor", "nope"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestParseDims(t *testing.T) {
	d, err := parseDims("100x500x500")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(grid.MustDims(100, 500, 500)) {
		t.Errorf("parsed %v", d)
	}
	if _, err := parseDims(""); err == nil {
		t.Errorf("empty dims should fail")
	}
	if _, err := parseDims("10xabc"); err == nil {
		t.Errorf("non-numeric dims should fail")
	}
	if _, err := parseDims("10x0"); err == nil {
		t.Errorf("zero extent should fail")
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]dataset.Scale{
		"tiny": dataset.ScaleTiny, "small": dataset.ScaleSmall, "medium": dataset.ScaleMedium, "": dataset.ScaleSmall,
	} {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("gigantic"); err == nil {
		t.Errorf("unknown scale should fail")
	}
}

func TestPSNRTargetCompressVerifyRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	dir := t.TempDir()
	outFile := filepath.Join(dir, "psnr.fraz")
	var out strings.Builder
	err := run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-psnr", "60", "-regions", "4", "-seed", "1", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"target:           PSNR 60.00 dB", "achieved psnr", "feasible:         true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The archive records the objective.
	enc, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Objective.Name != "psnr" || cn.Header.Objective.Target != 60 {
		t.Fatalf("header objective = %+v", cn.Header.Objective)
	}

	// -verify against the same reference passes...
	out.Reset()
	err = run([]string{
		"-decompress", outFile, "-verify",
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
	}, &out)
	if err != nil {
		t.Fatalf("verify failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify:           OK") {
		t.Errorf("verify output missing OK:\n%s", out.String())
	}
	// ...and against a different field fails.
	out.Reset()
	err = run([]string{
		"-decompress", outFile, "-verify",
		"-dataset", "Hurricane", "-field", "Pf", "-scale", "tiny",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "verify failed") {
		t.Errorf("verify against the wrong field: err = %v", err)
	}
	// Quality verification without a reference is an explicit error.
	out.Reset()
	if err := run([]string{"-decompress", outFile, "-verify"}, &out); err == nil {
		t.Errorf("verify without a reference should fail")
	}
}

func TestSSIMTargetCompress(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	var out strings.Builder
	err := run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-ssim", "0.9", "-regions", "4", "-seed", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "achieved ssim") {
		t.Errorf("output missing achieved ssim:\n%s", out.String())
	}
}

func TestConflictingTargetsRejected(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-psnr", "60", "-ssim", "0.9",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "pick one tuning target") {
		t.Errorf("two quality targets: err = %v", err)
	}
	err = run([]string{
		"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
		"-ratio", "10", "-psnr", "60",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "pick one tuning target") {
		t.Errorf("-ratio plus -psnr: err = %v", err)
	}
}

func TestVerifyRatioArchiveNeedsNoReference(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "ratio.fraz")
	var out strings.Builder
	err := run([]string{
		"-dataset", "NYX", "-field", "temperature", "-scale", "tiny",
		"-ratio", "8", "-regions", "4", "-seed", "2", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-decompress", outFile, "-verify"}, &out); err != nil {
		t.Fatalf("ratio archive verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify:           OK") {
		t.Errorf("ratio verify output:\n%s", out.String())
	}
}

func TestDecompressStillRejectsUnrelatedFlags(t *testing.T) {
	var out strings.Builder
	// Without -verify, input flags stay rejected.
	err := run([]string{"-decompress", "x.fraz", "-dataset", "NYX"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-dataset") {
		t.Errorf("err = %v, want rejection naming -dataset", err)
	}
	// Even with -verify, tuning flags are rejected.
	err = run([]string{"-decompress", "x.fraz", "-verify", "-ratio", "10"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-ratio") {
		t.Errorf("err = %v, want rejection naming -ratio", err)
	}
}

// TestExplicitZeroQualityTargetRejected pins that `-psnr 0` is an invalid
// target, not a silent fall-through to the default ratio.
func TestExplicitZeroQualityTargetRejected(t *testing.T) {
	for _, flag := range []string{"-psnr", "-ssim", "-target-max-error"} {
		var out strings.Builder
		err := run([]string{
			"-dataset", "Hurricane", "-field", "TCf", "-scale", "tiny",
			flag, "0",
		}, &out)
		if err == nil || strings.Contains(out.String(), "target:           ratio") {
			t.Errorf("%s 0: err = %v, output:\n%s", flag, err, out.String())
		}
	}
}
