package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fraz/internal/dataset"
	"fraz/internal/grid"
)

func TestRunWithSyntheticDataset(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dataset", "NYX", "-field", "temperature", "-scale", "tiny",
		"-ratio", "8", "-regions", "4", "-seed", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"NYX/temperature", "recommended bound", "achieved ratio", "feasible"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWritesCompressedOutput(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "field.szc")
	var out strings.Builder
	err := run([]string{
		"-dataset", "EXAALT", "-field", "x", "-scale", "tiny",
		"-ratio", "6", "-regions", "4", "-seed", "3", "-out", outFile,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(outFile)
	if err != nil {
		t.Fatalf("compressed output not written: %v", err)
	}
	if info.Size() == 0 {
		t.Errorf("compressed output is empty")
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("output should mention the written file:\n%s", out.String())
	}
}

func TestRunWithRawInputFile(t *testing.T) {
	dir := t.TempDir()
	d, err := dataset.New("CESM", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("CLOUD", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cloud.f32")
	if err := dataset.WriteRaw(path, data); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run([]string{
		"-in", path, "-dims", shape.String(),
		"-compressor", "zfp:accuracy", "-ratio", "6", "-regions", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "zfp:accuracy") {
		t.Errorf("output should mention the compressor:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // neither -in nor -dataset
		{"-dataset", "Hurricane"},           // missing -field
		{"-dataset", "Nope", "-field", "x"}, // unknown dataset
		{"-in", "/does/not/exist", "-dims", "4"},
		{"-in", "x.f32"}, // missing dims
		{"-dataset", "NYX", "-field", "temperature", "-scale", "huge"}, // bad scale
		{"-dataset", "NYX", "-field", "temperature", "-ratio", "0.5"},  // bad ratio
		{"-dataset", "NYX", "-field", "temperature", "-compressor", "nope"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestParseDims(t *testing.T) {
	d, err := parseDims("100x500x500")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(grid.MustDims(100, 500, 500)) {
		t.Errorf("parsed %v", d)
	}
	if _, err := parseDims(""); err == nil {
		t.Errorf("empty dims should fail")
	}
	if _, err := parseDims("10xabc"); err == nil {
		t.Errorf("non-numeric dims should fail")
	}
	if _, err := parseDims("10x0"); err == nil {
		t.Errorf("zero extent should fail")
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]dataset.Scale{
		"tiny": dataset.ScaleTiny, "small": dataset.ScaleSmall, "medium": dataset.ScaleMedium, "": dataset.ScaleSmall,
	} {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("gigantic"); err == nil {
		t.Errorf("unknown scale should fail")
	}
}
