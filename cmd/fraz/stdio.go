package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// This file makes the CLI pipeline-friendly: `-in -` reads the raw field
// from standard input, `-out -` streams the result (a .fraz container when
// compressing, a raw field when decompressing) to standard output, and
// `-decompress -` reads the archive from standard input. When standard
// output carries the data stream, the human-readable report moves to
// standard error, so
//
//	datagen ... | fraz -in - -dims 100x500x500 -out - | ssh host 'cat > f.fraz'
//	curl -s host/v1/archives/abc | fraz -decompress - -out - > field.f32
//
// compose the way Unix tools should.

// stdin/stdout/stderr are the process streams, indirected so tests can
// substitute buffers.
var (
	stdin  io.Reader = os.Stdin
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// stdinField reads a whole raw little-endian field from standard input at
// the given width.
func stdinField(dims string, wide bool) (inputField, error) {
	shape, err := parseDims(dims)
	if err != nil {
		return inputField{}, err
	}
	elemSize := 4
	if wide {
		elemSize = 8
	}
	want := shape.Len() * elemSize
	raw, err := io.ReadAll(stdin)
	if err != nil {
		return inputField{}, fmt.Errorf("reading stdin: %w", err)
	}
	if len(raw) != want {
		return inputField{}, fmt.Errorf("stdin carried %d bytes; shape %s at %d bytes/value needs exactly %d", len(raw), shape, elemSize, want)
	}
	f := inputField{shape: shape, label: "<stdin>"}
	if wide {
		f.f64 = make([]float64, shape.Len())
		for i := range f.f64 {
			f.f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	} else {
		f.f32 = make([]float32, shape.Len())
		for i := range f.f32 {
			f.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		}
	}
	return f, nil
}

// writeRawTo streams the reconstructed field as raw little-endian bytes —
// the same layout ReadRaw/WriteRaw use for files.
func writeRawTo(w io.Writer, f32 []float32, f64 []float64) (int, error) {
	if f64 != nil {
		buf := make([]byte, len(f64)*8)
		for i, v := range f64 {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return w.Write(buf)
	}
	buf := make([]byte, len(f32)*4)
	for i, v := range f32 {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return w.Write(buf)
}
