package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"fraz"
)

// swapStreams replaces the process stream indirections for one test.
func swapStreams(t *testing.T, in io.Reader, outW, errW io.Writer) {
	t.Helper()
	origIn, origOut, origErr := stdin, stdout, stderr
	stdin, stdout, stderr = in, outW, errW
	t.Cleanup(func() { stdin, stdout, stderr = origIn, origOut, origErr })
}

func rawField32() ([]float32, []byte) {
	const nz, ny, nx = 16, 12, 10
	data := make([]float32, nz*ny*nx)
	for i := range data {
		z := i / (ny * nx)
		y := (i / nx) % ny
		x := i % nx
		data[i] = float32(math.Sin(float64(z)*0.3) * math.Cos(float64(y)*0.2) * math.Sin(float64(x)*0.4+1))
	}
	raw := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return data, raw
}

// TestStdinStdoutRoundTrip drives the full pipeline shape: raw field on
// stdin → `fraz -in - -out -` → archive on stdout → `fraz -decompress - -out -`
// → raw field on stdout again, with every report line on stderr.
func TestStdinStdoutRoundTrip(t *testing.T) {
	orig, raw := rawField32()

	// Compress: stdin carries the field, stdout carries the archive.
	var archive, report bytes.Buffer
	swapStreams(t, bytes.NewReader(raw), &archive, &report)
	err := run([]string{"-in", "-", "-dims", "16x12x10", "-out", "-",
		"-ratio", "10", "-tolerance", "0.25", "-regions", "4", "-seed", "3"}, io.Discard)
	if err != nil {
		t.Fatalf("compress: %v (report: %s)", err, report.String())
	}
	if archive.Len() == 0 || archive.Len() >= len(raw) {
		t.Fatalf("archive is %d bytes (field %d)", archive.Len(), len(raw))
	}
	if !strings.HasPrefix(archive.String(), "FRZ") {
		t.Fatalf("stdout does not start with the container magic: %q", archive.String()[:8])
	}
	rep := report.String()
	if !strings.Contains(rep, "<stdin>") || !strings.Contains(rep, "wrote") {
		t.Fatalf("report did not land on stderr:\n%s", rep)
	}

	// The streamed archive is a genuine container.
	res, err := fraz.DecompressFull(context.Background(), bytes.NewReader(archive.Bytes()))
	if err != nil {
		t.Fatalf("streamed archive does not decode: %v", err)
	}

	// Decompress: stdin carries the archive, stdout carries the raw field.
	var rawOut, report2 bytes.Buffer
	swapStreams(t, bytes.NewReader(archive.Bytes()), &rawOut, &report2)
	err = run([]string{"-decompress", "-", "-out", "-"}, io.Discard)
	if err != nil {
		t.Fatalf("decompress: %v (report: %s)", err, report2.String())
	}
	if rawOut.Len() != len(raw) {
		t.Fatalf("reconstructed %d bytes, want %d", rawOut.Len(), len(raw))
	}
	if !strings.Contains(report2.String(), "<stdin>") {
		t.Fatalf("decompress report did not land on stderr:\n%s", report2.String())
	}

	// Reconstruction respects the tuned bound end to end.
	got := rawOut.Bytes()
	limit := res.ErrorBound * 1.5
	for i, v := range orig {
		r := math.Float32frombits(binary.LittleEndian.Uint32(got[i*4:]))
		if d := math.Abs(float64(v - r)); d > limit {
			t.Fatalf("value %d off by %g, bound %g", i, d, res.ErrorBound)
		}
	}
}

// TestStdinStdoutRoundTrip64 runs the same pipeline at double precision.
func TestStdinStdoutRoundTrip64(t *testing.T) {
	f32, _ := rawField32()
	raw := make([]byte, len(f32)*8)
	for i, v := range f32 {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(float64(v)))
	}

	var archive, report bytes.Buffer
	swapStreams(t, bytes.NewReader(raw), &archive, &report)
	err := run([]string{"-in", "-", "-dims", "16x12x10", "-dtype", "float64", "-out", "-",
		"-ratio", "10", "-tolerance", "0.25", "-regions", "4", "-seed", "3"}, io.Discard)
	if err != nil {
		t.Fatalf("compress: %v (report: %s)", err, report.String())
	}

	var rawOut, report2 bytes.Buffer
	swapStreams(t, bytes.NewReader(archive.Bytes()), &rawOut, &report2)
	if err := run([]string{"-decompress", "-", "-out", "-"}, io.Discard); err != nil {
		t.Fatalf("decompress: %v (report: %s)", err, report2.String())
	}
	if rawOut.Len() != len(raw) {
		t.Fatalf("reconstructed %d bytes, want %d", rawOut.Len(), len(raw))
	}
	if !strings.Contains(report2.String(), "float64") {
		t.Fatalf("report does not name the archived dtype:\n%s", report2.String())
	}
}

func TestStdinFieldSizeMismatch(t *testing.T) {
	swapStreams(t, bytes.NewReader(make([]byte, 100)), io.Discard, io.Discard)
	err := run([]string{"-in", "-", "-dims", "16x12x10"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "stdin carried 100 bytes") {
		t.Fatalf("short stdin: err = %v", err)
	}
}
