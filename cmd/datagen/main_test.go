package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-dataset", "EXAALT", "-scale", "tiny", "-timesteps", "2", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "EXAALT"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 { // 3 fields x 2 time-steps
		t.Errorf("expected 6 files, got %d", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scale", "enormous"}); err == nil {
		t.Errorf("unknown scale should fail")
	}
	if err := run([]string{"-dataset", "Nope", "-out", t.TempDir()}); err == nil {
		t.Errorf("unknown dataset should fail")
	}
}
