// Command datagen writes the synthetic SDRBench stand-in datasets to disk as
// raw little-endian float32 files (one file per field and time-step), the
// same layout the real SDRBench archives use, so the fraz CLI and external
// tools can consume them.
//
// Example:
//
//	datagen -dataset Hurricane -scale small -out ./data -timesteps 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fraz/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name      = fs.String("dataset", "", "dataset to generate (empty = all): "+strings.Join(dataset.Names(), ", "))
		scaleName = fs.String("scale", "tiny", "dataset scale: tiny, small, medium")
		outDir    = fs.String("out", "./data", "output directory")
		steps     = fs.Int("timesteps", 0, "cap on time-steps to write (0 = all)")
		snapshot  = fs.Bool("snapshot", false, "write multi-field snapshots (<out>/<app>/t<step>/<field>.f32 + manifest.txt per step) instead of flat per-field files — the layout `fraz -fields` consumes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale dataset.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = dataset.ScaleTiny
	case "small":
		scale = dataset.ScaleSmall
	case "medium":
		scale = dataset.ScaleMedium
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	names := dataset.Names()
	if *name != "" {
		names = []string{*name}
	}
	total := 0
	for _, n := range names {
		d, err := dataset.New(n, scale)
		if err != nil {
			return err
		}
		if *steps > 0 && *steps < d.TimeSteps {
			d.TimeSteps = *steps
		}
		if *snapshot {
			for t := 0; t < d.TimeSteps; t++ {
				manifest, count, err := dataset.ExportSnapshot(d, *outDir, t)
				if err != nil {
					return err
				}
				fmt.Printf("%s t=%d: wrote %d correlated fields (shape %s), manifest %s\n",
					d.Name, t, count, d.Fields[0].Shape, manifest)
				total += count
			}
			continue
		}
		count, err := dataset.Export(d, *outDir)
		if err != nil {
			return err
		}
		fmt.Printf("%s: wrote %d files (%d fields x %d time-steps, shape %s) under %s\n",
			d.Name, count, len(d.Fields), d.TimeSteps, d.Fields[0].Shape, *outDir)
		total += count
	}
	fmt.Printf("total: %d files\n", total)
	return nil
}
