package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table3", "-scale", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVOutput(t *testing.T) {
	if err := run([]string{"-exp", "fig4", "-scale", "tiny", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Errorf("unknown experiment should fail")
	}
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Errorf("unknown scale should fail")
	}
}
