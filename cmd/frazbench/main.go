// Command frazbench regenerates the paper's evaluation tables and figures on
// the synthetic datasets and prints them as ASCII tables (or CSV).
//
// Examples:
//
//	frazbench                      # run every experiment at the quick scale
//	frazbench -exp fig9 -scale small
//	frazbench -exp fig7 -csv > fig7.csv
//	frazbench -exp cache           # evaluations saved by the shared cache, per field
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fraz/internal/dataset"
	"fraz/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "frazbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("frazbench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
		scaleName = fs.String("scale", "tiny", "dataset scale: tiny, small, medium")
		seed      = fs.Int64("seed", 42, "seed for the tuning searches")
		workers   = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		steps     = fs.Int("timesteps", 12, "cap on time-steps per series (0 = dataset default)")
		full      = fs.Bool("full", false, "run full (untrimmed) parameter sweeps")
		csv       = fs.Bool("csv", false, "emit CSV instead of ASCII tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale dataset.Scale
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = dataset.ScaleTiny
	case "small":
		scale = dataset.ScaleSmall
	case "medium":
		scale = dataset.ScaleMedium
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	cfg := experiments.Config{
		Scale:        scale,
		Seed:         *seed,
		Workers:      *workers,
		MaxTimeSteps: *steps,
		Quick:        !*full,
	}

	names := experiments.Names()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.Run(name, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		for _, tab := range tables {
			if *csv {
				if err := tab.WriteCSV(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			} else {
				if err := tab.WriteASCII(os.Stdout); err != nil {
					return err
				}
			}
		}
		if !*csv {
			fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
