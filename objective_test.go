package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"fraz"
	"fraz/internal/dataset"
)

func tinyField(t testing.TB) ([]float32, []int) {
	t.Helper()
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("TCf", 0)
	if err != nil {
		t.Fatal(err)
	}
	return data, []int(shape)
}

func TestObjectiveConstructorsValidate(t *testing.T) {
	bad := []fraz.Option{
		fraz.TargetPSNR(0),
		fraz.TargetPSNR(math.NaN()),
		fraz.TargetSSIM(0),
		fraz.TargetSSIM(1.5),
		fraz.TargetMaxError(0),
		fraz.TargetMaxError(math.Inf(1)),
		fraz.Target(fraz.Objective{}),
		fraz.Target(fraz.FixedPSNR(60).WithTolerance(-1)),
	}
	for i, opt := range bad {
		if _, err := fraz.New("sz:abs", opt); err == nil {
			t.Errorf("case %d: New accepted an invalid objective option", i)
		}
	}
	good := []fraz.Option{
		fraz.TargetPSNR(60),
		fraz.TargetSSIM(0.9),
		fraz.TargetMaxError(0.05),
		fraz.Target(fraz.FixedMaxError(100).WithTolerance(5)),
	}
	for i, opt := range good {
		if _, err := fraz.New("sz:abs", opt); err != nil {
			t.Errorf("case %d: New rejected a valid objective option: %v", i, err)
		}
	}
}

func TestObjectiveAccessors(t *testing.T) {
	o := fraz.FixedPSNR(60)
	if o.Name() != "psnr" || o.Target() != 60 {
		t.Errorf("accessors: name=%q target=%v", o.Name(), o.Target())
	}
	lo, hi := o.Band()
	if math.Abs(lo-57) > 1e-9 || math.Abs(hi-63) > 1e-9 {
		t.Errorf("default PSNR band = [%v, %v], want [57, 63]", lo, hi)
	}
	lo, hi = fraz.FixedSSIM(0.95).Band()
	if math.Abs(lo-0.93) > 1e-9 || math.Abs(hi-0.97) > 1e-9 {
		t.Errorf("default SSIM band = [%v, %v], want [0.93, 0.97]", lo, hi)
	}
	if _, err := fraz.ObjectiveByName("nope", 1); err == nil {
		t.Errorf("ObjectiveByName accepted an unknown name")
	}
	if o, err := fraz.ObjectiveByName("max-error", 0.5); err != nil || o.Name() != "max-error" {
		t.Errorf("ObjectiveByName(max-error) = %v, %v", o, err)
	}
}

// TestCompressPSNRTargetEndToEnd is the acceptance path: a PSNR-targeted
// client compresses through the public API, the archive records the
// objective, and re-measuring the promise on the decompressed data lands in
// the recorded band.
func TestCompressPSNRTargetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	data, shape := tinyField(t)
	c, err := fraz.New("sz:abs", fraz.TargetPSNR(60), fraz.Regions(4), fraz.Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := c.Compress(context.Background(), &buf, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "psnr" || res.Target != 60 {
		t.Errorf("CompressResult objective = %q target %v", res.Objective, res.Target)
	}
	if res.AchievedValue < 57 || res.AchievedValue > 63 {
		t.Errorf("achieved PSNR %v outside the default band", res.AchievedValue)
	}

	dec, err := fraz.DecompressFull(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Objective == nil {
		t.Fatal("decompressed archive carries no objective record")
	}
	rec := *dec.Objective
	if rec.Name != "psnr" || rec.Target != 60 {
		t.Errorf("recorded objective = %+v", rec)
	}
	if !rec.InBand(rec.Achieved) {
		t.Errorf("recorded achieved %v outside recorded band target %v ± %v", rec.Achieved, rec.Target, rec.Tolerance)
	}
	obj, err := fraz.ObjectiveByName(rec.Name, rec.Target)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := obj.Measure(data, dec.Data, dec.Shape, dec.CompressedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-rec.Achieved) > 1e-6*math.Max(1, math.Abs(rec.Achieved)) {
		t.Errorf("re-measured PSNR %v differs from recorded %v", measured, rec.Achieved)
	}
}

// TestRatioArchivesStayByteCompatible pins that ratio-targeted archives do
// not grow the objective extension: their bytes must be what pre-extension
// builds wrote (the promise already lives in the header's ratio field).
func TestRatioArchivesStayByteCompatible(t *testing.T) {
	data, shape := tinyField(t)
	var buf bytes.Buffer
	res, err := fraz.Compress(context.Background(), &buf, data, shape,
		fraz.Ratio(8), fraz.Seed(1), fraz.Blocks(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "ratio" || res.Target != 8 || res.AchievedValue != res.Ratio {
		t.Errorf("ratio CompressResult objective fields: %+v", res)
	}
	dec, err := fraz.DecompressFull(context.Background(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Objective != nil {
		t.Errorf("ratio archive recorded an objective extension: %+v", dec.Objective)
	}
	// The rank byte (offset 7) must carry no extension flag.
	if b := buf.Bytes()[7]; b&0x80 != 0 {
		t.Errorf("ratio archive rank byte = %#x, extension flag set", b)
	}
}

// TestObjectiveRoundTripProperty is the cross-codec property test: for every
// built-in objective and every registered codec that can express it, a
// feasible tune's achieved value read back from the container header matches
// an independent re-measurement of the decompressed data.
func TestObjectiveRoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes every codec × objective combination")
	}
	data, shape := tinyField(t)
	objectives := []struct {
		name string
		opt  fraz.Option
	}{
		{"psnr", fraz.TargetPSNR(55)},
		{"ssim", fraz.Target(fraz.FixedSSIM(0.9).WithTolerance(0.05))},
		{"max-error", fraz.TargetMaxError(0.02)},
	}
	feasibleCombos := 0
	for _, ci := range fraz.Codecs() {
		if !ci.SupportsRank(len(shape)) {
			continue
		}
		for _, obj := range objectives {
			t.Run(ci.Name+"/"+obj.name, func(t *testing.T) {
				c, err := fraz.New(ci.Name, obj.opt, fraz.Regions(3), fraz.Seed(2), fraz.Workers(2))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				_, err = c.Compress(context.Background(), &buf, data, shape)
				if errors.Is(err, fraz.ErrInfeasible) {
					t.Skipf("%s cannot express %s on this field", ci.Name, obj.name)
				}
				if err != nil {
					// Some codec/objective pairs cannot even search (e.g. a
					// rate-mode codec whose parameter range excludes the
					// field's value range); that is a skip, not a failure.
					t.Skipf("%s/%s: %v", ci.Name, obj.name, err)
				}
				dec, err := fraz.DecompressFull(context.Background(), &buf)
				if err != nil {
					t.Fatal(err)
				}
				if dec.Objective == nil {
					t.Fatal("archive carries no objective record")
				}
				rec := *dec.Objective
				if rec.Name != obj.name {
					t.Fatalf("recorded objective %q, want %q", rec.Name, obj.name)
				}
				o, err := fraz.ObjectiveByName(rec.Name, rec.Target)
				if err != nil {
					t.Fatal(err)
				}
				measured, err := o.Measure(data, dec.Data, dec.Shape, dec.CompressedBytes)
				if err != nil {
					t.Fatal(err)
				}
				tol := 1e-6 * math.Max(1, math.Abs(rec.Achieved))
				if math.Abs(measured-rec.Achieved) > tol {
					t.Errorf("re-measured %s %v differs from recorded %v", rec.Name, measured, rec.Achieved)
				}
				if !rec.InBand(rec.Achieved) {
					t.Errorf("feasible archive's achieved %v outside its recorded band", rec.Achieved)
				}
				feasibleCombos++
			})
		}
	}
	if feasibleCombos < 4 {
		t.Errorf("only %d codec×objective combinations were feasible; expected at least 4", feasibleCombos)
	}
}

// TestQualitySeriesServedFromCache pins the acceptance criterion that
// quality evaluations are served from the shared cache: a TuneSeries over
// identical steps must record cache hits (the prediction probe of step 2+
// re-measures step 1's bound on identical data).
func TestQualitySeriesServedFromCache(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	data, shape := tinyField(t)
	c, err := fraz.New("sz:abs", fraz.TargetPSNR(60), fraz.Regions(4), fraz.Seed(3), fraz.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TuneSeries(context.Background(), fraz.Series{
		Name:  "Hurricane/TCf",
		Steps: 3,
		At: func(int) ([]float32, []int, error) {
			return data, shape, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Errorf("quality TuneSeries recorded no cache hits (evaluations=%d)", res.Evaluations)
	}
	retrains := 0
	for _, st := range res.Steps {
		if st.Objective != "psnr" {
			t.Errorf("step objective = %q", st.Objective)
		}
		if !st.UsedPrediction {
			retrains++
		}
	}
	if retrains != 1 {
		t.Errorf("identical steps should reuse the tuned bound: %d retrains", retrains)
	}
}
