module fraz

go 1.21
