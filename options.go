package fraz

import (
	"fmt"
	"math"

	"fraz/internal/core"
)

// DefaultCodec is the codec the one-shot helpers use when no Codec option
// is given.
const DefaultCodec = "sz:abs"

// DefaultTolerance is the default fractional acceptance tolerance around
// the target ratio (the paper's ε).
const DefaultTolerance = 0.1

// settings is the resolved option set a Client is built from.
type settings struct {
	codec      string
	objective  core.Objective // zero Name = no tuning target configured
	tolerance  float64
	tolSet     bool
	maxError   float64
	regions    int
	blocks     int
	workers    int
	seed       int64
	fixedBound float64
	reuse      bool
	cache      *EvalCache // nil = private per-client cache
}

func defaultSettings() settings {
	return settings{reuse: true}
}

// Option configures a Client (or a one-shot Compress/Decompress call).
// Options validate eagerly: an out-of-range value fails at New, not at the
// first Compress.
type Option func(*settings) error

// Codec selects the compressor by registry name, e.g. "sz:abs" or
// "zfp:accuracy"; Codecs lists the choices. It overrides the name given to
// New, and is how the one-shot Compress helper picks a codec (default
// DefaultCodec). Decompression ignores it: the codec always comes from the
// stream header.
func Codec(name string) Option {
	return func(s *settings) error {
		if name == "" {
			return fmt.Errorf("fraz: Codec requires a non-empty name")
		}
		s.codec = name
		return nil
	}
}

// Target sets the tuning objective: what quantity Compress and Tune drive
// the codec's parameter toward. Build one with FixedRatio, FixedPSNR,
// FixedSSIM, or FixedMaxError:
//
//	c, err := fraz.New("sz:abs", fraz.Target(fraz.FixedPSNR(60)))
//
// Ratio, TargetPSNR, TargetSSIM, and TargetMaxError are sugar for the four
// built-ins. Options are applied in order, so a later Target (or sugar)
// replaces an earlier one. Required (directly or via the sugar) for
// Compress and Tune unless FixedBound is used.
func Target(obj Objective) Option {
	return func(s *settings) error {
		if obj.err != nil {
			return obj.err
		}
		if obj.obj.Name == "" {
			return fmt.Errorf("fraz: Target requires an objective built by FixedRatio, FixedPSNR, FixedSSIM, or FixedMaxError")
		}
		s.objective = obj.obj
		return nil
	}
}

// Ratio sets the target compression ratio ρt the tuner drives the codec to:
// sugar for Target(FixedRatio(target)). Must be > 1.
func Ratio(target float64) Option {
	return Target(FixedRatio(target))
}

// TargetPSNR tunes to a reconstruction PSNR of db decibels: sugar for
// Target(FixedPSNR(db)).
func TargetPSNR(db float64) Option {
	return Target(FixedPSNR(db))
}

// TargetSSIM tunes to a mid-slice structural similarity of s: sugar for
// Target(FixedSSIM(s)).
func TargetSSIM(s float64) Option {
	return Target(FixedSSIM(s))
}

// TargetMaxError tunes to a measured maximum pointwise error of u: sugar
// for Target(FixedMaxError(u)).
func TargetMaxError(u float64) Option {
	return Target(FixedMaxError(u))
}

// Tolerance sets the acceptance half-width around the objective's target:
// fractional for ratio and PSNR targets (an achieved value in
// [target·(1−ε), target·(1+ε)] is feasible), absolute for SSIM and
// max-error targets (target±ε). Must be in [0, 1); zero selects the
// objective's default. For absolute bands wider than 1, set the tolerance
// on the objective itself with Objective.WithTolerance.
func Tolerance(eps float64) Option {
	return func(s *settings) error {
		if eps < 0 || eps >= 1 || math.IsNaN(eps) {
			return fmt.Errorf("fraz: Tolerance must be in [0,1), got %v", eps)
		}
		s.tolerance = eps
		s.tolSet = eps > 0
		return nil
	}
}

// MaxError sets U, the largest error bound the search may recommend — the
// paper's cap on how much fidelity a fixed-ratio request is allowed to
// spend. Zero (the default) admits bounds up to the data's value range.
func MaxError(u float64) Option {
	return func(s *settings) error {
		if u < 0 || math.IsNaN(u) {
			return fmt.Errorf("fraz: MaxError must be >= 0, got %v", u)
		}
		s.maxError = u
		return nil
	}
}

// Blocks sets the number of slowest-axis blocks Compress splits the field
// into: the bound is tuned once on a sampled block and all blocks compress
// concurrently into a blocked (v2) container. 1 forces a monolithic (v1)
// container; 0 (the default) picks a block count matched to the worker
// count and shape. Quality objectives (TargetPSNR/TargetSSIM/
// TargetMaxError) always seal monolithically regardless of this option:
// their metrics are global statistics of the whole field, and splitting the
// payload would change the reconstruction the recorded promise was
// measured on.
func Blocks(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("fraz: Blocks must be >= 0, got %d", n)
		}
		s.blocks = n
		return nil
	}
}

// Workers bounds the goroutines used for region-parallel tuning and for
// block-parallel compression and decompression. Zero (the default) uses
// GOMAXPROCS.
func Workers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("fraz: Workers must be >= 0, got %d", n)
		}
		s.workers = n
		return nil
	}
}

// Regions sets K, the number of overlapping error-bound regions searched in
// parallel. Zero (the default) uses the tuner's default (12).
func Regions(k int) Option {
	return func(s *settings) error {
		if k < 0 {
			return fmt.Errorf("fraz: Regions must be >= 0, got %d", k)
		}
		s.regions = k
		return nil
	}
}

// Seed fixes the search's random seed, making tuning deterministic for a
// given input and configuration.
func Seed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// FixedBound skips tuning entirely and compresses at the given codec
// parameter — an explicit error bound, or bits-per-value for "zfp:rate".
// It is the escape hatch for codec-native workflows (e.g. a fixed-rate
// baseline) and for re-sealing at a bound found earlier.
func FixedBound(bound float64) Option {
	return func(s *settings) error {
		if !(bound > 0) || math.IsInf(bound, 0) {
			return fmt.Errorf("fraz: FixedBound must be > 0, got %v", bound)
		}
		s.fixedBound = bound
		return nil
	}
}

// SharedCache makes the client record its tuning evaluations in the given
// cache instead of a private one, pooling evaluations with every other
// client sharing it: a request re-tuning a field any sharing client has seen
// — same codec, same data, near-identical bound — is answered from memory
// instead of re-running the compressor. This is the cross-request cache tier
// a long-running service wants; a single pipeline re-tuning its own fields
// is already served by the client's private default. The cache must come
// from NewEvalCache.
func SharedCache(cache *EvalCache) Option {
	return func(s *settings) error {
		if cache == nil || cache.c == nil {
			return fmt.Errorf("fraz: SharedCache requires a cache built by NewEvalCache")
		}
		s.cache = cache
		return nil
	}
}

// ReuseBounds controls whether a Client carries the last feasible error
// bound from one Compress/Tune call into the next as the starting
// prediction (the paper's time-step reuse, Algorithm 3). The prediction is
// only kept when it lands inside the acceptance band on the new data, so
// correctness never depends on it. Enabled by default.
func ReuseBounds(enable bool) Option {
	return func(s *settings) error {
		s.reuse = enable
		return nil
	}
}
