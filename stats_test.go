// Coverage for the observable cache tier: Client.Stats and the SharedCache
// option that pools tuning evaluations across clients.
package fraz_test

import (
	"context"
	"testing"

	"fraz"
)

func TestStatsWithoutTunerIsZero(t *testing.T) {
	c, err := fraz.New("sz:abs") // decompress-only client: no target, no cache
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s != (fraz.CacheStats{}) {
		t.Errorf("decompress-only client reports non-zero cache stats: %+v", s)
	}
}

func TestSharedCacheRejectsNil(t *testing.T) {
	if _, err := fraz.New("sz:abs", fraz.SharedCache(nil)); err == nil {
		t.Fatal("SharedCache(nil) accepted")
	}
}

// TestSharedCachePoolsEvaluationsAcrossClients is the service scenario: two
// independent clients — two requests — tune the same field through one
// shared cache. The second tune must be answered substantially from memory,
// and the shared stats must make that visible.
func TestSharedCachePoolsEvaluationsAcrossClients(t *testing.T) {
	data, shape := testField()
	shared := fraz.NewEvalCache(0)
	opts := []fraz.Option{
		fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3),
		fraz.SharedCache(shared),
	}

	a, err := fraz.New("sz:abs", opts...)
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := shared.Stats()
	if afterFirst.Evaluations == 0 {
		t.Fatal("first tune recorded no evaluations in the shared cache")
	}
	if afterFirst.Evaluations != afterFirst.Misses {
		t.Errorf("Evaluations (%d) must equal Misses (%d)", afterFirst.Evaluations, afterFirst.Misses)
	}

	b, err := fraz.New("sz:abs", opts...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := shared.Stats()

	if second.CacheHits == 0 {
		t.Errorf("second client re-tuning the same field hit the shared cache 0 times (first run: %d evaluations)", first.Evaluations)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Errorf("shared cache hits did not grow across clients: %d -> %d", afterFirst.Hits, afterSecond.Hits)
	}
	if gotB, want := b.Stats(), afterSecond; gotB != want {
		t.Errorf("Client.Stats() (%+v) disagrees with the shared cache it records into (%+v)", gotB, want)
	}
	// The deterministic same-seed search revisits the same bounds, so the
	// second tune should run strictly fewer fresh compressions than the
	// first.
	freshSecond := afterSecond.Misses - afterFirst.Misses
	if freshSecond >= afterFirst.Misses {
		t.Errorf("second tune ran %d fresh evaluations, not fewer than the first's %d", freshSecond, afterFirst.Misses)
	}
	if afterSecond.Entries == 0 {
		t.Error("shared cache reports zero resident entries after two tunes")
	}
	if hr := afterSecond.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate %v outside (0,1)", hr)
	}
}
