package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fraz"
	"fraz/internal/frsz"
)

// TestFRSZDirectExactRatio is the zero-evaluation property test: a
// FixedRatio objective paired with the fixed-rate codec must be satisfied
// by arithmetic alone — no tuning evaluations — and must land the target
// ratio exactly up to container overhead, across random shapes, both
// dtypes, and both container versions.
func TestFRSZDirectExactRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	containers := []struct {
		name   string
		blocks int
	}{
		{"v1-monolithic", 1},
		{"v2-blocked", 4},
	}
	for trial := 0; trial < 6; trial++ {
		rank := 1 + rng.Intn(3)
		shape := make([]int, rank)
		n := 1
		for i := range shape {
			shape[i] = 6 + rng.Intn(18)
			n *= shape[i]
		}
		shape[0] *= 1 + 4096/n // keep overhead a rounding error
		n = 1
		for _, e := range shape {
			n *= e
		}
		f64 := make([]float64, n)
		for i := range f64 {
			f64[i] = math.Sin(float64(i)/7)*3 + rng.Float64()
		}
		f32 := make([]float32, n)
		for i, v := range f64 {
			f32[i] = float32(v)
		}

		for _, cont := range containers {
			for _, target := range []float64{4, 8} {
				c, err := fraz.New("frsz:rate", fraz.Ratio(target), fraz.Tolerance(0.1), fraz.Blocks(cont.blocks))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				res, err := c.Compress(context.Background(), &buf, f32, shape)
				if err != nil {
					t.Fatalf("trial %d %s target %g float32: %v", trial, cont.name, target, err)
				}
				checkDirectResult(t, res, target, 32)

				out, err := c.DecompressFull(context.Background(), &buf)
				if err != nil {
					t.Fatalf("trial %d %s: decompress: %v", trial, cont.name, err)
				}
				if len(out.Data) != n {
					t.Fatalf("trial %d %s: decoded %d elements, want %d", trial, cont.name, len(out.Data), n)
				}
				if cont.blocks == 1 {
					// Monolithic payload must equal the codec's closed-form
					// promise bit for bit — that is what "fixed rate" means.
					bits := int(res.ErrorBound)
					want := frsz.CompressedSize(n, rank, bits, 0)
					payload := int(math.Round(float64(4*n) / res.Ratio))
					if payload != want {
						t.Errorf("trial %d: payload %d bytes, CompressedSize promises %d (bits=%d)", trial, payload, want, bits)
					}
				}

				// float64 through the same container.
				buf.Reset()
				res64, err := c.Compress64(context.Background(), &buf, f64, shape)
				if err != nil {
					t.Fatalf("trial %d %s target %g float64: %v", trial, cont.name, target, err)
				}
				checkDirectResult(t, res64, target, 64)
			}
		}
	}
}

func checkDirectResult(t *testing.T, res *fraz.CompressResult, target float64, maxBits float64) {
	t.Helper()
	if res.Evaluations != 0 {
		t.Errorf("direct seal ran %d evaluations, want 0", res.Evaluations)
	}
	if !res.Direct {
		t.Error("CompressResult.Direct = false for a fixed-rate ratio seal")
	}
	if res.ErrorBound < 1 || res.ErrorBound > maxBits || res.ErrorBound != math.Trunc(res.ErrorBound) {
		t.Errorf("ErrorBound %v is not a whole bit count in [1, %v]", res.ErrorBound, maxBits)
	}
	if d := math.Abs(res.Ratio-target) / target; d > 0.1 {
		t.Errorf("achieved ratio %.3f misses target %g by %.1f%%", res.Ratio, target, 100*d)
	}
	if res.AchievedValue != res.Ratio {
		t.Errorf("AchievedValue %v != Ratio %v for the ratio objective", res.AchievedValue, res.Ratio)
	}
}

// TestFRSZDirectTune pins the fast path on the Tune entry point and its
// reported TuneResult.
func TestFRSZDirectTune(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("frsz:rate", fraz.Ratio(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 0 || !res.Direct {
		t.Errorf("Tune: Evaluations=%d Direct=%v, want 0/true", res.Evaluations, res.Direct)
	}
	if res.ErrorBound != 4 {
		t.Errorf("ratio 8 on float32 inverted to %v bits, want 4", res.ErrorBound)
	}
}

// TestFRSZQualityStillSearches pins the other half of the contract: quality
// objectives ignore the fast path and run the evaluation loop even on a
// fixed-rate codec.
func TestFRSZQualityStillSearches(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("frsz:rate", fraz.TargetPSNR(60))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := c.Compress(context.Background(), &buf, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Direct {
		t.Error("quality objective reported Direct = true")
	}
	if res.Evaluations == 0 {
		t.Error("quality objective tuned with zero evaluations")
	}
	out, err := c.DecompressFull(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := measurePSNR(data, out.Data); math.Abs(psnr-60) > 3+1e-9 {
		t.Errorf("measured PSNR %.2f outside 60±3 band", psnr)
	}
}

// TestFRSZDirectInfeasible: when no whole-bit rate lands inside a very
// tight band, the fast path must decline and the fallback search must
// report infeasibility the normal way.
func TestFRSZDirectInfeasible(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("frsz:rate", fraz.Ratio(7.51), fraz.Tolerance(0.001))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Compress(context.Background(), &bytes.Buffer{}, data, shape)
	if !errors.Is(err, fraz.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
