package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fraz"
)

func TestDatasetRoundTrip(t *testing.T) {
	ctx := context.Background()
	smooth, shape := testField()
	noisy, _ := noisyField()

	var buf bytes.Buffer
	ds, err := fraz.NewDataset(&buf, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	smoothRes, err := ds.AddField(ctx, "CLOUD", smooth, shape)
	if err != nil {
		t.Fatal(err)
	}
	if smoothRes.Selection == nil {
		t.Error("dataset built without a Codec option did not race codecs")
	}
	if _, err := ds.AddField(ctx, "NOISE", noisy, shape); err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Fields()); got != 2 {
		t.Fatalf("write-mode Fields() lists %d entries, want 2", got)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := fraz.OpenDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	names := rd.FieldNames()
	if len(names) != 2 || names[0] != "CLOUD" || names[1] != "NOISE" {
		t.Fatalf("FieldNames() = %v", names)
	}
	for name, orig := range map[string][]float32{"CLOUD": smooth, "NOISE": noisy} {
		out, err := rd.OpenField(ctx, name)
		if err != nil {
			t.Fatalf("OpenField(%s): %v", name, err)
		}
		if diff := maxAbsDiff(orig, out.Data); diff > 1e-2+1e-3 {
			t.Errorf("%s: max abs error %g exceeds the 1e-2 target band", name, diff)
		}
		if out.Codec == "" || out.Codec == fraz.CodecAuto {
			t.Errorf("%s: container header names codec %q", name, out.Codec)
		}
	}
}

func TestDatasetFixedCodecOption(t *testing.T) {
	data, shape := testField()
	var buf bytes.Buffer
	ds, err := fraz.NewDataset(&buf, fraz.Codec("zfp:accuracy"), fraz.Ratio(6), fraz.Tolerance(0.5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.AddField(context.Background(), "U", data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selection != nil {
		t.Error("fixed-codec dataset reported a codec race")
	}
	if res.CompressResult.Codec != "zfp:accuracy" {
		t.Errorf("sealed with %q, want zfp:accuracy", res.CompressResult.Codec)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDatasetAppendPreservesPayloadBytes is the public-API form of the
// append pin: adding a time step rewrites only the trailing directory —
// every previously written payload byte, offset, and CRC is untouched.
func TestDatasetAppendPreservesPayloadBytes(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "steps.frazd")
	data, shape := testField()

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fraz.NewDataset(f, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AppendStep(ctx, "CLOUD", 0, data, shape); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rd0, err := fraz.OpenDataset(bytes.NewReader(before))
	if err != nil {
		t.Fatal(err)
	}
	prior := rd0.Fields()

	rw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds, err = fraz.AppendDataset(rw, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	step1 := make([]float32, len(data))
	for i, v := range data {
		step1[i] = v * 1.05
	}
	if _, err := ds.AppendStep(ctx, "CLOUD", 1, step1, shape); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rd1, err := fraz.OpenDataset(bytes.NewReader(after))
	if err != nil {
		t.Fatal(err)
	}
	if steps := rd1.Steps("CLOUD"); len(steps) != 2 || steps[0] != 0 || steps[1] != 1 {
		t.Fatalf("Steps(CLOUD) = %v, want [0 1]", steps)
	}
	for _, p := range prior {
		found := false
		for _, e := range rd1.Fields() {
			if e.Name == p.Name && e.Step == p.Step {
				found = true
				if e.Offset != p.Offset || e.Bytes != p.Bytes || e.CRC != p.CRC {
					t.Errorf("entry %s@%d moved: %+v -> %+v", p.Name, p.Step, p, e)
				}
				if !bytes.Equal(before[p.Offset:p.Offset+p.Bytes], after[p.Offset:p.Offset+p.Bytes]) {
					t.Errorf("payload bytes of %s@%d changed across append", p.Name, p.Step)
				}
			}
		}
		if !found {
			t.Errorf("entry %s@%d lost across append", p.Name, p.Step)
		}
	}
	out, err := rd1.OpenFieldStep(ctx, "CLOUD", 1)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(step1, out.Data); diff > 1e-2+1e-3 {
		t.Errorf("appended step max abs error %g exceeds the target band", diff)
	}
}

func TestDatasetModeAndDuplicateErrors(t *testing.T) {
	ctx := context.Background()
	data, shape := testField()

	var buf bytes.Buffer
	ds, err := fraz.NewDataset(&buf, fraz.TargetMaxError(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddField(ctx, "T", data, shape); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddField(ctx, "T", data, shape); !errors.Is(err, fraz.ErrDuplicateField) {
		t.Errorf("duplicate AddField error = %v, want ErrDuplicateField", err)
	}
	if _, err := ds.OpenField(ctx, "T"); err == nil {
		t.Error("OpenField on a write-mode dataset succeeded")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AddField(ctx, "late", data, shape); err == nil {
		t.Error("AddField after Close succeeded")
	}

	rd, err := fraz.OpenDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.OpenField(ctx, "missing"); !errors.Is(err, fraz.ErrFieldNotFound) {
		t.Errorf("missing field error = %v, want ErrFieldNotFound", err)
	}
	if _, err := rd.AddField(ctx, "T", data, shape); err == nil {
		t.Error("AddField on a read-mode dataset succeeded")
	}

	if _, err := fraz.OpenDataset(bytes.NewReader([]byte("not an archive"))); !errors.Is(err, fraz.ErrCorrupt) {
		t.Errorf("OpenDataset on junk = %v, want ErrCorrupt", err)
	}
}
