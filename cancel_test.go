// Context-cancellation contract of the public API: a caller that abandons a
// request — a server timing out a tune, a pipeline shutting down — must get
// ctx.Err() back promptly instead of paying for the rest of the search, and
// the abort must not corrupt shared state (the pooled-buffer side of this is
// pinned by pointer identity in internal/pressio's blocked_cancel_test.go).
package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"fraz"
)

// TestCompressPreCancelledContext: a context cancelled before the call must
// surface as ctx.Err() without writing a byte of output.
func TestCompressPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err = c.Compress(ctx, &out, data, shape)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Compress with cancelled context: got %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Errorf("Compress wrote %d bytes despite cancellation", out.Len())
	}
}

// TestCompressCancelledMidTune cancels while the search is running and
// requires Compress to return the context error promptly — well before a
// full tune of the field would complete.
func TestCompressCancelledMidTune(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3), fraz.ReuseBounds(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Compress(ctx, io.Discard, data, shape)
	elapsed := time.Since(start)
	if err == nil {
		// The race is legal: a 2ms head start can be enough to finish the
		// whole tune on a fast machine. Only a *failed* call must carry the
		// context error.
		t.Skip("tune completed before the cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Compress cancelled mid-tune: got %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled Compress took %v to return", elapsed)
	}
}

// TestTunePreCancelledContext mirrors the Compress contract for the
// search-only entry point.
func TestTunePreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tune(ctx, data, shape); !errors.Is(err, context.Canceled) {
		t.Fatalf("Tune with cancelled context: got %v, want context.Canceled", err)
	}
}

// TestDecompressPreCancelledContext covers both container versions: the
// monolithic (v1) and blocked (v2) decode paths each check the context
// before any reconstruction work.
func TestDecompressPreCancelledContext(t *testing.T) {
	data, shape := testField()
	for _, blocks := range []int{1, 4} {
		var arc bytes.Buffer
		_, err := fraz.Compress(context.Background(), &arc, data, shape,
			fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3), fraz.Blocks(blocks))
		if err != nil {
			t.Fatalf("blocks=%d: seal: %v", blocks, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := fraz.Decompress(ctx, bytes.NewReader(arc.Bytes())); !errors.Is(err, context.Canceled) {
			t.Errorf("blocks=%d: Decompress with cancelled context: got %v, want context.Canceled", blocks, err)
		}
	}
}

// TestCompressDeadlineExceeded: a deadline that expires mid-call must
// surface as context.DeadlineExceeded, the error a serving layer maps to
// its timeout status.
func TestCompressDeadlineExceeded(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // the deadline is already past when Compress starts
	if _, err := c.Compress(ctx, io.Discard, data, shape); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Compress past deadline: got %v, want context.DeadlineExceeded", err)
	}
}
