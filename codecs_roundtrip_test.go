package fraz_test

import (
	"math"
	"testing"

	"fraz"
	"fraz/internal/grid"
	"fraz/internal/pressio"
)

// testBound picks a tunable-parameter value appropriate to each codec's
// bound semantics, keyed by the descriptor the test is validating.
func testBound(info fraz.CodecInfo) float64 {
	switch info.Name {
	case "zfp:rate", "frsz:rate":
		return 16 // bits per value
	case "zfp:precision":
		return 24 // bit planes per block
	case "sz:rel":
		return 1e-3 // fraction of the value range
	case "mgard:l2":
		return 1e-4 // mean-squared-error budget
	default:
		return 1e-3 // absolute pointwise bound
	}
}

func smoothField(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/9)*40 + math.Cos(float64(i)/23)*15
	}
	return data
}

// TestCodecsDescriptors validates every published capability descriptor:
// the registry agrees with LookupCodec, the rank window is sane, and — per
// dtype — the codec actually round-trips and honors the claim its
// descriptor makes (lossless reconstruction, pointwise bound, relative
// bound, or MSE budget).
func TestCodecsDescriptors(t *testing.T) {
	infos := fraz.Codecs()
	if len(infos) == 0 {
		t.Fatal("no codecs registered")
	}
	seen := map[string]bool{}
	for _, info := range infos {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			if info.Name == "" || info.BoundName == "" {
				t.Fatalf("descriptor with empty identity: %+v", info)
			}
			if seen[info.Name] {
				t.Fatalf("codec %q listed twice", info.Name)
			}
			seen[info.Name] = true

			got, ok := fraz.LookupCodec(info.Name)
			if !ok || got != info {
				t.Fatalf("LookupCodec(%q) = %+v, %v; want the listed descriptor", info.Name, got, ok)
			}
			if info.MinRank < 1 || info.MaxRank > 4 || info.MinRank > info.MaxRank {
				t.Fatalf("rank window [%d, %d] out of bounds", info.MinRank, info.MaxRank)
			}
			for rank := 0; rank <= 5; rank++ {
				want := rank >= info.MinRank && rank <= info.MaxRank
				if info.SupportsRank(rank) != want {
					t.Errorf("SupportsRank(%d) = %v, want %v", rank, !want, want)
				}
			}

			// Rank 2 sits inside every registered codec's window; fail
			// loudly if a future codec narrows past it rather than
			// silently skipping the round-trip.
			if !info.SupportsRank(2) {
				t.Fatalf("codec window [%d, %d] excludes rank 2; extend this test's shape selection", info.MinRank, info.MaxRank)
			}
			shape := grid.MustDims(24, 16)
			field := smoothField(24 * 16)

			t.Run("float32", func(t *testing.T) {
				data := make([]float32, len(field))
				for i, v := range field {
					data[i] = float32(v)
				}
				codecRoundTrip(t, info, data, shape)
			})
			t.Run("float64", func(t *testing.T) {
				codecRoundTrip(t, info, field, shape)
			})
		})
	}
}

func codecRoundTrip[T grid.Float](t *testing.T, info fraz.CodecInfo, data []T, shape grid.Dims) {
	t.Helper()
	comp, err := pressio.New(info.Name)
	if err != nil {
		t.Fatalf("pressio.New(%q): %v", info.Name, err)
	}
	buf, err := pressio.NewBufferOf(data, shape)
	if err != nil {
		t.Fatalf("building buffer: %v", err)
	}
	bound := testBound(info)
	stream, err := comp.Compress(buf, bound)
	if err != nil {
		t.Fatalf("compress at %s=%g: %v", info.BoundName, bound, err)
	}
	dec, err := comp.Decompress(stream, shape, buf.DType())
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if dec.Len() != buf.Len() || dec.DType() != buf.DType() {
		t.Fatalf("reconstruction shape/dtype mismatch: %d elements dtype %v, want %d dtype %v",
			dec.Len(), dec.DType(), buf.Len(), buf.DType())
	}

	orig, recon := bufFloat64(buf), bufFloat64(dec)
	maxErr, sumSq, lo, hi := 0.0, 0.0, math.Inf(1), math.Inf(-1)
	for i := range orig {
		d := math.Abs(orig[i] - recon[i])
		if d > maxErr {
			maxErr = d
		}
		sumSq += d * d
		lo = math.Min(lo, orig[i])
		hi = math.Max(hi, orig[i])
	}

	// float32 data carries narrowing rounding on top of whatever the codec
	// guarantees in its own arithmetic; allow a ULP-scale slack there.
	slack := 0.0
	var zero T
	if _, is32 := any(zero).(float32); is32 {
		slack = math.Max(math.Abs(lo), math.Abs(hi)) * 1e-6
	}

	switch {
	case info.Lossless:
		if maxErr != 0 {
			t.Errorf("lossless codec reconstructed with max error %g", maxErr)
		}
	case !info.ErrorBounded:
		// Rate/precision modes promise only a round-trip, verified above.
	case info.Name == "sz:rel":
		if limit := bound*(hi-lo) + slack; maxErr > limit {
			t.Errorf("range-relative bound violated: max error %g > %g", maxErr, limit)
		}
	case info.Name == "mgard:l2":
		if mse := sumSq / float64(len(orig)); mse > bound+slack*slack {
			t.Errorf("MSE bound violated: %g > %g", mse, bound)
		}
	default:
		if maxErr > bound+slack {
			t.Errorf("%s violated: max error %g > bound %g", info.BoundName, maxErr, bound)
		}
	}
}

func bufFloat64(b pressio.Buffer) []float64 {
	if b.DType() == 0 {
		src := b.Float32()
		out := make([]float64, len(src))
		for i, v := range src {
			out[i] = float64(v)
		}
		return out
	}
	return b.Float64()
}
