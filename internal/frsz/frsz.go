// Package frsz implements a true fixed-rate lossy compressor in the style
// of FRSZ (Underwood's frsz: per-block max-exponent scaling to fixed-point
// integers, then keep exactly N bits per value). Where the error-bounded
// codecs (SZ, SZx, ZFP-accuracy, MGARD) are parameterised by an error bound
// — so reaching a storage target means *searching* the bound space — frsz
// is parameterised by the storage itself: every value costs exactly
// BitsPerValue bits, so the compressed size (and therefore the compression
// ratio) is a closed-form function of the shape and the parameter. Tuning
// to a fixed ratio degenerates from an iterative search into O(1)
// arithmetic, which is what the direct-satisfaction fast path in
// internal/core exploits.
//
// The codec cuts the flat value stream into fixed-size blocks of
// consecutive values. Each block records the binary exponent e of its
// largest magnitude (maxabs = f·2^e with f in [0.5, 1), via math.Frexp);
// every value in the block is scaled by 2^(N−1−e), rounded to the nearest
// integer, clamped into the N-bit two's-complement range
// [−2^(N−1), 2^(N−1)−1], and bit-packed LSB-first through
// internal/bitstream. There is no per-block byte alignment: the whole body
// is one contiguous bitstream of exactly N bits per value, so the rate
// promise is exact, not amortised. Decompression reverses the scaling:
// v̂ = q·2^(e−N+1).
//
// The codec is dtype-generic over float32 and float64 and shape-agnostic
// (no neighbour prediction, so any rank 1..4 compresses identically).
//
// # Stream layout (all integers little-endian)
//
// The stream is self-describing; Decompress needs no side information. The
// element width is part of the magic — FRZ1 marks float32 streams, FRZ2
// float64 — so a stream can never be reinterpreted at the wrong precision:
//
//	offset  size      field
//	0       4         magic "FRZ1" (float32) or "FRZ2" (float64)
//	4       1         rank R (1..4)
//	5       1         bits per value N (1..8·W, W = element width)
//	6       4         block size in elements (uint32, >= 1)
//	10      4×R       shape extents, slowest dimension first (uint32 each)
//
// The body is sized entirely by the header (B = ceil(elements/blockSize)):
//
//	...     2×B       per-block binary exponent e (int16), in block order;
//	                  the sentinel −32768 marks an all-zero block
//	...     ⌈nN/8⌉    one contiguous bitstream: the N-bit two's-complement
//	                  code of every value, LSB-first, block order, no
//	                  per-block alignment; the final byte is zero-padded
//
// # Worst-case error
//
// Within a block of exponent e the quantisation step is Δ = 2^(e−N+1).
// Rounding contributes at most Δ/2; clamping at the top of the code range
// (values within half a step of +2^(N−1)·Δ) contributes at most another
// Δ/2, so the pointwise error is bounded by Δ = 2^(e−N+1). Since
// maxabs ≥ 2^(e−1), the error relative to the block's largest magnitude is
// at most 2^(2−N) — every extra bit per value halves it. The bound is per
// block: a block of small values quantises against its own (small)
// exponent, not the field's. Two documented edges: N large enough that Δ
// falls below the element type's ulp at 2^e makes the representation
// rounding (≤ one ulp) the dominant term, and a reconstruction that would
// overflow the element type (possible only when maxabs is within one
// quantisation step of the type's overflow threshold) clamps to
// ±MaxFloat32/±MaxFloat64.
//
// Unlike the error-bounded codecs, frsz rejects non-finite input: a NaN or
// ±Inf has no exponent to scale against, and silently flushing it to the
// code range would forge data. Callers with non-finite values need an
// error-bounded codec (szx stores such blocks bit-exactly).
package frsz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fraz/internal/grid"
)

// magic32 and magic64 identify frsz streams of float32 and float64 data.
const (
	magic32 = 0x315A5246 // "FRZ1" in little-endian byte order
	magic64 = 0x325A5246 // "FRZ2"
)

// DefaultBlockSize is the number of consecutive values per block. Blocks
// share one exponent, so smaller blocks track local amplitude better (lower
// error) at two bytes of exponent overhead each; 128 matches the SZx-style
// codec and keeps the exponent section below 2% of the stream at N >= 8.
const DefaultBlockSize = 128

// maxBlockSize bounds the block size a stream may declare; combined with
// the element count implied by the shape it keeps hostile headers from
// requesting absurd buffers.
const maxBlockSize = 1 << 24

// maxDecodeElements caps the element count a stream header may declare
// (2^28 ≈ 268M values). A 1-bit-per-value stream expands 32–64x, so without
// a cap a small hostile header could demand an arbitrarily large allocation
// before any payload is validated. Compression of larger fields goes
// through the blocked pipeline, which splits well below this limit.
const maxDecodeElements = 1 << 28

// expZero is the per-block exponent sentinel for an all-zero block. Its
// codes are still present in the bitstream (the rate is fixed) but decode
// to exact zeros regardless of their content. expZeroBits is its
// two's-complement wire form.
const (
	expZero     = math.MinInt16
	expZeroBits = uint16(0x8000)
)

// Valid per-block exponent windows, from math.Frexp over each type's
// finite nonzero range: the smallest denormal yields the lower edge, the
// largest finite value the upper. Exponents outside the window (other than
// the expZero sentinel) cannot have been produced by Compress and mark the
// stream corrupt.
const (
	minExp32 = -148
	maxExp32 = 128
	minExp64 = -1073
	maxExp64 = 1024
)

// ErrInvalidInput is returned when the data or options are malformed,
// including non-finite input values.
var ErrInvalidInput = errors.New("frsz: invalid input")

// ErrCorrupt is returned by Decompress for unparsable streams.
var ErrCorrupt = errors.New("frsz: corrupt stream")

// Options configures compression.
type Options struct {
	// BitsPerValue is the exact number of bits every value costs in the
	// stream body, 1..8·elemSize. It is the codec's only fidelity/size
	// knob: the compressed size is CompressedSize(len, rank, N, blockSize)
	// by construction.
	BitsPerValue int
	// BlockSize is the number of consecutive values per exponent block;
	// 0 selects DefaultBlockSize.
	BlockSize int
}

func (o Options) withDefaults(elemSize int) (Options, error) {
	if o.BitsPerValue < 1 || o.BitsPerValue > 8*elemSize {
		return o, fmt.Errorf("%w: bits per value %d (want 1..%d for %d-byte elements)", ErrInvalidInput, o.BitsPerValue, 8*elemSize, elemSize)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize < 1 || o.BlockSize > maxBlockSize {
		return o, fmt.Errorf("%w: block size %d (want 1..%d)", ErrInvalidInput, o.BlockSize, maxBlockSize)
	}
	return o, nil
}

// magicFor returns the stream magic for element type T.
func magicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return magic32
	}
	return magic64
}

// MaxBits reports the largest valid BitsPerValue for an element width in
// bytes: the full IEEE width, at which the codec stores one fixed-point
// word per value and the quantisation step falls below the type's ulp.
func MaxBits(elemSize int) int { return 8 * elemSize }

// CompressedSize returns the exact stream size in bytes that Compress
// produces for the given element count, rank, bits per value, and block
// size (0 selects DefaultBlockSize). It is pure arithmetic — header, one
// int16 exponent per block, and ⌈elements·N/8⌉ body bytes — which is what
// lets a fixed-ratio target be inverted into a bits-per-value setting
// without running the codec.
func CompressedSize(elements, rank, bitsPerValue, blockSize int) int {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	nBlocks := (elements + blockSize - 1) / blockSize
	return fixedHeaderLen + 4*rank + 2*nBlocks + (elements*bitsPerValue+7)/8
}

// Compress compresses data of the given shape at exactly
// opts.BitsPerValue bits per value and returns the self-describing stream.
// Non-finite input values are rejected with ErrInvalidInput.
func Compress[T grid.Float](data []T, shape grid.Dims, opts Options) ([]byte, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if len(data) != shape.Len() {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v", ErrInvalidInput, len(data), shape)
	}
	if len(data) > maxDecodeElements {
		return nil, fmt.Errorf("%w: %d elements exceeds the %d-element stream limit (use the blocked pipeline)", ErrInvalidInput, len(data), maxDecodeElements)
	}
	o, err := opts.withDefaults(grid.ElemSize[T]())
	if err != nil {
		return nil, err
	}
	if grid.ElemSize[T]() == 4 {
		return compress32(any(data).([]float32), shape, o)
	}
	return compress64(any(data).([]float64), shape, o)
}

// Decompress reconstructs the data from a stream produced by Compress. A
// non-nil shape must match the shape recorded in the header. Malformed
// input of any kind returns an error wrapping ErrCorrupt; Decompress never
// panics.
func Decompress[T grid.Float](buf []byte, shape grid.Dims) ([]T, error) {
	hdr, body, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	if hdr.elemSize != grid.ElemSize[T]() {
		return nil, fmt.Errorf("%w: stream holds %d-byte elements, caller expects %d-byte", ErrCorrupt, hdr.elemSize, grid.ElemSize[T]())
	}
	if shape != nil && !hdr.shape.Equal(shape) {
		return nil, fmt.Errorf("%w: shape mismatch: stream has %v, caller expects %v", ErrCorrupt, hdr.shape, shape)
	}
	if hdr.elemSize == 4 {
		out, err := decompress32(hdr, body)
		if err != nil {
			return nil, err
		}
		return any(out).([]T), nil
	}
	out, err := decompress64(hdr, body)
	if err != nil {
		return nil, err
	}
	return any(out).([]T), nil
}

// HeaderShape extracts the shape stored in a compressed stream.
func HeaderShape(buf []byte) (grid.Dims, error) {
	hdr, _, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	return hdr.shape, nil
}

type header struct {
	elemSize  int
	bits      int
	blockSize int
	shape     grid.Dims
}

// fixedHeaderLen is the header size before the shape extents: magic (4),
// rank (1), bits per value (1), block size (4).
const fixedHeaderLen = 10

func parseHeader(buf []byte) (header, []byte, error) {
	if len(buf) < fixedHeaderLen {
		return header{}, nil, fmt.Errorf("%w: %d-byte stream is shorter than the %d-byte fixed header", ErrCorrupt, len(buf), fixedHeaderLen)
	}
	var h header
	switch binary.LittleEndian.Uint32(buf) {
	case magic32:
		h.elemSize = 4
	case magic64:
		h.elemSize = 8
	default:
		return header{}, nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, binary.LittleEndian.Uint32(buf))
	}
	rank := int(buf[4])
	if rank < 1 || rank > 4 {
		return header{}, nil, fmt.Errorf("%w: rank %d (want 1..4)", ErrCorrupt, rank)
	}
	h.bits = int(buf[5])
	if h.bits < 1 || h.bits > 8*h.elemSize {
		return header{}, nil, fmt.Errorf("%w: %d bits per value (want 1..%d)", ErrCorrupt, h.bits, 8*h.elemSize)
	}
	h.blockSize = int(binary.LittleEndian.Uint32(buf[6:]))
	if h.blockSize < 1 || h.blockSize > maxBlockSize {
		return header{}, nil, fmt.Errorf("%w: block size %d (want 1..%d)", ErrCorrupt, h.blockSize, maxBlockSize)
	}
	if len(buf) < fixedHeaderLen+4*rank {
		return header{}, nil, fmt.Errorf("%w: truncated shape extents", ErrCorrupt)
	}
	h.shape = make(grid.Dims, rank)
	n := 1
	for i := 0; i < rank; i++ {
		e := binary.LittleEndian.Uint32(buf[fixedHeaderLen+4*i:])
		if e == 0 || e > math.MaxInt32 {
			return header{}, nil, fmt.Errorf("%w: shape extent %d out of range", ErrCorrupt, e)
		}
		h.shape[i] = int(e)
		if n > maxDecodeElements/int(e) {
			return header{}, nil, fmt.Errorf("%w: shape %v exceeds the %d-element stream limit", ErrCorrupt, h.shape[:i+1], maxDecodeElements)
		}
		n *= int(e)
	}
	body := buf[fixedHeaderLen+4*rank:]
	nBlocks := (n + h.blockSize - 1) / h.blockSize
	want := 2*nBlocks + (n*h.bits+7)/8
	if len(body) != want {
		return header{}, nil, fmt.Errorf("%w: body is %d bytes, header implies %d", ErrCorrupt, len(body), want)
	}
	return h, body, nil
}
