package frsz

import (
	"encoding/binary"
	"fmt"
	"math"

	"fraz/internal/bitstream"
	"fraz/internal/grid"
	"fraz/internal/pool"
)

func appendHeader(out []byte, magic uint32, shape grid.Dims, o Options) []byte {
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, byte(len(shape)), byte(o.BitsPerValue))
	out = binary.LittleEndian.AppendUint32(out, uint32(o.BlockSize))
	for _, e := range shape {
		out = binary.LittleEndian.AppendUint32(out, uint32(e))
	}
	return out
}

// codeRange returns the two's-complement clamp range and packing mask for
// an N-bit code. bits is 1..64; the arithmetic routes through uint64 so the
// full-width case does not overflow.
func codeRange(bits int) (minQ, maxQ int64, mask uint64) {
	maxQ = int64(uint64(1)<<(bits-1) - 1)
	minQ = -maxQ - 1
	mask = ^uint64(0) >> (64 - uint(bits))
	return
}

// quantize rounds a scaled value to its N-bit code. The clamp happens in
// the float domain first: Round can land exactly on ±2^(N−1), and for the
// full-width case that float does not fit int64, so converting before
// clamping would be implementation-specific.
func quantize(scaled float64, limit float64, minQ, maxQ int64) int64 {
	r := math.Round(scaled)
	if r >= limit {
		return maxQ
	}
	if r <= -limit {
		return minQ
	}
	q := int64(r)
	if q > maxQ {
		return maxQ
	}
	if q < minQ {
		return minQ
	}
	return q
}

// signExtend interprets the low bits of u as an N-bit two's-complement
// integer.
func signExtend(u uint64, bits int) int64 {
	s := 64 - uint(bits)
	return int64(u<<s) >> s
}

func compress32(data []float32, shape grid.Dims, o Options) ([]byte, error) {
	n := len(data)
	bs := o.BlockSize
	nBlocks := (n + bs - 1) / bs
	bits := o.BitsPerValue
	total := CompressedSize(n, len(shape), bits, bs)

	out := make([]byte, 0, total)
	out = appendHeader(out, magic32, shape, o)
	expOff := len(out)
	out = append(out, make([]byte, 2*nBlocks)...)

	w := bitstream.NewWriter(total - len(out))
	minQ, maxQ, mask := codeRange(bits)
	limit := math.Ldexp(1, bits-1)

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := data[lo:hi]

		maxAbs := 0.0
		for i, v := range block {
			if math.Float32bits(v)&0x7f800000 == 0x7f800000 {
				return nil, fmt.Errorf("%w: non-finite value %v at element %d: frsz has no exponent to scale NaN/Inf against", ErrInvalidInput, v, lo+i)
			}
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}

		if maxAbs == 0 {
			binary.LittleEndian.PutUint16(out[expOff+2*bi:], expZeroBits)
			for range block {
				w.WriteBits(0, uint(bits))
			}
			continue
		}

		_, e := math.Frexp(maxAbs)
		binary.LittleEndian.PutUint16(out[expOff+2*bi:], uint16(int16(e)))
		shift := bits - 1 - e
		scale := math.Ldexp(1, shift)
		if scale > 0 && !math.IsInf(scale, 0) {
			for _, v := range block {
				q := quantize(float64(v)*scale, limit, minQ, maxQ)
				w.WriteBits(uint64(q)&mask, uint(bits))
			}
		} else {
			// 2^shift is outside the float64 range (only reachable with a
			// denormal-only block at high N); scale per value instead.
			for _, v := range block {
				q := quantize(math.Ldexp(float64(v), shift), limit, minQ, maxQ)
				w.WriteBits(uint64(q)&mask, uint(bits))
			}
		}
	}
	return append(out, w.Bytes()...), nil
}

func compress64(data []float64, shape grid.Dims, o Options) ([]byte, error) {
	n := len(data)
	bs := o.BlockSize
	nBlocks := (n + bs - 1) / bs
	bits := o.BitsPerValue
	total := CompressedSize(n, len(shape), bits, bs)

	out := make([]byte, 0, total)
	out = appendHeader(out, magic64, shape, o)
	expOff := len(out)
	out = append(out, make([]byte, 2*nBlocks)...)

	w := bitstream.NewWriter(total - len(out))
	minQ, maxQ, mask := codeRange(bits)
	limit := math.Ldexp(1, bits-1)

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := data[lo:hi]

		maxAbs := 0.0
		for i, v := range block {
			if math.Float64bits(v)&0x7ff0000000000000 == 0x7ff0000000000000 {
				return nil, fmt.Errorf("%w: non-finite value %v at element %d: frsz has no exponent to scale NaN/Inf against", ErrInvalidInput, v, lo+i)
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}

		if maxAbs == 0 {
			binary.LittleEndian.PutUint16(out[expOff+2*bi:], expZeroBits)
			for range block {
				w.WriteBits(0, uint(bits))
			}
			continue
		}

		_, e := math.Frexp(maxAbs)
		binary.LittleEndian.PutUint16(out[expOff+2*bi:], uint16(int16(e)))
		shift := bits - 1 - e
		scale := math.Ldexp(1, shift)
		if scale > 0 && !math.IsInf(scale, 0) {
			for _, v := range block {
				q := quantize(v*scale, limit, minQ, maxQ)
				w.WriteBits(uint64(q)&mask, uint(bits))
			}
		} else {
			for _, v := range block {
				q := quantize(math.Ldexp(v, shift), limit, minQ, maxQ)
				w.WriteBits(uint64(q)&mask, uint(bits))
			}
		}
	}
	return append(out, w.Bytes()...), nil
}

func decompress32(h header, body []byte) ([]float32, error) {
	n := h.shape.Len()
	nBlocks := (n + h.blockSize - 1) / h.blockSize
	exps := body[:2*nBlocks]
	r := bitstream.NewReader(body[2*nBlocks:])
	bits := h.bits

	// The output comes from the element pool: the blocked open path recycles
	// block buffers after scattering them. Every element is written below,
	// so the pool's stale contents never leak. It transfers to the caller
	// only on success; error returns must recycle it.
	out := pool.GetFloat32(n)
	done := false
	defer func() {
		if !done {
			pool.PutFloat32(out)
		}
	}()

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * h.blockSize
		hi := lo + h.blockSize
		if hi > n {
			hi = n
		}
		dst := out[lo:hi]

		e := int(int16(binary.LittleEndian.Uint16(exps[2*bi:])))
		if e != expZero && (e < minExp32 || e > maxExp32) {
			return nil, fmt.Errorf("%w: block %d exponent %d outside the float32 window [%d,%d]", ErrCorrupt, bi, e, minExp32, maxExp32)
		}
		shift := e - bits + 1
		quantum := math.Ldexp(1, shift)
		if e == expZero {
			quantum = 0 // codes decode to exact zeros whatever their content
		}

		for i := range dst {
			u, err := r.ReadBits(uint(bits))
			if err != nil {
				return nil, fmt.Errorf("%w: truncated bitstream in block %d", ErrCorrupt, bi)
			}
			v := float32(float64(signExtend(u, bits)) * quantum)
			if math.IsInf(float64(v), 0) {
				// maxabs within one quantisation step of the float32
				// overflow threshold: clamp instead of forging an Inf.
				v = float32(math.Copysign(math.MaxFloat32, float64(v)))
			}
			dst[i] = v
		}
	}
	done = true
	return out, nil
}

func decompress64(h header, body []byte) ([]float64, error) {
	n := h.shape.Len()
	nBlocks := (n + h.blockSize - 1) / h.blockSize
	exps := body[:2*nBlocks]
	r := bitstream.NewReader(body[2*nBlocks:])
	bits := h.bits

	out := pool.GetFloat64(n)
	done := false
	defer func() {
		if !done {
			pool.PutFloat64(out)
		}
	}()

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * h.blockSize
		hi := lo + h.blockSize
		if hi > n {
			hi = n
		}
		dst := out[lo:hi]

		e := int(int16(binary.LittleEndian.Uint16(exps[2*bi:])))
		if e != expZero && (e < minExp64 || e > maxExp64) {
			return nil, fmt.Errorf("%w: block %d exponent %d outside the float64 window [%d,%d]", ErrCorrupt, bi, e, minExp64, maxExp64)
		}
		shift := e - bits + 1
		quantum := math.Ldexp(1, shift)
		zero := e == expZero

		switch {
		case zero:
			for range dst {
				if _, err := r.ReadBits(uint(bits)); err != nil {
					return nil, fmt.Errorf("%w: truncated bitstream in block %d", ErrCorrupt, bi)
				}
			}
			for i := range dst {
				dst[i] = 0
			}
		case quantum == 0:
			// 2^shift underflows float64 (denormal-only block at high N):
			// Ldexp per value preserves the gradual-underflow rounding a
			// plain multiply by zero would destroy.
			for i := range dst {
				u, err := r.ReadBits(uint(bits))
				if err != nil {
					return nil, fmt.Errorf("%w: truncated bitstream in block %d", ErrCorrupt, bi)
				}
				dst[i] = math.Ldexp(float64(signExtend(u, bits)), shift)
			}
		default:
			for i := range dst {
				u, err := r.ReadBits(uint(bits))
				if err != nil {
					return nil, fmt.Errorf("%w: truncated bitstream in block %d", ErrCorrupt, bi)
				}
				v := float64(signExtend(u, bits)) * quantum
				if math.IsInf(v, 0) {
					v = math.Copysign(math.MaxFloat64, v)
				}
				dst[i] = v
			}
		}
	}
	done = true
	return out, nil
}
