package frsz

import (
	"math"
	"testing"

	"fraz/internal/grid"
)

// FuzzDecode drives hostile byte streams through both decoder widths. The
// decoder must either reject with an error or return a well-formed, finite
// field whose re-compression at the header's rate reproduces the exact
// fixed-rate size — it must never panic, allocate unboundedly, or emit
// NaN/Inf values.
func FuzzDecode(f *testing.F) {
	// Seed with valid streams of both widths plus systematic damage so the
	// fuzzer starts inside the format, not at random noise.
	f32 := make([]float32, 96)
	f64 := make([]float64, 96)
	for i := range f32 {
		v := math.Sin(float64(i) / 5)
		f32[i], f64[i] = float32(v), v
	}
	shape := grid.MustDims(8, 12)
	for _, bits := range []int{1, 7, 16, 32} {
		s, err := Compress(f32, shape, Options{BitsPerValue: bits, BlockSize: 32})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s)
		f.Add(s[:len(s)/2])
		damaged := append([]byte(nil), s...)
		damaged[len(damaged)/2] ^= 0x55
		f.Add(damaged)
	}
	s64, err := Compress(f64, shape, Options{BitsPerValue: 13})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(s64)
	f.Add(s64[:fixedHeaderLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, stream []byte) {
		for _, width := range []int{4, 8} {
			if width == 4 {
				checkDecode[float32](t, stream)
			} else {
				checkDecode[float64](t, stream)
			}
		}
	})
}

func checkDecode[T grid.Float](t *testing.T, stream []byte) {
	shape, err := HeaderShape(stream)
	if err != nil {
		return
	}
	out, err := Decompress[T](stream, nil)
	if err != nil {
		return
	}
	if len(out) != shape.Len() {
		t.Fatalf("decoded %d elements for header shape %v (%d)", len(out), shape, shape.Len())
	}
	bits := int(stream[5])
	for i, v := range out {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("element %d decoded non-finite %v", i, v)
		}
	}
	// A decodable stream re-encodes to the same fixed-rate size.
	blockSize := int(uint32(stream[6]) | uint32(stream[7])<<8 | uint32(stream[8])<<16 | uint32(stream[9])<<24)
	if want := CompressedSize(shape.Len(), shape.NDims(), bits, blockSize); len(stream) != want {
		t.Fatalf("valid stream is %d bytes, CompressedSize promises %d", len(stream), want)
	}
}
