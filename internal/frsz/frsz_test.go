package frsz

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fraz/internal/grid"
)

func sineField32(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(i)/17) * math.Exp(math.Cos(float64(i)/101)))
	}
	return out
}

func sineField64(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/17) * math.Exp(math.Cos(float64(i)/101))
	}
	return out
}

// maxAbsOfBlock returns the largest magnitude within each block of data.
func blockMaxAbs[T grid.Float](data []T, blockSize int) []float64 {
	nb := (len(data) + blockSize - 1) / blockSize
	out := make([]float64, nb)
	for bi := 0; bi < nb; bi++ {
		lo, hi := bi*blockSize, (bi+1)*blockSize
		if hi > len(data) {
			hi = len(data)
		}
		for _, v := range data[lo:hi] {
			if a := math.Abs(float64(v)); a > out[bi] {
				out[bi] = a
			}
		}
	}
	return out
}

// checkErrorBound asserts the documented per-block worst case: pointwise
// error at most 2^(e−N+1) where e is the block's frexp exponent.
func checkErrorBound[T grid.Float](t *testing.T, orig, recon []T, blockSize, bits int) {
	t.Helper()
	maxes := blockMaxAbs(orig, blockSize)
	for i := range orig {
		m := maxes[i/blockSize]
		if m == 0 {
			if recon[i] != 0 {
				t.Fatalf("element %d of an all-zero block decoded to %v", i, recon[i])
			}
			continue
		}
		_, e := math.Frexp(m)
		limit := math.Ldexp(1, e-bits+1)
		// Representation rounding adds up to one ulp of the element type on
		// top of the quantisation bound.
		limit += m * 2.4e-7 // 2 float32 ulps; negligible for float64
		if d := math.Abs(float64(orig[i]) - float64(recon[i])); d > limit {
			t.Fatalf("element %d: |%v - %v| = %g exceeds block bound %g (bits=%d)", i, orig[i], recon[i], d, limit, bits)
		}
	}
}

func TestRoundTripSizeAndErrorFloat32(t *testing.T) {
	shape := grid.MustDims(7, 31, 5)
	data := sineField32(shape.Len())
	for _, bits := range []int{1, 2, 5, 8, 13, 16, 27, 32} {
		opts := Options{BitsPerValue: bits}
		stream, err := Compress(data, shape, opts)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if want := CompressedSize(shape.Len(), shape.NDims(), bits, 0); len(stream) != want {
			t.Fatalf("bits=%d: stream is %d bytes, CompressedSize promises %d", bits, len(stream), want)
		}
		recon, err := Decompress[float32](stream, shape)
		if err != nil {
			t.Fatalf("bits=%d: decompress: %v", bits, err)
		}
		if bits >= 2 {
			checkErrorBound(t, data, recon, DefaultBlockSize, bits)
		}
	}
}

func TestRoundTripSizeAndErrorFloat64(t *testing.T) {
	shape := grid.MustDims(2049)
	data := sineField64(shape.Len())
	for _, bits := range []int{1, 4, 11, 16, 32, 53, 64} {
		stream, err := Compress(data, shape, Options{BitsPerValue: bits})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if want := CompressedSize(shape.Len(), shape.NDims(), bits, 0); len(stream) != want {
			t.Fatalf("bits=%d: stream is %d bytes, CompressedSize promises %d", bits, len(stream), want)
		}
		recon, err := Decompress[float64](stream, shape)
		if err != nil {
			t.Fatalf("bits=%d: decompress: %v", bits, err)
		}
		if bits >= 2 {
			checkErrorBound(t, data, recon, DefaultBlockSize, bits)
		}
	}
}

// TestRandomShapesProperty drives random shapes, block sizes, and rates
// through both dtypes: the stream size must equal the closed-form promise
// and the reconstruction must respect the per-block bound.
func TestRandomShapesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rank := 1 + rng.Intn(4)
		shape := make(grid.Dims, rank)
		for i := range shape {
			shape[i] = 1 + rng.Intn(13)
		}
		n := shape.Len()
		bs := 1 + rng.Intn(200)
		f64 := make([]float64, n)
		for i := range f64 {
			f64[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
		}
		bits := 1 + rng.Intn(32)
		opts := Options{BitsPerValue: bits, BlockSize: bs}

		stream, err := Compress(f64, shape, opts)
		if err != nil {
			t.Fatalf("trial %d (shape %v bs %d bits %d): %v", trial, shape, bs, bits, err)
		}
		if want := CompressedSize(n, rank, bits, bs); len(stream) != want {
			t.Fatalf("trial %d: %d bytes, want %d", trial, len(stream), want)
		}
		recon, err := Decompress[float64](stream, shape)
		if err != nil {
			t.Fatalf("trial %d: decompress: %v", trial, err)
		}
		if bits >= 2 {
			checkErrorBound(t, f64, recon, bs, bits)
		}

		f32 := make([]float32, n)
		for i, v := range f64 {
			f32[i] = float32(v)
		}
		stream32, err := Compress(f32, shape, opts)
		if err != nil {
			t.Fatalf("trial %d float32: %v", trial, err)
		}
		recon32, err := Decompress[float32](stream32, shape)
		if err != nil {
			t.Fatalf("trial %d float32: decompress: %v", trial, err)
		}
		if bits >= 2 {
			checkErrorBound(t, f32, recon32, bs, bits)
		}
	}
}

func TestAllZeroBlocks(t *testing.T) {
	shape := grid.MustDims(300)
	data := make([]float32, 300) // first two blocks zero, third mixed
	for i := 256; i < 300; i++ {
		data[i] = float32(i)
	}
	stream, err := Compress(data, shape, Options{BitsPerValue: 6})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress[float32](stream, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if recon[i] != 0 {
			t.Fatalf("zero-block element %d decoded to %v", i, recon[i])
		}
	}
	// Negative zero must classify as a zero block, not produce an exponent.
	neg := []float32{float32(math.Copysign(0, -1)), 0, 0}
	stream, err = Compress(neg, grid.MustDims(3), Options{BitsPerValue: 4})
	if err != nil {
		t.Fatal(err)
	}
	recon, err = Decompress[float32](stream, grid.MustDims(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if v != 0 {
			t.Fatalf("negative-zero block element %d decoded to %v", i, v)
		}
	}
}

func TestDenormals(t *testing.T) {
	// A block made entirely of float64 denormals: the scale factor 2^shift
	// overflows float64 at high N, exercising the per-value Ldexp paths.
	shape := grid.MustDims(64)
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Ldexp(float64(1+i%7), -1070)
	}
	for _, bits := range []int{8, 64} {
		stream, err := Compress(data, shape, Options{BitsPerValue: bits})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		recon, err := Decompress[float64](stream, shape)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		checkErrorBound(t, data, recon, DefaultBlockSize, bits)
	}

	// float32 denormals likewise.
	f32 := make([]float32, 32)
	for i := range f32 {
		f32[i] = float32(math.Ldexp(float64(1+i), -140))
	}
	stream, err := Compress(f32, grid.MustDims(32), Options{BitsPerValue: 12})
	if err != nil {
		t.Fatal(err)
	}
	recon32, err := Decompress[float32](stream, grid.MustDims(32))
	if err != nil {
		t.Fatal(err)
	}
	checkErrorBound(t, f32, recon32, DefaultBlockSize, 12)
}

func TestNonFiniteRejected(t *testing.T) {
	shape := grid.MustDims(4)
	cases32 := [][]float32{
		{1, 2, float32(math.NaN()), 4},
		{1, 2, float32(math.Inf(1)), 4},
		{1, 2, float32(math.Inf(-1)), 4},
	}
	for i, data := range cases32 {
		if _, err := Compress(data, shape, Options{BitsPerValue: 8}); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("float32 case %d: err = %v, want ErrInvalidInput", i, err)
		}
	}
	cases64 := [][]float64{
		{1, 2, math.NaN(), 4},
		{1, 2, math.Inf(1), 4},
	}
	for i, data := range cases64 {
		if _, err := Compress(data, shape, Options{BitsPerValue: 8}); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("float64 case %d: err = %v, want ErrInvalidInput", i, err)
		}
	}
}

func TestBadOptions(t *testing.T) {
	shape := grid.MustDims(8)
	data := sineField32(8)
	for _, bits := range []int{0, -1, 33} {
		if _, err := Compress(data, shape, Options{BitsPerValue: bits}); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("bits=%d accepted, want ErrInvalidInput", bits)
		}
	}
	// float64 admits up to 64 bits.
	if _, err := Compress(sineField64(8), shape, Options{BitsPerValue: 64}); err != nil {
		t.Errorf("float64 at 64 bits rejected: %v", err)
	}
	if _, err := Compress(sineField64(8), shape, Options{BitsPerValue: 65}); !errors.Is(err, ErrInvalidInput) {
		t.Error("float64 at 65 bits accepted")
	}
	if _, err := Compress(data, shape, Options{BitsPerValue: 8, BlockSize: -2}); !errors.Is(err, ErrInvalidInput) {
		t.Error("negative block size accepted")
	}
	if _, err := Compress(data, grid.Dims{4}, Options{BitsPerValue: 8}); !errors.Is(err, ErrInvalidInput) {
		t.Error("mismatched data length accepted")
	}
}

// TestNearOverflowClamp pins the documented edge: data near the float32
// overflow threshold reconstructs to a finite clamp, never an Inf.
func TestNearOverflowClamp(t *testing.T) {
	shape := grid.MustDims(8)
	data := make([]float32, 8)
	for i := range data {
		data[i] = -math.MaxFloat32
	}
	stream, err := Compress(data, shape, Options{BitsPerValue: 32})
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Decompress[float32](stream, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("element %d decoded non-finite %v", i, v)
		}
	}
}

func TestCorruptStreams(t *testing.T) {
	shape := grid.MustDims(40)
	good, err := Compress(sineField32(40), shape, Options{BitsPerValue: 9})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, buf []byte) {
		t.Helper()
		if _, err := Decompress[float32](buf, nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	check("empty", nil)
	check("short header", good[:6])

	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	check("bad magic", bad)

	bad = append([]byte(nil), good...)
	bad[4] = 9
	check("bad rank", bad)

	bad = append([]byte(nil), good...)
	bad[5] = 0
	check("zero bits per value", bad)
	bad[5] = 33
	check("float32 bits per value over 32", bad)

	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[6:], 0)
	check("zero block size", bad)

	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[fixedHeaderLen:], 0)
	check("zero extent", bad)

	check("truncated body", good[:len(good)-1])
	check("trailing bytes", append(append([]byte(nil), good...), 0))

	// Exponent outside the float32 window.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(bad[fixedHeaderLen+4:], uint16(2000))
	check("exponent out of window", bad)

	// Width mismatch: a valid float32 stream through the float64 decoder.
	if _, err := Decompress[float64](good, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("width mismatch: err = %v, want ErrCorrupt", err)
	}
	// Shape mismatch.
	if _, err := Decompress[float32](good, grid.MustDims(41)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("shape mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestHeaderShape(t *testing.T) {
	shape := grid.MustDims(3, 5, 7, 2)
	stream, err := Compress(sineField64(shape.Len()), shape, Options{BitsPerValue: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := HeaderShape(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(shape) {
		t.Fatalf("HeaderShape = %v, want %v", got, shape)
	}
}

// TestFixedRateIsExact pins the codec's defining property: the stream size
// never depends on the data, only on shape and rate.
func TestFixedRateIsExact(t *testing.T) {
	shape := grid.MustDims(17, 23)
	n := shape.Len()
	fields := [][]float64{
		make([]float64, n),
		sineField64(n),
	}
	rng := rand.New(rand.NewSource(3))
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(60)-30)
	}
	fields = append(fields, noisy)
	for bits := 1; bits <= 64; bits++ {
		want := CompressedSize(n, 2, bits, 0)
		for fi, f := range fields {
			stream, err := Compress(f, shape, Options{BitsPerValue: bits})
			if err != nil {
				t.Fatalf("bits=%d field=%d: %v", bits, fi, err)
			}
			if len(stream) != want {
				t.Fatalf("bits=%d field=%d: %d bytes, want %d — the rate is not fixed", bits, fi, len(stream), want)
			}
		}
	}
}
