// Package grid provides descriptors and iteration helpers for dense
// N-dimensional arrays of scalar data stored in row-major (C) order.
//
// All compressors in this repository operate on flat []float32 or []float64
// buffers (the Float constraint) whose logical shape is described by a Dims
// value. The package provides stride computation, bounds-checked indexing,
// block decomposition (used by the blockwise SZ- and ZFP-like compressors)
// and plane/slice extraction (used by the image-quality metrics).
package grid

import (
	"errors"
	"fmt"
	"unsafe"
)

// Float constrains the scalar element types the framework compresses:
// IEEE-754 single and double precision. Every layer between the codec
// kernels and the public API is generic over (or dispatches on) this
// constraint, which is what makes float64 data first-class.
type Float interface {
	float32 | float64
}

// ElemSize returns the size in bytes of one element of type T.
func ElemSize[T Float]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// Dims describes the logical shape of an N-dimensional array in row-major
// order: Dims{nz, ny, nx} for 3-D data, Dims{ny, nx} for 2-D, Dims{n} for 1-D.
// The slowest-varying dimension comes first, matching the layout used by the
// SDRBench datasets the paper evaluates.
type Dims []int

// NewDims validates and returns a Dims value. Every extent must be positive
// and the number of dimensions must be between 1 and 4.
func NewDims(extents ...int) (Dims, error) {
	if len(extents) == 0 || len(extents) > 4 {
		return nil, fmt.Errorf("grid: unsupported number of dimensions %d (want 1..4)", len(extents))
	}
	for i, e := range extents {
		if e <= 0 {
			return nil, fmt.Errorf("grid: dimension %d has non-positive extent %d", i, e)
		}
	}
	d := make(Dims, len(extents))
	copy(d, extents)
	return d, nil
}

// MustDims is like NewDims but panics on invalid input. It is intended for
// tests, examples, and compile-time-constant shapes.
func MustDims(extents ...int) Dims {
	d, err := NewDims(extents...)
	if err != nil {
		panic(err)
	}
	return d
}

// NDims reports the number of dimensions.
func (d Dims) NDims() int { return len(d) }

// Len reports the total number of elements described by the shape.
func (d Dims) Len() int {
	if len(d) == 0 {
		return 0
	}
	n := 1
	for _, e := range d {
		n *= e
	}
	return n
}

// Clone returns an independent copy of the shape.
func (d Dims) Clone() Dims {
	c := make(Dims, len(d))
	copy(c, d)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (d Dims) Equal(o Dims) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// Strides returns the row-major strides for the shape: the element distance
// between consecutive indices along each dimension.
func (d Dims) Strides() []int {
	s := make([]int, len(d))
	acc := 1
	for i := len(d) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= d[i]
	}
	return s
}

// String renders the shape as, e.g., "100x500x500".
func (d Dims) String() string {
	out := ""
	for i, e := range d {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprintf("%d", e)
	}
	return out
}

// Validate returns an error if the shape is empty or has a non-positive extent.
func (d Dims) Validate() error {
	if len(d) == 0 {
		return errors.New("grid: empty shape")
	}
	if len(d) > 4 {
		return fmt.Errorf("grid: unsupported rank %d", len(d))
	}
	for i, e := range d {
		if e <= 0 {
			return fmt.Errorf("grid: dimension %d has non-positive extent %d", i, e)
		}
	}
	return nil
}

// Offset converts a multi-index into a flat row-major offset. The number of
// index components must equal the rank and each component must be in range.
func (d Dims) Offset(idx ...int) (int, error) {
	if len(idx) != len(d) {
		return 0, fmt.Errorf("grid: index rank %d does not match shape rank %d", len(idx), len(d))
	}
	off := 0
	stride := 1
	for i := len(d) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= d[i] {
			return 0, fmt.Errorf("grid: index %d out of range [0,%d) in dimension %d", idx[i], d[i], i)
		}
		off += idx[i] * stride
		stride *= d[i]
	}
	return off, nil
}

// Coords converts a flat offset back into a multi-index.
func (d Dims) Coords(offset int) ([]int, error) {
	if offset < 0 || offset >= d.Len() {
		return nil, fmt.Errorf("grid: offset %d out of range [0,%d)", offset, d.Len())
	}
	idx := make([]int, len(d))
	for i := len(d) - 1; i >= 0; i-- {
		idx[i] = offset % d[i]
		offset /= d[i]
	}
	return idx, nil
}

// Block describes an axis-aligned sub-box of an N-dimensional array:
// the starting coordinate and the extent along each dimension.
type Block struct {
	Start Dims
	Size  Dims
}

// Len returns the number of elements covered by the block.
func (b Block) Len() int { return b.Size.Len() }

// Blocks decomposes the shape into consecutive non-overlapping blocks of the
// requested edge length along every dimension (matching SZ's 6x6x6 and ZFP's
// 4x4x4 decompositions). Boundary blocks are truncated to fit.
func (d Dims) Blocks(edge int) []Block {
	if edge <= 0 {
		edge = 1
	}
	counts := make([]int, len(d))
	total := 1
	for i, e := range d {
		counts[i] = (e + edge - 1) / edge
		total *= counts[i]
	}
	blocks := make([]Block, 0, total)
	idx := make([]int, len(d))
	// One backing array serves every block's Start and Size: the block list
	// is the per-call unit of the hot seal/open loops, and 2×total small
	// allocations here used to dominate their profiles.
	backing := make(Dims, 2*total*len(d))
	for {
		start := backing[:len(d):len(d)]
		size := backing[len(d) : 2*len(d) : 2*len(d)]
		backing = backing[2*len(d):]
		for i := range d {
			start[i] = idx[i] * edge
			size[i] = edge
			if start[i]+size[i] > d[i] {
				size[i] = d[i] - start[i]
			}
		}
		blocks = append(blocks, Block{Start: start, Size: size})
		// Advance the odometer.
		k := len(d) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < counts[k] {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return blocks
}

// GatherBlock copies the elements of a block from the flat array into dst,
// which must have length block.Len(). It returns dst for convenience.
func GatherBlock[T Float](data []T, shape Dims, b Block, dst []T) []T {
	if dst == nil {
		dst = make([]T, b.Len())
	}
	strides := shape.Strides()
	n := b.Len()
	idx := make([]int, len(shape))
	for i := 0; i < n; i++ {
		off := 0
		for k := range shape {
			off += (b.Start[k] + idx[k]) * strides[k]
		}
		dst[i] = data[off]
		// advance odometer over the block extents
		k := len(shape) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < b.Size[k] {
				break
			}
			idx[k] = 0
			k--
		}
	}
	return dst
}

// ScatterBlock writes the elements of src (length block.Len()) into the
// corresponding positions of the flat array.
func ScatterBlock[T Float](data []T, shape Dims, b Block, src []T) {
	strides := shape.Strides()
	n := b.Len()
	idx := make([]int, len(shape))
	for i := 0; i < n; i++ {
		off := 0
		for k := range shape {
			off += (b.Start[k] + idx[k]) * strides[k]
		}
		data[off] = src[i]
		k := len(shape) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < b.Size[k] {
				break
			}
			idx[k] = 0
			k--
		}
	}
}

// Slice2D extracts a 2-D plane from a 3-D array along the slowest axis
// (plane index z), returning the plane data and its 2-D shape. For 2-D input
// the whole array is returned. It is used by the SSIM and visualization
// metrics which operate on image slices, as in Fig. 10 of the paper.
func Slice2D[T Float](data []T, shape Dims, plane int) ([]T, Dims, error) {
	switch len(shape) {
	case 2:
		out := make([]T, len(data))
		copy(out, data)
		return out, shape.Clone(), nil
	case 3:
		if plane < 0 || plane >= shape[0] {
			return nil, nil, fmt.Errorf("grid: plane %d out of range [0,%d)", plane, shape[0])
		}
		n := shape[1] * shape[2]
		out := make([]T, n)
		copy(out, data[plane*n:(plane+1)*n])
		return out, Dims{shape[1], shape[2]}, nil
	default:
		return nil, nil, fmt.Errorf("grid: Slice2D requires 2-D or 3-D data, got rank %d", len(shape))
	}
}

// MinMax returns the minimum and maximum of the data. It returns (0, 0) for
// empty input.
func MinMax[T Float](data []T) (min, max T) {
	if len(data) == 0 {
		return 0, 0
	}
	min, max = data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// ValueRange returns max-min of the data as a float64.
func ValueRange[T Float](data []T) float64 {
	min, max := MinMax(data)
	return float64(max) - float64(min)
}
