package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimsValid(t *testing.T) {
	d, err := NewDims(3, 4, 5)
	if err != nil {
		t.Fatalf("NewDims returned error: %v", err)
	}
	if d.NDims() != 3 {
		t.Errorf("NDims = %d, want 3", d.NDims())
	}
	if d.Len() != 60 {
		t.Errorf("Len = %d, want 60", d.Len())
	}
}

func TestNewDimsInvalid(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{-1, 5},
		{1, 2, 3, 4, 5},
	}
	for _, c := range cases {
		if _, err := NewDims(c...); err == nil {
			t.Errorf("NewDims(%v) should fail", c)
		}
	}
}

func TestMustDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustDims with invalid input should panic")
		}
	}()
	MustDims(-1)
}

func TestDimsEqualAndClone(t *testing.T) {
	a := MustDims(2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Errorf("clone should be equal")
	}
	b[0] = 7
	if a.Equal(b) {
		t.Errorf("modified clone should not be equal")
	}
	if a.Equal(MustDims(2, 3, 4)) {
		t.Errorf("different rank should not be equal")
	}
}

func TestStrides(t *testing.T) {
	d := MustDims(4, 3, 2)
	s := d.Strides()
	want := []int{6, 2, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("stride[%d] = %d, want %d", i, s[i], want[i])
		}
	}
}

func TestDimsString(t *testing.T) {
	if got := MustDims(100, 500, 500).String(); got != "100x500x500" {
		t.Errorf("String = %q", got)
	}
	if got := MustDims(42).String(); got != "42" {
		t.Errorf("String = %q", got)
	}
}

func TestOffsetCoordsRoundTrip(t *testing.T) {
	d := MustDims(5, 7, 3)
	for off := 0; off < d.Len(); off++ {
		idx, err := d.Coords(off)
		if err != nil {
			t.Fatalf("Coords(%d): %v", off, err)
		}
		back, err := d.Offset(idx...)
		if err != nil {
			t.Fatalf("Offset(%v): %v", idx, err)
		}
		if back != off {
			t.Fatalf("round trip %d -> %v -> %d", off, idx, back)
		}
	}
}

func TestOffsetErrors(t *testing.T) {
	d := MustDims(2, 2)
	if _, err := d.Offset(1); err == nil {
		t.Errorf("rank mismatch should fail")
	}
	if _, err := d.Offset(2, 0); err == nil {
		t.Errorf("out of range index should fail")
	}
	if _, err := d.Coords(4); err == nil {
		t.Errorf("out of range offset should fail")
	}
	if _, err := d.Coords(-1); err == nil {
		t.Errorf("negative offset should fail")
	}
}

func TestValidate(t *testing.T) {
	if err := MustDims(3, 3).Validate(); err != nil {
		t.Errorf("valid shape flagged: %v", err)
	}
	var empty Dims
	if err := empty.Validate(); err == nil {
		t.Errorf("empty shape should be invalid")
	}
	bad := Dims{3, 0}
	if err := bad.Validate(); err == nil {
		t.Errorf("zero extent should be invalid")
	}
	big := Dims{1, 1, 1, 1, 1}
	if err := big.Validate(); err == nil {
		t.Errorf("rank 5 should be invalid")
	}
}

func TestBlocksCoverAllElementsExactlyOnce(t *testing.T) {
	shapes := []Dims{
		MustDims(10),
		MustDims(13),
		MustDims(9, 7),
		MustDims(6, 6, 6),
		MustDims(7, 5, 9),
	}
	for _, shape := range shapes {
		for _, edge := range []int{1, 3, 4, 6, 100} {
			blocks := shape.Blocks(edge)
			seen := make([]int, shape.Len())
			strides := shape.Strides()
			for _, b := range blocks {
				idx := make([]int, shape.NDims())
				for i := 0; i < b.Len(); i++ {
					off := 0
					for k := range shape {
						off += (b.Start[k] + idx[k]) * strides[k]
					}
					seen[off]++
					k := shape.NDims() - 1
					for k >= 0 {
						idx[k]++
						if idx[k] < b.Size[k] {
							break
						}
						idx[k] = 0
						k--
					}
				}
			}
			for off, c := range seen {
				if c != 1 {
					t.Fatalf("shape %v edge %d: element %d covered %d times", shape, edge, off, c)
				}
			}
		}
	}
}

func TestBlocksNonPositiveEdge(t *testing.T) {
	blocks := MustDims(4).Blocks(0)
	if len(blocks) != 4 {
		t.Errorf("edge 0 should degrade to edge 1, got %d blocks", len(blocks))
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	shape := MustDims(5, 6, 7)
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = rng.Float32()
	}
	out := make([]float32, shape.Len())
	for _, b := range shape.Blocks(4) {
		buf := GatherBlock(data, shape, b, nil)
		ScatterBlock(out, shape, b, buf)
	}
	for i := range data {
		if data[i] != out[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, data[i], out[i])
		}
	}
}

func TestGatherBlockReusesDst(t *testing.T) {
	shape := MustDims(4, 4)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(i)
	}
	b := shape.Blocks(2)[1] // second block starts at column 2
	dst := make([]float32, b.Len())
	got := GatherBlock(data, shape, b, dst)
	if &got[0] != &dst[0] {
		t.Errorf("GatherBlock should reuse provided dst")
	}
	if got[0] != 2 || got[1] != 3 || got[2] != 6 || got[3] != 7 {
		t.Errorf("unexpected block contents %v", got)
	}
}

func TestSlice2DFrom3D(t *testing.T) {
	shape := MustDims(3, 2, 2)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(i)
	}
	plane, pshape, err := Slice2D(data, shape, 1)
	if err != nil {
		t.Fatalf("Slice2D: %v", err)
	}
	if !pshape.Equal(MustDims(2, 2)) {
		t.Errorf("plane shape = %v", pshape)
	}
	want := []float32{4, 5, 6, 7}
	for i := range want {
		if plane[i] != want[i] {
			t.Errorf("plane[%d] = %v, want %v", i, plane[i], want[i])
		}
	}
}

func TestSlice2DFrom2D(t *testing.T) {
	shape := MustDims(2, 3)
	data := []float32{1, 2, 3, 4, 5, 6}
	plane, pshape, err := Slice2D(data, shape, 0)
	if err != nil {
		t.Fatalf("Slice2D: %v", err)
	}
	if !pshape.Equal(shape) {
		t.Errorf("plane shape = %v", pshape)
	}
	plane[0] = 99
	if data[0] == 99 {
		t.Errorf("Slice2D should copy, not alias")
	}
}

func TestSlice2DErrors(t *testing.T) {
	if _, _, err := Slice2D(make([]float32, 8), MustDims(8), 0); err == nil {
		t.Errorf("1-D input should fail")
	}
	if _, _, err := Slice2D(make([]float32, 8), MustDims(2, 2, 2), 5); err == nil {
		t.Errorf("out-of-range plane should fail")
	}
}

func TestMinMaxAndValueRange(t *testing.T) {
	if min, max := MinMax[float32](nil); min != 0 || max != 0 {
		t.Errorf("empty MinMax = %v,%v", min, max)
	}
	data := []float32{3, -2, 7, 0}
	min, max := MinMax(data)
	if min != -2 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if ValueRange(data) != 9 {
		t.Errorf("ValueRange = %v", ValueRange(data))
	}
}

func TestPropertyOffsetCoordsInverse(t *testing.T) {
	f := func(a, b, c uint8, off uint16) bool {
		d := Dims{int(a%7) + 1, int(b%7) + 1, int(c%7) + 1}
		o := int(off) % d.Len()
		idx, err := d.Coords(o)
		if err != nil {
			return false
		}
		back, err := d.Offset(idx...)
		return err == nil && back == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBlocksCountMatchesCeil(t *testing.T) {
	f := func(a, b uint8, e uint8) bool {
		d := Dims{int(a%20) + 1, int(b%20) + 1}
		edge := int(e%6) + 1
		blocks := d.Blocks(edge)
		want := ((d[0] + edge - 1) / edge) * ((d[1] + edge - 1) / edge)
		return len(blocks) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
