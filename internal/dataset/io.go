package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"fraz/internal/grid"
)

// WriteRaw writes a field as little-endian float32 binary, the layout used
// by the SDRBench archives (one bare .f32/.dat file per field and
// time-step).
func WriteRaw(path string, data []float32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var tmp [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		if _, err := w.Write(tmp[:]); err != nil {
			return fmt.Errorf("dataset: write %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return nil
}

// ReadRaw reads a little-endian float32 binary file and validates its length
// against the expected shape.
func ReadRaw(path string, shape grid.Dims) ([]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	want := shape.Len()
	data := make([]float32, 0, want)
	r := bufio.NewReader(f)
	var tmp [4]byte
	for {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: read %s: %w", path, err)
		}
		data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(tmp[:])))
	}
	if len(data) != want {
		return nil, fmt.Errorf("dataset: %s holds %d values, shape %v expects %d", path, len(data), shape, want)
	}
	return data, nil
}

// Export writes every field and time-step of the dataset under dir using the
// SDRBench-style layout dir/<app>/<field>_t<step>.f32 and returns the number
// of files written.
func Export(d Dataset, dir string) (int, error) {
	appDir := filepath.Join(dir, d.Name)
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		return 0, fmt.Errorf("dataset: mkdir %s: %w", appDir, err)
	}
	count := 0
	for _, f := range d.Fields {
		for t := 0; t < d.TimeSteps; t++ {
			data, _, err := d.Generate(f.Name, t)
			if err != nil {
				return count, err
			}
			path := filepath.Join(appDir, fmt.Sprintf("%s_t%03d.f32", f.Name, t))
			if err := WriteRaw(path, data); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}
