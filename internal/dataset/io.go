package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"fraz/internal/grid"
)

// WriteRaw writes a field as little-endian float32 binary, the layout used
// by the SDRBench archives (one bare .f32/.dat file per field and
// time-step).
func WriteRaw(path string, data []float32) error {
	return writeRaw(path, data)
}

// WriteRaw64 writes a field as little-endian float64 binary (SDRBench's
// .f64/.d64 layout).
func WriteRaw64(path string, data []float64) error {
	return writeRaw(path, data)
}

func writeRaw[T grid.Float](path string, data []T) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	elem := grid.ElemSize[T]()
	var tmp [8]byte
	for _, v := range data {
		if elem == 4 {
			binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(float32(v)))
		} else {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(float64(v)))
		}
		if _, err := w.Write(tmp[:elem]); err != nil {
			return fmt.Errorf("dataset: write %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return nil
}

// ReadRaw reads a little-endian float32 binary file and validates its length
// against the expected shape.
func ReadRaw(path string, shape grid.Dims) ([]float32, error) {
	return readRaw[float32](path, shape)
}

// ReadRaw64 reads a little-endian float64 binary file and validates its
// length against the expected shape.
func ReadRaw64(path string, shape grid.Dims) ([]float64, error) {
	return readRaw[float64](path, shape)
}

func readRaw[T grid.Float](path string, shape grid.Dims) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	want := shape.Len()
	data := make([]T, 0, want)
	r := bufio.NewReader(f)
	elem := grid.ElemSize[T]()
	var tmp [8]byte
	for {
		if _, err := io.ReadFull(r, tmp[:elem]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: read %s: %w", path, err)
		}
		if elem == 4 {
			data = append(data, T(math.Float32frombits(binary.LittleEndian.Uint32(tmp[:4]))))
		} else {
			data = append(data, T(math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))))
		}
	}
	if len(data) != want {
		return nil, fmt.Errorf("dataset: %s holds %d values, shape %v expects %d", path, len(data), shape, want)
	}
	return data, nil
}

// ExportSnapshot writes every field of one time-step side by side under
// dir/<app>/t<step>/ — the multi-field snapshot shape `fraz -fields`
// consumes — plus a manifest.txt describing it:
//
//	dims=8x16x16
//	CLOUDf=CLOUDf.f32
//	PRECIPf=PRECIPf.f32
//	...
//
// The first line is the shared grid shape (every field of one application
// snapshot lives on the same grid); each following line maps a field name to
// its raw file, relative to the manifest. The manifest is trivially shell-
// parseable, so a pipeline can reassemble the `-fields` argument with a grep
// and a paste. Returns the manifest path and the number of field files.
func ExportSnapshot(d Dataset, dir string, t int) (string, int, error) {
	if t < 0 || t >= d.TimeSteps {
		return "", 0, fmt.Errorf("%w: %d of %d", ErrBadTimeStep, t, d.TimeSteps)
	}
	stepDir := filepath.Join(dir, d.Name, fmt.Sprintf("t%03d", t))
	if err := os.MkdirAll(stepDir, 0o755); err != nil {
		return "", 0, fmt.Errorf("dataset: mkdir %s: %w", stepDir, err)
	}
	manifest := fmt.Sprintf("dims=%s\n", d.Fields[0].Shape)
	count := 0
	for _, f := range d.Fields {
		if !f.Shape.Equal(d.Fields[0].Shape) {
			return "", count, fmt.Errorf("dataset: %s field %s has shape %s, snapshot manifests need one shared shape (%s)",
				d.Name, f.Name, f.Shape, d.Fields[0].Shape)
		}
		data, _, err := d.Generate(f.Name, t)
		if err != nil {
			return "", count, err
		}
		file := f.Name + ".f32"
		if err := WriteRaw(filepath.Join(stepDir, file), data); err != nil {
			return "", count, err
		}
		manifest += fmt.Sprintf("%s=%s\n", f.Name, file)
		count++
	}
	mpath := filepath.Join(stepDir, "manifest.txt")
	if err := os.WriteFile(mpath, []byte(manifest), 0o644); err != nil {
		return "", count, fmt.Errorf("dataset: write %s: %w", mpath, err)
	}
	return mpath, count, nil
}

// Export writes every field and time-step of the dataset under dir using the
// SDRBench-style layout dir/<app>/<field>_t<step>.f32 and returns the number
// of files written.
func Export(d Dataset, dir string) (int, error) {
	appDir := filepath.Join(dir, d.Name)
	if err := os.MkdirAll(appDir, 0o755); err != nil {
		return 0, fmt.Errorf("dataset: mkdir %s: %w", appDir, err)
	}
	count := 0
	for _, f := range d.Fields {
		for t := 0; t < d.TimeSteps; t++ {
			data, _, err := d.Generate(f.Name, t)
			if err != nil {
				return count, err
			}
			path := filepath.Join(appDir, fmt.Sprintf("%s_t%03d.f32", f.Name, t))
			if err := WriteRaw(path, data); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}
