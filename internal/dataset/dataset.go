// Package dataset provides deterministic synthetic stand-ins for the five
// SDRBench applications the paper evaluates (Table III): Hurricane (3-D
// meteorology), HACC (1-D cosmology particles), CESM-ATM (2-D climate),
// EXAALT (1-D molecular dynamics), and NYX (3-D cosmology fields).
//
// The real SDRBench archives are tens of gigabytes and cannot ship with this
// repository, so each application is replaced by a generator that produces
// fields with the same dimensionality, field count, number of time-steps,
// and — most importantly for FRaZ — qualitatively similar compressibility
// structure: smooth advected vortices, sparse log-scaled cloud water,
// clustered particle coordinates, banded climate fields, and log-normal
// cosmology fields, all evolving coherently over time with occasional
// regime changes so that FRaZ's time-step bound reuse sometimes has to
// retrain (paper §V-C, Fig. 6).
//
// Generation is fully deterministic: the same application, field, time-step,
// and scale always produce the same bytes.
package dataset

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"fraz/internal/grid"
)

// Scale selects the grid resolution of the generated fields. The paper's
// datasets are hundreds of gigabytes; these scales keep experiments
// laptop-sized while preserving the fields' structure.
type Scale int

const (
	// ScaleTiny is intended for unit tests (a few thousand points per field).
	ScaleTiny Scale = iota
	// ScaleSmall is the default for examples and benchmarks.
	ScaleSmall
	// ScaleMedium approaches the smallest SDRBench fields.
	ScaleMedium
)

// String names the scale for reports.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Field describes one named field of an application dataset.
type Field struct {
	// Name is the field name, following the SDRBench naming where practical
	// (e.g. "CLOUDf", "QCLOUDf.log10", "temperature", "x").
	Name string
	// Shape is the per-time-step grid shape of the field.
	Shape grid.Dims
	// generate fills a time-step of the field through put(index, value).
	// Generators compute in double precision natively; Generate stores each
	// value rounded to float32, Generate64 stores it as computed — either
	// width fills its own buffer directly, with no transient copy at the
	// other width.
	generate func(put func(i int, v float64), shape grid.Dims, t int, rng *rand.Rand)
}

// Dataset describes a synthetic application dataset.
type Dataset struct {
	// Name is the application name (Hurricane, HACC, CESM, EXAALT, NYX).
	Name string
	// Domain is the science domain, as listed in the paper's Table III.
	Domain string
	// TimeSteps is the number of time-steps available.
	TimeSteps int
	// Fields lists the available fields.
	Fields []Field
	// Scale records the resolution the dataset was instantiated at.
	Scale Scale
}

// ErrUnknown is returned when an application or field name is not recognised.
var ErrUnknown = errors.New("dataset: unknown dataset or field")

// ErrBadTimeStep is returned for out-of-range time-step indices.
var ErrBadTimeStep = errors.New("dataset: time-step out of range")

// Names lists the available application names in the paper's order.
func Names() []string {
	return []string{"Hurricane", "HACC", "CESM", "EXAALT", "NYX"}
}

// New returns the synthetic dataset for the given application name at the
// given scale.
func New(name string, scale Scale) (Dataset, error) {
	switch name {
	case "Hurricane":
		return hurricane(scale), nil
	case "HACC":
		return hacc(scale), nil
	case "CESM":
		return cesm(scale), nil
	case "EXAALT":
		return exaalt(scale), nil
	case "NYX":
		return nyx(scale), nil
	default:
		return Dataset{}, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
}

// All returns every application dataset at the given scale.
func All(scale Scale) []Dataset {
	out := make([]Dataset, 0, len(Names()))
	for _, n := range Names() {
		d, err := New(n, scale)
		if err != nil {
			panic(err) // unreachable: Names and New are consistent
		}
		out = append(out, d)
	}
	return out
}

// Field returns the named field descriptor.
func (d Dataset) Field(name string) (Field, error) {
	for _, f := range d.Fields {
		if f.Name == name {
			return f, nil
		}
	}
	return Field{}, fmt.Errorf("%w: field %q of %s", ErrUnknown, name, d.Name)
}

// FieldNames lists the dataset's field names in order.
func (d Dataset) FieldNames() []string {
	names := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		names[i] = f.Name
	}
	return names
}

// Generate produces the named field at the given time-step in single
// precision — the width the SDRBench originals of these stand-ins ship in.
// The values are Generate64's rounded to float32, so the two precisions
// describe the same field.
func (d Dataset) Generate(field string, timestep int) ([]float32, grid.Dims, error) {
	var data []float32
	shape, err := d.generateInto(field, timestep, func(n int) func(int, float64) {
		data = make([]float32, n)
		return func(i int, v float64) { data[i] = float32(v) }
	})
	return data, shape, err
}

// Generate64 produces the named field at the given time-step in the double
// precision the generators compute in natively — the other half of the
// SDRBench-style workloads (HACC and NYX publish float64 variants).
func (d Dataset) Generate64(field string, timestep int) ([]float64, grid.Dims, error) {
	var data []float64
	shape, err := d.generateInto(field, timestep, func(n int) func(int, float64) {
		data = make([]float64, n)
		return func(i int, v float64) { data[i] = v }
	})
	return data, shape, err
}

// generateInto runs the field generator with a sink built for the field's
// element count, so each precision allocates exactly one buffer.
func (d Dataset) generateInto(field string, timestep int, sink func(n int) func(int, float64)) (grid.Dims, error) {
	f, err := d.Field(field)
	if err != nil {
		return nil, err
	}
	if timestep < 0 || timestep >= d.TimeSteps {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrBadTimeStep, timestep, d.TimeSteps)
	}
	rng := rand.New(rand.NewSource(seedFor(d.Name, field, timestep)))
	f.generate(sink(f.Shape.Len()), f.Shape, timestep, rng)
	return f.Shape.Clone(), nil
}

// TotalValues returns the total number of scalar values across all fields
// and time-steps, used by the dataset-description table (Table III).
func (d Dataset) TotalValues() int {
	total := 0
	for _, f := range d.Fields {
		total += f.Shape.Len() * d.TimeSteps
	}
	return total
}

// TotalBytes returns the raw (float32) size of the dataset in bytes.
func (d Dataset) TotalBytes() int { return d.TotalValues() * 4 }

func seedFor(parts ...interface{}) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return int64(h.Sum64())
}

// fieldSeed derives a stable per-field seed independent of the time-step so
// that a field's large-scale structure persists while evolving.
func fieldSeed(app, field string) int64 { return seedFor(app, field, "structure") }

// --- Hurricane (3-D meteorology, 13 fields, 48 time-steps) -------------------

func hurricaneShape(scale Scale) grid.Dims {
	switch scale {
	case ScaleTiny:
		return grid.MustDims(8, 16, 16)
	case ScaleMedium:
		return grid.MustDims(32, 64, 64)
	default:
		return grid.MustDims(16, 32, 32)
	}
}

func hurricane(scale Scale) Dataset {
	shape := hurricaneShape(scale)
	fieldNames := []string{
		"CLOUDf", "QCLOUDf", "QCLOUDf.log10", "QGRAUPf", "QICEf", "QRAINf",
		"QSNOWf", "QVAPORf", "PRECIPf", "Pf", "TCf", "Uf", "Vf",
	}
	fields := make([]Field, 0, len(fieldNames))
	for _, name := range fieldNames {
		fields = append(fields, Field{Name: name, Shape: shape, generate: hurricaneField(name)})
	}
	return Dataset{Name: "Hurricane", Domain: "Meteorology", TimeSteps: 48, Fields: fields, Scale: scale}
}

// hurricaneField returns a generator producing a rotating vortex field with
// per-field character: temperature/pressure fields are smooth, moisture
// fields are sparse with sharp plumes, the log10 cloud field has the flat
// background plus plume structure that produces SZ's spiky ratio behaviour.
func hurricaneField(name string) func(func(int, float64), grid.Dims, int, *rand.Rand) {
	return func(put func(int, float64), shape grid.Dims, t int, rng *rand.Rand) {
		structRng := rand.New(rand.NewSource(fieldSeed("Hurricane", name)))
		nz, ny, nx := shape[0], shape[1], shape[2]
		// Vortex centre drifts over time; intensity pulses with a regime
		// change around one third of the simulation.
		cx := 0.5 + 0.25*math.Sin(2*math.Pi*float64(t)/48)
		cy := 0.5 + 0.25*math.Cos(2*math.Pi*float64(t)/48)
		intensity := 1.0 + 0.5*math.Sin(float64(t)/6)
		if t >= 16 && t < 32 {
			intensity *= 1.8 // intensification phase: changes compressibility
		}
		phase := structRng.Float64() * 2 * math.Pi
		roughness := 0.02 + 0.08*structRng.Float64()

		i := 0
		for z := 0; z < nz; z++ {
			zf := float64(z) / float64(nz)
			for y := 0; y < ny; y++ {
				yf := float64(y) / float64(ny)
				for x := 0; x < nx; x++ {
					xf := float64(x) / float64(nx)
					dx, dy := xf-cx, yf-cy
					r := math.Sqrt(dx*dx + dy*dy)
					theta := math.Atan2(dy, dx)
					swirl := intensity * math.Exp(-r*r*18) * math.Cos(6*theta+phase+4*zf)
					base := math.Sin(3*math.Pi*xf+phase) * math.Cos(2*math.Pi*yf) * (1 - zf*0.6)
					noise := roughness * rng.NormFloat64()
					var v float64
					switch name {
					case "TCf":
						v = 25 - 60*zf + 8*swirl + 2*base + noise
					case "Pf":
						v = 1000 - 900*zf - 40*intensity*math.Exp(-r*r*25) + noise
					case "Uf":
						v = 30*swirl*math.Sin(theta) + 5*base + noise*10
					case "Vf":
						v = -30*swirl*math.Cos(theta) + 5*base + noise*10
					case "PRECIPf":
						p := math.Max(0, swirl*2+base*0.3-0.5)
						v = p*p*10 + math.Abs(noise)
					case "QVAPORf":
						v = 0.02*math.Exp(-3*zf)*(1+0.5*swirl) + 0.001*math.Abs(noise)
					case "QCLOUDf", "QGRAUPf", "QICEf", "QRAINf", "QSNOWf", "CLOUDf":
						// Sparse: zero background with localised plumes.
						p := swirl + 0.4*base - 0.55
						if p > 0 {
							v = p * 1e-3 * (1 + math.Abs(noise))
						} else {
							v = 0
						}
					case "QCLOUDf.log10":
						p := swirl + 0.4*base - 0.55
						if p > 0 {
							v = math.Log10(p*1e-3*(1+math.Abs(noise)) + 1e-30)
						} else {
							v = -30 // the flat log-floor seen in the real field
						}
					default:
						v = base + swirl + noise
					}
					put(i, v)
					i++
				}
			}
		}
	}
}

// --- HACC (1-D cosmology particles, 6 fields, 101 time-steps) ----------------

func haccLen(scale Scale) int {
	switch scale {
	case ScaleTiny:
		return 1 << 12
	case ScaleMedium:
		return 1 << 20
	default:
		return 1 << 16
	}
}

func hacc(scale Scale) Dataset {
	n := haccLen(scale)
	shape := grid.MustDims(n)
	fieldNames := []string{"x", "y", "z", "vx", "vy", "vz"}
	fields := make([]Field, 0, len(fieldNames))
	for _, name := range fieldNames {
		fields = append(fields, Field{Name: name, Shape: shape, generate: haccField(name)})
	}
	return Dataset{Name: "HACC", Domain: "Cosmology", TimeSteps: 101, Fields: fields, Scale: scale}
}

// haccField generates particle coordinates/velocities: particles start in a
// quasi-uniform lattice perturbed by growing large-scale modes (structure
// formation), so positions are locally correlated but globally span the
// whole box — hard for prediction-based compressors, exactly like real HACC
// data.
func haccField(name string) func(func(int, float64), grid.Dims, int, *rand.Rand) {
	isVelocity := name == "vx" || name == "vy" || name == "vz"
	axisPhase := map[string]float64{"x": 0, "y": 2.1, "z": 4.2, "vx": 0, "vy": 2.1, "vz": 4.2}[name]
	return func(put func(int, float64), shape grid.Dims, t int, rng *rand.Rand) {
		structRng := rand.New(rand.NewSource(fieldSeed("HACC", name)))
		n := shape[0]
		box := 256.0
		growth := 0.2 + 0.8*float64(t)/100 // structure grows over time
		// A few large-scale modes shared by all particles.
		const modes = 6
		amps := make([]float64, modes)
		freqs := make([]float64, modes)
		phases := make([]float64, modes)
		for m := 0; m < modes; m++ {
			amps[m] = box * 0.02 / float64(m+1)
			freqs[m] = float64(m+1) * 2 * math.Pi
			phases[m] = structRng.Float64()*2*math.Pi + axisPhase
		}
		for i := 0; i < n; i++ {
			u := float64(i) / float64(n)
			displacement := 0.0
			velocity := 0.0
			for m := 0; m < modes; m++ {
				displacement += growth * amps[m] * math.Sin(freqs[m]*u+phases[m])
				velocity += amps[m] * freqs[m] * math.Cos(freqs[m]*u+phases[m]) * 0.3
			}
			if isVelocity {
				put(i, velocity+20*rng.NormFloat64())
			} else {
				put(i, math.Mod(u*box+displacement+0.05*rng.NormFloat64()+box, box))
			}
		}
	}
}

// --- CESM-ATM (2-D climate, 6 fields, 62 time-steps) -------------------------

func cesmShape(scale Scale) grid.Dims {
	switch scale {
	case ScaleTiny:
		return grid.MustDims(24, 48)
	case ScaleMedium:
		return grid.MustDims(192, 288)
	default:
		return grid.MustDims(96, 144)
	}
}

func cesm(scale Scale) Dataset {
	shape := cesmShape(scale)
	fieldNames := []string{"CLDHGH", "CLDLOW", "CLOUD", "FLDSC", "FREQSH", "PHIS"}
	fields := make([]Field, 0, len(fieldNames))
	for _, name := range fieldNames {
		fields = append(fields, Field{Name: name, Shape: shape, generate: cesmField(name)})
	}
	return Dataset{Name: "CESM", Domain: "Climate", TimeSteps: 62, Fields: fields, Scale: scale}
}

// cesmField generates lat-lon climate fields: zonal bands plus weather
// systems that advect eastward over time; cloud-fraction fields are bounded
// in [0,1] with plateaus, PHIS (surface geopotential) is static topography.
func cesmField(name string) func(func(int, float64), grid.Dims, int, *rand.Rand) {
	return func(put func(int, float64), shape grid.Dims, t int, rng *rand.Rand) {
		structRng := rand.New(rand.NewSource(fieldSeed("CESM", name)))
		ny, nx := shape[0], shape[1]
		drift := float64(t) * 0.03
		p1 := structRng.Float64() * 2 * math.Pi
		p2 := structRng.Float64() * 2 * math.Pi
		for y := 0; y < ny; y++ {
			lat := (float64(y)/float64(ny-1+minOne(ny)) - 0.5) * math.Pi
			band := math.Cos(3*lat + p1)
			for x := 0; x < nx; x++ {
				lon := float64(x) / float64(nx) * 2 * math.Pi
				wave := math.Sin(4*(lon+drift)+p2)*math.Cos(2*lat) +
					0.5*math.Sin(9*(lon+1.7*drift))*math.Sin(3*lat+p1)
				noise := 0.01 * rng.NormFloat64()
				var v float64
				switch name {
				case "PHIS":
					// Static topography: rough, time-invariant.
					v = 3000*math.Max(0, math.Sin(5*lon+p1)*math.Cos(3*lat+p2)) +
						500*math.Abs(math.Sin(13*lon)*math.Sin(11*lat))
				case "FLDSC":
					v = 250 + 80*math.Cos(lat) + 20*wave + noise*100
				case "FREQSH":
					v = clamp01(0.3 + 0.3*band + 0.2*wave + noise)
				default: // CLDHGH, CLDLOW, CLOUD
					v = clamp01(0.45 + 0.35*band*wave + 0.15*wave + noise)
				}
				put(y*nx+x, v)
			}
		}
	}
}

func minOne(n int) int {
	if n <= 1 {
		return 1
	}
	return 0
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// --- EXAALT (1-D molecular dynamics, 3 fields, 82 time-steps) ----------------

func exaaltLen(scale Scale) int {
	switch scale {
	case ScaleTiny:
		return 4096
	case ScaleMedium:
		return 1 << 19
	default:
		return 1 << 15
	}
}

func exaalt(scale Scale) Dataset {
	n := exaaltLen(scale)
	shape := grid.MustDims(n)
	fieldNames := []string{"x", "y", "z"}
	fields := make([]Field, 0, len(fieldNames))
	for _, name := range fieldNames {
		fields = append(fields, Field{Name: name, Shape: shape, generate: exaaltField(name)})
	}
	return Dataset{Name: "EXAALT", Domain: "Molecular Dyn.", TimeSteps: 82, Fields: fields, Scale: scale}
}

// exaaltField generates molecular-dynamics coordinates: atoms vibrate
// thermally around lattice sites; occasionally a defect migrates, shifting a
// contiguous run of atoms.
func exaaltField(name string) func(func(int, float64), grid.Dims, int, *rand.Rand) {
	axis := map[string]float64{"x": 0, "y": 1, "z": 2}[name]
	return func(put func(int, float64), shape grid.Dims, t int, rng *rand.Rand) {
		structRng := rand.New(rand.NewSource(fieldSeed("EXAALT", name)))
		n := shape[0]
		lattice := 3.52 // fcc nickel lattice constant, used by EXAALT studies
		defectStart := structRng.Intn(n)
		defectLen := n / 20
		migration := float64(t) * 0.002 * lattice
		thermal := 0.03 * lattice
		for i := 0; i < n; i++ {
			site := float64(i%32)*lattice + axis*lattice/3 + float64(i/32)*0.001
			v := site + thermal*rng.NormFloat64()
			if i >= defectStart && i < defectStart+defectLen {
				v += migration
			}
			put(i, v)
		}
	}
}

// --- NYX (3-D cosmology fields, 5 fields, 8 time-steps) ----------------------

func nyxShape(scale Scale) grid.Dims {
	switch scale {
	case ScaleTiny:
		return grid.MustDims(16, 16, 16)
	case ScaleMedium:
		return grid.MustDims(64, 64, 64)
	default:
		return grid.MustDims(32, 32, 32)
	}
}

func nyx(scale Scale) Dataset {
	shape := nyxShape(scale)
	fieldNames := []string{"temperature", "baryon_density", "dark_matter_density", "velocity_x", "velocity_y"}
	fields := make([]Field, 0, len(fieldNames))
	for _, name := range fieldNames {
		fields = append(fields, Field{Name: name, Shape: shape, generate: nyxField(name)})
	}
	return Dataset{Name: "NYX", Domain: "Cosmology", TimeSteps: 8, Fields: fields, Scale: scale}
}

// nyxField generates cosmological grid fields: density fields are
// log-normal with filamentary structure that sharpens over the (few)
// time-steps; temperature follows density adiabatically; velocities are
// smooth large-scale flows.
func nyxField(name string) func(func(int, float64), grid.Dims, int, *rand.Rand) {
	return func(put func(int, float64), shape grid.Dims, t int, rng *rand.Rand) {
		structRng := rand.New(rand.NewSource(fieldSeed("NYX", name)))
		nz, ny, nx := shape[0], shape[1], shape[2]
		sharpness := 1.0 + float64(t)*0.4
		const modes = 5
		type mode struct{ kx, ky, kz, phase, amp float64 }
		ms := make([]mode, modes)
		for m := range ms {
			ms[m] = mode{
				kx:    float64(structRng.Intn(4)+1) * 2 * math.Pi,
				ky:    float64(structRng.Intn(4)+1) * 2 * math.Pi,
				kz:    float64(structRng.Intn(4)+1) * 2 * math.Pi,
				phase: structRng.Float64() * 2 * math.Pi,
				amp:   1.0 / float64(m+1),
			}
		}
		i := 0
		for z := 0; z < nz; z++ {
			zf := float64(z) / float64(nz)
			for y := 0; y < ny; y++ {
				yf := float64(y) / float64(ny)
				for x := 0; x < nx; x++ {
					xf := float64(x) / float64(nx)
					var delta float64
					for _, m := range ms {
						delta += m.amp * math.Sin(m.kx*xf+m.ky*yf+m.kz*zf+m.phase)
					}
					delta *= sharpness
					noise := 0.05 * rng.NormFloat64()
					var v float64
					switch name {
					case "temperature":
						v = 1e4 * math.Exp(0.6*delta+noise*0.2)
					case "baryon_density", "dark_matter_density":
						v = math.Exp(delta + noise)
					default: // velocity_x, velocity_y
						v = 300*delta/sharpness + 30*noise
					}
					put(i, v)
					i++
				}
			}
		}
	}
}
