package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"fraz/internal/grid"
	"fraz/internal/metrics"
	"fraz/internal/sz"
)

func TestNamesAndNew(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("expected 5 applications, got %d", len(names))
	}
	for _, n := range names {
		d, err := New(n, ScaleTiny)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if d.Name != n {
			t.Errorf("name mismatch: %s vs %s", d.Name, n)
		}
		if d.TimeSteps <= 0 || len(d.Fields) == 0 {
			t.Errorf("%s: empty dataset descriptor %+v", n, d)
		}
	}
	if _, err := New("Unknown", ScaleTiny); err == nil {
		t.Errorf("unknown application should fail")
	}
}

func TestTableIIIStructure(t *testing.T) {
	// Dimensionality, field counts, and time-step counts follow the paper's
	// Table III.
	want := map[string]struct {
		ndims     int
		fields    int
		timeSteps int
	}{
		"Hurricane": {3, 13, 48},
		"HACC":      {1, 6, 101},
		"CESM":      {2, 6, 62},
		"EXAALT":    {1, 3, 82},
		"NYX":       {3, 5, 8},
	}
	for name, w := range want {
		d, err := New(name, ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Fields) != w.fields {
			t.Errorf("%s: %d fields, want %d", name, len(d.Fields), w.fields)
		}
		if d.TimeSteps != w.timeSteps {
			t.Errorf("%s: %d time-steps, want %d", name, d.TimeSteps, w.timeSteps)
		}
		for _, f := range d.Fields {
			if f.Shape.NDims() != w.ndims {
				t.Errorf("%s/%s: rank %d, want %d", name, f.Name, f.Shape.NDims(), w.ndims)
			}
		}
	}
}

func TestAll(t *testing.T) {
	ds := All(ScaleTiny)
	if len(ds) != 5 {
		t.Fatalf("All returned %d datasets", len(ds))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, err := New("Hurricane", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	a, shapeA, err := d.Generate("TCf", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, shapeB, err := d.Generate("TCf", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !shapeA.Equal(shapeB) {
		t.Fatalf("shapes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation is not deterministic at %d", i)
		}
	}
}

func TestGenerateDiffersAcrossTimeAndFields(t *testing.T) {
	d, err := New("NYX", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := d.Generate("temperature", 0)
	b, _, _ := d.Generate("temperature", 5)
	c, _, _ := d.Generate("baryon_density", 0)
	if metrics.RMSE(a, b) == 0 {
		t.Errorf("different time-steps should differ")
	}
	if metrics.RMSE(a, c) == 0 {
		t.Errorf("different fields should differ")
	}
}

func TestGenerateErrors(t *testing.T) {
	d, err := New("CESM", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Generate("NOPE", 0); err == nil {
		t.Errorf("unknown field should fail")
	}
	if _, _, err := d.Generate("CLOUD", -1); err == nil {
		t.Errorf("negative time-step should fail")
	}
	if _, _, err := d.Generate("CLOUD", d.TimeSteps); err == nil {
		t.Errorf("out-of-range time-step should fail")
	}
}

func TestFieldNamesAndLookup(t *testing.T) {
	d, _ := New("HACC", ScaleTiny)
	names := d.FieldNames()
	if len(names) != 6 {
		t.Fatalf("HACC should have 6 fields")
	}
	f, err := d.Field("vx")
	if err != nil || f.Name != "vx" {
		t.Errorf("Field lookup failed: %v", err)
	}
	if _, err := d.Field("bogus"); err == nil {
		t.Errorf("unknown field should fail")
	}
}

func TestAllFieldsFiniteAndNonConstant(t *testing.T) {
	for _, d := range All(ScaleTiny) {
		for _, f := range d.Fields {
			for _, ts := range []int{0, d.TimeSteps / 2, d.TimeSteps - 1} {
				data, shape, err := d.Generate(f.Name, ts)
				if err != nil {
					t.Fatalf("%s/%s t=%d: %v", d.Name, f.Name, ts, err)
				}
				if len(data) != shape.Len() {
					t.Fatalf("%s/%s: data length %d != shape %v", d.Name, f.Name, len(data), shape)
				}
				var hasVariation bool
				for i, v := range data {
					if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
						t.Fatalf("%s/%s t=%d: non-finite value at %d", d.Name, f.Name, ts, i)
					}
					if i > 0 && v != data[0] {
						hasVariation = true
					}
				}
				if !hasVariation {
					t.Errorf("%s/%s t=%d: field is constant", d.Name, f.Name, ts)
				}
			}
		}
	}
}

func TestTimeEvolutionIsCoherent(t *testing.T) {
	// Consecutive time-steps should be much closer to each other than
	// distant ones, so that FRaZ's bound-reuse optimization pays off.
	d, _ := New("Hurricane", ScaleTiny)
	a, _, _ := d.Generate("TCf", 10)
	b, _, _ := d.Generate("TCf", 11)
	far, _, _ := d.Generate("TCf", 40)
	nearDiff := metrics.RMSE(a, b)
	farDiff := metrics.RMSE(a, far)
	if !(nearDiff < farDiff) {
		t.Errorf("adjacent steps (RMSE %v) should be closer than distant ones (RMSE %v)", nearDiff, farDiff)
	}
}

func TestScalesChangeResolution(t *testing.T) {
	tiny, _ := New("NYX", ScaleTiny)
	small, _ := New("NYX", ScaleSmall)
	medium, _ := New("NYX", ScaleMedium)
	if !(tiny.Fields[0].Shape.Len() < small.Fields[0].Shape.Len()) ||
		!(small.Fields[0].Shape.Len() < medium.Fields[0].Shape.Len()) {
		t.Errorf("scales should increase resolution: %v %v %v",
			tiny.Fields[0].Shape, small.Fields[0].Shape, medium.Fields[0].Shape)
	}
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" {
		t.Errorf("scale names wrong")
	}
	if Scale(9).String() == "" {
		t.Errorf("unknown scale string should not be empty")
	}
}

func TestTotalValuesAndBytes(t *testing.T) {
	d, _ := New("EXAALT", ScaleTiny)
	want := 0
	for _, f := range d.Fields {
		want += f.Shape.Len() * d.TimeSteps
	}
	if d.TotalValues() != want {
		t.Errorf("TotalValues = %d, want %d", d.TotalValues(), want)
	}
	if d.TotalBytes() != want*4 {
		t.Errorf("TotalBytes = %d, want %d", d.TotalBytes(), want*4)
	}
}

func TestHurricaneLogCloudHasFloor(t *testing.T) {
	// The QCLOUDf.log10 field should show the characteristic flat floor at
	// -30 plus plume values well above it, which is what makes its
	// ratio-versus-bound curve spiky for SZ (paper Fig. 3).
	d, _ := New("Hurricane", ScaleSmall)
	data, _, err := d.Generate("QCLOUDf.log10", 20)
	if err != nil {
		t.Fatal(err)
	}
	floor, above := 0, 0
	for _, v := range data {
		if v == -30 {
			floor++
		} else {
			above++
		}
	}
	if floor == 0 || above == 0 {
		t.Errorf("log cloud field should mix floor (%d) and plume (%d) values", floor, above)
	}
}

func TestCESMCloudFractionBounded(t *testing.T) {
	d, _ := New("CESM", ScaleTiny)
	for _, field := range []string{"CLDHGH", "CLDLOW", "CLOUD", "FREQSH"} {
		data, _, err := d.Generate(field, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range data {
			if v < 0 || v > 1 {
				t.Fatalf("%s[%d] = %v outside [0,1]", field, i, v)
			}
		}
	}
}

func TestHACCPositionsInsideBox(t *testing.T) {
	d, _ := New("HACC", ScaleTiny)
	for _, field := range []string{"x", "y", "z"} {
		data, _, err := d.Generate(field, 50)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range data {
			if v < 0 || v >= 257 {
				t.Fatalf("%s[%d] = %v outside the simulation box", field, i, v)
			}
		}
	}
}

func TestFieldsAreCompressible(t *testing.T) {
	// Sanity check that the synthetic fields behave like scientific data:
	// an error-bounded compressor achieves a useful ratio at a moderate
	// relative bound.
	d, _ := New("Hurricane", ScaleTiny)
	data, shape, err := d.Generate("TCf", 0)
	if err != nil {
		t.Fatal(err)
	}
	vr := grid.ValueRange(data)
	comp, err := sz.Compress(data, shape, sz.Options{ErrorBound: vr * 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if cr := metrics.CompressionRatio(len(data)*4, len(comp)); cr < 3 {
		t.Errorf("TCf should compress at least 3:1 at 1e-3 relative bound, got %.2f", cr)
	}
}

func TestWriteReadRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "field.f32")
	data := []float32{1.5, -2.25, 3.75, 0, 1e-30, 1e30}
	if err := WriteRaw(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRaw(path, grid.MustDims(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("raw round trip mismatch at %d: %v vs %v", i, got[i], data[i])
		}
	}
	if _, err := ReadRaw(path, grid.MustDims(5)); err == nil {
		t.Errorf("length mismatch should fail")
	}
	if _, err := ReadRaw(filepath.Join(dir, "missing.f32"), grid.MustDims(6)); err == nil {
		t.Errorf("missing file should fail")
	}
}

func TestExport(t *testing.T) {
	dir := t.TempDir()
	d, _ := New("NYX", ScaleTiny)
	// Restrict to a cheap subset: temperature only, 2 time-steps.
	d.Fields = d.Fields[:1]
	d.TimeSteps = 2
	n, err := Export(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("expected 2 files, wrote %d", n)
	}
	got, err := ReadRaw(filepath.Join(dir, "NYX", "temperature_t000.f32"), d.Fields[0].Shape)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := d.Generate("temperature", 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exported data mismatch at %d", i)
		}
	}
}
