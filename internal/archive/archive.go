// Package archive defines the `.frazd` dataset-archive format: a
// super-container holding many named fields, each an embedded
// self-describing `.fraz` container with its own codec, dtype, shape, and
// objective record.
//
// FRaZ's workloads (SDRBench-style application snapshots) are dozens of
// named fields per time-step, but a `.fraz` container holds exactly one
// grid. The dataset archive closes that gap the way the single-field format
// closed the bare-blob gap: a small versioned header, a CRC-indexed
// directory, and payloads that are themselves complete `.fraz` streams — so
// every field keeps its own tuned bound, achieved ratio, and quality
// promise, and a reader can decode one field without touching the others.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "FRZ\xA1"
//	4       2     format version (1)
//	6       2     reserved (written as 0, ignored on read)
//	8       ...   entry payloads, concatenated; each one complete `.fraz` stream
//	D       ...   directory (see below)
//	end−16  8     directory offset D (uint64, absolute)
//	end−8   4     directory length (uint32, bytes in [D, end−16))
//	end−4   4     footer magic "FRZ\xA2"
//
// The directory sits between the last payload and the fixed-size footer:
//
//	...     4     entry count E (uint32, 0..MaxEntries)
//	per entry (E times):
//	...     1     field name length L (1..255)
//	...     L     field name (UTF-8, unique per (name, step))
//	...     4     time step (uint32)
//	...     8     payload offset (uint64, absolute)
//	...     8     payload length (uint64)
//	...     4     CRC-32 (IEEE) of the payload bytes
//	...     4     CRC-32 (IEEE) of the directory bytes above (count + entries)
//
// Putting the directory last is what makes the archive appendable: adding a
// time-step's fields to an existing archive overwrites only the old
// directory and footer with the new payloads, then writes a fresh directory
// — every previously written payload byte stays exactly where it was, which
// the offset/CRC pin test in the public package asserts. A reader locates
// the directory through the footer (one seek from the end), so opening a
// single field out of a many-gigabyte archive reads the footer, the
// directory, and that field's payload alone.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Version is the dataset-archive format version this build writes.
const Version = 1

// maxVersion is the newest format version this build decodes.
const maxVersion = Version

// MaxEntries caps the entry count a directory may declare, bounding the
// allocation a hostile footer can demand before any entry is parsed.
const MaxEntries = 1 << 20

// HeaderSize is the fixed archive header: magic + version + reserved. It is
// exported because it is also the offset of the first payload — what a
// caller tracking entry placement starts from.
const HeaderSize = 8

// headerSize is the internal alias the format code reads naturally with
// footerSize and entryFixedSize.
const headerSize = HeaderSize

// footerSize is the fixed trailer: directory offset + length + footer magic.
const footerSize = 16

// entryFixedSize is the per-entry directory size excluding the name bytes.
const entryFixedSize = 1 + 4 + 8 + 8 + 4

// magic identifies a dataset archive; footMagic marks the trailer that
// locates the directory. Both share the "FRZ" prefix with the single-field
// container but end in distinct non-printable bytes, so text files — and
// single-field `.fraz` streams — are rejected immediately.
var (
	magic     = [4]byte{'F', 'R', 'Z', 0xA1}
	footMagic = [4]byte{'F', 'R', 'Z', 0xA2}
)

// Sentinel errors returned (wrapped) by the reader and writer.
var (
	// ErrBadMagic means the stream does not start (or end) with the dataset
	// archive magic.
	ErrBadMagic = errors.New("archive: not a .frazd dataset archive (bad magic)")
	// ErrVersion means the archive was written by a newer format version.
	ErrVersion = errors.New("archive: unsupported format version")
	// ErrTruncated means the file ended before the directory or a payload did.
	ErrTruncated = errors.New("archive: truncated archive")
	// ErrCorrupt means a CRC-32 check failed or the directory is inconsistent.
	ErrCorrupt = errors.New("archive: corrupt archive")
	// ErrDuplicate means two entries claim the same (field, step).
	ErrDuplicate = errors.New("archive: duplicate field entry")
	// ErrNotFound means the requested (field, step) is not in the directory.
	ErrNotFound = errors.New("archive: field not found")
)

// Entry locates one field@step payload inside the archive.
type Entry struct {
	// Name is the field name, unique together with Step.
	Name string
	// Step is the time-step index the payload belongs to (0 for snapshots).
	Step int
	// Offset is the payload's absolute byte offset in the archive.
	Offset int64
	// Length is the payload length in bytes.
	Length int64
	// CRC is the CRC-32 (IEEE) of the payload bytes.
	CRC uint32
}

// key is the directory uniqueness key.
func (e Entry) key() string { return entryKey(e.Name, e.Step) }

func entryKey(name string, step int) string {
	return fmt.Sprintf("%s@%d", name, step)
}

// validateEntry rejects entries no writer produces: empty or oversized
// names, negative or oversized steps, and non-positive payload lengths.
func validateEntry(name string, step int) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("%w: field name length %d (want 1..255)", ErrCorrupt, len(name))
	}
	if step < 0 || step > math.MaxUint32 {
		return fmt.Errorf("%w: time step %d (want 0..%d)", ErrCorrupt, step, uint32(math.MaxUint32))
	}
	return nil
}

// encodeDirectory renders the directory bytes (count + entries + CRC) for
// the given entries.
func encodeDirectory(entries []Entry) []byte {
	size := 4 + 4
	for _, e := range entries {
		size += entryFixedSize + len(e.Name)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = append(buf, uint8(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Step))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Offset))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Length))
		buf = binary.LittleEndian.AppendUint32(buf, e.CRC)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// parseDirectory decodes and validates directory bytes: the trailing CRC,
// the declared count against the bytes present, each entry's name, step, and
// payload window (must lie inside [headerSize, payloadEnd)), and
// (name, step) uniqueness.
func parseDirectory(dir []byte, payloadEnd int64) ([]Entry, error) {
	if len(dir) < 8 {
		return nil, fmt.Errorf("%w: directory of %d bytes (want >= 8)", ErrTruncated, len(dir))
	}
	body, declared := dir[:len(dir)-4], binary.LittleEndian.Uint32(dir[len(dir)-4:])
	if crc32.ChecksumIEEE(body) != declared {
		return nil, fmt.Errorf("%w: directory CRC mismatch", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(body)
	if count > MaxEntries {
		return nil, fmt.Errorf("%w: %d directory entries (max %d)", ErrCorrupt, count, MaxEntries)
	}
	if uint64(count)*(entryFixedSize+1) > uint64(len(body)-4) {
		return nil, fmt.Errorf("%w: %d entries cannot fit %d directory bytes", ErrCorrupt, count, len(body))
	}
	entries := make([]Entry, 0, count)
	seen := make(map[string]struct{}, count)
	pos := 4
	for i := 0; i < int(count); i++ {
		if pos >= len(body) {
			return nil, fmt.Errorf("%w: directory ends inside entry %d", ErrTruncated, i)
		}
		nameLen := int(body[pos])
		pos++
		if nameLen == 0 {
			return nil, fmt.Errorf("%w: entry %d has an empty name", ErrCorrupt, i)
		}
		if pos+nameLen+entryFixedSize-1 > len(body) {
			return nil, fmt.Errorf("%w: directory ends inside entry %d", ErrTruncated, i)
		}
		e := Entry{Name: string(body[pos : pos+nameLen])}
		pos += nameLen
		e.Step = int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		off := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		length := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		e.CRC = binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		if off < headerSize || off > uint64(payloadEnd) {
			return nil, fmt.Errorf("%w: entry %s at offset %d outside payload area [%d,%d)", ErrCorrupt, e.key(), off, headerSize, payloadEnd)
		}
		if length == 0 || length > uint64(payloadEnd)-off {
			return nil, fmt.Errorf("%w: entry %s spans %d bytes at offset %d, payload area ends at %d", ErrCorrupt, e.key(), length, off, payloadEnd)
		}
		e.Offset = int64(off)
		e.Length = int64(length)
		if _, dup := seen[e.key()]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicate, e.key())
		}
		seen[e.key()] = struct{}{}
		entries = append(entries, e)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing directory bytes after entry %d", ErrCorrupt, len(body)-pos, count)
	}
	return entries, nil
}

// sortEntries orders a directory listing for presentation: by name, then by
// step. The on-disk directory keeps insertion order (append order matters
// for the offset invariant); listings sort so output is stable regardless of
// the order fields were added in.
func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		return entries[i].Step < entries[j].Step
	})
}

// readFull reads exactly len(p) bytes at the reader's current position,
// mapping a premature end of stream to ErrTruncated.
func readFull(r io.Reader, p []byte, what string) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		return err
	}
	return nil
}
