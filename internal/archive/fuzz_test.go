package archive

import (
	"bytes"
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
)

// FuzzReader drives OpenReader — and, when the directory parses, every
// field's lazy Open — with arbitrary bytes. The invariant under test is the
// same one the container fuzzer pins: hostile input (truncations, corrupt
// directories, duplicate names, nonsense offsets) is answered with an
// error, never a panic or an unbounded allocation.
func FuzzReader(f *testing.F) {
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cn, err := container.New("sz:abs", 1e-3, 4, container.Float32, grid.MustDims(2, 4), payload)
	if err != nil {
		f.Fatal(err)
	}

	var one bytes.Buffer
	w, err := NewWriter(&one)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.AddFrom("temp", 0, cn); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(one.Bytes())

	var empty bytes.Buffer
	w, err = NewWriter(&empty)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add(one.Bytes()[:len(one.Bytes())/2])
	f.Add([]byte("FRZ\xa1junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range r.Entries() {
			_, _ = r.Open(e.Name, e.Step)
		}
	})
}
