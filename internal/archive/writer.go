package archive

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Writer assembles a dataset archive: payloads stream to the destination as
// they are added, the directory and footer are written once at Close. A
// Writer is not safe for concurrent use.
type Writer struct {
	w       io.Writer
	off     int64 // next payload offset (absolute)
	entries []Entry
	seen    map[string]struct{}
	closed  bool
}

// NewWriter starts a new dataset archive on w, writing the fixed header
// immediately so payloads can stream behind it.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("archive: writing header: %w", err)
	}
	return &Writer{w: w, off: headerSize, seen: map[string]struct{}{}}, nil
}

// AppendTo reopens an existing archive for appending: the directory is read
// back (validating it exactly as OpenReader would), the write position moves
// to where the old directory began, and new payloads overwrite only the old
// directory and footer. Every previously written payload byte keeps its
// offset and content; Close writes a fresh directory covering old and new
// entries alike.
func AppendTo(rw io.ReadWriteSeeker) (*Writer, error) {
	entries, dirOff, err := readDirectory(rw)
	if err != nil {
		return nil, err
	}
	if _, err := rw.Seek(dirOff, io.SeekStart); err != nil {
		return nil, fmt.Errorf("archive: seeking to directory: %w", err)
	}
	w := &Writer{w: rw, off: dirOff, entries: entries, seen: make(map[string]struct{}, len(entries))}
	for _, e := range entries {
		w.seen[e.key()] = struct{}{}
	}
	return w, nil
}

// Add appends one field@step payload. The payload must be a complete
// single-field `.fraz` container stream (the embedded format every entry
// carries); a payload that does not start with the `.fraz` magic is
// rejected, catching callers that hand over raw field bytes. Duplicate
// (name, step) pairs fail with ErrDuplicate.
func (w *Writer) Add(name string, step int, payload []byte) error {
	if w.closed {
		return fmt.Errorf("archive: Add after Close")
	}
	if err := validateEntry(name, step); err != nil {
		return err
	}
	if len(payload) < 4 || !bytes.Equal(payload[:3], magic[:3]) || payload[3] != 0x01 {
		return fmt.Errorf("%w: payload for %s is not a .fraz container stream", ErrCorrupt, entryKey(name, step))
	}
	key := entryKey(name, step)
	if _, dup := w.seen[key]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, key)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("archive: writing payload for %s: %w", key, err)
	}
	w.entries = append(w.entries, Entry{
		Name:   name,
		Step:   step,
		Offset: w.off,
		Length: int64(len(payload)),
		CRC:    crc32.ChecksumIEEE(payload),
	})
	w.seen[key] = struct{}{}
	w.off += int64(len(payload))
	return nil
}

// AddFrom appends one field@step payload streamed from an io.WriterTo (a
// container.Container, typically), avoiding a staging copy of the encoded
// stream: the bytes flow to the destination through a CRC accumulator.
func (w *Writer) AddFrom(name string, step int, payload io.WriterTo) error {
	if w.closed {
		return fmt.Errorf("archive: Add after Close")
	}
	if err := validateEntry(name, step); err != nil {
		return err
	}
	key := entryKey(name, step)
	if _, dup := w.seen[key]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, key)
	}
	sum := crc32.NewIEEE()
	n, err := payload.WriteTo(io.MultiWriter(w.w, sum))
	if err != nil {
		return fmt.Errorf("archive: writing payload for %s: %w", key, err)
	}
	if n == 0 {
		return fmt.Errorf("%w: empty payload for %s", ErrCorrupt, key)
	}
	w.entries = append(w.entries, Entry{
		Name:   name,
		Step:   step,
		Offset: w.off,
		Length: n,
		CRC:    sum.Sum32(),
	})
	w.seen[key] = struct{}{}
	w.off += n
	return nil
}

// Len reports the number of entries added so far (including, in append
// mode, the entries carried over from the existing archive).
func (w *Writer) Len() int { return len(w.entries) }

// Entries returns a copy of the directory as it will be written, in
// insertion order.
func (w *Writer) Entries() []Entry {
	out := make([]Entry, len(w.entries))
	copy(out, w.entries)
	return out
}

// Close writes the directory and footer, completing the archive. The
// destination writer itself is not closed — the Writer does not own it.
// Close is not idempotent-safe for further Adds; a second Close is an error.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("archive: already closed")
	}
	w.closed = true
	dir := encodeDirectory(w.entries)
	if _, err := w.w.Write(dir); err != nil {
		return fmt.Errorf("archive: writing directory: %w", err)
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(w.off))
	binary.LittleEndian.PutUint32(foot[8:12], uint32(len(dir)))
	copy(foot[12:], footMagic[:])
	if _, err := w.w.Write(foot[:]); err != nil {
		return fmt.Errorf("archive: writing footer: %w", err)
	}
	return nil
}
