package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
)

// testContainer builds a small single-field container with a deterministic
// payload, without going through any codec.
func testContainer(t *testing.T, codec string, seed byte) container.Container {
	t.Helper()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = seed + byte(i)
	}
	cn, err := container.New(codec, 1e-3, 4.0, container.Float32, grid.MustDims(4, 4), payload)
	if err != nil {
		t.Fatalf("container.New: %v", err)
	}
	return cn
}

// buildArchive writes an archive with the given (name, step, container)
// triples and returns its bytes.
func buildArchive(t *testing.T, fields []struct {
	name string
	step int
	cn   container.Container
}) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, f := range fields {
		if err := w.AddFrom(f.name, f.step, f.cn); err != nil {
			t.Fatalf("AddFrom(%s@%d): %v", f.name, f.step, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	fields := []struct {
		name string
		step int
		cn   container.Container
	}{
		{"pressure", 0, testContainer(t, "sz:abs", 1)},
		{"velocity", 0, testContainer(t, "zfp:accuracy", 2)},
		{"pressure", 1, testContainer(t, "sz:abs", 3)},
	}
	data := buildArchive(t, fields)

	r, err := OpenReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "pressure" || got[1] != "velocity" {
		t.Fatalf("Names() = %v", got)
	}
	if got := r.Steps("pressure"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Steps(pressure) = %v", got)
	}
	for _, f := range fields {
		cn, err := r.Open(f.name, f.step)
		if err != nil {
			t.Fatalf("Open(%s@%d): %v", f.name, f.step, err)
		}
		if cn.Header.Codec != f.cn.Header.Codec {
			t.Errorf("%s@%d codec = %q, want %q", f.name, f.step, cn.Header.Codec, f.cn.Header.Codec)
		}
		if !bytes.Equal(cn.Payload, f.cn.Payload) {
			t.Errorf("%s@%d payload differs", f.name, f.step)
		}
	}
	if _, err := r.Open("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open(missing) = %v, want ErrNotFound", err)
	}
	if _, err := r.Open("pressure", 7); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open(pressure@7) = %v, want ErrNotFound", err)
	}
}

func TestAddRejectsDuplicatesAndBadNames(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	cn := testContainer(t, "sz:abs", 9)
	if err := w.AddFrom("f", 0, cn); err != nil {
		t.Fatalf("AddFrom: %v", err)
	}
	if err := w.AddFrom("f", 0, cn); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate AddFrom = %v, want ErrDuplicate", err)
	}
	if err := w.AddFrom("", 0, cn); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.AddFrom("f", -1, cn); err == nil {
		t.Error("negative step accepted")
	}
	enc, err := cn.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := w.Add("raw", 0, enc[4:]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Add of a non-.fraz payload = %v, want ErrCorrupt", err)
	}
	if err := w.Add("ok", 0, enc); err != nil {
		t.Errorf("Add of an encoded container: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.AddFrom("late", 0, cn); err == nil {
		t.Error("Add after Close accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("second Close accepted")
	}
}

// TestAppendPreservesPriorBytes pins the append-mode invariant: adding a
// time step rewrites only the directory and footer — every previously
// written payload byte keeps its offset, content, and CRC.
func TestAppendPreservesPriorBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.frazd")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.AddFrom("density", 0, testContainer(t, "sz:abs", 11)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFrom("energy", 0, testContainer(t, "mgard:abs", 12)); err != nil {
		t.Fatal(err)
	}
	before := w.Entries()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rw, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := AppendTo(rw)
	if err != nil {
		t.Fatalf("AppendTo: %v", err)
	}
	if aw.Len() != 2 {
		t.Fatalf("AppendTo carried %d entries, want 2", aw.Len())
	}
	if err := aw.AddFrom("density", 1, testContainer(t, "sz:abs", 13)); err != nil {
		t.Fatal(err)
	}
	if err := aw.AddFrom("density", 0, testContainer(t, "sz:abs", 14)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("append of an existing (field, step) = %v, want ErrDuplicate", err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	appended, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(appended))
	if err != nil {
		t.Fatalf("OpenReader after append: %v", err)
	}
	if got := r.Steps("density"); len(got) != 2 {
		t.Fatalf("Steps(density) after append = %v", got)
	}
	for _, e := range before {
		after, ok := r.Lookup(e.Name, e.Step)
		if !ok {
			t.Fatalf("entry %s@%d lost on append", e.Name, e.Step)
		}
		if after.Offset != e.Offset || after.Length != e.Length || after.CRC != e.CRC {
			t.Errorf("entry %s@%d moved: %+v -> %+v", e.Name, e.Step, e, after)
		}
		was := original[e.Offset : e.Offset+e.Length]
		now := appended[after.Offset : after.Offset+after.Length]
		if !bytes.Equal(was, now) {
			t.Errorf("payload bytes of %s@%d changed on append", e.Name, e.Step)
		}
		if crc32.ChecksumIEEE(now) != e.CRC {
			t.Errorf("payload CRC of %s@%d changed on append", e.Name, e.Step)
		}
	}
}

// TestHandAssembledArchive pins the byte layout: an archive assembled by
// hand, field by field from the format comment, must decode — so the layout
// documented there is the layout implemented, and any accidental format
// change breaks this test rather than old archives.
func TestHandAssembledArchive(t *testing.T) {
	cn := testContainer(t, "sz:abs", 21)
	payload, err := cn.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var b []byte
	b = append(b, 'F', 'R', 'Z', 0xA1) // magic
	b = append(b, 1, 0)                // version 1
	b = append(b, 0, 0)                // reserved
	off := len(b)
	b = append(b, payload...)
	dirOff := len(b)

	var dir []byte
	dir = binary.LittleEndian.AppendUint32(dir, 1) // entry count
	dir = append(dir, 4)                           // name length
	dir = append(dir, "temp"...)
	dir = binary.LittleEndian.AppendUint32(dir, 3)                    // step
	dir = binary.LittleEndian.AppendUint64(dir, uint64(off))          // offset
	dir = binary.LittleEndian.AppendUint64(dir, uint64(len(payload))) // length
	dir = binary.LittleEndian.AppendUint32(dir, crc32.ChecksumIEEE(payload))
	dir = binary.LittleEndian.AppendUint32(dir, crc32.ChecksumIEEE(dir))
	b = append(b, dir...)

	b = binary.LittleEndian.AppendUint64(b, uint64(dirOff))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dir)))
	b = append(b, 'F', 'R', 'Z', 0xA2) // footer magic

	r, err := OpenReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("OpenReader(hand-assembled): %v", err)
	}
	got, err := r.Open("temp", 3)
	if err != nil {
		t.Fatalf("Open(temp@3): %v", err)
	}
	if got.Header.Codec != "sz:abs" || !bytes.Equal(got.Payload, cn.Payload) {
		t.Errorf("decoded container differs from the one assembled")
	}

	// The writer must produce exactly these bytes for the same input, so the
	// hand layout and the implementation cannot drift apart.
	written := buildArchive(t, []struct {
		name string
		step int
		cn   container.Container
	}{{"temp", 3, cn}})
	if !bytes.Equal(written, b) {
		t.Errorf("writer output differs from hand-assembled bytes")
	}
}

func TestHostileInputs(t *testing.T) {
	valid := buildArchive(t, []struct {
		name string
		step int
		cn   container.Container
	}{
		{"a", 0, testContainer(t, "sz:abs", 31)},
		{"b", 2, testContainer(t, "zfp:rate", 32)},
	})

	// Every truncation must fail with an error, never panic.
	for n := 0; n < len(valid); n++ {
		if _, err := OpenReader(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Every single-byte corruption must error or decode; it must never panic.
	// (Payload flips are caught by entry CRCs; header/directory/footer flips
	// by the structural checks.)
	for i := 0; i < len(valid); i++ {
		mut := bytes.Clone(valid)
		mut[i] ^= 0xFF
		r, err := OpenReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		for _, e := range r.Entries() {
			_, _ = r.Open(e.Name, e.Step) // must not panic
		}
	}

	// Directory CRC flip is detected as corruption.
	mut := bytes.Clone(valid)
	mut[len(mut)-footerSize-1] ^= 0xFF
	if _, err := OpenReader(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt directory CRC = %v, want ErrCorrupt", err)
	}

	// A directory with two entries for the same (field, step) is rejected.
	cn := testContainer(t, "sz:abs", 33)
	payload, err := cn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var b []byte
	b = append(b, 'F', 'R', 'Z', 0xA1, 1, 0, 0, 0)
	off := len(b)
	b = append(b, payload...)
	dirOff := len(b)
	var dir []byte
	dir = binary.LittleEndian.AppendUint32(dir, 2)
	for i := 0; i < 2; i++ {
		dir = append(dir, 1, 'x')
		dir = binary.LittleEndian.AppendUint32(dir, 0)
		dir = binary.LittleEndian.AppendUint64(dir, uint64(off))
		dir = binary.LittleEndian.AppendUint64(dir, uint64(len(payload)))
		dir = binary.LittleEndian.AppendUint32(dir, crc32.ChecksumIEEE(payload))
	}
	dir = binary.LittleEndian.AppendUint32(dir, crc32.ChecksumIEEE(dir))
	b = append(b, dir...)
	b = binary.LittleEndian.AppendUint64(b, uint64(dirOff))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dir)))
	b = append(b, 'F', 'R', 'Z', 0xA2)
	if _, err := OpenReader(bytes.NewReader(b)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate directory entries = %v, want ErrDuplicate", err)
	}

	// Unknown version and wrong magic.
	mut = bytes.Clone(valid)
	mut[4] = 99
	if _, err := OpenReader(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version = %v, want ErrVersion", err)
	}
	mut = bytes.Clone(valid)
	mut[3] = 0x01 // single-field container magic
	if _, err := OpenReader(bytes.NewReader(mut)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("single-field magic = %v, want ErrBadMagic", err)
	}
}

func TestEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("OpenReader(empty): %v", err)
	}
	if len(r.Entries()) != 0 || len(r.Names()) != 0 {
		t.Errorf("empty archive lists entries: %v", r.Entries())
	}
}
