package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"fraz/internal/container"
)

// Reader gives lazy access to the fields of a dataset archive: opening it
// reads the footer and directory alone (two seeks), and each field's payload
// is read — and CRC-verified — only when that field is opened. A Reader
// shares one seek position, so it is not safe for concurrent use; wrap
// independent byte slices in bytes.Readers for concurrent access.
type Reader struct {
	r       io.ReadSeeker
	entries []Entry
	index   map[string]int
}

// readDirectory locates and parses the directory of an archive: header
// magic and version, footer, directory CRC, and every entry's bounds. It
// returns the validated entries and the directory's absolute offset (the
// end of the payload area), leaving the seek position unspecified.
func readDirectory(r io.ReadSeeker) ([]Entry, int64, error) {
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, fmt.Errorf("archive: sizing archive: %w", err)
	}
	// Smallest possible archive: header + empty directory (count + CRC) + footer.
	if size < headerSize+8+footerSize {
		return nil, 0, fmt.Errorf("%w: %d bytes (smallest archive is %d)", ErrTruncated, size, headerSize+8+footerSize)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("archive: seeking to header: %w", err)
	}
	var hdr [headerSize]byte
	if err := readFull(r, hdr[:], "header"); err != nil {
		return nil, 0, err
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v == 0 || v > maxVersion {
		return nil, 0, fmt.Errorf("%w: %d (this build reads <= %d)", ErrVersion, v, maxVersion)
	}
	if _, err := r.Seek(size-footerSize, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("archive: seeking to footer: %w", err)
	}
	var foot [footerSize]byte
	if err := readFull(r, foot[:], "footer"); err != nil {
		return nil, 0, err
	}
	if [4]byte(foot[12:]) != footMagic {
		return nil, 0, fmt.Errorf("%w: footer magic missing (archive not closed?)", ErrBadMagic)
	}
	dirOff := binary.LittleEndian.Uint64(foot[0:8])
	dirLen := binary.LittleEndian.Uint32(foot[8:12])
	// The directory must exactly fill the gap between the payload area and
	// the footer; anything else means a truncated rewrite or trailing bytes.
	if dirOff < headerSize || dirOff+uint64(dirLen) != uint64(size-footerSize) {
		return nil, 0, fmt.Errorf("%w: directory [%d,%d) does not abut footer at %d", ErrCorrupt, dirOff, dirOff+uint64(dirLen), size-footerSize)
	}
	if _, err := r.Seek(int64(dirOff), io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("archive: seeking to directory: %w", err)
	}
	dir := make([]byte, dirLen)
	if err := readFull(r, dir, "directory"); err != nil {
		return nil, 0, err
	}
	entries, err := parseDirectory(dir, int64(dirOff))
	if err != nil {
		return nil, 0, err
	}
	return entries, int64(dirOff), nil
}

// OpenReader opens a dataset archive for lazy field access. Only the header,
// footer, and directory are read; payload bytes stay on the underlying
// reader until a field is opened.
func OpenReader(r io.ReadSeeker) (*Reader, error) {
	entries, _, err := readDirectory(r)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, len(entries))
	for i, e := range entries {
		index[e.key()] = i
	}
	return &Reader{r: r, entries: entries, index: index}, nil
}

// Entries lists the directory sorted by field name, then step.
func (r *Reader) Entries() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	sortEntries(out)
	return out
}

// Names lists the distinct field names in the archive, sorted.
func (r *Reader) Names() []string {
	seen := map[string]bool{}
	var names []string
	for _, e := range r.entries {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Steps lists the time-steps recorded for one field, ascending.
func (r *Reader) Steps(name string) []int {
	var steps []int
	for _, e := range r.entries {
		if e.Name == name {
			steps = append(steps, e.Step)
		}
	}
	sort.Ints(steps)
	return steps
}

// Lookup returns the directory entry for (name, step).
func (r *Reader) Lookup(name string, step int) (Entry, bool) {
	i, ok := r.index[entryKey(name, step)]
	if !ok {
		return Entry{}, false
	}
	return r.entries[i], true
}

// Open reads, CRC-verifies, and decodes one field's embedded `.fraz`
// container. Only that entry's payload bytes are read from the underlying
// reader — other fields are never touched.
func (r *Reader) Open(name string, step int) (container.Container, error) {
	e, ok := r.Lookup(name, step)
	if !ok {
		return container.Container{}, fmt.Errorf("%w: %s (archive holds %v)", ErrNotFound, entryKey(name, step), r.Names())
	}
	if _, err := r.r.Seek(e.Offset, io.SeekStart); err != nil {
		return container.Container{}, fmt.Errorf("archive: seeking to %s: %w", e.key(), err)
	}
	// e.Length was bounds-checked against the payload area at open, so this
	// allocation is backed by bytes the archive actually holds.
	payload := make([]byte, e.Length)
	if err := readFull(r.r, payload, "payload of "+e.key()); err != nil {
		return container.Container{}, err
	}
	if crc32.ChecksumIEEE(payload) != e.CRC {
		return container.Container{}, fmt.Errorf("%w: payload CRC mismatch for %s", ErrCorrupt, e.key())
	}
	cn, err := container.Decode(payload)
	if err != nil {
		return container.Container{}, fmt.Errorf("archive: decoding %s: %w", e.key(), err)
	}
	return cn, nil
}
