// Package metrics implements the compression-quality metrics used in the
// paper's evaluation: compression ratio and bit rate, RMSE, PSNR, maximum
// pointwise error, the lag-1 autocorrelation of the compression error
// (ACF(error)), and the structural similarity index (SSIM) on 2-D slices.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"fraz/internal/grid"
)

// Report bundles every quality metric for one compression run. It is the Go
// analogue of the metric set libpressio attaches to a compression result.
type Report struct {
	// OriginalBytes and CompressedBytes measure the storage footprint.
	OriginalBytes   int
	CompressedBytes int
	// CompressionRatio is OriginalBytes / CompressedBytes.
	CompressionRatio float64
	// BitRate is the average number of compressed bits per data point.
	BitRate float64
	// RMSE is the root-mean-square pointwise error.
	RMSE float64
	// PSNR is 20*log10((max-min)/RMSE) in decibels.
	PSNR float64
	// MaxError is the maximum absolute pointwise error.
	MaxError float64
	// MSE is the mean squared error.
	MSE float64
	// ValueRange is max-min of the original data.
	ValueRange float64
	// ErrorACF is the lag-1 autocorrelation of the pointwise error signal.
	ErrorACF float64
	// SSIM is the mean structural similarity of the central 2-D slice. It is
	// only populated by EvaluateGrid, which knows the data's shape; the
	// shape-blind Evaluate leaves it NaN, as does any rank for which a 2-D
	// slice cannot be extracted (1-D and 4-D data).
	SSIM float64
}

// String renders the report compactly for logs and experiment tables.
func (r Report) String() string {
	return fmt.Sprintf("CR=%.2f bitrate=%.3f PSNR=%.2fdB maxErr=%.4g ACF=%.3f",
		r.CompressionRatio, r.BitRate, r.PSNR, r.MaxError, r.ErrorACF)
}

// ErrLengthMismatch is returned when original and reconstructed arrays have
// different lengths.
var ErrLengthMismatch = errors.New("metrics: original and reconstructed lengths differ")

// Evaluate computes the full metric report for a compression run.
// original and reconstructed must have the same length; compressedBytes is
// the size of the compressed representation; elementBytes is the size of one
// original element (<= 0 selects the size of T: 4 for float32, 8 for
// float64).
func Evaluate[T grid.Float](original, reconstructed []T, compressedBytes, elementBytes int) (Report, error) {
	if len(original) != len(reconstructed) {
		return Report{}, ErrLengthMismatch
	}
	if len(original) == 0 {
		return Report{}, errors.New("metrics: empty input")
	}
	if elementBytes <= 0 {
		elementBytes = grid.ElemSize[T]()
	}
	rep := Report{
		OriginalBytes:   len(original) * elementBytes,
		CompressedBytes: compressedBytes,
	}
	if compressedBytes > 0 {
		rep.CompressionRatio = float64(rep.OriginalBytes) / float64(compressedBytes)
		rep.BitRate = float64(compressedBytes*8) / float64(len(original))
	}
	rep.RMSE, rep.MSE, rep.MaxError = errorStats(original, reconstructed)
	rep.ValueRange = grid.ValueRange(original)
	rep.PSNR = PSNR(original, reconstructed)
	rep.ErrorACF = ErrorAutocorrelation(original, reconstructed)
	rep.SSIM = math.NaN()
	return rep, nil
}

// EvaluateGrid is Evaluate for shaped data: it additionally fills Report.SSIM
// with the mean structural similarity of the central 2-D slice (see
// SliceSSIM). Ranks without a 2-D slice leave SSIM NaN rather than failing,
// so one evaluation path serves every registered codec and shape.
func EvaluateGrid[T grid.Float](original, reconstructed []T, shape grid.Dims, compressedBytes int) (Report, error) {
	rep, err := Evaluate(original, reconstructed, compressedBytes, 0)
	if err != nil {
		return Report{}, err
	}
	if s, serr := SliceSSIM(original, reconstructed, shape); serr == nil {
		rep.SSIM = s
	}
	return rep, nil
}

// SliceSSIM computes the SSIM between two fields on their central 2-D slice:
// the whole field for 2-D data, the middle plane along the slowest axis for
// 3-D data (the slice-based visual criterion of the paper's Fig. 10 and of
// Baker et al.'s climate-analysis threshold). Other ranks are an error.
func SliceSSIM[T grid.Float](original, reconstructed []T, shape grid.Dims) (float64, error) {
	plane := 0
	if shape.NDims() == 3 {
		plane = shape[0] / 2
	}
	origSlice, sliceShape, err := grid.Slice2D(original, shape, plane)
	if err != nil {
		return 0, err
	}
	recSlice, _, err := grid.Slice2D(reconstructed, shape, plane)
	if err != nil {
		return 0, err
	}
	return SSIM(origSlice, recSlice, sliceShape)
}

func errorStats[T grid.Float](original, reconstructed []T) (rmse, mse, maxErr float64) {
	var sum float64
	for i := range original {
		d := float64(original[i]) - float64(reconstructed[i])
		sum += d * d
		if a := math.Abs(d); a > maxErr {
			maxErr = a
		}
	}
	mse = sum / float64(len(original))
	rmse = math.Sqrt(mse)
	return rmse, mse, maxErr
}

// RMSE returns the root-mean-square error between the two arrays, or NaN if
// the lengths differ or the input is empty.
func RMSE[T grid.Float](original, reconstructed []T) float64 {
	if len(original) != len(reconstructed) || len(original) == 0 {
		return math.NaN()
	}
	r, _, _ := errorStats(original, reconstructed)
	return r
}

// MaxAbsError returns the maximum absolute pointwise error, or NaN on
// length mismatch.
func MaxAbsError[T grid.Float](original, reconstructed []T) float64 {
	if len(original) != len(reconstructed) || len(original) == 0 {
		return math.NaN()
	}
	_, _, m := errorStats(original, reconstructed)
	return m
}

// PSNR returns the peak signal-to-noise ratio in decibels, defined as
// 20*log10((dmax-dmin)/rmse) following the paper (Section VI-B4). Identical
// arrays yield +Inf; a constant original field with nonzero error yields -Inf.
func PSNR[T grid.Float](original, reconstructed []T) float64 {
	if len(original) != len(reconstructed) || len(original) == 0 {
		return math.NaN()
	}
	rmse, _, _ := errorStats(original, reconstructed)
	vr := grid.ValueRange(original)
	if rmse == 0 {
		return math.Inf(1)
	}
	if vr == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(vr/rmse)
}

// ErrorAutocorrelation returns the lag-1 autocorrelation of the pointwise
// error signal e_i = original_i - reconstructed_i. Values near 0 indicate
// white (uncorrelated) compression error; values near 1 indicate strongly
// structured error, which is generally undesirable for post-analysis.
func ErrorAutocorrelation[T grid.Float](original, reconstructed []T) float64 {
	n := len(original)
	if n != len(reconstructed) || n < 2 {
		return 0
	}
	errs := make([]float64, n)
	var mean float64
	for i := range original {
		errs[i] = float64(original[i]) - float64(reconstructed[i])
		mean += errs[i]
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := errs[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (errs[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CompressionRatio returns originalBytes/compressedBytes, or 0 when the
// compressed size is not positive.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns the average number of compressed bits per element.
func BitRate(compressedBytes, numElements int) float64 {
	if numElements <= 0 {
		return 0
	}
	return float64(compressedBytes*8) / float64(numElements)
}

// SSIM computes the mean structural similarity index between two 2-D fields
// of the given shape, using an 8x8 sliding window with stride 4 and the
// standard constants (K1=0.01, K2=0.03) relative to the original data's
// dynamic range. For 3-D data use grid.Slice2D to extract a plane first.
func SSIM[T grid.Float](original, reconstructed []T, shape grid.Dims) (float64, error) {
	if shape.NDims() != 2 {
		return 0, fmt.Errorf("metrics: SSIM requires 2-D data, got rank %d", shape.NDims())
	}
	if len(original) != shape.Len() || len(reconstructed) != shape.Len() {
		return 0, ErrLengthMismatch
	}
	h, w := shape[0], shape[1]
	window := 8
	stride := 4
	if h < window || w < window {
		window = minInt(h, w)
		stride = maxInt(1, window/2)
	}
	dynRange := grid.ValueRange(original)
	if dynRange == 0 {
		dynRange = 1
	}
	c1 := (0.01 * dynRange) * (0.01 * dynRange)
	c2 := (0.03 * dynRange) * (0.03 * dynRange)

	var total float64
	var count int
	for y := 0; y+window <= h; y += stride {
		for x := 0; x+window <= w; x += stride {
			total += windowSSIM(original, reconstructed, w, x, y, window, c1, c2)
			count++
		}
	}
	if count == 0 {
		return 0, errors.New("metrics: field smaller than SSIM window")
	}
	return total / float64(count), nil
}

func windowSSIM[T grid.Float](a, b []T, width, x0, y0, win int, c1, c2 float64) float64 {
	n := float64(win * win)
	var meanA, meanB float64
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			meanA += float64(a[y*width+x])
			meanB += float64(b[y*width+x])
		}
	}
	meanA /= n
	meanB /= n
	var varA, varB, cov float64
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			da := float64(a[y*width+x]) - meanA
			db := float64(b[y*width+x]) - meanB
			varA += da * da
			varB += db * db
			cov += da * db
		}
	}
	varA /= n - 1
	varB /= n - 1
	cov /= n - 1
	return ((2*meanA*meanB + c1) * (2*cov + c2)) /
		((meanA*meanA + meanB*meanB + c1) * (varA + varB + c2))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
