package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fraz/internal/grid"
)

func TestEvaluateIdenticalArrays(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5}
	rep, err := Evaluate(data, data, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSE != 0 || rep.MaxError != 0 {
		t.Errorf("identical arrays should have zero error, got %+v", rep)
	}
	if !math.IsInf(rep.PSNR, 1) {
		t.Errorf("PSNR of identical arrays should be +Inf, got %v", rep.PSNR)
	}
	if rep.CompressionRatio != 2.0 {
		t.Errorf("CR = %v, want 2", rep.CompressionRatio)
	}
	if rep.BitRate != 16 {
		t.Errorf("BitRate = %v, want 16", rep.BitRate)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float32{1}, []float32{1, 2}, 1, 4); err != ErrLengthMismatch {
		t.Errorf("expected length mismatch error, got %v", err)
	}
	if _, err := Evaluate[float32](nil, nil, 1, 4); err == nil {
		t.Errorf("empty input should fail")
	}
}

func TestEvaluateDefaultsElementBytes(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	rep, err := Evaluate(data, data, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginalBytes != 16 {
		t.Errorf("OriginalBytes = %d, want 16", rep.OriginalBytes)
	}
}

func TestKnownRMSEandPSNR(t *testing.T) {
	orig := []float32{0, 0, 0, 0}
	recon := []float32{1, -1, 1, -1}
	if got := RMSE(orig, recon); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %v, want 1", got)
	}
	// value range is 0 here so PSNR is -Inf
	if got := PSNR(orig, recon); !math.IsInf(got, -1) {
		t.Errorf("PSNR with zero range should be -Inf, got %v", got)
	}

	orig2 := []float32{0, 10}
	recon2 := []float32{1, 10}
	// rmse = sqrt(0.5), range = 10 => psnr = 20*log10(10/sqrt(0.5))
	want := 20 * math.Log10(10/math.Sqrt(0.5))
	if got := PSNR(orig2, recon2); math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestMaxAbsError(t *testing.T) {
	orig := []float32{1, 2, 3}
	recon := []float32{1.5, 2, 0}
	if got := MaxAbsError(orig, recon); math.Abs(got-3) > 1e-9 {
		t.Errorf("MaxAbsError = %v, want 3", got)
	}
	if !math.IsNaN(MaxAbsError(orig, orig[:2])) {
		t.Errorf("length mismatch should return NaN")
	}
	if !math.IsNaN(RMSE[float32](nil, nil)) {
		t.Errorf("empty RMSE should return NaN")
	}
}

func TestErrorAutocorrelation(t *testing.T) {
	// Perfectly alternating error has lag-1 autocorrelation close to -1.
	orig := make([]float32, 1000)
	recon := make([]float32, 1000)
	for i := range orig {
		if i%2 == 0 {
			recon[i] = 1
		} else {
			recon[i] = -1
		}
	}
	acf := ErrorAutocorrelation(orig, recon)
	if acf > -0.9 {
		t.Errorf("alternating error should have strongly negative ACF, got %v", acf)
	}
	// Constant error has zero variance; defined as 0.
	for i := range recon {
		recon[i] = 1
	}
	if got := ErrorAutocorrelation(orig, recon); got != 0 {
		t.Errorf("constant error ACF = %v, want 0", got)
	}
	// Slowly varying (smooth) error has positive ACF.
	for i := range recon {
		recon[i] = float32(math.Sin(float64(i) / 50))
	}
	if got := ErrorAutocorrelation(orig, recon); got < 0.9 {
		t.Errorf("smooth error should have ACF near 1, got %v", got)
	}
	if got := ErrorAutocorrelation(orig, orig[:10]); got != 0 {
		t.Errorf("length mismatch ACF should be 0, got %v", got)
	}
}

func TestCompressionRatioAndBitRate(t *testing.T) {
	if CompressionRatio(100, 10) != 10 {
		t.Errorf("CR wrong")
	}
	if CompressionRatio(100, 0) != 0 {
		t.Errorf("CR with zero compressed size should be 0")
	}
	if BitRate(10, 10) != 8 {
		t.Errorf("BitRate wrong")
	}
	if BitRate(10, 0) != 0 {
		t.Errorf("BitRate with zero elements should be 0")
	}
}

func TestSSIMIdentical(t *testing.T) {
	shape := grid.MustDims(32, 32)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = rng.Float32()
	}
	s, err := SSIM(data, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM of identical images = %v, want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	shape := grid.MustDims(64, 64)
	orig := make([]float32, shape.Len())
	for i := range orig {
		y, x := i/64, i%64
		orig[i] = float32(math.Sin(float64(x)/8) * math.Cos(float64(y)/8))
	}
	rng := rand.New(rand.NewSource(9))
	small := make([]float32, len(orig))
	large := make([]float32, len(orig))
	for i := range orig {
		small[i] = orig[i] + float32(rng.NormFloat64())*0.01
		large[i] = orig[i] + float32(rng.NormFloat64())*0.5
	}
	sSmall, err := SSIM(orig, small, shape)
	if err != nil {
		t.Fatal(err)
	}
	sLarge, err := SSIM(orig, large, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !(sSmall > sLarge) {
		t.Errorf("SSIM should degrade with noise: small=%v large=%v", sSmall, sLarge)
	}
	if sSmall < 0.9 {
		t.Errorf("small-noise SSIM unexpectedly low: %v", sSmall)
	}
}

func TestSSIMErrors(t *testing.T) {
	if _, err := SSIM(make([]float32, 8), make([]float32, 8), grid.MustDims(8)); err == nil {
		t.Errorf("1-D shape should fail")
	}
	if _, err := SSIM(make([]float32, 4), make([]float32, 3), grid.MustDims(2, 2)); err == nil {
		t.Errorf("length mismatch should fail")
	}
}

func TestSSIMSmallImage(t *testing.T) {
	shape := grid.MustDims(4, 4)
	data := make([]float32, 16)
	for i := range data {
		data[i] = float32(i)
	}
	s, err := SSIM(data, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("small-image SSIM of identical data = %v", s)
	}
}

func TestSSIMConstantImage(t *testing.T) {
	shape := grid.MustDims(16, 16)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = 3.5
	}
	s, err := SSIM(data, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("constant image SSIM = %v, want 1", s)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{CompressionRatio: 10, BitRate: 3.2, PSNR: 60, MaxError: 0.01, ErrorACF: 0.5}
	if rep.String() == "" {
		t.Errorf("String should not be empty")
	}
}

func TestPropertyPSNRDecreasesWithError(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 256
		orig := make([]float32, n)
		for i := range orig {
			orig[i] = rng.Float32() * 100
		}
		r1 := make([]float32, n)
		r2 := make([]float32, n)
		for i := range orig {
			noise := rng.NormFloat64()
			r1[i] = orig[i] + float32(noise*0.01)
			r2[i] = orig[i] + float32(noise*1.0)
		}
		return PSNR(orig, r1) > PSNR(orig, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRMSENonNegative(t *testing.T) {
	f := func(a, b []float32) bool {
		if len(a) != len(b) {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			a, b = a[:n], b[:n]
		}
		if len(a) == 0 {
			return true
		}
		for i := range a {
			if math.IsNaN(float64(a[i])) || math.IsInf(float64(a[i]), 0) ||
				math.IsNaN(float64(b[i])) || math.IsInf(float64(b[i]), 0) {
				return true
			}
		}
		return RMSE(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateGridFillsSSIM(t *testing.T) {
	shape := grid.MustDims(4, 16, 16)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 7))
	}
	rep, err := EvaluateGrid(data, data, shape, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SSIM-1) > 1e-9 {
		t.Errorf("SSIM of identical data = %v, want 1", rep.SSIM)
	}
	if rep.CompressionRatio != float64(4*len(data))/64 {
		t.Errorf("EvaluateGrid lost the base metrics: %+v", rep)
	}

	// Ranks without a 2-D slice degrade to NaN instead of failing.
	oneD, err := EvaluateGrid(data, data, grid.MustDims(len(data)), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(oneD.SSIM) {
		t.Errorf("1-D SSIM = %v, want NaN", oneD.SSIM)
	}

	// The shape-blind Evaluate leaves SSIM NaN too.
	plain, err := Evaluate(data, data, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(plain.SSIM) {
		t.Errorf("Evaluate SSIM = %v, want NaN", plain.SSIM)
	}
}

func TestSliceSSIMSelectsMiddlePlane(t *testing.T) {
	shape := grid.MustDims(5, 12, 12)
	orig := make([]float32, shape.Len())
	rec := make([]float32, shape.Len())
	for i := range orig {
		orig[i] = float32(i % 13)
		rec[i] = orig[i]
	}
	// Corrupt a plane far from the middle: the mid-slice SSIM must stay 1.
	for i := 0; i < 12*12; i++ {
		rec[i] = -orig[i]
	}
	s, err := SliceSSIM(orig, rec, shape)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("mid-slice SSIM = %v, want 1 (corruption is in plane 0)", s)
	}
	if _, err := SliceSSIM(orig, rec, grid.MustDims(len(orig))); err == nil {
		t.Errorf("1-D SliceSSIM should fail")
	}
}
