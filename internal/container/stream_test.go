package container

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"

	"fraz/internal/grid"
)

// randomContainer builds a structurally valid container with randomised
// header fields and payload, blocked (v2) with probability one half. Both
// the property test and the streaming tests draw from it.
func randomContainer(t *testing.T, r *rand.Rand) Container {
	t.Helper()
	rank := 1 + r.Intn(4)
	shape := make(grid.Dims, rank)
	for i := range shape {
		shape[i] = 1 + r.Intn(9)
	}
	codec := make([]byte, 1+r.Intn(24))
	for i := range codec {
		codec[i] = byte('a' + r.Intn(26))
	}
	payload := make([]byte, r.Intn(1<<10))
	r.Read(payload)
	bound := r.Float64() * 10
	ratio := r.Float64() * 100
	dtype := Float32
	if r.Intn(2) == 0 {
		dtype = Float64
	}
	// An objective extension rides along on a third of the containers, so
	// every downstream property test covers extended headers too.
	var obj Objective
	if r.Intn(3) == 0 {
		obj = Objective{
			Name:      "psnr",
			Target:    20 + r.Float64()*80,
			Tolerance: r.Float64() * 5,
			Achieved:  20 + r.Float64()*80,
		}
	}

	if r.Intn(2) == 0 {
		c, err := New(string(codec), bound, ratio, dtype, shape, payload)
		if err != nil {
			t.Fatal(err)
		}
		c.Header.Objective = obj
		return c
	}
	n := 1 + r.Intn(shape[0])
	payloads := make([][]byte, n)
	for i := range payloads {
		lo, hi := i*len(payload)/n, (i+1)*len(payload)/n
		payloads[i] = payload[lo:hi]
	}
	c, err := NewBlocked(string(codec), bound, ratio, dtype, shape, payloads)
	if err != nil {
		t.Fatal(err)
	}
	c.Header.Objective = obj
	return c
}

func containersEqual(a, b Container) bool {
	if a.Header.Version != b.Header.Version || a.Header.Codec != b.Header.Codec ||
		a.Header.Bound != b.Header.Bound || a.Header.Ratio != b.Header.Ratio ||
		a.Header.DType != b.Header.DType || !a.Header.Shape.Equal(b.Header.Shape) ||
		a.Header.Objective != b.Header.Objective {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			return false
		}
	}
	return true
}

// TestEncodedSizeMatchesEncode is the anti-drift property test: for random
// v1 and v2 containers, Encode must produce exactly EncodedSize bytes and
// WriteTo must report the same count. EncodedSize pre-sizes the streaming
// writer's header buffer and callers' output buffers, so any drift would
// reintroduce silent reallocation.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		c := randomContainer(t, r)
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != c.EncodedSize() {
			t.Fatalf("case %d (v%d, %d blocks): len(Encode()) = %d, EncodedSize() = %d",
				i, c.Header.Version, c.NumBlocks(), len(enc), c.EncodedSize())
		}
		var buf bytes.Buffer
		n, err := c.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(c.EncodedSize()) || !bytes.Equal(buf.Bytes(), enc) {
			t.Fatalf("case %d: WriteTo wrote %d bytes, want the %d Encode produced", i, n, len(enc))
		}
	}
}

// TestReadFromRoundTrip streams random containers through WriteTo/ReadFrom,
// including via a one-byte-at-a-time reader to exercise every incremental
// read path.
func TestReadFromRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		c := randomContainer(t, r)
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range []func() io.Reader{
			func() io.Reader { return bytes.NewReader(enc) },
			func() io.Reader { return iotest.OneByteReader(bytes.NewReader(enc)) },
		} {
			var dec Container
			n, err := dec.ReadFrom(mk())
			if err != nil {
				t.Fatalf("case %d: ReadFrom: %v", i, err)
			}
			if n != int64(len(enc)) {
				t.Fatalf("case %d: ReadFrom consumed %d of %d bytes", i, n, len(enc))
			}
			if !containersEqual(c, dec) {
				t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, c.Header, dec.Header)
			}
		}
	}
}

// TestReadFromConsumesExactlyOneContainer checks the io.ReaderFrom contract:
// back-to-back containers on one stream decode sequentially, each ReadFrom
// stopping at its own container's last byte.
func TestReadFromConsumesExactlyOneContainer(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomContainer(t, r)
	b := randomContainer(t, r)
	var stream bytes.Buffer
	if _, err := a.WriteTo(&stream); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&stream); err != nil {
		t.Fatal(err)
	}
	var da, db Container
	if _, err := da.ReadFrom(&stream); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadFrom(&stream); err != nil {
		t.Fatal(err)
	}
	if !containersEqual(a, da) || !containersEqual(b, db) {
		t.Fatalf("sequential decode mismatch")
	}
	if stream.Len() != 0 {
		t.Fatalf("%d bytes left after decoding both containers", stream.Len())
	}
}

// TestReadFromTruncated cuts streams short at every byte boundary: ReadFrom
// must fail (truncation or a header error caught early) and must leave the
// receiver untouched.
func TestReadFromTruncated(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		c := randomContainer(t, r)
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			var dec Container
			if _, err := dec.ReadFrom(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("case %d: ReadFrom of %d/%d bytes succeeded", i, cut, len(enc))
			}
			if dec.Header.Codec != "" || dec.Payload != nil || dec.Blocks != nil {
				t.Fatalf("case %d cut %d: receiver modified on error: %+v", i, cut, dec)
			}
		}
	}
}

// TestReadFromCorruptBlockIndex tampers with a v2 block index in ways the
// streaming decoder must catch before or while reading payloads.
func TestReadFromCorruptBlockIndex(t *testing.T) {
	c := sampleBlocked(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	headerLen := c.EncodedSize() - len(c.Payload) - 20*len(c.Blocks) - 4

	tamper := func(mutate func(b []byte)) error {
		bad := append([]byte(nil), enc...)
		mutate(bad)
		var dec Container
		_, err := dec.ReadFrom(bytes.NewReader(bad))
		return err
	}

	if err := tamper(func(b []byte) { b[headerLen] = 0xFF }); !errors.Is(err, ErrHeader) && !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized block count: err = %v, want ErrHeader or ErrTruncated", err)
	}
	// Break contiguity: bump block 1's offset.
	if err := tamper(func(b []byte) { b[headerLen+4+20] += 1 }); !errors.Is(err, ErrHeader) {
		t.Errorf("non-contiguous index: err = %v, want ErrHeader", err)
	}
	// Flip a CRC byte: the matching block must fail its incremental check.
	if err := tamper(func(b []byte) { b[headerLen+4+16] ^= 0x01 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad block CRC: err = %v, want ErrCorrupt", err)
	}
	// Flip a payload byte.
	if err := tamper(func(b []byte) { b[len(b)-1] ^= 0x01 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: err = %v, want ErrCorrupt", err)
	}
}

// FuzzContainerReadFrom fuzzes the streaming decoder against arbitrary byte
// streams — truncated reads, corrupted block indexes, short payloads — and
// cross-checks it with the byte-slice Decode: whenever Decode accepts a
// slice, ReadFrom must accept the same bytes, consume all of them, and
// produce the identical container (and vice versa for the consumed prefix).
// The one-byte reader variant forces every incremental code path.
func FuzzContainerReadFrom(f *testing.F) {
	seed := func(c Container) []byte {
		enc, err := c.Encode()
		if err != nil {
			f.Fatal(err)
		}
		return enc
	}
	v1, err := New("sz:abs", 1e-3, 11.7, Float32, grid.MustDims(4, 8), []byte{1, 2, 3, 4, 5})
	if err != nil {
		f.Fatal(err)
	}
	v2, err := NewBlocked("zfp:accuracy", 0.5, 4, Float32, grid.MustDims(6, 8), [][]byte{{1, 2, 3}, {4, 5}, {}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed(v1))
	f.Add(seed(v2))
	f.Add(seed(v1)[:11])              // truncated mid-header
	f.Add(seed(v2)[:len(seed(v2))-2]) // short payload
	f.Add(append(seed(v1), 0xAA))     // trailing byte
	corrupted := seed(v2)
	corrupted[len(corrupted)-1] ^= 0x01 // corrupted last block payload
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		var viaStream Container
		n, streamErr := viaStream.ReadFrom(bytes.NewReader(data))

		var viaOneByte Container
		n1, oneByteErr := viaOneByte.ReadFrom(iotest.OneByteReader(bytes.NewReader(data)))
		if (streamErr == nil) != (oneByteErr == nil) || n != n1 {
			t.Fatalf("chunking changed the outcome: (%d, %v) vs one-byte (%d, %v)", n, streamErr, n1, oneByteErr)
		}

		sliceDec, sliceErr := Decode(data)
		if sliceErr == nil {
			if streamErr != nil {
				t.Fatalf("Decode accepted %d bytes, ReadFrom rejected them: %v", len(data), streamErr)
			}
			if n != int64(len(data)) {
				t.Fatalf("Decode accepted %d bytes, ReadFrom consumed %d", len(data), n)
			}
			if !containersEqual(sliceDec, viaStream) {
				t.Fatalf("Decode and ReadFrom disagree: %+v vs %+v", sliceDec.Header, viaStream.Header)
			}
		}
		if streamErr == nil {
			if !containersEqual(viaStream, viaOneByte) {
				t.Fatalf("chunking changed the decoded container")
			}
			// The consumed prefix is a complete archive: Decode must agree.
			prefix, err := Decode(data[:n])
			if err != nil {
				t.Fatalf("ReadFrom consumed %d bytes Decode rejects: %v", n, err)
			}
			if !containersEqual(prefix, viaStream) {
				t.Fatalf("prefix Decode disagrees with ReadFrom")
			}
		} else if viaStream.Header.Codec != "" || viaStream.Payload != nil || viaStream.Blocks != nil {
			t.Fatalf("receiver modified on error: %+v", viaStream)
		}
	})
}
