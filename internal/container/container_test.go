package container

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"fraz/internal/grid"
)

func sample(t *testing.T) Container {
	t.Helper()
	c, err := New("sz:abs", 1e-3, 11.7, grid.MustDims(4, 8, 16), []byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := sample(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != c.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", c.EncodedSize(), len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Version != Version || dec.Header.Codec != "sz:abs" ||
		dec.Header.Bound != 1e-3 || dec.Header.Ratio != 11.7 ||
		dec.Header.DType != Float32 || !dec.Header.Shape.Equal(c.Header.Shape) {
		t.Errorf("header mismatch: %+v", dec.Header)
	}
	if !bytes.Equal(dec.Payload, c.Payload) {
		t.Errorf("payload mismatch: %v", dec.Payload)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	c, err := New("flate:lossless", 0, 1, grid.MustDims(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Payload) != 0 {
		t.Errorf("payload = %v, want empty", dec.Payload)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[0] = 'X'
	if _, err := Decode(enc); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("not a fraz file at all")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("text input: err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[4] = 0xFF // bump the version field
	enc[5] = 0x7F
	if _, err := Decode(enc); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[len(enc)-1] ^= 0x40 // flip a payload bit under the CRC
	if _, err := Decode(enc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	for _, cut := range []int{1, 5, 9, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	if _, err := Decode(append(enc, 0)); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for trailing bytes", err)
	}
}

func TestNewValidatesHeader(t *testing.T) {
	shape := grid.MustDims(8)
	cases := []struct {
		name  string
		codec string
		bound float64
		ratio float64
		shape grid.Dims
	}{
		{"empty codec", "", 1, 1, shape},
		{"long codec", strings.Repeat("x", 256), 1, 1, shape},
		{"nan bound", "sz:abs", math.NaN(), 1, shape},
		{"negative bound", "sz:abs", -5, 1, shape},
		{"inf ratio", "sz:abs", 1, math.Inf(1), shape},
		{"negative ratio", "sz:abs", 1, -1, shape},
		{"nil shape", "sz:abs", 1, 1, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.codec, tc.bound, tc.ratio, tc.shape, nil); !errors.Is(err, ErrHeader) {
			t.Errorf("%s: err = %v, want ErrHeader", tc.name, err)
		}
	}
}

func TestEncodeValidatesHandAssembledHeader(t *testing.T) {
	c := Container{Header: Header{Version: Version, Codec: "sz:abs", DType: 99, Shape: grid.MustDims(4)}}
	if _, err := c.Encode(); !errors.Is(err, ErrHeader) {
		t.Errorf("unknown dtype: err = %v, want ErrHeader", err)
	}
}

func TestDecodeRejectsZeroExtent(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	// The first extent's u64 starts after magic(4) version(2) dtype(1)
	// rank(1) len(1)+codec(6) bound(8) ratio(8).
	off := 4 + 2 + 1 + 1 + 1 + len(c.Header.Codec) + 8 + 8
	for i := 0; i < 8; i++ {
		enc[off+i] = 0
	}
	if _, err := Decode(enc); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for zero extent", err)
	}
}

func TestHeaderString(t *testing.T) {
	s := sample(t).Header.String()
	for _, want := range []string{"sz:abs", "float32", "4x8x16", "0.001"} {
		if !strings.Contains(s, want) {
			t.Errorf("Header.String() = %q missing %q", s, want)
		}
	}
}

// FuzzContainerRoundTrip checks that any container that encodes also decodes
// to an identical value, and that flipping any payload byte is rejected by
// the CRC.
func FuzzContainerRoundTrip(f *testing.F) {
	f.Add("sz:abs", 1e-4, 12.5, uint8(3), 7, []byte{1, 2, 3})
	f.Add("zfp:rate", 8.0, 4.0, uint8(1), 100, []byte{})
	f.Add("mgard:abs", 0.5, 1.0, uint8(4), 2, []byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, codec string, bound, ratio float64, rank uint8, extent int, payload []byte) {
		r := int(rank%4) + 1
		if extent <= 0 {
			extent = -extent + 1
		}
		extent = extent%16 + 1
		shape := make(grid.Dims, r)
		for i := range shape {
			shape[i] = extent + i
		}
		c, err := New(codec, bound, ratio, shape, payload)
		if err != nil {
			return // invalid header inputs are allowed to be rejected
		}
		enc, err := c.Encode()
		if err != nil {
			t.Fatalf("New accepted but Encode failed: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of valid stream failed: %v", err)
		}
		if dec.Header.Codec != c.Header.Codec || dec.Header.Bound != c.Header.Bound ||
			dec.Header.Ratio != c.Header.Ratio || !dec.Header.Shape.Equal(c.Header.Shape) {
			t.Fatalf("header round trip mismatch: sent %+v got %+v", c.Header, dec.Header)
		}
		if !bytes.Equal(dec.Payload, c.Payload) {
			t.Fatalf("payload round trip mismatch")
		}
		if len(payload) > 0 {
			bad := append([]byte(nil), enc...)
			bad[len(bad)-1] ^= 0x01
			if _, err := Decode(bad); err == nil {
				t.Fatalf("corrupted payload byte not rejected")
			}
		}
	})
}
