package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"fraz/internal/grid"
)

func sample(t *testing.T) Container {
	t.Helper()
	c, err := New("sz:abs", 1e-3, 11.7, Float32, grid.MustDims(4, 8, 16), []byte{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := sample(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != c.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", c.EncodedSize(), len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Version != Version || dec.Header.Codec != "sz:abs" ||
		dec.Header.Bound != 1e-3 || dec.Header.Ratio != 11.7 ||
		dec.Header.DType != Float32 || !dec.Header.Shape.Equal(c.Header.Shape) {
		t.Errorf("header mismatch: %+v", dec.Header)
	}
	if !bytes.Equal(dec.Payload, c.Payload) {
		t.Errorf("payload mismatch: %v", dec.Payload)
	}
}

func TestRoundTripEmptyPayload(t *testing.T) {
	c, err := New("flate:lossless", 0, 1, Float32, grid.MustDims(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Payload) != 0 {
		t.Errorf("payload = %v, want empty", dec.Payload)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[0] = 'X'
	if _, err := Decode(enc); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("not a fraz file at all")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("text input: err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[4] = 0xFF // bump the version field
	enc[5] = 0x7F
	if _, err := Decode(enc); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	enc[len(enc)-1] ^= 0x40 // flip a payload bit under the CRC
	if _, err := Decode(enc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	for _, cut := range []int{1, 5, 9, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	if _, err := Decode(append(enc, 0)); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for trailing bytes", err)
	}
}

func TestNewValidatesHeader(t *testing.T) {
	shape := grid.MustDims(8)
	cases := []struct {
		name  string
		codec string
		bound float64
		ratio float64
		shape grid.Dims
	}{
		{"empty codec", "", 1, 1, shape},
		{"long codec", strings.Repeat("x", 256), 1, 1, shape},
		{"nan bound", "sz:abs", math.NaN(), 1, shape},
		{"negative bound", "sz:abs", -5, 1, shape},
		{"inf ratio", "sz:abs", 1, math.Inf(1), shape},
		{"negative ratio", "sz:abs", 1, -1, shape},
		{"nil shape", "sz:abs", 1, 1, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.codec, tc.bound, tc.ratio, Float32, tc.shape, nil); !errors.Is(err, ErrHeader) {
			t.Errorf("%s: err = %v, want ErrHeader", tc.name, err)
		}
	}
}

func TestEncodeValidatesHandAssembledHeader(t *testing.T) {
	c := Container{Header: Header{Version: Version, Codec: "sz:abs", DType: 99, Shape: grid.MustDims(4)}}
	if _, err := c.Encode(); !errors.Is(err, ErrHeader) {
		t.Errorf("unknown dtype: err = %v, want ErrHeader", err)
	}
}

func TestDecodeRejectsZeroExtent(t *testing.T) {
	c := sample(t)
	enc, _ := c.Encode()
	// The first extent's u64 starts after magic(4) version(2) dtype(1)
	// rank(1) len(1)+codec(6) bound(8) ratio(8).
	off := 4 + 2 + 1 + 1 + 1 + len(c.Header.Codec) + 8 + 8
	for i := 0; i < 8; i++ {
		enc[off+i] = 0
	}
	if _, err := Decode(enc); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for zero extent", err)
	}
}

func TestHeaderString(t *testing.T) {
	s := sample(t).Header.String()
	for _, want := range []string{"sz:abs", "float32", "4x8x16", "0.001"} {
		if !strings.Contains(s, want) {
			t.Errorf("Header.String() = %q missing %q", s, want)
		}
	}
}

func sampleBlocked(t *testing.T) Container {
	t.Helper()
	payloads := [][]byte{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	c, err := NewBlocked("sz:abs", 1e-3, 11.7, Float32, grid.MustDims(6, 8, 16), payloads)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBlockedRoundTrip(t *testing.T) {
	c := sampleBlocked(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != c.EncodedSize() {
		t.Errorf("EncodedSize = %d, encoded %d bytes", c.EncodedSize(), len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Version != VersionBlocked || dec.NumBlocks() != 3 {
		t.Fatalf("decoded version %d with %d blocks, want v%d with 3", dec.Header.Version, dec.NumBlocks(), VersionBlocked)
	}
	want := [][]byte{{1, 2, 3}, {4, 5}, {6, 7, 8, 9}}
	for i, w := range want {
		p, err := dec.BlockPayload(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, w) {
			t.Errorf("block %d payload = %v, want %v", i, p, w)
		}
	}
	if !bytes.Equal(dec.Payload, c.Payload) {
		t.Errorf("concatenated payload mismatch")
	}
}

func TestBlockedRejectsPerBlockCorruption(t *testing.T) {
	c := sampleBlocked(t)
	enc, _ := c.Encode()
	// Flip one byte inside the middle block's payload.
	mid := len(enc) - len(c.Payload) + int(c.Blocks[1].Offset)
	enc[mid] ^= 0x10
	if _, err := Decode(enc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for a corrupted block", err)
	}
}

func TestBlockedRejectsTruncation(t *testing.T) {
	c := sampleBlocked(t)
	enc, _ := c.Encode()
	for _, cut := range []int{7, 40, len(enc) - len(c.Payload) + 1, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrHeader) {
		t.Errorf("trailing garbage should be rejected")
	}
}

func TestNewBlockedValidatesBlockCount(t *testing.T) {
	// More blocks than slowest-axis rows cannot come from a valid plan.
	payloads := [][]byte{{1}, {2}, {3}, {4}}
	if _, err := NewBlocked("sz:abs", 1e-3, 2, Float32, grid.MustDims(3, 8), payloads); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for 4 blocks over 3 rows", err)
	}
	if _, err := NewBlocked("sz:abs", 1e-3, 2, Float32, grid.MustDims(3, 8), nil); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for zero blocks", err)
	}
}

func TestBlockedEncodeValidatesHandAssembledIndex(t *testing.T) {
	c := sampleBlocked(t)
	c.Blocks[1].Offset++ // break contiguity
	if _, err := c.Encode(); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for a gap in the index", err)
	}
	c = sampleBlocked(t)
	c.Blocks[2].Length-- // index no longer covers the payload
	if _, err := c.Encode(); !errors.Is(err, ErrHeader) {
		t.Errorf("err = %v, want ErrHeader for an index/payload size mismatch", err)
	}
}

// TestV1StreamStillDecodes pins the version-1 wire format: a byte stream
// assembled by hand against the documented layout (not via Encode) must
// keep decoding unchanged after the format gained version 2.
func TestV1StreamStillDecodes(t *testing.T) {
	payload := []byte{9, 8, 7}
	var enc []byte
	enc = append(enc, 'F', 'R', 'Z', 0x01) // magic
	enc = append(enc, 1, 0)                // version 1
	enc = append(enc, 0)                   // dtype float32
	enc = append(enc, 1)                   // rank 1
	enc = append(enc, 2, 's', 'z')         // codec "sz"
	bound := make([]byte, 8)
	binary.LittleEndian.PutUint64(bound, math.Float64bits(0.5))
	enc = append(enc, bound...)
	ratio := make([]byte, 8)
	binary.LittleEndian.PutUint64(ratio, math.Float64bits(4))
	enc = append(enc, ratio...)
	ext := make([]byte, 8)
	binary.LittleEndian.PutUint64(ext, 16)
	enc = append(enc, ext...)
	plen := make([]byte, 8)
	binary.LittleEndian.PutUint64(plen, uint64(len(payload)))
	enc = append(enc, plen...)
	crc := make([]byte, 4)
	binary.LittleEndian.PutUint32(crc, crc32.ChecksumIEEE(payload))
	enc = append(enc, crc...)
	enc = append(enc, payload...)

	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header.Version != 1 || dec.Header.Codec != "sz" || dec.Header.Bound != 0.5 ||
		dec.Header.Ratio != 4 || !dec.Header.Shape.Equal(grid.MustDims(16)) {
		t.Errorf("v1 header mismatch: %+v", dec.Header)
	}
	if dec.Blocks != nil || dec.NumBlocks() != 1 {
		t.Errorf("v1 stream should decode as monolithic, got %d blocks", dec.NumBlocks())
	}
	if !bytes.Equal(dec.Payload, payload) {
		t.Errorf("v1 payload mismatch: %v", dec.Payload)
	}
	if p, err := dec.BlockPayload(0); err != nil || !bytes.Equal(p, payload) {
		t.Errorf("BlockPayload(0) = %v, %v", p, err)
	}
}

// FuzzContainerRoundTrip checks that any container that encodes also decodes
// to an identical value, and that flipping any payload byte is rejected by
// the CRC.
func FuzzContainerRoundTrip(f *testing.F) {
	f.Add("sz:abs", 1e-4, 12.5, uint8(3), 7, []byte{1, 2, 3})
	f.Add("zfp:rate", 8.0, 4.0, uint8(1), 100, []byte{})
	f.Add("mgard:abs", 0.5, 1.0, uint8(4), 2, []byte{0xFF, 0x00})
	f.Fuzz(func(t *testing.T, codec string, bound, ratio float64, rank uint8, extent int, payload []byte) {
		r := int(rank%4) + 1
		if extent <= 0 {
			extent = -extent + 1
		}
		extent = extent%16 + 1
		shape := make(grid.Dims, r)
		for i := range shape {
			shape[i] = extent + i
		}
		c, err := New(codec, bound, ratio, Float32, shape, payload)
		if err != nil {
			return // invalid header inputs are allowed to be rejected
		}
		enc, err := c.Encode()
		if err != nil {
			t.Fatalf("New accepted but Encode failed: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of valid stream failed: %v", err)
		}
		if dec.Header.Codec != c.Header.Codec || dec.Header.Bound != c.Header.Bound ||
			dec.Header.Ratio != c.Header.Ratio || !dec.Header.Shape.Equal(c.Header.Shape) {
			t.Fatalf("header round trip mismatch: sent %+v got %+v", c.Header, dec.Header)
		}
		if !bytes.Equal(dec.Payload, c.Payload) {
			t.Fatalf("payload round trip mismatch")
		}
		if len(payload) > 0 {
			bad := append([]byte(nil), enc...)
			bad[len(bad)-1] ^= 0x01
			if _, err := Decode(bad); err == nil {
				t.Fatalf("corrupted payload byte not rejected")
			}
		}
	})
}

// FuzzBlockedContainerRoundTrip is the version-2 counterpart: arbitrary
// payload bytes split into blocks must round-trip through the blocked
// encoding, and flipping any payload byte must trip a per-block CRC.
func FuzzBlockedContainerRoundTrip(f *testing.F) {
	f.Add("sz:abs", 1e-4, 12.5, uint8(3), 7, uint8(4), []byte{1, 2, 3, 4, 5, 6, 7})
	f.Add("zfp:accuracy", 0.5, 4.0, uint8(1), 9, uint8(2), []byte{0xFF, 0x00})
	f.Add("flate:lossless", 0.0, 1.0, uint8(2), 3, uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, codec string, bound, ratio float64, rank uint8, extent int, nBlocks uint8, blob []byte) {
		r := int(rank%4) + 1
		if extent <= 0 {
			extent = -extent + 1
		}
		extent = extent%16 + 1
		shape := make(grid.Dims, r)
		for i := range shape {
			shape[i] = extent + i
		}
		n := int(nBlocks)%shape[0] + 1
		// Slice the fuzzed blob into n payloads (some possibly empty).
		payloads := make([][]byte, n)
		for i := range payloads {
			lo, hi := i*len(blob)/n, (i+1)*len(blob)/n
			payloads[i] = blob[lo:hi]
		}
		c, err := NewBlocked(codec, bound, ratio, Float32, shape, payloads)
		if err != nil {
			return // invalid header inputs are allowed to be rejected
		}
		enc, err := c.Encode()
		if err != nil {
			t.Fatalf("NewBlocked accepted but Encode failed: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of valid blocked stream failed: %v", err)
		}
		if dec.Header.Version != VersionBlocked || dec.NumBlocks() != n {
			t.Fatalf("decoded v%d with %d blocks, want v%d with %d", dec.Header.Version, dec.NumBlocks(), VersionBlocked, n)
		}
		for i := range payloads {
			p, err := dec.BlockPayload(i)
			if err != nil || !bytes.Equal(p, payloads[i]) {
				t.Fatalf("block %d payload mismatch: %v, %v", i, p, err)
			}
		}
		if len(blob) > 0 {
			bad := append([]byte(nil), enc...)
			bad[len(bad)-1-len(blob)/2] ^= 0x01
			if _, err := Decode(bad); err == nil {
				t.Fatalf("corrupted blocked payload byte not rejected")
			}
		}
	})
}

// TestObjectiveExtensionRoundTrip pins the v2-compatible objective header
// extension: an objective recorded on a monolithic or blocked container
// survives Encode/Decode and streaming ReadFrom, and shows up in String.
func TestObjectiveExtensionRoundTrip(t *testing.T) {
	obj := Objective{Name: "psnr", Target: 60, Tolerance: 3, Achieved: 61.2}
	for _, blocked := range []bool{false, true} {
		c := sample(t)
		if blocked {
			c = sampleBlocked(t)
		}
		c.Header.Objective = obj
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != c.EncodedSize() {
			t.Errorf("blocked=%v: encoded %d bytes, EncodedSize says %d", blocked, len(enc), c.EncodedSize())
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Header.Objective != obj {
			t.Errorf("blocked=%v: objective round trip = %+v, want %+v", blocked, dec.Header.Objective, obj)
		}
		if !bytes.Equal(dec.Payload, c.Payload) {
			t.Errorf("blocked=%v: payload corrupted by objective extension", blocked)
		}
		if s := dec.Header.String(); !strings.Contains(s, "objective=psnr") {
			t.Errorf("String() omits the objective: %q", s)
		}
	}
}

// TestObjectiveExtensionByteCompat pins that containers WITHOUT an objective
// still encode byte-for-byte what the pre-extension format produced: the
// rank byte carries no flag and no extension bytes appear, so fixed-ratio
// archives stay readable by earlier builds.
func TestObjectiveExtensionByteCompat(t *testing.T) {
	c := sample(t)
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc[7] != 3 {
		t.Errorf("rank byte = %#x, want plain rank 3 with no objective flag", enc[7])
	}
	// Reconstruct the documented pre-extension layout by hand and compare.
	var want []byte
	want = append(want, 'F', 'R', 'Z', 0x01)
	want = append(want, 1, 0) // version 1
	want = append(want, 0)    // dtype
	want = append(want, 3)    // rank
	want = append(want, byte(len("sz:abs")))
	want = append(want, "sz:abs"...)
	want = binary.LittleEndian.AppendUint64(want, math.Float64bits(1e-3))
	want = binary.LittleEndian.AppendUint64(want, math.Float64bits(11.7))
	for _, e := range []uint64{4, 8, 16} {
		want = binary.LittleEndian.AppendUint64(want, e)
	}
	want = binary.LittleEndian.AppendUint64(want, uint64(len(c.Payload)))
	want = binary.LittleEndian.AppendUint32(want, crc32.ChecksumIEEE(c.Payload))
	want = append(want, c.Payload...)
	if !bytes.Equal(enc, want) {
		t.Errorf("no-objective encoding drifted from the pre-extension layout:\n got %x\nwant %x", enc, want)
	}
}

// TestObjectiveExtensionHandAssembled decodes a hand-assembled extended
// stream against the documented layout, independent of Encode.
func TestObjectiveExtensionHandAssembled(t *testing.T) {
	payload := []byte{9, 8, 7}
	var enc []byte
	enc = append(enc, 'F', 'R', 'Z', 0x01)
	enc = append(enc, 1, 0)        // version 1
	enc = append(enc, 0)           // dtype float32
	enc = append(enc, 0x80|1)      // objective flag | rank 1
	enc = append(enc, 2, 's', 'z') // codec "sz"
	enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(0.5))
	enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(4))
	enc = binary.LittleEndian.AppendUint64(enc, 16) // shape
	enc = append(enc, byte(len("ssim")))
	enc = append(enc, "ssim"...)
	enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(0.95))
	enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(0.02))
	enc = binary.LittleEndian.AppendUint64(enc, math.Float64bits(0.961))
	enc = binary.LittleEndian.AppendUint64(enc, uint64(len(payload)))
	enc = binary.LittleEndian.AppendUint32(enc, crc32.ChecksumIEEE(payload))
	enc = append(enc, payload...)

	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := Objective{Name: "ssim", Target: 0.95, Tolerance: 0.02, Achieved: 0.961}
	if dec.Header.Objective != want {
		t.Errorf("decoded objective = %+v, want %+v", dec.Header.Objective, want)
	}
	if !dec.Header.Shape.Equal(grid.MustDims(16)) {
		t.Errorf("rank bits misparsed: shape %v", dec.Header.Shape)
	}

	// Truncating inside the extension is ErrTruncated, not a misparse.
	if _, err := Decode(enc[:20]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated extension: err = %v, want ErrTruncated", err)
	}
}

// TestObjectiveValidation rejects malformed objective headers at encode time.
func TestObjectiveValidation(t *testing.T) {
	cases := []struct {
		name string
		obj  Objective
	}{
		{"NaN target", Objective{Name: "psnr", Target: math.NaN()}},
		{"Inf target", Objective{Name: "psnr", Target: math.Inf(1)}},
		{"negative tolerance", Objective{Name: "psnr", Target: 60, Tolerance: -1}},
		{"NaN achieved", Objective{Name: "psnr", Target: 60, Achieved: math.NaN()}},
		{"overlong name", Objective{Name: strings.Repeat("x", 256), Target: 60}},
	}
	for _, tc := range cases {
		c := sample(t)
		c.Header.Objective = tc.obj
		if _, err := c.Encode(); !errors.Is(err, ErrHeader) {
			t.Errorf("%s: Encode err = %v, want ErrHeader", tc.name, err)
		}
	}
	// An infinite achieved value (lossless PSNR) is legal.
	c := sample(t)
	c.Header.Objective = Objective{Name: "psnr", Target: 60, Tolerance: 3, Achieved: math.Inf(1)}
	enc, err := c.Encode()
	if err != nil {
		t.Fatalf("infinite achieved value rejected: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil || !math.IsInf(dec.Header.Objective.Achieved, 1) {
		t.Errorf("infinite achieved round trip = %+v, %v", dec.Header.Objective, err)
	}
}
