package container

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"fraz/internal/grid"
)

// The streaming benchmarks quantify what WriteTo/ReadFrom save over the
// in-memory Encode/Decode pair on a payload the size of a 64 MB field's
// compressed blocks: Encode stages the whole archive in a second buffer
// before it can reach a file, and Decode needs the whole archive resident
// before parsing starts, while the streaming pair touch the payload exactly
// once each.

const benchPayloadBytes = 64 << 20

var (
	benchContainerOnce sync.Once
	benchContainer     Container
	benchEncoded       []byte
)

// benchSetup builds one blocked container with 8 blocks of pseudo-random
// payload (the container layer never inspects payload bytes, so random data
// stands in for any codec's output) and its encoded stream.
func benchSetup(b *testing.B) (Container, []byte) {
	b.Helper()
	benchContainerOnce.Do(func() {
		r := rand.New(rand.NewSource(1))
		payload := make([]byte, benchPayloadBytes)
		r.Read(payload)
		const nBlocks = 8
		payloads := make([][]byte, nBlocks)
		for i := range payloads {
			payloads[i] = payload[i*len(payload)/nBlocks : (i+1)*len(payload)/nBlocks]
		}
		c, err := NewBlocked("sz:abs", 1e-3, 10, Float32, grid.MustDims(64, 512, 512), payloads)
		if err != nil {
			panic(err)
		}
		enc, err := c.Encode()
		if err != nil {
			panic(err)
		}
		benchContainer, benchEncoded = c, enc
	})
	return benchContainer, benchEncoded
}

func BenchmarkContainerEncode(b *testing.B) {
	c, _ := benchSetup(b)
	b.SetBytes(int64(c.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerWriteTo(b *testing.B) {
	c, _ := benchSetup(b)
	b.SetBytes(int64(c.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerDecode(b *testing.B) {
	_, enc := benchSetup(b)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerReadFrom(b *testing.B) {
	_, enc := benchSetup(b)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Container
		if _, err := c.ReadFrom(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}
