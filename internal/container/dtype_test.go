package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"fraz/internal/grid"
)

// TestFloat64HeaderRoundTrip pins that the dtype byte survives an
// encode/decode round trip at both widths and that element sizes resolve.
func TestFloat64HeaderRoundTrip(t *testing.T) {
	for _, dt := range []DType{Float32, Float64} {
		c, err := New("sz:abs", 1e-3, 9.5, dt, grid.MustDims(3, 4), []byte{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Header.DType != dt {
			t.Errorf("dtype = %v, want %v", dec.Header.DType, dt)
		}
	}
	if Float32.Size() != 4 || Float64.Size() != 8 || DType(7).Size() != 0 {
		t.Errorf("DType.Size table wrong: %d %d %d", Float32.Size(), Float64.Size(), DType(7).Size())
	}
	if Float32.String() != "float32" || Float64.String() != "float64" {
		t.Errorf("DType.String table wrong: %q %q", Float32, Float64)
	}
}

// TestUnknownDTypeRejected pins that constructors and the decoder both
// reject dtype bytes this build does not understand, instead of carrying an
// undecodable payload around.
func TestUnknownDTypeRejected(t *testing.T) {
	if _, err := New("sz:abs", 1e-3, 9.5, DType(7), grid.MustDims(4), []byte{1}); !errors.Is(err, ErrHeader) {
		t.Errorf("New with dtype 7: err = %v, want ErrHeader", err)
	}
	c, err := New("sz:abs", 1e-3, 9.5, Float32, grid.MustDims(4), []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc[6] = 7 // dtype byte
	if _, err := Decode(enc); !errors.Is(err, ErrHeader) {
		t.Errorf("Decode with dtype 7: err = %v, want ErrHeader", err)
	}
}

// float64ArchiveBytes hand-assembles a version-1 dtype=1 container for the
// documented layout: a 2x3 float64 "sz:abs" field with a 5-byte payload.
func float64ArchiveBytes(t testing.TB) []byte {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	var b bytes.Buffer
	b.Write([]byte{'F', 'R', 'Z', 0x01})                          // magic
	b.Write([]byte{0x01, 0x00})                                   // version 1
	b.WriteByte(0x01)                                             // dtype = float64
	b.WriteByte(0x02)                                             // rank 2, no extension flag
	b.WriteByte(6)                                                // codec name length
	b.WriteString("sz:abs")                                       //
	binary.Write(&b, binary.LittleEndian, math.Float64bits(0.25)) // bound
	binary.Write(&b, binary.LittleEndian, math.Float64bits(7.5))  // ratio
	binary.Write(&b, binary.LittleEndian, uint64(2))              // extent 0
	binary.Write(&b, binary.LittleEndian, uint64(3))              // extent 1
	binary.Write(&b, binary.LittleEndian, uint64(len(payload)))   // payload length
	binary.Write(&b, binary.LittleEndian, crc32IEEE(payload))     // CRC
	b.Write(payload)
	return b.Bytes()
}

// TestFloat64ContainerHandAssembled decodes a dtype=1 stream assembled by
// hand against the documented layout — not via Encode — and pins that Encode
// reproduces those bytes exactly, so the float64 wire format cannot drift.
func TestFloat64ContainerHandAssembled(t *testing.T) {
	raw := float64ArchiveBytes(t)
	c, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Header
	if h.Version != 1 || h.DType != Float64 || h.Codec != "sz:abs" ||
		h.Bound != 0.25 || h.Ratio != 7.5 || !h.Shape.Equal(grid.MustDims(2, 3)) {
		t.Fatalf("decoded header %+v", h)
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, raw) {
		t.Errorf("Encode does not reproduce the hand-assembled dtype=1 bytes\n got %x\nwant %x", enc, raw)
	}
}

// FuzzReadFromFloat64 throws mutated dtype=1 archives at ReadFrom:
// truncations, corrupted block indexes, and dtype/length mutations must
// produce errors, never panics, and whatever decodes must re-encode to a
// stream that decodes identically.
func FuzzReadFromFloat64(f *testing.F) {
	f.Add(float64ArchiveBytes(f))

	// A blocked (v2) dtype=1 archive with three blocks.
	blocked, err := NewBlocked("zfp:accuracy", 1e-2, 4, Float64, grid.MustDims(6, 2),
		[][]byte{{1, 2, 3}, {4, 5}, {}})
	if err != nil {
		f.Fatal(err)
	}
	bEnc, err := blocked.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bEnc)
	// Seeds for the classic failure classes: truncation, a corrupted block
	// index entry, and a flipped dtype byte.
	f.Add(bEnc[:len(bEnc)/2])
	corrupt := append([]byte(nil), bEnc...)
	corrupt[len(corrupt)-len(blocked.Payload)-3] ^= 0xff
	f.Add(corrupt)
	flipped := append([]byte(nil), float64ArchiveBytes(f)...)
	flipped[6] = 0 // claims float32 for a float64 archive's sizes
	f.Add(flipped)
	flipped2 := append([]byte(nil), float64ArchiveBytes(f)...)
	flipped2[6] = 42 // unknown dtype must error
	f.Add(flipped2)

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Container
		if _, err := c.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Whatever decoded must carry a dtype this build understands...
		if c.Header.DType.Size() == 0 {
			t.Fatalf("decoded container with unknown dtype %d", c.Header.DType)
		}
		// ...and survive a re-encode/decode round trip unchanged.
		enc, err := c.Encode()
		if err != nil {
			t.Fatalf("decoded container does not re-encode: %v", err)
		}
		c2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded container does not decode: %v", err)
		}
		if c2.Header.DType != c.Header.DType || !c2.Header.Shape.Equal(c.Header.Shape) ||
			!bytes.Equal(c2.Payload, c.Payload) {
			t.Fatalf("round trip changed the container: %+v vs %+v", c.Header, c2.Header)
		}
	})
}

func crc32IEEE(p []byte) uint32 {
	var d crc32Digest
	d.write(p)
	return d.sum
}
