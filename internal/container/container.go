// Package container defines the self-describing `.fraz` on-disk format.
//
// The compressor adapters in internal/pressio emit bare byte blobs that
// cannot be decoded without out-of-band knowledge of the codec, the tuned
// error bound, and the data shape. A Container wraps such a blob in a small
// versioned header carrying exactly that metadata — the same role
// libpressio's pressio_data metadata (and SZx's typed stream header) plays
// for the systems the paper builds on — so an archived artifact can be
// decompressed years later by name alone.
//
// Common layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "FRZ\x01"
//	4       2     format version (1 = monolithic, 2 = blocked)
//	6       1     dtype (0 = float32, 1 = float64)
//	7       1     flags (bit 7: objective extension present) | rank (1..4)
//	8       1     codec name length L (1..255)
//	9       L     codec name (e.g. "sz:abs")
//	...     8     tuned bound (IEEE-754 float64)
//	...     8     achieved ratio (IEEE-754 float64)
//	...     8×R   shape extents, slowest dimension first (uint64 each)
//
// When bit 7 of the rank byte is set, an objective extension follows the
// shape extents — a v2-compatible extension recording *what the archive
// promised*: the tuning objective the bound was searched for, its target,
// the absolute half-width of the acceptance band, and the value actually
// achieved. It is orthogonal to the payload layout (both v1 and v2 streams
// may carry it); streams without it are byte-for-byte what earlier builds
// wrote, and this build still reads those. Earlier builds reject extended
// streams (they see an out-of-range rank) rather than silently dropping the
// promise:
//
//	...     1     objective name length Q (1..255)
//	...     Q     objective name (e.g. "psnr", "ssim", "max-error")
//	...     8     objective target (IEEE-754 float64)
//	...     8     acceptance band half-width (IEEE-754 float64, absolute)
//	...     8     achieved value (IEEE-754 float64)
//
// A version-1 stream then carries one monolithic payload:
//
//	...     8     payload length N (uint64)
//	...     4     CRC-32 (IEEE) of the payload
//	...     N     payload (the codec's compressed stream)
//
// A version-2 (blocked) stream instead carries a block index followed by
// independently-decodable block payloads. Blocks partition the field along
// its slowest axis (internal/blocks.Plan over the header shape and the block
// count reproduces every block's sub-shape), so each payload can be
// decompressed — and its CRC verified — independently and in parallel:
//
//	...     4     block count B (uint32, 1..shape[0])
//	per block (B times):
//	...     8     payload offset (uint64, from the start of the payload area)
//	...     8     payload length (uint64)
//	...     4     CRC-32 (IEEE) of the block payload
//	...     ΣN    block payloads, concatenated in index order
//
// Encoding and decoding use sticky-error readers/writers in the style of
// internal/bitstream: every field accessor checks and records the first
// failure, and the caller inspects a single error at the end.
package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"fraz/internal/grid"
	"fraz/internal/pool"
)

// Version is the monolithic (single-payload) format version, written by
// Encode for containers without a block index.
const Version = 1

// VersionBlocked is the blocked format version: a block index followed by
// independently-decodable block payloads.
const VersionBlocked = 2

// maxVersion is the newest format version this build decodes.
const maxVersion = VersionBlocked

// MaxBlocks caps the block count a stream may declare, bounding the index
// allocation a hostile header can demand before any payload is read.
const MaxBlocks = 1 << 20

// magic identifies a .fraz stream: "FRZ" plus a non-printable byte so text
// files are rejected immediately.
var magic = [4]byte{'F', 'R', 'Z', 0x01}

// DType enumerates the element types a container can carry.
//
//	dtype  element
//	0      float32 (IEEE-754 single precision)
//	1      float64 (IEEE-754 double precision)
type DType uint8

const (
	// Float32 marks single-precision payloads. It is the zero value, so
	// containers built before the dtype was threaded through decode as
	// float32 — exactly what they hold.
	Float32 DType = 0
	// Float64 marks double-precision payloads.
	Float64 DType = 1
)

// Size returns the element size in bytes, or 0 for an unknown dtype.
func (d DType) Size() int {
	switch d {
	case Float32:
		return 4
	case Float64:
		return 8
	}
	return 0
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Sentinel errors returned (wrapped) by Decode.
var (
	// ErrBadMagic means the stream does not start with the .fraz magic.
	ErrBadMagic = errors.New("container: not a .fraz stream (bad magic)")
	// ErrVersion means the stream was written by a newer format version.
	ErrVersion = errors.New("container: unsupported format version")
	// ErrTruncated means the stream ended before the header or payload did.
	ErrTruncated = errors.New("container: truncated stream")
	// ErrCorrupt means the payload failed its CRC-32 check.
	ErrCorrupt = errors.New("container: payload CRC mismatch")
	// ErrHeader means a header field holds an invalid value.
	ErrHeader = errors.New("container: invalid header field")
)

// objectiveFlag is the bit set on the rank byte when the header carries an
// objective extension. Builds without the extension reject the resulting
// out-of-range rank, so an archive's promise is never silently dropped.
const objectiveFlag = 0x80

// Objective records what an archive promised: the tuning objective its
// bound was searched for, the requested target, the absolute half-width of
// the acceptance band, and the value the tuned bound actually achieved.
// A zero Name means no objective was recorded (fixed-ratio archives keep
// the promise in the Bound/Ratio fields and stay byte-compatible with
// earlier builds).
type Objective struct {
	// Name is the objective's registered name, e.g. "psnr".
	Name string
	// Target is the requested objective value.
	Target float64
	// Tolerance is the absolute half-width of the acceptance band around
	// Target (already resolved from fractional semantics, so readers need
	// not know how the band was specified).
	Tolerance float64
	// Achieved is the objective value measured at the sealed bound.
	Achieved float64
}

// Header carries the metadata needed to decompress a payload without any
// out-of-band knowledge.
type Header struct {
	// Version is the format version the stream was written with.
	Version uint16
	// Codec is the registered compressor name, e.g. "sz:abs".
	Codec string
	// Bound is the tuned error-bound parameter the payload was compressed
	// with (bits per value for rate-mode codecs).
	Bound float64
	// Ratio is the compression ratio achieved at that bound.
	Ratio float64
	// DType is the element type of the uncompressed data.
	DType DType
	// Shape is the logical shape of the uncompressed data, slowest
	// dimension first.
	Shape grid.Dims
	// Objective optionally records the tuning objective the archive was
	// sealed for (zero Name = none recorded).
	Objective Objective
}

// BlockEntry locates one block's payload inside a blocked container.
type BlockEntry struct {
	// Offset is the byte offset of the block's payload from the start of the
	// payload area. Entries are contiguous: each offset equals the previous
	// entry's offset plus its length.
	Offset uint64
	// Length is the payload length in bytes.
	Length uint64
	// CRC is the CRC-32 (IEEE) of the block payload.
	CRC uint32
}

// Container couples a header with the codec's compressed payload. For a
// blocked (version-2) container, Payload is the concatenation of the block
// payloads and Blocks indexes into it; for version 1, Blocks is nil.
type Container struct {
	Header  Header
	Payload []byte
	Blocks  []BlockEntry
}

// New builds a Container with the current format version, validating the
// header fields that Encode would otherwise reject later.
func New(codec string, bound, ratio float64, dtype DType, shape grid.Dims, payload []byte) (Container, error) {
	c := Container{
		Header: Header{
			Version: Version,
			Codec:   codec,
			Bound:   bound,
			Ratio:   ratio,
			DType:   dtype,
			Shape:   shape.Clone(),
		},
		Payload: payload,
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	return c, nil
}

// NewBlocked builds a version-2 Container from per-block payloads, which
// must partition the field along its slowest axis in index order (one
// payload per block of internal/blocks.Plan(shape, len(payloads))). The
// payloads are concatenated and indexed with per-block CRCs so each one can
// be verified and decompressed independently.
func NewBlocked(codec string, bound, ratio float64, dtype DType, shape grid.Dims, payloads [][]byte) (Container, error) {
	c := Container{
		Header: Header{
			Version: VersionBlocked,
			Codec:   codec,
			Bound:   bound,
			Ratio:   ratio,
			DType:   dtype,
			Shape:   shape.Clone(),
		},
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	if len(payloads) < 1 || len(payloads) > c.Header.Shape[0] || len(payloads) > MaxBlocks {
		return Container{}, fmt.Errorf("%w: %d blocks for shape %s (want 1..%d)",
			ErrHeader, len(payloads), c.Header.Shape, min(c.Header.Shape[0], MaxBlocks))
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	c.Payload = make([]byte, 0, total)
	c.Blocks = make([]BlockEntry, len(payloads))
	for i, p := range payloads {
		c.Blocks[i] = BlockEntry{
			Offset: uint64(len(c.Payload)),
			Length: uint64(len(p)),
			CRC:    crc32.ChecksumIEEE(p),
		}
		c.Payload = append(c.Payload, p...)
	}
	return c, nil
}

// NumBlocks reports the number of blocks in the container: the index size
// for a blocked container, 1 for a monolithic one.
func (c Container) NumBlocks() int {
	if c.Blocks == nil {
		return 1
	}
	return len(c.Blocks)
}

// BlockPayload returns block i's payload as a subslice of Payload. For a
// monolithic container, index 0 returns the whole payload.
func (c Container) BlockPayload(i int) ([]byte, error) {
	if c.Blocks == nil {
		if i != 0 {
			return nil, fmt.Errorf("%w: block %d of a monolithic container", ErrHeader, i)
		}
		return c.Payload, nil
	}
	if i < 0 || i >= len(c.Blocks) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrHeader, i, len(c.Blocks))
	}
	b := c.Blocks[i]
	end := b.Offset + b.Length
	if end > uint64(len(c.Payload)) || end < b.Offset {
		return nil, fmt.Errorf("%w: block %d spans [%d,%d) of %d payload bytes", ErrHeader, i, b.Offset, end, len(c.Payload))
	}
	return c.Payload[b.Offset:end], nil
}

// validateBlocks checks a blocked container's index/payload consistency: the
// count fits the shape, entries tile the payload contiguously in order, and
// (in Decode) the CRCs match.
func (c Container) validateBlocks() error {
	if len(c.Blocks) < 1 || len(c.Blocks) > c.Header.Shape[0] || len(c.Blocks) > MaxBlocks {
		return fmt.Errorf("%w: %d blocks for shape %s (want 1..%d)",
			ErrHeader, len(c.Blocks), c.Header.Shape, min(c.Header.Shape[0], MaxBlocks))
	}
	next := uint64(0)
	for i, b := range c.Blocks {
		if b.Offset != next {
			return fmt.Errorf("%w: block %d at offset %d, want %d (entries must be contiguous)", ErrHeader, i, b.Offset, next)
		}
		next += b.Length
		if next < b.Offset {
			return fmt.Errorf("%w: block %d length %d overflows", ErrHeader, i, b.Length)
		}
	}
	if next != uint64(len(c.Payload)) {
		return fmt.Errorf("%w: block index covers %d bytes, payload holds %d", ErrHeader, next, len(c.Payload))
	}
	return nil
}

func (h Header) validate() error {
	if h.Codec == "" || len(h.Codec) > 255 {
		return fmt.Errorf("%w: codec name length %d (want 1..255)", ErrHeader, len(h.Codec))
	}
	if math.IsNaN(h.Bound) || math.IsInf(h.Bound, 0) || h.Bound < 0 {
		return fmt.Errorf("%w: bound %v", ErrHeader, h.Bound)
	}
	if math.IsNaN(h.Ratio) || math.IsInf(h.Ratio, 0) || h.Ratio < 0 {
		return fmt.Errorf("%w: ratio %v", ErrHeader, h.Ratio)
	}
	if h.DType.Size() == 0 {
		return fmt.Errorf("%w: unknown dtype %d", ErrHeader, uint8(h.DType))
	}
	if err := h.Shape.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrHeader, err)
	}
	if h.Objective.Name != "" {
		o := h.Objective
		if len(o.Name) > 255 {
			return fmt.Errorf("%w: objective name length %d (want 1..255)", ErrHeader, len(o.Name))
		}
		if math.IsNaN(o.Target) || math.IsInf(o.Target, 0) {
			return fmt.Errorf("%w: objective target %v", ErrHeader, o.Target)
		}
		if math.IsNaN(o.Tolerance) || math.IsInf(o.Tolerance, 0) || o.Tolerance < 0 {
			return fmt.Errorf("%w: objective tolerance %v", ErrHeader, o.Tolerance)
		}
		// Achieved may legitimately be ±Inf (a lossless reconstruction has
		// infinite PSNR); only NaN is meaningless.
		if math.IsNaN(o.Achieved) {
			return fmt.Errorf("%w: objective achieved value is NaN", ErrHeader)
		}
	}
	return nil
}

// EncodedSize returns the exact byte length Encode will produce.
func (c Container) EncodedSize() int {
	header := 4 + 2 + 1 + 1 + 1 + len(c.Header.Codec) + 8 + 8 + 8*c.Header.Shape.NDims()
	if c.Header.Objective.Name != "" {
		header += 1 + len(c.Header.Objective.Name) + 8 + 8 + 8
	}
	if c.Blocks != nil {
		return header + 4 + 20*len(c.Blocks) + len(c.Payload)
	}
	return header + 8 + 4 + len(c.Payload)
}

// writer appends header fields to a buffer. It cannot fail (append grows the
// buffer), so unlike reader it carries no error; it exists to keep the field
// order readable and symmetric with reader.
type writer struct {
	buf []byte
}

func (w *writer) bytes(p []byte) { w.buf = append(w.buf, p...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string)   { w.u8(uint8(len(s))); w.bytes([]byte(s)) }

// WriteTo streams the encoded container to w without staging the whole
// archive in memory: the header (and, for a blocked container, the block
// index) is assembled in a small buffer pre-sized from EncodedSize, and the
// payload — by far the bulk of the stream — is handed to w directly. The
// header and index are validated first, so a Container assembled by hand
// fails here rather than producing a stream ReadFrom would reject. The
// version written follows the presence of a block index: nil Blocks encodes
// as version 1, non-nil as version 2.
//
// WriteTo implements io.WriterTo; the returned count is the number of bytes
// written, which equals EncodedSize on success.
func (c Container) WriteTo(dst io.Writer) (int64, error) {
	if err := c.Header.validate(); err != nil {
		return 0, err
	}
	version := uint16(Version)
	if c.Blocks != nil {
		if err := c.validateBlocks(); err != nil {
			return 0, err
		}
		version = VersionBlocked
	}
	w := writer{buf: pool.GetBytes(c.EncodedSize() - len(c.Payload))[:0]}
	w.bytes(magic[:])
	w.u16(version)
	w.u8(uint8(c.Header.DType))
	rankByte := uint8(c.Header.Shape.NDims())
	if c.Header.Objective.Name != "" {
		rankByte |= objectiveFlag
	}
	w.u8(rankByte)
	w.str(c.Header.Codec)
	w.f64(c.Header.Bound)
	w.f64(c.Header.Ratio)
	for _, e := range c.Header.Shape {
		w.u64(uint64(e))
	}
	if c.Header.Objective.Name != "" {
		w.str(c.Header.Objective.Name)
		w.f64(c.Header.Objective.Target)
		w.f64(c.Header.Objective.Tolerance)
		w.f64(c.Header.Objective.Achieved)
	}
	if c.Blocks != nil {
		w.u32(uint32(len(c.Blocks)))
		for _, b := range c.Blocks {
			w.u64(b.Offset)
			w.u64(b.Length)
			w.u32(b.CRC)
		}
	} else {
		w.u64(uint64(len(c.Payload)))
		w.u32(crc32.ChecksumIEEE(c.Payload))
	}
	n, err := dst.Write(w.buf)
	pool.PutBytes(w.buf)
	written := int64(n)
	if err != nil {
		return written, err
	}
	n, err = dst.Write(c.Payload)
	written += int64(n)
	return written, err
}

// Encode serialises the container into one byte slice, pre-sized by
// EncodedSize. It is WriteTo into memory; prefer WriteTo when the stream
// goes to a file or socket anyway.
func (c Container) Encode() ([]byte, error) {
	buf := bytes.NewBuffer(make([]byte, 0, c.EncodedSize()))
	if _, err := c.WriteTo(buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// payloadChunk bounds how much payload memory a single read step commits to.
// A hostile header can declare any payload length; reading (and allocating)
// in chunks means memory grows only as fast as bytes actually arrive, so a
// short stream claiming a 2^60-byte payload fails after one chunk instead of
// attempting a giant allocation up front.
const payloadChunk = 1 << 20

// streamReader consumes header fields from an io.Reader with a sticky error:
// after the first failure every subsequent read returns zero values, and the
// caller checks s.err once at the end (the bitstream-style discipline the
// byte-slice decoder used, lifted onto a stream). It counts consumed bytes
// so ReadFrom can report them.
type streamReader struct {
	r       io.Reader
	n       int64
	err     error
	scratch [8]byte
}

func (s *streamReader) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// read fills p from the stream, mapping a premature end of stream to
// ErrTruncated. It reports whether the read succeeded.
func (s *streamReader) read(p []byte) bool {
	if s.err != nil {
		return false
	}
	n, err := io.ReadFull(s.r, p)
	s.n += int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			s.fail(fmt.Errorf("%w: need %d bytes at offset %d, stream ended after %d", ErrTruncated, len(p), s.n-int64(n), n))
		} else {
			s.fail(err)
		}
		return false
	}
	return true
}

func (s *streamReader) u8() uint8 {
	if !s.read(s.scratch[:1]) {
		return 0
	}
	return s.scratch[0]
}

func (s *streamReader) u16() uint16 {
	if !s.read(s.scratch[:2]) {
		return 0
	}
	return binary.LittleEndian.Uint16(s.scratch[:2])
}

func (s *streamReader) u32() uint32 {
	if !s.read(s.scratch[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(s.scratch[:4])
}

func (s *streamReader) u64() uint64 {
	if !s.read(s.scratch[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(s.scratch[:8])
}

func (s *streamReader) f64() float64 { return math.Float64frombits(s.u64()) }

func (s *streamReader) str() string {
	n := int(s.u8())
	if n == 0 || s.err != nil {
		return ""
	}
	p := make([]byte, n)
	if !s.read(p) {
		return ""
	}
	return string(p)
}

// appendPayload reads length payload bytes onto dst in bounded chunks,
// feeding each chunk to sum as it arrives so the CRC is verified
// incrementally — no second pass over the payload. Chunks start at
// payloadChunk and grow with the bytes already received (exponential
// trust): a hostile header can never make the reader allocate more than
// about twice what the stream actually delivered, while an honest large
// payload converges to a handful of doubling reads instead of thousands of
// fixed-size ones.
func (s *streamReader) appendPayload(dst []byte, length uint64, sum *crc32Digest) []byte {
	if s.err == nil && length > uint64(math.MaxInt-len(dst)) {
		s.fail(fmt.Errorf("%w: payload length %d overflows", ErrHeader, length))
	}
	for length > 0 && s.err == nil {
		n := payloadChunk
		if len(dst) > n {
			n = len(dst)
		}
		if length < uint64(n) {
			n = int(length)
		}
		dst = slices.Grow(dst, n)
		part := dst[len(dst) : len(dst)+n]
		if !s.read(part) {
			return dst
		}
		sum.write(part)
		dst = dst[:len(dst)+n]
		length -= uint64(n)
	}
	return dst
}

// crc32Digest accumulates a running CRC-32 (IEEE) over payload chunks.
type crc32Digest struct{ sum uint32 }

func (d *crc32Digest) write(p []byte) { d.sum = crc32.Update(d.sum, crc32.IEEETable, p) }

// ReadFrom parses one container from r, verifying the magic, version, header
// validity, and payload CRC (per block for a blocked stream). The payload is
// read — and its CRC accumulated — incrementally in bounded chunks, so no
// whole-archive staging buffer is ever allocated and a hostile header cannot
// demand memory the stream does not back with bytes.
//
// ReadFrom implements io.ReaderFrom: it consumes exactly one container and
// leaves any following bytes unread, returning the byte count consumed. The
// receiver is only modified on success.
func (c *Container) ReadFrom(r io.Reader) (int64, error) {
	s := streamReader{r: r}
	var m [4]byte
	s.read(m[:])
	if s.err == nil && m != magic {
		return s.n, ErrBadMagic
	}
	var out Container
	out.Header.Version = s.u16()
	if s.err == nil && (out.Header.Version == 0 || out.Header.Version > maxVersion) {
		return s.n, fmt.Errorf("%w: %d (this build reads <= %d)", ErrVersion, out.Header.Version, maxVersion)
	}
	out.Header.DType = DType(s.u8())
	rankByte := s.u8()
	hasObjective := rankByte&objectiveFlag != 0
	rank := int(rankByte &^ objectiveFlag)
	if s.err == nil && (rank < 1 || rank > 4) {
		return s.n, fmt.Errorf("%w: rank %d (want 1..4)", ErrHeader, rank)
	}
	out.Header.Codec = s.str()
	out.Header.Bound = s.f64()
	out.Header.Ratio = s.f64()
	if s.err == nil {
		out.Header.Shape = make(grid.Dims, rank)
		for i := 0; i < rank; i++ {
			e := s.u64()
			if s.err == nil && (e == 0 || e > math.MaxInt32) {
				return s.n, fmt.Errorf("%w: extent %d in dimension %d", ErrHeader, e, i)
			}
			out.Header.Shape[i] = int(e)
		}
	}
	if hasObjective {
		out.Header.Objective.Name = s.str()
		if s.err == nil && out.Header.Objective.Name == "" {
			return s.n, fmt.Errorf("%w: objective flag set but name empty", ErrHeader)
		}
		out.Header.Objective.Target = s.f64()
		out.Header.Objective.Tolerance = s.f64()
		out.Header.Objective.Achieved = s.f64()
	}
	// Validate the header before committing to the payload: a stream with a
	// nonsense header is rejected without reading (or allocating for) the
	// payload bytes it claims to carry.
	if s.err == nil {
		if err := out.Header.validate(); err != nil {
			return s.n, err
		}
	}
	if out.Header.Version == VersionBlocked {
		return readBlocked(&s, &out, c)
	}
	payloadLen := s.u64()
	declared := s.u32()
	var sum crc32Digest
	out.Payload = s.appendPayload(nil, payloadLen, &sum)
	if s.err != nil {
		return s.n, s.err
	}
	if sum.sum != declared {
		return s.n, ErrCorrupt
	}
	*c = out
	return s.n, nil
}

// readBlocked parses the version-2 tail of a stream: the block index and the
// concatenated block payloads, verifying each block's CRC as its bytes
// stream past. The index is grown entry by entry, so its memory too is
// backed by bytes actually read.
func readBlocked(s *streamReader, out, c *Container) (int64, error) {
	count := s.u32()
	if s.err == nil && (count == 0 || count > MaxBlocks || int(count) > out.Header.Shape[0]) {
		return s.n, fmt.Errorf("%w: block count %d for shape %s", ErrHeader, count, out.Header.Shape)
	}
	next := uint64(0)
	for i := 0; i < int(count) && s.err == nil; i++ {
		b := BlockEntry{Offset: s.u64(), Length: s.u64(), CRC: s.u32()}
		if s.err != nil {
			break
		}
		if b.Offset != next {
			return s.n, fmt.Errorf("%w: block %d at offset %d, want %d (entries must be contiguous)", ErrHeader, i, b.Offset, next)
		}
		next += b.Length
		if next < b.Offset {
			return s.n, fmt.Errorf("%w: block %d length %d overflows", ErrHeader, i, b.Length)
		}
		out.Blocks = append(out.Blocks, b)
	}
	if s.err != nil {
		return s.n, s.err
	}
	for i, b := range out.Blocks {
		var sum crc32Digest
		out.Payload = s.appendPayload(out.Payload, b.Length, &sum)
		if s.err != nil {
			return s.n, s.err
		}
		if sum.sum != b.CRC {
			return s.n, fmt.Errorf("%w (block %d)", ErrCorrupt, i)
		}
	}
	*c = *out
	return s.n, nil
}

// Decode parses a byte slice produced by Encode: ReadFrom over the slice,
// plus a check that the container accounts for every byte — a slice is a
// complete archive, so trailing garbage is an error, unlike the stream case
// where following bytes belong to the caller. The payload is copied, so the
// input buffer may be reused.
func Decode(data []byte) (Container, error) {
	var c Container
	br := bytes.NewReader(data)
	if _, err := c.ReadFrom(br); err != nil {
		return Container{}, err
	}
	if br.Len() > 0 {
		return Container{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrHeader, br.Len())
	}
	return c, nil
}

// String summarises the header for logs and CLI output.
func (h Header) String() string {
	s := fmt.Sprintf(".fraz v%d codec=%s dtype=%s shape=%s bound=%g ratio=%.2f",
		h.Version, h.Codec, h.DType, h.Shape, h.Bound, h.Ratio)
	if h.Objective.Name != "" {
		s += fmt.Sprintf(" objective=%s target=%g achieved=%g", h.Objective.Name, h.Objective.Target, h.Objective.Achieved)
	}
	return s
}
