// Package container defines the self-describing `.fraz` on-disk format.
//
// The compressor adapters in internal/pressio emit bare byte blobs that
// cannot be decoded without out-of-band knowledge of the codec, the tuned
// error bound, and the data shape. A Container wraps such a blob in a small
// versioned header carrying exactly that metadata — the same role
// libpressio's pressio_data metadata (and SZx's typed stream header) plays
// for the systems the paper builds on — so an archived artifact can be
// decompressed years later by name alone.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "FRZ\x01"
//	4       2     format version (currently 1)
//	6       1     dtype (0 = float32)
//	7       1     rank (1..4)
//	8       1     codec name length L (1..255)
//	9       L     codec name (e.g. "sz:abs")
//	...     8     tuned bound (IEEE-754 float64)
//	...     8     achieved ratio (IEEE-754 float64)
//	...     8×R   shape extents, slowest dimension first (uint64 each)
//	...     8     payload length N (uint64)
//	...     4     CRC-32 (IEEE) of the payload
//	...     N     payload (the codec's compressed stream)
//
// Encoding and decoding use sticky-error readers/writers in the style of
// internal/bitstream: every field accessor checks and records the first
// failure, and the caller inspects a single error at the end.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fraz/internal/grid"
)

// Version is the current format version written by Encode.
const Version = 1

// magic identifies a .fraz stream: "FRZ" plus a non-printable byte so text
// files are rejected immediately.
var magic = [4]byte{'F', 'R', 'Z', 0x01}

// DType enumerates the element types a container can carry. Only float32 is
// produced today; the byte is reserved so float64 data can be added without
// a format break.
type DType uint8

// Float32 is the only element type currently written.
const Float32 DType = 0

// Size returns the element size in bytes, or 0 for an unknown dtype.
func (d DType) Size() int {
	if d == Float32 {
		return 4
	}
	return 0
}

func (d DType) String() string {
	if d == Float32 {
		return "float32"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Sentinel errors returned (wrapped) by Decode.
var (
	// ErrBadMagic means the stream does not start with the .fraz magic.
	ErrBadMagic = errors.New("container: not a .fraz stream (bad magic)")
	// ErrVersion means the stream was written by a newer format version.
	ErrVersion = errors.New("container: unsupported format version")
	// ErrTruncated means the stream ended before the header or payload did.
	ErrTruncated = errors.New("container: truncated stream")
	// ErrCorrupt means the payload failed its CRC-32 check.
	ErrCorrupt = errors.New("container: payload CRC mismatch")
	// ErrHeader means a header field holds an invalid value.
	ErrHeader = errors.New("container: invalid header field")
)

// Header carries the metadata needed to decompress a payload without any
// out-of-band knowledge.
type Header struct {
	// Version is the format version the stream was written with.
	Version uint16
	// Codec is the registered compressor name, e.g. "sz:abs".
	Codec string
	// Bound is the tuned error-bound parameter the payload was compressed
	// with (bits per value for rate-mode codecs).
	Bound float64
	// Ratio is the compression ratio achieved at that bound.
	Ratio float64
	// DType is the element type of the uncompressed data.
	DType DType
	// Shape is the logical shape of the uncompressed data, slowest
	// dimension first.
	Shape grid.Dims
}

// Container couples a header with the codec's compressed payload.
type Container struct {
	Header  Header
	Payload []byte
}

// New builds a Container with the current format version, validating the
// header fields that Encode would otherwise reject later.
func New(codec string, bound, ratio float64, shape grid.Dims, payload []byte) (Container, error) {
	c := Container{
		Header: Header{
			Version: Version,
			Codec:   codec,
			Bound:   bound,
			Ratio:   ratio,
			DType:   Float32,
			Shape:   shape.Clone(),
		},
		Payload: payload,
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	return c, nil
}

func (h Header) validate() error {
	if h.Codec == "" || len(h.Codec) > 255 {
		return fmt.Errorf("%w: codec name length %d (want 1..255)", ErrHeader, len(h.Codec))
	}
	if math.IsNaN(h.Bound) || math.IsInf(h.Bound, 0) || h.Bound < 0 {
		return fmt.Errorf("%w: bound %v", ErrHeader, h.Bound)
	}
	if math.IsNaN(h.Ratio) || math.IsInf(h.Ratio, 0) || h.Ratio < 0 {
		return fmt.Errorf("%w: ratio %v", ErrHeader, h.Ratio)
	}
	if h.DType.Size() == 0 {
		return fmt.Errorf("%w: unknown dtype %d", ErrHeader, uint8(h.DType))
	}
	if err := h.Shape.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrHeader, err)
	}
	return nil
}

// EncodedSize returns the exact byte length Encode will produce.
func (c Container) EncodedSize() int {
	return 4 + 2 + 1 + 1 + 1 + len(c.Header.Codec) + 8 + 8 + 8*c.Header.Shape.NDims() + 8 + 4 + len(c.Payload)
}

// writer appends header fields to a buffer. It cannot fail (append grows the
// buffer), so unlike reader it carries no error; it exists to keep the field
// order readable and symmetric with reader.
type writer struct {
	buf []byte
}

func (w *writer) bytes(p []byte) { w.buf = append(w.buf, p...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string)   { w.u8(uint8(len(s))); w.bytes([]byte(s)) }

// Encode serialises the container. The header is validated first, so a
// Container assembled by hand fails here rather than producing a stream
// Decode would reject.
func (c Container) Encode() ([]byte, error) {
	if err := c.Header.validate(); err != nil {
		return nil, err
	}
	w := writer{buf: make([]byte, 0, c.EncodedSize())}
	w.bytes(magic[:])
	w.u16(Version)
	w.u8(uint8(c.Header.DType))
	w.u8(uint8(c.Header.Shape.NDims()))
	w.str(c.Header.Codec)
	w.f64(c.Header.Bound)
	w.f64(c.Header.Ratio)
	for _, e := range c.Header.Shape {
		w.u64(uint64(e))
	}
	w.u64(uint64(len(c.Payload)))
	w.u32(crc32.ChecksumIEEE(c.Payload))
	w.bytes(c.Payload)
	return w.buf, nil
}

// reader consumes header fields from a buffer with a sticky error: after the
// first failure every subsequent read returns zero values, and the caller
// checks r.err once at the end (the bitstream-style discipline).
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) || r.pos+n < r.pos {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.pos, len(r.buf)-r.pos))
		return nil
	}
	p := r.buf[r.pos : r.pos+n]
	r.pos += n
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u8())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Decode parses a stream produced by Encode, verifying the magic, version,
// header validity, and payload CRC. The payload is copied, so the input
// buffer may be reused.
func Decode(data []byte) (Container, error) {
	r := reader{buf: data}
	var m [4]byte
	copy(m[:], r.take(4))
	if r.err == nil && m != magic {
		return Container{}, ErrBadMagic
	}
	var c Container
	c.Header.Version = r.u16()
	if r.err == nil && (c.Header.Version == 0 || c.Header.Version > Version) {
		return Container{}, fmt.Errorf("%w: %d (this build reads <= %d)", ErrVersion, c.Header.Version, Version)
	}
	c.Header.DType = DType(r.u8())
	rank := int(r.u8())
	if r.err == nil && (rank < 1 || rank > 4) {
		return Container{}, fmt.Errorf("%w: rank %d (want 1..4)", ErrHeader, rank)
	}
	c.Header.Codec = r.str()
	c.Header.Bound = r.f64()
	c.Header.Ratio = r.f64()
	if r.err == nil {
		c.Header.Shape = make(grid.Dims, rank)
		for i := 0; i < rank; i++ {
			e := r.u64()
			if r.err == nil && (e == 0 || e > math.MaxInt32) {
				return Container{}, fmt.Errorf("%w: extent %d in dimension %d", ErrHeader, e, i)
			}
			c.Header.Shape[i] = int(e)
		}
	}
	payloadLen := r.u64()
	if r.err == nil && payloadLen > uint64(len(data)) {
		return Container{}, fmt.Errorf("%w: payload length %d exceeds stream size %d", ErrTruncated, payloadLen, len(data))
	}
	sum := r.u32()
	payload := r.take(int(payloadLen))
	if r.err != nil {
		return Container{}, r.err
	}
	if r.pos != len(data) {
		return Container{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrHeader, len(data)-r.pos)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Container{}, ErrCorrupt
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	c.Payload = append([]byte(nil), payload...)
	return c, nil
}

// String summarises the header for logs and CLI output.
func (h Header) String() string {
	return fmt.Sprintf(".fraz v%d codec=%s dtype=%s shape=%s bound=%g ratio=%.2f",
		h.Version, h.Codec, h.DType, h.Shape, h.Bound, h.Ratio)
}
