// Package container defines the self-describing `.fraz` on-disk format.
//
// The compressor adapters in internal/pressio emit bare byte blobs that
// cannot be decoded without out-of-band knowledge of the codec, the tuned
// error bound, and the data shape. A Container wraps such a blob in a small
// versioned header carrying exactly that metadata — the same role
// libpressio's pressio_data metadata (and SZx's typed stream header) plays
// for the systems the paper builds on — so an archived artifact can be
// decompressed years later by name alone.
//
// Common layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "FRZ\x01"
//	4       2     format version (1 = monolithic, 2 = blocked)
//	6       1     dtype (0 = float32)
//	7       1     rank (1..4)
//	8       1     codec name length L (1..255)
//	9       L     codec name (e.g. "sz:abs")
//	...     8     tuned bound (IEEE-754 float64)
//	...     8     achieved ratio (IEEE-754 float64)
//	...     8×R   shape extents, slowest dimension first (uint64 each)
//
// A version-1 stream then carries one monolithic payload:
//
//	...     8     payload length N (uint64)
//	...     4     CRC-32 (IEEE) of the payload
//	...     N     payload (the codec's compressed stream)
//
// A version-2 (blocked) stream instead carries a block index followed by
// independently-decodable block payloads. Blocks partition the field along
// its slowest axis (internal/blocks.Plan over the header shape and the block
// count reproduces every block's sub-shape), so each payload can be
// decompressed — and its CRC verified — independently and in parallel:
//
//	...     4     block count B (uint32, 1..shape[0])
//	per block (B times):
//	...     8     payload offset (uint64, from the start of the payload area)
//	...     8     payload length (uint64)
//	...     4     CRC-32 (IEEE) of the block payload
//	...     ΣN    block payloads, concatenated in index order
//
// Encoding and decoding use sticky-error readers/writers in the style of
// internal/bitstream: every field accessor checks and records the first
// failure, and the caller inspects a single error at the end.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fraz/internal/grid"
)

// Version is the monolithic (single-payload) format version, written by
// Encode for containers without a block index.
const Version = 1

// VersionBlocked is the blocked format version: a block index followed by
// independently-decodable block payloads.
const VersionBlocked = 2

// maxVersion is the newest format version this build decodes.
const maxVersion = VersionBlocked

// MaxBlocks caps the block count a stream may declare, bounding the index
// allocation a hostile header can demand before any payload is read.
const MaxBlocks = 1 << 20

// magic identifies a .fraz stream: "FRZ" plus a non-printable byte so text
// files are rejected immediately.
var magic = [4]byte{'F', 'R', 'Z', 0x01}

// DType enumerates the element types a container can carry. Only float32 is
// produced today; the byte is reserved so float64 data can be added without
// a format break.
type DType uint8

// Float32 is the only element type currently written.
const Float32 DType = 0

// Size returns the element size in bytes, or 0 for an unknown dtype.
func (d DType) Size() int {
	if d == Float32 {
		return 4
	}
	return 0
}

func (d DType) String() string {
	if d == Float32 {
		return "float32"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Sentinel errors returned (wrapped) by Decode.
var (
	// ErrBadMagic means the stream does not start with the .fraz magic.
	ErrBadMagic = errors.New("container: not a .fraz stream (bad magic)")
	// ErrVersion means the stream was written by a newer format version.
	ErrVersion = errors.New("container: unsupported format version")
	// ErrTruncated means the stream ended before the header or payload did.
	ErrTruncated = errors.New("container: truncated stream")
	// ErrCorrupt means the payload failed its CRC-32 check.
	ErrCorrupt = errors.New("container: payload CRC mismatch")
	// ErrHeader means a header field holds an invalid value.
	ErrHeader = errors.New("container: invalid header field")
)

// Header carries the metadata needed to decompress a payload without any
// out-of-band knowledge.
type Header struct {
	// Version is the format version the stream was written with.
	Version uint16
	// Codec is the registered compressor name, e.g. "sz:abs".
	Codec string
	// Bound is the tuned error-bound parameter the payload was compressed
	// with (bits per value for rate-mode codecs).
	Bound float64
	// Ratio is the compression ratio achieved at that bound.
	Ratio float64
	// DType is the element type of the uncompressed data.
	DType DType
	// Shape is the logical shape of the uncompressed data, slowest
	// dimension first.
	Shape grid.Dims
}

// BlockEntry locates one block's payload inside a blocked container.
type BlockEntry struct {
	// Offset is the byte offset of the block's payload from the start of the
	// payload area. Entries are contiguous: each offset equals the previous
	// entry's offset plus its length.
	Offset uint64
	// Length is the payload length in bytes.
	Length uint64
	// CRC is the CRC-32 (IEEE) of the block payload.
	CRC uint32
}

// Container couples a header with the codec's compressed payload. For a
// blocked (version-2) container, Payload is the concatenation of the block
// payloads and Blocks indexes into it; for version 1, Blocks is nil.
type Container struct {
	Header  Header
	Payload []byte
	Blocks  []BlockEntry
}

// New builds a Container with the current format version, validating the
// header fields that Encode would otherwise reject later.
func New(codec string, bound, ratio float64, shape grid.Dims, payload []byte) (Container, error) {
	c := Container{
		Header: Header{
			Version: Version,
			Codec:   codec,
			Bound:   bound,
			Ratio:   ratio,
			DType:   Float32,
			Shape:   shape.Clone(),
		},
		Payload: payload,
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	return c, nil
}

// NewBlocked builds a version-2 Container from per-block payloads, which
// must partition the field along its slowest axis in index order (one
// payload per block of internal/blocks.Plan(shape, len(payloads))). The
// payloads are concatenated and indexed with per-block CRCs so each one can
// be verified and decompressed independently.
func NewBlocked(codec string, bound, ratio float64, shape grid.Dims, payloads [][]byte) (Container, error) {
	c := Container{
		Header: Header{
			Version: VersionBlocked,
			Codec:   codec,
			Bound:   bound,
			Ratio:   ratio,
			DType:   Float32,
			Shape:   shape.Clone(),
		},
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	if len(payloads) < 1 || len(payloads) > c.Header.Shape[0] || len(payloads) > MaxBlocks {
		return Container{}, fmt.Errorf("%w: %d blocks for shape %s (want 1..%d)",
			ErrHeader, len(payloads), c.Header.Shape, min(c.Header.Shape[0], MaxBlocks))
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	c.Payload = make([]byte, 0, total)
	c.Blocks = make([]BlockEntry, len(payloads))
	for i, p := range payloads {
		c.Blocks[i] = BlockEntry{
			Offset: uint64(len(c.Payload)),
			Length: uint64(len(p)),
			CRC:    crc32.ChecksumIEEE(p),
		}
		c.Payload = append(c.Payload, p...)
	}
	return c, nil
}

// NumBlocks reports the number of blocks in the container: the index size
// for a blocked container, 1 for a monolithic one.
func (c Container) NumBlocks() int {
	if c.Blocks == nil {
		return 1
	}
	return len(c.Blocks)
}

// BlockPayload returns block i's payload as a subslice of Payload. For a
// monolithic container, index 0 returns the whole payload.
func (c Container) BlockPayload(i int) ([]byte, error) {
	if c.Blocks == nil {
		if i != 0 {
			return nil, fmt.Errorf("%w: block %d of a monolithic container", ErrHeader, i)
		}
		return c.Payload, nil
	}
	if i < 0 || i >= len(c.Blocks) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrHeader, i, len(c.Blocks))
	}
	b := c.Blocks[i]
	end := b.Offset + b.Length
	if end > uint64(len(c.Payload)) || end < b.Offset {
		return nil, fmt.Errorf("%w: block %d spans [%d,%d) of %d payload bytes", ErrHeader, i, b.Offset, end, len(c.Payload))
	}
	return c.Payload[b.Offset:end], nil
}

// validateBlocks checks a blocked container's index/payload consistency: the
// count fits the shape, entries tile the payload contiguously in order, and
// (in Decode) the CRCs match.
func (c Container) validateBlocks() error {
	if len(c.Blocks) < 1 || len(c.Blocks) > c.Header.Shape[0] || len(c.Blocks) > MaxBlocks {
		return fmt.Errorf("%w: %d blocks for shape %s (want 1..%d)",
			ErrHeader, len(c.Blocks), c.Header.Shape, min(c.Header.Shape[0], MaxBlocks))
	}
	next := uint64(0)
	for i, b := range c.Blocks {
		if b.Offset != next {
			return fmt.Errorf("%w: block %d at offset %d, want %d (entries must be contiguous)", ErrHeader, i, b.Offset, next)
		}
		next += b.Length
		if next < b.Offset {
			return fmt.Errorf("%w: block %d length %d overflows", ErrHeader, i, b.Length)
		}
	}
	if next != uint64(len(c.Payload)) {
		return fmt.Errorf("%w: block index covers %d bytes, payload holds %d", ErrHeader, next, len(c.Payload))
	}
	return nil
}

func (h Header) validate() error {
	if h.Codec == "" || len(h.Codec) > 255 {
		return fmt.Errorf("%w: codec name length %d (want 1..255)", ErrHeader, len(h.Codec))
	}
	if math.IsNaN(h.Bound) || math.IsInf(h.Bound, 0) || h.Bound < 0 {
		return fmt.Errorf("%w: bound %v", ErrHeader, h.Bound)
	}
	if math.IsNaN(h.Ratio) || math.IsInf(h.Ratio, 0) || h.Ratio < 0 {
		return fmt.Errorf("%w: ratio %v", ErrHeader, h.Ratio)
	}
	if h.DType.Size() == 0 {
		return fmt.Errorf("%w: unknown dtype %d", ErrHeader, uint8(h.DType))
	}
	if err := h.Shape.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrHeader, err)
	}
	return nil
}

// EncodedSize returns the exact byte length Encode will produce.
func (c Container) EncodedSize() int {
	header := 4 + 2 + 1 + 1 + 1 + len(c.Header.Codec) + 8 + 8 + 8*c.Header.Shape.NDims()
	if c.Blocks != nil {
		return header + 4 + 20*len(c.Blocks) + len(c.Payload)
	}
	return header + 8 + 4 + len(c.Payload)
}

// writer appends header fields to a buffer. It cannot fail (append grows the
// buffer), so unlike reader it carries no error; it exists to keep the field
// order readable and symmetric with reader.
type writer struct {
	buf []byte
}

func (w *writer) bytes(p []byte) { w.buf = append(w.buf, p...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string)   { w.u8(uint8(len(s))); w.bytes([]byte(s)) }

// Encode serialises the container. The header (and, for a blocked
// container, the block index) is validated first, so a Container assembled
// by hand fails here rather than producing a stream Decode would reject.
// The version written follows the presence of a block index: nil Blocks
// encodes as version 1, non-nil as version 2.
func (c Container) Encode() ([]byte, error) {
	if err := c.Header.validate(); err != nil {
		return nil, err
	}
	version := uint16(Version)
	if c.Blocks != nil {
		if err := c.validateBlocks(); err != nil {
			return nil, err
		}
		version = VersionBlocked
	}
	w := writer{buf: make([]byte, 0, c.EncodedSize())}
	w.bytes(magic[:])
	w.u16(version)
	w.u8(uint8(c.Header.DType))
	w.u8(uint8(c.Header.Shape.NDims()))
	w.str(c.Header.Codec)
	w.f64(c.Header.Bound)
	w.f64(c.Header.Ratio)
	for _, e := range c.Header.Shape {
		w.u64(uint64(e))
	}
	if c.Blocks != nil {
		w.u32(uint32(len(c.Blocks)))
		for _, b := range c.Blocks {
			w.u64(b.Offset)
			w.u64(b.Length)
			w.u32(b.CRC)
		}
		w.bytes(c.Payload)
		return w.buf, nil
	}
	w.u64(uint64(len(c.Payload)))
	w.u32(crc32.ChecksumIEEE(c.Payload))
	w.bytes(c.Payload)
	return w.buf, nil
}

// reader consumes header fields from a buffer with a sticky error: after the
// first failure every subsequent read returns zero values, and the caller
// checks r.err once at the end (the bitstream-style discipline).
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) || r.pos+n < r.pos {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.pos, len(r.buf)-r.pos))
		return nil
	}
	p := r.buf[r.pos : r.pos+n]
	r.pos += n
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u8())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Decode parses a stream produced by Encode, verifying the magic, version,
// header validity, and payload CRC (per block for a blocked stream). The
// payload is copied, so the input buffer may be reused.
func Decode(data []byte) (Container, error) {
	r := reader{buf: data}
	var m [4]byte
	copy(m[:], r.take(4))
	if r.err == nil && m != magic {
		return Container{}, ErrBadMagic
	}
	var c Container
	c.Header.Version = r.u16()
	if r.err == nil && (c.Header.Version == 0 || c.Header.Version > maxVersion) {
		return Container{}, fmt.Errorf("%w: %d (this build reads <= %d)", ErrVersion, c.Header.Version, maxVersion)
	}
	c.Header.DType = DType(r.u8())
	rank := int(r.u8())
	if r.err == nil && (rank < 1 || rank > 4) {
		return Container{}, fmt.Errorf("%w: rank %d (want 1..4)", ErrHeader, rank)
	}
	c.Header.Codec = r.str()
	c.Header.Bound = r.f64()
	c.Header.Ratio = r.f64()
	if r.err == nil {
		c.Header.Shape = make(grid.Dims, rank)
		for i := 0; i < rank; i++ {
			e := r.u64()
			if r.err == nil && (e == 0 || e > math.MaxInt32) {
				return Container{}, fmt.Errorf("%w: extent %d in dimension %d", ErrHeader, e, i)
			}
			c.Header.Shape[i] = int(e)
		}
	}
	if c.Header.Version == VersionBlocked {
		return decodeBlocked(&r, c, data)
	}
	payloadLen := r.u64()
	if r.err == nil && payloadLen > uint64(len(data)) {
		return Container{}, fmt.Errorf("%w: payload length %d exceeds stream size %d", ErrTruncated, payloadLen, len(data))
	}
	sum := r.u32()
	payload := r.take(int(payloadLen))
	if r.err != nil {
		return Container{}, r.err
	}
	if r.pos != len(data) {
		return Container{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrHeader, len(data)-r.pos)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return Container{}, ErrCorrupt
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	c.Payload = append([]byte(nil), payload...)
	return c, nil
}

// decodeBlocked parses the version-2 tail of a stream: the block index and
// the concatenated block payloads, verifying each block's CRC.
func decodeBlocked(r *reader, c Container, data []byte) (Container, error) {
	count := r.u32()
	if r.err == nil {
		if count == 0 || count > MaxBlocks || (len(c.Header.Shape) > 0 && int(count) > c.Header.Shape[0]) {
			return Container{}, fmt.Errorf("%w: block count %d for shape %s", ErrHeader, count, c.Header.Shape)
		}
		// The index alone needs 20 bytes per block; refuse early rather
		// than allocating an index the stream cannot possibly hold.
		if int64(count)*20 > int64(len(data)-r.pos) {
			return Container{}, fmt.Errorf("%w: %d-block index exceeds stream size", ErrTruncated, count)
		}
		c.Blocks = make([]BlockEntry, count)
	}
	var total uint64
	for i := range c.Blocks {
		c.Blocks[i].Offset = r.u64()
		c.Blocks[i].Length = r.u64()
		c.Blocks[i].CRC = r.u32()
		total += c.Blocks[i].Length
	}
	if r.err == nil && total > uint64(len(data)) {
		return Container{}, fmt.Errorf("%w: payload length %d exceeds stream size %d", ErrTruncated, total, len(data))
	}
	payload := r.take(int(total))
	if r.err != nil {
		return Container{}, r.err
	}
	if r.pos != len(data) {
		return Container{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrHeader, len(data)-r.pos)
	}
	if err := c.Header.validate(); err != nil {
		return Container{}, err
	}
	c.Payload = payload
	if err := c.validateBlocks(); err != nil {
		return Container{}, err
	}
	for i, b := range c.Blocks {
		if crc32.ChecksumIEEE(payload[b.Offset:b.Offset+b.Length]) != b.CRC {
			return Container{}, fmt.Errorf("%w (block %d)", ErrCorrupt, i)
		}
	}
	c.Payload = append([]byte(nil), payload...)
	return c, nil
}

// String summarises the header for logs and CLI output.
func (h Header) String() string {
	return fmt.Sprintf(".fraz v%d codec=%s dtype=%s shape=%s bound=%g ratio=%.2f",
		h.Version, h.Codec, h.DType, h.Shape, h.Bound, h.Ratio)
}
