// Package szx implements an ultra-fast error-bounded lossy compressor in the
// style of SZx (Yu et al., "SZx: an Ultra-fast Error-bounded Lossy Compressor
// for Scientific Datasets"). Where SZ buys ratio with prediction,
// quantization, Huffman coding, and a dictionary stage, SZx buys speed by
// doing none of that: the field is cut into fixed-size blocks of consecutive
// values, each block is classified as *constant* (every value within the
// error bound of one representative, stored as a single literal) or
// *nonconstant* (each value's IEEE-754 representation truncated to the
// leading significant bytes that the bound requires, packed byte-plane by
// byte-plane), and the result is emitted directly. Every operation on the
// hot path is a scan, a compare, or a byte shuffle — no entropy coder, no
// data-dependent branches beyond the per-block classification — which is
// what makes the codec run an order of magnitude faster than the
// prediction-based pipeline at a (data-dependent) ratio cost.
//
// The codec is dtype-generic over float32 and float64 and shape-agnostic:
// because there is no neighbour prediction, the block decomposition runs
// over the flat value stream, so any rank the framework supports (1..4)
// compresses identically.
//
// # Stream layout (all integers little-endian)
//
// The stream is self-describing; Decompress needs no side information. The
// element width is part of the magic — SZX1 marks float32 streams, SZX2
// float64 — so a stream can never be reinterpreted at the wrong precision:
//
//	offset  size  field
//	0       4     magic "SZX1" (float32) or "SZX2" (float64)
//	4       1     rank R (1..4)
//	5       8     absolute error bound (IEEE-754 float64)
//	13      4     block size in elements (uint32, >= 1)
//	17      4×R   shape extents, slowest dimension first (uint32 each)
//
// The body follows, sized entirely by the header (block count B =
// ceil(elements / blockSize), C = number of constant blocks, N = B - C):
//
//	...     ⌈B/8⌉     constant-block bitmap, bit i (LSB-first) set when
//	                  block i is constant
//	...     C×W       one literal representative per constant block, raw
//	                  IEEE-754 bits (W = element width: 4 or 8)
//	...     N         one byte per nonconstant block: the number of leading
//	                  IEEE bytes kept per value (2..W)
//	...     Σ kᵢ×nᵢ   per nonconstant block, its byte planes: plane 0 (the
//	                  most significant byte of every value in the block),
//	                  then plane 1, … — kᵢ planes of nᵢ bytes each
//
// # Error bound
//
// A block whose spread max−min fits within twice the bound collapses to the
// midrange literal, which is within the bound of every member by
// construction (re-checked after rounding the representative to the element
// type, so the guarantee survives the narrowing cast). A nonconstant block
// keeps, for every value, the leading k bytes of its IEEE representation
// where k is chosen from the block's largest binary exponent E and the
// bound: zeroing the low mantissa bits of a value with exponent e introduces
// an error below 2^(e−m) for m kept mantissa bits, so k is the smallest
// byte count whose mantissa coverage m satisfies 2^(E−m) <= bound. Blocks
// containing NaN or ±Inf are stored at full width (k = W, bit-exact):
// truncating a NaN payload could silently turn it into an infinity, so
// non-finite data is never truncated.
package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"fraz/internal/grid"
)

// magic32 and magic64 identify SZx-Go streams of float32 and float64 data.
const (
	magic32 = 0x31585A53 // "SZX1" in little-endian byte order
	magic64 = 0x32585A53 // "SZX2"
)

// DefaultBlockSize is the number of consecutive values per block, matching
// the SZx paper's default of 128.
const DefaultBlockSize = 128

// maxBlockSize bounds the block size a stream may declare; combined with the
// element count implied by the shape it keeps hostile headers from
// requesting absurd plane buffers.
const maxBlockSize = 1 << 24

// maxDecodeElements caps the element count a stream header may declare
// (2^28 ≈ 268M values, 1-2 GiB decoded). A tiny all-constant stream
// legitimately expands to its full field, so without a cap a hostile
// 40-byte header could demand an arbitrarily large allocation before any
// payload is validated. Compression of larger fields goes through the
// blocked pipeline, which splits the field well below this limit.
const maxDecodeElements = 1 << 28

// ErrInvalidInput is returned when the data or options are malformed.
var ErrInvalidInput = errors.New("szx: invalid input")

// ErrCorrupt is returned by Decompress for unparsable streams.
var ErrCorrupt = errors.New("szx: corrupt stream")

// Options configures compression.
type Options struct {
	// ErrorBound is the absolute pointwise error bound. It must be positive
	// and finite; zero is rejected (a zero bound means lossless, which this
	// codec does not pretend to be — use flate:lossless).
	ErrorBound float64
	// BlockSize is the number of consecutive values per block; 0 selects
	// DefaultBlockSize. Values larger than the field collapse to a single
	// block.
	BlockSize int
}

func (o Options) withDefaults() (Options, error) {
	if !(o.ErrorBound > 0) || math.IsInf(o.ErrorBound, 0) || math.IsNaN(o.ErrorBound) {
		return o, fmt.Errorf("%w: error bound must be positive and finite, got %v", ErrInvalidInput, o.ErrorBound)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize < 1 || o.BlockSize > maxBlockSize {
		return o, fmt.Errorf("%w: block size %d (want 1..%d)", ErrInvalidInput, o.BlockSize, maxBlockSize)
	}
	return o, nil
}

// magicFor returns the stream magic for element type T.
func magicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return magic32
	}
	return magic64
}

// Compress compresses data of the given shape under the options' absolute
// error bound and returns the self-describing compressed stream.
func Compress[T grid.Float](data []T, shape grid.Dims, opts Options) ([]byte, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if len(data) != shape.Len() {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v", ErrInvalidInput, len(data), shape)
	}
	if len(data) > maxDecodeElements {
		return nil, fmt.Errorf("%w: %d elements exceeds the %d-element stream limit (use the blocked pipeline)", ErrInvalidInput, len(data), maxDecodeElements)
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if grid.ElemSize[T]() == 4 {
		return compress32(any(data).([]float32), shape, o), nil
	}
	return compress64(any(data).([]float64), shape, o), nil
}

// Decompress reconstructs the data from a stream produced by Compress. A
// non-nil shape must match the shape recorded in the header. Malformed input
// of any kind returns an error wrapping ErrCorrupt; Decompress never panics.
func Decompress[T grid.Float](buf []byte, shape grid.Dims) ([]T, error) {
	hdr, body, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	if hdr.elemSize != grid.ElemSize[T]() {
		return nil, fmt.Errorf("%w: stream holds %d-byte elements, caller expects %d-byte", ErrCorrupt, hdr.elemSize, grid.ElemSize[T]())
	}
	if shape != nil && !hdr.shape.Equal(shape) {
		return nil, fmt.Errorf("%w: shape mismatch: stream has %v, caller expects %v", ErrCorrupt, hdr.shape, shape)
	}
	if hdr.elemSize == 4 {
		out, err := decompress32(hdr, body)
		if err != nil {
			return nil, err
		}
		return any(out).([]T), nil
	}
	out, err := decompress64(hdr, body)
	if err != nil {
		return nil, err
	}
	return any(out).([]T), nil
}

// HeaderShape extracts the shape stored in a compressed stream.
func HeaderShape(buf []byte) (grid.Dims, error) {
	hdr, _, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	return hdr.shape, nil
}

type header struct {
	elemSize  int
	bound     float64
	blockSize int
	shape     grid.Dims
}

const fixedHeaderLen = 4 + 1 + 8 + 4

func parseHeader(buf []byte) (header, []byte, error) {
	var h header
	if len(buf) < fixedHeaderLen {
		return h, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	switch binary.LittleEndian.Uint32(buf[0:4]) {
	case magic32:
		h.elemSize = 4
	case magic64:
		h.elemSize = 8
	default:
		return h, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rank := int(buf[4])
	if rank < 1 || rank > 4 {
		return h, nil, fmt.Errorf("%w: bad rank %d", ErrCorrupt, rank)
	}
	h.bound = math.Float64frombits(binary.LittleEndian.Uint64(buf[5:13]))
	if !(h.bound > 0) || math.IsInf(h.bound, 0) || math.IsNaN(h.bound) {
		return h, nil, fmt.Errorf("%w: bad error bound %v", ErrCorrupt, h.bound)
	}
	h.blockSize = int(binary.LittleEndian.Uint32(buf[13:17]))
	if h.blockSize < 1 || h.blockSize > maxBlockSize {
		return h, nil, fmt.Errorf("%w: bad block size %d", ErrCorrupt, h.blockSize)
	}
	pos := fixedHeaderLen
	if len(buf) < pos+4*rank {
		return h, nil, fmt.Errorf("%w: truncated shape", ErrCorrupt)
	}
	h.shape = make(grid.Dims, rank)
	for i := 0; i < rank; i++ {
		e := binary.LittleEndian.Uint32(buf[pos : pos+4])
		if e == 0 || e > math.MaxInt32 {
			return h, nil, fmt.Errorf("%w: bad extent %d", ErrCorrupt, e)
		}
		h.shape[i] = int(e)
		pos += 4
	}
	if err := h.shape.Validate(); err != nil {
		return h, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Reject element counts whose section arithmetic could overflow int or
	// whose decode allocation would be absurd for a hostile header.
	n := 1
	for _, e := range h.shape {
		if n > math.MaxInt/e {
			return h, nil, fmt.Errorf("%w: shape %v overflows", ErrCorrupt, h.shape)
		}
		n *= e
	}
	if n > maxDecodeElements {
		return h, nil, fmt.Errorf("%w: %d elements exceeds decode limit %d", ErrCorrupt, n, maxDecodeElements)
	}
	return h, buf[pos:], nil
}

// boundExp returns the exponent lb with 2^(lb-1) <= bound, the quantity the
// per-block byte-count computation compares block exponents against.
func boundExp(bound float64) int {
	_, exp := math.Frexp(bound)
	return exp
}

// keptBytes computes the number of leading IEEE bytes to keep for a
// nonconstant block: the smallest k whose mantissa coverage m = 8k−1−expBits
// satisfies 2^(E−m) <= bound, clamped to [2, elemSize]. k is at least 2 so
// the sign and the full exponent field always survive; k = elemSize stores
// the block bit-exactly.
func keptBytes(maxExp, lb, expBits, elemSize int) int {
	need := maxExp - lb + 1 // required mantissa bits m
	if need < 0 {
		need = 0
	}
	k := (need + expBits + 1 + 7) / 8
	if k < 2 {
		k = 2
	}
	if k > elemSize {
		k = elemSize
	}
	return k
}

// sectionSizes derives every body-section length from the header and the
// bitmap + kept-bytes sections, so the decoder can bounds-check the whole
// stream before touching a value.
func bodySections(h header, body []byte) (bitmap, consts, kept, planes []byte, nBlocks int, err error) {
	n := h.shape.Len()
	nBlocks = (n + h.blockSize - 1) / h.blockSize
	bitmapLen := (nBlocks + 7) / 8
	if len(body) < bitmapLen {
		return nil, nil, nil, nil, 0, fmt.Errorf("%w: truncated bitmap", ErrCorrupt)
	}
	bitmap = body[:bitmapLen]
	nConst := 0
	for _, b := range bitmap {
		nConst += bits.OnesCount8(b)
	}
	// Bits beyond the last block must be zero (they would silently change
	// the constant count otherwise).
	if pad := bitmapLen*8 - nBlocks; pad > 0 {
		if bitmap[bitmapLen-1]>>(8-pad) != 0 {
			return nil, nil, nil, nil, 0, fmt.Errorf("%w: nonzero bitmap padding", ErrCorrupt)
		}
	}
	if nConst > nBlocks {
		return nil, nil, nil, nil, 0, fmt.Errorf("%w: %d constant blocks of %d", ErrCorrupt, nConst, nBlocks)
	}
	rest := body[bitmapLen:]
	constLen := nConst * h.elemSize
	if len(rest) < constLen {
		return nil, nil, nil, nil, 0, fmt.Errorf("%w: truncated constants", ErrCorrupt)
	}
	consts, rest = rest[:constLen], rest[constLen:]
	nNon := nBlocks - nConst
	if len(rest) < nNon {
		return nil, nil, nil, nil, 0, fmt.Errorf("%w: truncated kept-bytes section", ErrCorrupt)
	}
	kept, planes = rest[:nNon], rest[nNon:]
	return bitmap, consts, kept, planes, nBlocks, nil
}

func constant(bitmap []byte, i int) bool { return bitmap[i>>3]&(1<<(i&7)) != 0 }
