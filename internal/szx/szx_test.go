package szx

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fraz/internal/grid"
)

// maxAbsErr32 returns the largest pointwise deviation, treating NaN→NaN as
// zero error and anything-else→NaN (or a changed infinity) as infinite.
func maxAbsErr32(a, b []float32) float64 {
	worst := 0.0
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		switch {
		case math.IsNaN(x) && math.IsNaN(y):
		case math.IsNaN(x) || math.IsNaN(y):
			return math.Inf(1)
		case math.IsInf(x, 0) || math.IsInf(y, 0):
			if x != y {
				return math.Inf(1)
			}
		default:
			if d := math.Abs(x - y); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func maxAbsErr64(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		x, y := a[i], b[i]
		switch {
		case math.IsNaN(x) && math.IsNaN(y):
		case math.IsNaN(x) || math.IsNaN(y):
			return math.Inf(1)
		case math.IsInf(x, 0) || math.IsInf(y, 0):
			if x != y {
				return math.Inf(1)
			}
		default:
			if d := math.Abs(x - y); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func synth32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	for i := range data {
		t := float64(i) / float64(n)
		data[i] = float32(100*math.Sin(12*t) + 5*rng.NormFloat64())
	}
	return data
}

func synth64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		t := float64(i) / float64(n)
		data[i] = 100*math.Sin(12*t) + 5*rng.NormFloat64()
	}
	return data
}

func TestRoundTripFloat32(t *testing.T) {
	for _, bound := range []float64{1e-1, 1e-3, 1e-6} {
		data := synth32(10000, 1)
		shape := grid.MustDims(100, 100)
		comp, err := Compress(data, shape, Options{ErrorBound: bound})
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		if got := maxAbsErr32(data, dec); got > bound {
			t.Errorf("bound %g: max abs error %g exceeds bound", bound, got)
		}
	}
}

func TestRoundTripFloat64(t *testing.T) {
	for _, bound := range []float64{1e-1, 1e-3, 1e-9} {
		data := synth64(10000, 2)
		shape := grid.MustDims(10, 10, 100)
		comp, err := Compress(data, shape, Options{ErrorBound: bound})
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		dec, err := Decompress[float64](comp, shape)
		if err != nil {
			t.Fatalf("bound %g: %v", bound, err)
		}
		if got := maxAbsErr64(data, dec); got > bound {
			t.Errorf("bound %g: max abs error %g exceeds bound", bound, got)
		}
	}
}

func TestAllConstantField(t *testing.T) {
	data := make([]float32, 4096)
	for i := range data {
		data[i] = 42.5
	}
	shape := grid.MustDims(4096)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// 32 blocks collapse to one literal each: header + bitmap + 32×4 bytes.
	if len(comp) > fixedHeaderLen+4+4+32*4+16 {
		t.Errorf("all-constant field compressed to %d bytes, want near-header size", len(comp))
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 42.5 {
			t.Fatalf("dec[%d] = %v, want 42.5", i, v)
		}
	}
}

func TestNaNInfPreserved(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		switch i % 4 {
		case 0:
			data[i] = float32(math.NaN())
		case 1:
			data[i] = float32(math.Inf(1))
		case 2:
			data[i] = float32(math.Inf(-1))
		default:
			data[i] = float32(i)
		}
	}
	shape := grid.MustDims(1000)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	// Non-finite blocks are stored losslessly, so the round trip must be
	// bit-exact for every value.
	for i := range data {
		if math.Float32bits(data[i]) != math.Float32bits(dec[i]) {
			t.Fatalf("dec[%d] = %x, want bit-exact %x", i, math.Float32bits(dec[i]), math.Float32bits(data[i]))
		}
	}
}

func TestAllNaN64(t *testing.T) {
	data := make([]float64, 300)
	for i := range data {
		data[i] = math.NaN()
	}
	shape := grid.MustDims(300)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float64](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if !math.IsNaN(dec[i]) {
			t.Fatalf("dec[%d] = %v, want NaN", i, dec[i])
		}
	}
}

func TestBlockLargerThanField(t *testing.T) {
	data := synth32(17, 3)
	shape := grid.MustDims(17)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3, BlockSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxAbsErr32(data, dec); got > 1e-3 {
		t.Errorf("max abs error %g exceeds bound", got)
	}
}

func TestBoundRejection(t *testing.T) {
	data := synth32(16, 4)
	shape := grid.MustDims(16)
	for _, bound := range []float64{0, -1, math.Inf(1), math.NaN()} {
		_, err := Compress(data, shape, Options{ErrorBound: bound})
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("bound %v: got %v, want ErrInvalidInput", bound, err)
		}
	}
}

func TestInputValidation(t *testing.T) {
	data := synth32(16, 5)
	if _, err := Compress(data, grid.Dims{4, 3}, Options{ErrorBound: 1e-3}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("shape/data mismatch: got %v, want ErrInvalidInput", err)
	}
	if _, err := Compress(data, grid.Dims{}, Options{ErrorBound: 1e-3}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("empty shape: got %v, want ErrInvalidInput", err)
	}
	if _, err := Compress(data, grid.MustDims(16), Options{ErrorBound: 1e-3, BlockSize: -1}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative block size: got %v, want ErrInvalidInput", err)
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	data := synth32(256, 6)
	shape := grid.MustDims(256)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    comp[:8],
		"bad magic":       append([]byte{0, 1, 2, 3}, comp[4:]...),
		"truncated body":  comp[:len(comp)-7],
		"trailing bytes":  append(append([]byte{}, comp...), 0xee),
		"float64 magic":   append(binary32to64(comp[:4]), comp[4:]...),
		"shape mismatch":  nil, // handled below
		"wrong type call": nil,
	}
	for name, buf := range cases {
		if buf == nil {
			continue
		}
		if _, err := Decompress[float32](buf, nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	if _, err := Decompress[float32](comp, grid.MustDims(2, 128)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("shape mismatch: got %v, want ErrCorrupt", err)
	}
	if _, err := Decompress[float64](comp, shape); !errors.Is(err, ErrCorrupt) {
		t.Errorf("dtype mismatch: got %v, want ErrCorrupt", err)
	}
}

// binary32to64 rewrites a float32 magic to the float64 one, leaving the rest
// of the stream (sized for 4-byte elements) inconsistent.
func binary32to64(magic []byte) []byte {
	out := append([]byte{}, magic...)
	out[3] = '2'
	return out
}

func TestHeaderShape(t *testing.T) {
	data := synth64(60, 7)
	shape := grid.MustDims(3, 4, 5)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := HeaderShape(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(shape) {
		t.Errorf("HeaderShape = %v, want %v", got, shape)
	}
}

func TestSmallBlockSizes(t *testing.T) {
	data := synth64(1000, 8)
	shape := grid.MustDims(1000)
	for _, bs := range []int{1, 2, 3, 7, 128, 999, 1000, 1001} {
		comp, err := Compress(data, shape, Options{ErrorBound: 1e-4, BlockSize: bs})
		if err != nil {
			t.Fatalf("bs %d: %v", bs, err)
		}
		dec, err := Decompress[float64](comp, shape)
		if err != nil {
			t.Fatalf("bs %d: %v", bs, err)
		}
		if got := maxAbsErr64(data, dec); got > 1e-4 {
			t.Errorf("bs %d: max abs error %g exceeds bound", bs, got)
		}
	}
}

func TestTinyBoundGoesLossless(t *testing.T) {
	data := synth32(512, 9)
	shape := grid.MustDims(512)
	// A bound far below float32 resolution forces full-width blocks; the
	// round trip must then be bit-exact.
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-30})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float32bits(data[i]) != math.Float32bits(dec[i]) {
			t.Fatalf("dec[%d] not bit-exact under tiny bound", i)
		}
	}
}
