package szx

import (
	"math"
	"testing"

	"fraz/internal/grid"
)

// FuzzDecompress feeds arbitrary bytes to the stream decoder at both element
// widths. The contract under test: Decompress returns an error for anything
// it cannot parse and never panics; when a stream does parse, the decoded
// length must match the header shape.
func FuzzDecompress(f *testing.F) {
	seed32 := func(data []float32, shape grid.Dims, bound float64, bs int) {
		comp, err := Compress(data, shape, Options{ErrorBound: bound, BlockSize: bs})
		if err == nil {
			f.Add(comp)
		}
	}
	seed32([]float32{1, 2, 3, 4, 5, 6, 7, 8}, grid.MustDims(8), 1e-2, 4)
	seed32(make([]float32, 300), grid.MustDims(300), 1e-3, 0)
	seed32([]float32{float32(math.NaN()), 1, float32(math.Inf(1)), 2}, grid.MustDims(4), 1e-2, 2)
	if comp64, err := Compress([]float64{3.14, 2.71, 1.41, 1.73}, grid.MustDims(2, 2), Options{ErrorBound: 1e-6}); err == nil {
		f.Add(comp64)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		out32, err := Decompress[float32](data, nil)
		if err == nil {
			shape, herr := HeaderShape(data)
			if herr != nil {
				t.Fatalf("decode succeeded but HeaderShape failed: %v", herr)
			}
			if len(out32) != shape.Len() {
				t.Fatalf("decoded %d float32 values for shape %v", len(out32), shape)
			}
		}
		out64, err := Decompress[float64](data, nil)
		if err == nil {
			shape, herr := HeaderShape(data)
			if herr != nil {
				t.Fatalf("decode succeeded but HeaderShape failed: %v", herr)
			}
			if len(out64) != shape.Len() {
				t.Fatalf("decoded %d float64 values for shape %v", len(out64), shape)
			}
		}
	})
}
