package szx

import (
	"encoding/binary"
	"fmt"
	"math"

	"fraz/internal/grid"
	"fraz/internal/pool"
)

// expBits32 and expBits64 are the IEEE-754 exponent field widths; a kept
// prefix of k bytes therefore carries 8k−1−expBits mantissa bits.
const (
	expBits32 = 8
	expBits64 = 11
)

func appendHeader(out []byte, magic uint32, shape grid.Dims, bound float64, blockSize int) []byte {
	out = binary.LittleEndian.AppendUint32(out, magic)
	out = append(out, byte(len(shape)))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(bound))
	out = binary.LittleEndian.AppendUint32(out, uint32(blockSize))
	for _, e := range shape {
		out = binary.LittleEndian.AppendUint32(out, uint32(e))
	}
	return out
}

func compress32(data []float32, shape grid.Dims, o Options) []byte {
	n := len(data)
	bs := o.BlockSize
	nBlocks := (n + bs - 1) / bs
	bitmapLen := (nBlocks + 7) / 8
	headerLen := fixedHeaderLen + 4*len(shape)

	out := make([]byte, 0, headerLen+bitmapLen)
	out = appendHeader(out, magic32, shape, o.ErrorBound, bs)
	out = append(out, make([]byte, bitmapLen)...)
	bitmap := out[headerLen:]

	consts := make([]byte, 0, 64)
	kept := pool.GetBytes(nBlocks)[:0]
	planes := pool.GetBytes(n)[:0] // grows as needed; n bytes ≈ 4x ratio start
	scratch := pool.GetUint32(bs)
	// Deferred puts so the scratch cannot leak if an early return is ever
	// added to the block loop; the closure parks whichever backing arrays
	// kept and planes hold after append growth.
	defer func() {
		pool.PutBytes(kept)
		pool.PutBytes(planes)
	}()
	defer pool.PutUint32(scratch)

	lb := boundExp(o.ErrorBound)
	twice := 2 * o.ErrorBound

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := data[lo:hi]

		// Pass 1: min/max scan with finiteness check on the raw bits (NaN
		// breaks ordered comparisons, so the scan cannot rely on them).
		finite := true
		bmin, bmax := block[0], block[0]
		for _, v := range block {
			if math.Float32bits(v)&0x7f800000 == 0x7f800000 {
				finite = false
				break
			}
			if v < bmin {
				bmin = v
			}
			if v > bmax {
				bmax = v
			}
		}

		if finite {
			spread := float64(bmax) - float64(bmin)
			if spread <= twice {
				// Constant candidate: the midrange is within the bound of
				// every member; re-check after the narrowing cast so
				// float32 rounding cannot break the guarantee.
				rep := float32(float64(bmin) + spread/2)
				if float64(rep)-float64(bmin) <= o.ErrorBound && float64(bmax)-float64(rep) <= o.ErrorBound {
					bitmap[bi>>3] |= 1 << (bi & 7)
					consts = binary.LittleEndian.AppendUint32(consts, math.Float32bits(rep))
					continue
				}
			}
		}

		// Nonconstant: derive the kept byte count from the block's largest
		// magnitude (full width for non-finite blocks) and pack byte planes.
		k := 4
		if finite {
			maxAbs := float64(bmax)
			if a := -float64(bmin); a > maxAbs {
				maxAbs = a
			}
			_, e := math.Frexp(maxAbs)
			k = keptBytes(e, lb, expBits32, 4)
		}
		kept = append(kept, byte(k))
		bits := scratch[:len(block)]
		for i, v := range block {
			bits[i] = math.Float32bits(v)
		}
		for p := 0; p < k; p++ {
			shift := uint(8 * (3 - p))
			for _, b := range bits {
				planes = append(planes, byte(b>>shift))
			}
		}
	}

	out = append(out, consts...)
	out = append(out, kept...)
	out = append(out, planes...)
	return out
}

func compress64(data []float64, shape grid.Dims, o Options) []byte {
	n := len(data)
	bs := o.BlockSize
	nBlocks := (n + bs - 1) / bs
	bitmapLen := (nBlocks + 7) / 8
	headerLen := fixedHeaderLen + 4*len(shape)

	out := make([]byte, 0, headerLen+bitmapLen)
	out = appendHeader(out, magic64, shape, o.ErrorBound, bs)
	out = append(out, make([]byte, bitmapLen)...)
	bitmap := out[headerLen:]

	consts := make([]byte, 0, 64)
	kept := pool.GetBytes(nBlocks)[:0]
	planes := pool.GetBytes(n)[:0]
	scratch := pool.GetUint64(bs)
	defer func() {
		pool.PutBytes(kept)
		pool.PutBytes(planes)
	}()
	defer pool.PutUint64(scratch)

	lb := boundExp(o.ErrorBound)
	twice := 2 * o.ErrorBound

	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := data[lo:hi]

		finite := true
		bmin, bmax := block[0], block[0]
		for _, v := range block {
			if math.Float64bits(v)&0x7ff0000000000000 == 0x7ff0000000000000 {
				finite = false
				break
			}
			if v < bmin {
				bmin = v
			}
			if v > bmax {
				bmax = v
			}
		}

		if finite {
			spread := bmax - bmin
			if spread <= twice {
				rep := bmin + spread/2
				if rep-bmin <= o.ErrorBound && bmax-rep <= o.ErrorBound {
					bitmap[bi>>3] |= 1 << (bi & 7)
					consts = binary.LittleEndian.AppendUint64(consts, math.Float64bits(rep))
					continue
				}
			}
		}

		k := 8
		if finite {
			maxAbs := bmax
			if a := -bmin; a > maxAbs {
				maxAbs = a
			}
			_, e := math.Frexp(maxAbs)
			k = keptBytes(e, lb, expBits64, 8)
		}
		kept = append(kept, byte(k))
		bits := scratch[:len(block)]
		for i, v := range block {
			bits[i] = math.Float64bits(v)
		}
		for p := 0; p < k; p++ {
			shift := uint(8 * (7 - p))
			for _, b := range bits {
				planes = append(planes, byte(b>>shift))
			}
		}
	}

	out = append(out, consts...)
	out = append(out, kept...)
	out = append(out, planes...)
	return out
}

func decompress32(h header, body []byte) ([]float32, error) {
	bitmap, consts, kept, planes, nBlocks, err := bodySections(h, body)
	if err != nil {
		return nil, err
	}
	n := h.shape.Len()
	// The output comes from the element pool: the blocked open path recycles
	// block buffers after scattering them, so a steady-state decode pipeline
	// reuses instead of allocating. Every element is written below (constant
	// blocks fill dst, nonconstant blocks assign every index), so the pool's
	// stale contents never leak.
	out := pool.GetFloat32(n)
	scratch := pool.GetUint32(h.blockSize)
	defer pool.PutUint32(scratch)
	// out transfers to the caller only on success; every error return below
	// must recycle it or the pooled buffer leaks on corrupt streams.
	done := false
	defer func() {
		if !done {
			pool.PutFloat32(out)
		}
	}()

	ci, ki, pi := 0, 0, 0
	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * h.blockSize
		hi := lo + h.blockSize
		if hi > n {
			hi = n
		}
		dst := out[lo:hi]

		if constant(bitmap, bi) {
			rep := math.Float32frombits(binary.LittleEndian.Uint32(consts[ci:]))
			ci += 4
			for i := range dst {
				dst[i] = rep
			}
			continue
		}

		k := int(kept[ki])
		ki++
		if k < 2 || k > 4 {
			return nil, fmt.Errorf("%w: kept bytes %d for float32 block", ErrCorrupt, k)
		}
		need := k * len(dst)
		if pi+need > len(planes) {
			return nil, fmt.Errorf("%w: truncated byte planes", ErrCorrupt)
		}
		bits := scratch[:len(dst)]
		for i := range bits {
			bits[i] = 0
		}
		for p := 0; p < k; p++ {
			shift := uint(8 * (3 - p))
			plane := planes[pi : pi+len(dst)]
			pi += len(dst)
			for i, b := range plane {
				bits[i] |= uint32(b) << shift
			}
		}
		for i, b := range bits {
			dst[i] = math.Float32frombits(b)
		}
	}
	if pi != len(planes) {
		return nil, fmt.Errorf("%w: %d trailing bytes after byte planes", ErrCorrupt, len(planes)-pi)
	}
	done = true
	return out, nil
}

func decompress64(h header, body []byte) ([]float64, error) {
	bitmap, consts, kept, planes, nBlocks, err := bodySections(h, body)
	if err != nil {
		return nil, err
	}
	n := h.shape.Len()
	out := pool.GetFloat64(n)
	scratch := pool.GetUint64(h.blockSize)
	defer pool.PutUint64(scratch)
	done := false
	defer func() {
		if !done {
			pool.PutFloat64(out)
		}
	}()

	ci, ki, pi := 0, 0, 0
	for bi := 0; bi < nBlocks; bi++ {
		lo := bi * h.blockSize
		hi := lo + h.blockSize
		if hi > n {
			hi = n
		}
		dst := out[lo:hi]

		if constant(bitmap, bi) {
			rep := math.Float64frombits(binary.LittleEndian.Uint64(consts[ci:]))
			ci += 8
			for i := range dst {
				dst[i] = rep
			}
			continue
		}

		k := int(kept[ki])
		ki++
		if k < 2 || k > 8 {
			return nil, fmt.Errorf("%w: kept bytes %d for float64 block", ErrCorrupt, k)
		}
		need := k * len(dst)
		if pi+need > len(planes) {
			return nil, fmt.Errorf("%w: truncated byte planes", ErrCorrupt)
		}
		bits := scratch[:len(dst)]
		for i := range bits {
			bits[i] = 0
		}
		for p := 0; p < k; p++ {
			shift := uint(8 * (7 - p))
			plane := planes[pi : pi+len(dst)]
			pi += len(dst)
			for i, b := range plane {
				bits[i] |= uint64(b) << shift
			}
		}
		for i, b := range bits {
			dst[i] = math.Float64frombits(b)
		}
	}
	if pi != len(planes) {
		return nil, fmt.Errorf("%w: %d trailing bytes after byte planes", ErrCorrupt, len(planes)-pi)
	}
	done = true
	return out, nil
}
