package szx

import (
	"math"
	"runtime"
	"testing"

	"fraz/internal/grid"
	"fraz/internal/pool"
)

// drainPools empties the pool's primary and victim caches so the recycling
// assertions below see a deterministic free-list state. sync.Pool keeps one
// GC generation of victims, so two collections clear both.
func drainPools() {
	runtime.GC()
	runtime.GC()
}

// noisyField returns data no block of which is constant at the given bound,
// so decompression walks the byte-plane path where the corruption checks
// (and the historical leak) live.
func noisyField32(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i)))*100 + float32(i%7)
	}
	return data
}

func noisyField64(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i))*100 + float64(i%7)
	}
	return data
}

// TestDecompressErrorRecyclesOutput32 pins the fix for the pooled-output
// leak: a decode that fails mid-stream must return its output buffer to the
// pool. The test parks a marker slice in the exact capacity class the
// decoder will request; the decoder's Get hands the marker out, the error
// path must Put it back, and the final Get observes the same backing array.
func TestDecompressErrorRecyclesOutput32(t *testing.T) {
	const n = 100 // capacity class 128
	data := noisyField32(n)
	shape := grid.Dims{n}
	comp, err := Compress[float32](data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	corrupt := comp[:len(comp)-1] // chop one plane byte: fails after output acquisition

	drainPools()
	marker := make([]float32, 128)
	pool.PutFloat32(marker)

	if _, err := Decompress[float32](corrupt, shape); err == nil {
		t.Fatal("truncated stream decompressed without error")
	}

	got := pool.GetFloat32(n)
	defer pool.PutFloat32(got)
	if &got[0] != &marker[0] {
		t.Error("failed decode did not return its pooled output buffer; the error path leaks")
	}
}

func TestDecompressErrorRecyclesOutput64(t *testing.T) {
	const n = 100
	data := noisyField64(n)
	shape := grid.Dims{n}
	comp, err := Compress[float64](data, shape, Options{ErrorBound: 1e-6})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	corrupt := comp[:len(comp)-1]

	drainPools()
	marker := make([]float64, 128)
	pool.PutFloat64(marker)

	if _, err := Decompress[float64](corrupt, shape); err == nil {
		t.Fatal("truncated stream decompressed without error")
	}

	got := pool.GetFloat64(n)
	defer pool.PutFloat64(got)
	if &got[0] != &marker[0] {
		t.Error("failed decode did not return its pooled output buffer; the error path leaks")
	}
}

// TestDecompressSuccessKeepsOwnership is the inverse guard: a successful
// decode hands the buffer to the caller, so it must NOT also put it back —
// a double-custody bug would alias the caller's data with the next Get.
func TestDecompressSuccessKeepsOwnership(t *testing.T) {
	const n = 100
	data := noisyField32(n)
	shape := grid.Dims{n}
	comp, err := Compress[float32](data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}

	drainPools()
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}

	got := pool.GetFloat32(n)
	defer pool.PutFloat32(got)
	if len(dec) > 0 && len(got) > 0 && &got[0] == &dec[0] {
		t.Error("successful decode put its output back in the pool while the caller still holds it")
	}
}
