package quantize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadBounds(t *testing.T) {
	for _, eb := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(eb); err == nil {
			t.Errorf("New(%v) should fail", eb)
		}
	}
}

func TestNewWithIntervalsRejectsSmallCapacity(t *testing.T) {
	if _, err := NewWithIntervals(1.0, 2); err == nil {
		t.Errorf("intervals < 4 should fail")
	}
}

func TestQuantizeExactAtPrediction(t *testing.T) {
	q, err := New(0.5)
	if err != nil {
		t.Fatal(err)
	}
	code, recon, ok := q.Quantize(10.0, 10.0)
	if !ok || code != 0 || recon != 10.0 {
		t.Errorf("got code=%d recon=%v ok=%v", code, recon, ok)
	}
}

func TestQuantizeRespectsBound(t *testing.T) {
	q, err := New(0.01)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{0, 0.004, 0.009, 0.011, 1.2345, -3.3, 100.5}
	pred := 0.0
	for _, v := range values {
		code, recon, ok := q.Quantize(v, pred)
		if !ok {
			continue
		}
		if math.Abs(recon-v) > q.ErrorBound {
			t.Errorf("value %v: reconstruction %v exceeds bound (code %d)", v, recon, code)
		}
		if got := q.Dequantize(pred, code); got != recon {
			t.Errorf("Dequantize mismatch: %v vs %v", got, recon)
		}
	}
}

func TestQuantizeOverflowIsUnpredictable(t *testing.T) {
	q, err := NewWithIntervals(1e-6, 256)
	if err != nil {
		t.Fatal(err)
	}
	_, recon, ok := q.Quantize(1000.0, 0.0)
	if ok {
		t.Errorf("residual far beyond capacity should be unpredictable")
	}
	if recon != 1000.0 {
		t.Errorf("unpredictable reconstruction should echo the value, got %v", recon)
	}
}

func TestQuantizeNaNResidual(t *testing.T) {
	q, _ := New(0.1)
	if _, _, ok := q.Quantize(math.NaN(), 0); ok {
		t.Errorf("NaN value should be unpredictable")
	}
}

func TestPropertyBoundAlwaysRespected(t *testing.T) {
	f := func(value, pred float64, ebExp uint8) bool {
		if math.IsNaN(value) || math.IsInf(value, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		eb := math.Pow(10, -float64(ebExp%8)) // 1 .. 1e-7
		q, err := New(eb)
		if err != nil {
			return false
		}
		code, recon, ok := q.Quantize(value, pred)
		if !ok {
			return recon == value
		}
		if math.Abs(recon-value) > eb {
			return false
		}
		return q.Dequantize(pred, code) == recon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCodeZeroWhenWithinBound(t *testing.T) {
	f := func(residFrac float64) bool {
		if math.IsNaN(residFrac) || math.IsInf(residFrac, 0) {
			return true
		}
		// residual strictly inside (-eb, eb) must quantize to code 0
		eb := 0.125
		frac := math.Mod(math.Abs(residFrac), 0.99)
		q, _ := New(eb)
		code, _, ok := q.Quantize(10+frac*eb, 10)
		return ok && code == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
