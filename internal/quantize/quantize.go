// Package quantize implements the linear-scaling quantizer used by the
// SZ-like compressor (stage 2) and the MGARD-like compressor's coefficient
// quantization.
//
// Given an absolute error bound e, a prediction p and a true value v, the
// quantization code is round((v - p) / (2e)); reconstructing p + 2e*code
// guarantees |v - v'| <= e. Codes whose magnitude exceeds the configured
// capacity are marked unpredictable and their values are stored verbatim by
// the caller.
package quantize

import (
	"fmt"
	"math"
)

// DefaultIntervals is the default number of quantization intervals,
// matching the SZ default of 65536 (the code must fit in a signed 17-bit
// range, i.e. [-32768, 32767] around zero).
const DefaultIntervals = 65536

// Quantizer maps prediction residuals to integer codes under an absolute
// error bound.
type Quantizer struct {
	// ErrorBound is the absolute error bound e. Must be > 0.
	ErrorBound float64
	// Intervals is the number of quantization intervals (capacity). Codes in
	// [-Intervals/2, Intervals/2-1] are representable; anything else is
	// unpredictable.
	Intervals int
}

// New returns a Quantizer for the given error bound with the default number
// of intervals. It returns an error when the bound is not positive or not
// finite.
func New(errorBound float64) (*Quantizer, error) {
	return NewWithIntervals(errorBound, DefaultIntervals)
}

// NewWithIntervals returns a Quantizer with an explicit interval capacity.
func NewWithIntervals(errorBound float64, intervals int) (*Quantizer, error) {
	if !(errorBound > 0) || math.IsInf(errorBound, 0) || math.IsNaN(errorBound) {
		return nil, fmt.Errorf("quantize: error bound must be positive and finite, got %v", errorBound)
	}
	if intervals < 4 {
		return nil, fmt.Errorf("quantize: intervals must be >= 4, got %d", intervals)
	}
	return &Quantizer{ErrorBound: errorBound, Intervals: intervals}, nil
}

// Quantize converts the difference between value and prediction into an
// integer code. ok is false when the residual does not fit in the code range
// (the caller should store the value verbatim). When ok is true, the
// reconstruction returned by Dequantize(pred, code) differs from value by at
// most ErrorBound.
func (q *Quantizer) Quantize(value, pred float64) (code int32, recon float64, ok bool) {
	diff := value - pred
	half := float64(q.Intervals / 2)
	c := math.Round(diff / (2 * q.ErrorBound))
	if math.IsNaN(c) || c >= half || c < -half {
		return 0, value, false
	}
	code = int32(c)
	recon = pred + 2*q.ErrorBound*float64(code)
	// Guard against floating-point rounding pushing the reconstruction just
	// outside the bound; in that rare case fall back to verbatim storage.
	if math.Abs(recon-value) > q.ErrorBound {
		return 0, value, false
	}
	return code, recon, true
}

// Dequantize reconstructs a value from a prediction and a quantization code.
func (q *Quantizer) Dequantize(pred float64, code int32) float64 {
	return pred + 2*q.ErrorBound*float64(code)
}
