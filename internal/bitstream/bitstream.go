// Package bitstream implements bit-granular writers and readers used by the
// embedded (bit-plane) coder of the ZFP-like compressor and by the canonical
// Huffman coder of the SZ-like compressor.
//
// Bits are written least-significant-bit first within each byte, which makes
// WriteBits/ReadBits round-trip cheaply for arbitrary bit widths up to 64.
package bitstream

import (
	"errors"
	"fmt"
)

// Writer accumulates bits into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator
	nCur uint   // number of valid bits in cur (0..7)
	bits int    // total number of bits written
}

// NewWriter returns a Writer with an initial capacity hint in bytes.
func NewWriter(capacityBytes int) *Writer {
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	return &Writer{buf: make([]byte, 0, capacityBytes)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit uint) {
	w.cur |= uint64(bit&1) << w.nCur
	w.nCur++
	w.bits++
	if w.nCur == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nCur = 0
	}
}

// WriteBool appends a single bit encoded from a boolean.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteBits appends the n least-significant bits of v, LSB first.
// n must be in [0, 64].
//
// The write is byte-granular, not bit-granular: the bits join the
// accumulator in one shift and leave it a byte at a time, so a fixed-rate
// packer calling WriteBits per value costs a handful of operations per
// value instead of per bit. The layout is identical to n WriteBit calls.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits width %d out of range", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= uint64(1)<<n - 1
	}
	w.bits += int(n)
	cur := w.cur | v<<w.nCur
	total := w.nCur + n
	if total <= 64 {
		for total >= 8 {
			w.buf = append(w.buf, byte(cur))
			cur >>= 8
			total -= 8
		}
		w.cur, w.nCur = cur, total
		return
	}
	// v straddles the 64-bit accumulator (n + nCur > 64): cur holds the
	// first 64 bits in stream order — flush them whole — and the top
	// total−64 bits of v restart the accumulator.
	w.buf = append(w.buf,
		byte(cur), byte(cur>>8), byte(cur>>16), byte(cur>>24),
		byte(cur>>32), byte(cur>>40), byte(cur>>48), byte(cur>>56))
	w.cur = v >> (64 - w.nCur)
	w.nCur = total - 64
}

// WriteUnary writes v as v one-bits followed by a terminating zero bit.
// It is used by the group-testing stage of the embedded coder.
func (w *Writer) WriteUnary(v uint) {
	for i := uint(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Len reports the total number of bits written so far.
func (w *Writer) Len() int { return w.bits }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// accumulated buffer. The Writer remains usable; subsequent writes continue
// at the next byte boundary.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.bits += int(8 - w.nCur)
		w.cur = 0
		w.nCur = 0
	}
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nCur = 0
	w.bits = 0
}

// ErrOutOfBits is returned by Reader methods when the stream is exhausted.
var ErrOutOfBits = errors.New("bitstream: out of bits")

// Reader consumes bits from a byte buffer produced by Writer.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within current byte (0..7)
}

// NewReader returns a Reader over the given buffer. The buffer is not copied.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	b := (uint(r.buf[r.pos]) >> r.bit) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBool reads a single bit as a boolean.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b == 1, err
}

// ReadBits reads n bits (LSB first) into a uint64. n must be in [0, 64].
// When fewer than n bits remain it consumes them all and returns
// ErrOutOfBits.
//
// Like WriteBits, the read is byte-granular: a leading partial byte, then
// whole bytes, then a trailing partial byte, matching the per-bit layout
// exactly.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits width %d out of range", n))
	}
	if n == 0 {
		return 0, nil
	}
	if (len(r.buf)-r.pos)*8-int(r.bit) < int(n) {
		r.pos = len(r.buf)
		r.bit = 0
		return 0, ErrOutOfBits
	}
	var v uint64
	shift := uint(0)
	if r.bit != 0 {
		take := 8 - r.bit
		if take > n {
			take = n
		}
		v = uint64(r.buf[r.pos]>>r.bit) & (uint64(1)<<take - 1)
		shift = take
		n -= take
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		if n == 0 {
			return v, nil
		}
	}
	for n >= 8 {
		v |= uint64(r.buf[r.pos]) << shift
		shift += 8
		r.pos++
		n -= 8
	}
	if n > 0 {
		v |= (uint64(r.buf[r.pos]) & (uint64(1)<<n - 1)) << shift
		r.bit = n
	}
	return v, nil
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero bit).
func (r *Reader) ReadUnary() (uint, error) {
	var v uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// BitsRemaining reports the number of unread bits left in the buffer.
func (r *Reader) BitsRemaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}

// AlignByte advances the reader to the next byte boundary (no-op if already
// aligned).
func (r *Reader) AlignByte() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}
