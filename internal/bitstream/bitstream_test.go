package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Errorf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteReadBool(t *testing.T) {
	w := NewWriter(0)
	w.WriteBool(true)
	w.WriteBool(false)
	w.WriteBool(true)
	r := NewReader(w.Bytes())
	for i, want := range []bool{true, false, true} {
		got, err := r.ReadBool()
		if err != nil || got != want {
			t.Errorf("bool %d = %v (%v), want %v", i, got, err, want)
		}
	}
}

func TestWriteReadMultiBitValues(t *testing.T) {
	w := NewWriter(64)
	vals := []struct {
		v uint64
		n uint
	}{
		{0x5, 3}, {0xFF, 8}, {0x1234, 16}, {0xDEADBEEF, 32},
		{0x0123456789ABCDEF, 64}, {0, 1}, {1, 1}, {0x7, 5},
	}
	for _, c := range vals {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range vals {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("ReadBits %d: %v", i, err)
		}
		want := c.v
		if c.n < 64 {
			want &= (1 << c.n) - 1
		}
		if got != want {
			t.Errorf("value %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint{0, 1, 2, 5, 13, 0, 7}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary %d: %v", i, err)
		}
		if got != want {
			t.Errorf("unary %d = %d, want %d", i, got, want)
		}
	}
}

func TestOutOfBits(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Errorf("expected ErrOutOfBits, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrOutOfBits {
		t.Errorf("expected ErrOutOfBits, got %v", err)
	}
	if _, err := r.ReadUnary(); err != ErrOutOfBits {
		t.Errorf("expected ErrOutOfBits, got %v", err)
	}
}

func TestWriteBitsPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("WriteBits(_, 65) should panic")
		}
	}()
	NewWriter(0).WriteBits(0, 65)
}

func TestReadBitsPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("ReadBits(65) should panic")
		}
	}()
	NewReader([]byte{0}).ReadBits(65)
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xABCD, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d", w.Len())
	}
	w.WriteBits(0x3, 2)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x3 {
		t.Errorf("after reset bytes = %v", b)
	}
}

func TestBitsRemainingAndAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x1F, 5)
	buf := w.Bytes()
	r := NewReader(buf)
	if r.BitsRemaining() != 8 {
		t.Errorf("BitsRemaining = %d, want 8", r.BitsRemaining())
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.AlignByte()
	if r.BitsRemaining() != 0 {
		t.Errorf("BitsRemaining after align = %d, want 0", r.BitsRemaining())
	}
	r.AlignByte() // no-op when already aligned
	if r.BitsRemaining() != 0 {
		t.Errorf("second align changed position")
	}
}

func TestNegativeCapacity(t *testing.T) {
	w := NewWriter(-5)
	w.WriteBit(1)
	if len(w.Bytes()) != 1 {
		t.Errorf("writer with negative capacity hint should still work")
	}
}

func TestPropertyBitsRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthSeed uint8) bool {
		if len(vals) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(int64(widthSeed)))
		widths := make([]uint, len(vals))
		w := NewWriter(0)
		for i, v := range vals {
			widths[i] = uint(rng.Intn(64) + 1)
			w.WriteBits(v, widths[i])
		}
		r := NewReader(w.Bytes())
		for i, v := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				return false
			}
			want := v
			if widths[i] < 64 {
				want &= (1 << widths[i]) - 1
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnaryRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		w := NewWriter(0)
		for _, v := range vals {
			w.WriteUnary(uint(v % 300))
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUnary()
			if err != nil || got != uint(v%300) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
