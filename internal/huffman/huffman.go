// Package huffman implements a canonical Huffman coder over 32-bit integer
// symbols. It is the entropy-coding stage (stage 3) of the SZ-like
// compressor and the back end of the MGARD-like compressor: both produce
// streams of quantization codes whose distribution is heavily skewed toward
// a small number of values, which is exactly the regime where Huffman coding
// shines.
//
// The encoded container is self-describing: it stores the symbol table
// (symbol values and code lengths), the number of encoded symbols, and the
// bit stream, so Decode needs no side information.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"fraz/internal/bitstream"
)

// maxCodeLen is the maximum admissible code length. With canonical coding and
// realistic alphabet sizes (< 2^20 distinct symbols) this is never exceeded;
// it exists to bound the decoder tables.
const maxCodeLen = 58

// ErrCorrupt is returned when a Huffman container fails to parse.
var ErrCorrupt = errors.New("huffman: corrupt stream")

type node struct {
	freq        uint64
	symbol      int32
	left, right int // indices into node slice, -1 for leaves
	// order breaks frequency ties deterministically so that encoding is
	// reproducible across runs and platforms.
	order int
}

type nodeHeap struct {
	nodes []int
	pool  []node
}

func (h nodeHeap) Len() int { return len(h.nodes) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := h.pool[h.nodes[i]], h.pool[h.nodes[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.order < b.order
}
func (h nodeHeap) Swap(i, j int)       { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	x := old[n-1]
	h.nodes = old[:n-1]
	return x
}

// codeEntry is a canonical code assignment for one symbol.
type codeEntry struct {
	symbol int32
	length uint8
	code   uint64
}

// buildCodeLengths computes Huffman code lengths for each distinct symbol.
func buildCodeLengths(symbols []int32, freqs []uint64) []codeEntry {
	n := len(symbols)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []codeEntry{{symbol: symbols[0], length: 1}}
	}
	pool := make([]node, 0, 2*n)
	h := &nodeHeap{pool: nil}
	for i := 0; i < n; i++ {
		pool = append(pool, node{freq: freqs[i], symbol: symbols[i], left: -1, right: -1, order: i})
	}
	h.pool = pool
	h.nodes = make([]int, n)
	for i := range h.nodes {
		h.nodes[i] = i
	}
	heap.Init(h)
	order := n
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.pool = append(h.pool, node{
			freq:  h.pool[a].freq + h.pool[b].freq,
			left:  a,
			right: b,
			order: order,
		})
		order++
		pool = h.pool
		heap.Push(h, len(h.pool)-1)
	}
	root := h.nodes[0]
	pool = h.pool

	// Depth-first traversal to find each leaf's depth.
	entries := make([]codeEntry, 0, n)
	type frame struct {
		idx   int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := pool[f.idx]
		if nd.left < 0 && nd.right < 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			entries = append(entries, codeEntry{symbol: nd.symbol, length: d})
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return entries
}

// assignCanonical sorts entries by (length, symbol) and assigns canonical
// codes. The same procedure is used by the decoder to reconstruct codes from
// lengths alone.
func assignCanonical(entries []codeEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].length != entries[j].length {
			return entries[i].length < entries[j].length
		}
		return entries[i].symbol < entries[j].symbol
	})
	var code uint64
	var prevLen uint8
	for i := range entries {
		if i > 0 {
			code++
			code <<= entries[i].length - prevLen
		}
		entries[i].code = code
		prevLen = entries[i].length
	}
}

// Encode compresses the symbol stream into a self-describing byte container.
func Encode(data []int32) ([]byte, error) {
	// Frequency count.
	freqMap := make(map[int32]uint64)
	for _, s := range data {
		freqMap[s]++
	}
	symbols := make([]int32, 0, len(freqMap))
	for s := range freqMap {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	freqs := make([]uint64, len(symbols))
	for i, s := range symbols {
		freqs[i] = freqMap[s]
	}

	entries := buildCodeLengths(symbols, freqs)
	assignCanonical(entries)
	for _, e := range entries {
		if e.length > maxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds limit %d", e.length, maxCodeLen)
		}
	}
	codeOf := make(map[int32]codeEntry, len(entries))
	for _, e := range entries {
		codeOf[e.symbol] = e
	}

	// Header: numSymbols(u32), numEntries(u32), then per entry symbol(i32) +
	// length(u8); then the bit stream.
	header := make([]byte, 0, 8+len(entries)*5)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(data)))
	header = append(header, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(entries)))
	header = append(header, tmp[:4]...)
	for _, e := range entries {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(e.symbol))
		header = append(header, tmp[:4]...)
		header = append(header, e.length)
	}

	w := bitstream.NewWriter(len(data) / 2)
	for _, s := range data {
		e := codeOf[s]
		// Canonical codes are defined MSB-first; emit bits from the most
		// significant code bit down so the decoder can walk prefix-first.
		for b := int(e.length) - 1; b >= 0; b-- {
			w.WriteBit(uint(e.code>>uint(b)) & 1)
		}
	}
	payload := w.Bytes()
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	out = append(out, payload...)
	return out, nil
}

// Decode reverses Encode, returning the original symbol stream.
func Decode(buf []byte) ([]int32, error) {
	if len(buf) < 8 {
		return nil, ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(buf[0:4]))
	numEntries := int(binary.LittleEndian.Uint32(buf[4:8]))
	pos := 8
	if numEntries < 0 || pos+numEntries*5 > len(buf) {
		return nil, ErrCorrupt
	}
	if count == 0 {
		return []int32{}, nil
	}
	if numEntries == 0 {
		return nil, ErrCorrupt
	}
	entries := make([]codeEntry, numEntries)
	for i := 0; i < numEntries; i++ {
		sym := int32(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		length := buf[pos+4]
		pos += 5
		if length == 0 || length > maxCodeLen {
			return nil, ErrCorrupt
		}
		entries[i] = codeEntry{symbol: sym, length: length}
	}
	assignCanonical(entries)

	// Canonical decoding tables indexed by code length: the first code of
	// each length and the index of the first symbol of that length.
	firstCode := make([]uint64, maxCodeLen+2)
	firstIndex := make([]int, maxCodeLen+2)
	countsByLen := make([]int, maxCodeLen+2)
	for _, e := range entries {
		countsByLen[e.length]++
	}
	idx := 0
	var code uint64
	for l := 1; l <= maxCodeLen; l++ {
		firstCode[l] = code
		firstIndex[l] = idx
		code += uint64(countsByLen[l])
		idx += countsByLen[l]
		code <<= 1
	}

	r := bitstream.NewReader(buf[pos:])
	out := make([]int32, 0, count)
	for len(out) < count {
		var acc uint64
		var l uint8
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, ErrCorrupt
			}
			acc = acc<<1 | uint64(bit)
			l++
			if l > maxCodeLen {
				return nil, ErrCorrupt
			}
			if countsByLen[l] > 0 {
				offset := acc - firstCode[l]
				if acc >= firstCode[l] && offset < uint64(countsByLen[l]) {
					out = append(out, entries[firstIndex[l]+int(offset)].symbol)
					break
				}
			}
		}
	}
	return out, nil
}

// EstimatedBits returns the number of payload bits an encoding of data would
// use (excluding the header). It is a convenience for compression-ratio
// modelling in tests.
func EstimatedBits(data []int32) int {
	freqMap := make(map[int32]uint64)
	for _, s := range data {
		freqMap[s]++
	}
	symbols := make([]int32, 0, len(freqMap))
	for s := range freqMap {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	freqs := make([]uint64, len(symbols))
	for i, s := range symbols {
		freqs[i] = freqMap[s]
	}
	entries := buildCodeLengths(symbols, freqs)
	lenOf := make(map[int32]uint8, len(entries))
	for _, e := range entries {
		lenOf[e.symbol] = e.length
	}
	bits := 0
	for _, s := range data {
		bits += int(lenOf[s])
	}
	return bits
}
