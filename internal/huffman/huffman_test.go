package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []int32) {
	t.Helper()
	enc, err := Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(data) {
		t.Fatalf("length mismatch: got %d want %d", len(dec), len(data))
	}
	for i := range data {
		if dec[i] != data[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, dec[i], data[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, []int32{})
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, []int32{42})
	roundTrip(t, []int32{7, 7, 7, 7, 7, 7})
}

func TestRoundTripTwoSymbols(t *testing.T) {
	roundTrip(t, []int32{1, 2, 1, 1, 2, 1, 1, 1})
}

func TestRoundTripNegativeSymbols(t *testing.T) {
	roundTrip(t, []int32{-5, 3, -5, -5, 0, 3, -1000000, 3})
}

func TestRoundTripSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]int32, 20000)
	for i := range data {
		// Mostly zeros with occasional larger codes, mimicking SZ
		// quantization output on smooth data.
		r := rng.Float64()
		switch {
		case r < 0.8:
			data[i] = 0
		case r < 0.95:
			data[i] = int32(rng.Intn(8) - 4)
		default:
			data[i] = int32(rng.Intn(1000) - 500)
		}
	}
	roundTrip(t, data)
}

func TestRoundTripUniformLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]int32, 5000)
	for i := range data {
		data[i] = int32(rng.Intn(4096))
	}
	roundTrip(t, data)
}

func TestCompressionBeatsRawOnSkewedData(t *testing.T) {
	data := make([]int32, 10000)
	for i := range data {
		data[i] = int32(i % 3) // extremely low entropy
	}
	enc, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	raw := len(data) * 4
	if len(enc) >= raw/2 {
		t.Errorf("expected at least 2x reduction on low-entropy data: %d vs %d raw", len(enc), raw)
	}
}

func TestDecodeCorruptHeader(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Errorf("short buffer should fail")
	}
	// count > 0 but zero table entries
	buf := []byte{5, 0, 0, 0, 0, 0, 0, 0}
	if _, err := Decode(buf); err == nil {
		t.Errorf("zero-entry table with nonzero count should fail")
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	data := []int32{1, 2, 3, 4, 5, 6, 7, 8, 1, 1, 1, 1}
	enc, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:len(enc)-2]); err == nil {
		t.Errorf("truncated payload should fail")
	}
}

func TestDecodeCorruptCodeLength(t *testing.T) {
	data := []int32{1, 2, 1}
	enc, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first table entry's code length byte (offset 8+4).
	enc[12] = 200
	if _, err := Decode(enc); err == nil {
		t.Errorf("invalid code length should fail")
	}
}

func TestEstimatedBits(t *testing.T) {
	data := []int32{0, 0, 0, 0, 1, 1, 2, 3}
	bits := EstimatedBits(data)
	if bits <= 0 {
		t.Fatalf("EstimatedBits = %d", bits)
	}
	// Entropy of this distribution is 1.75 bits/symbol * 8 = 14; Huffman
	// should be exactly 14 bits here.
	if bits != 14 {
		t.Errorf("EstimatedBits = %d, want 14", bits)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []int16, skew uint8) bool {
		data := make([]int32, len(raw))
		mod := int32(skew%16) + 1
		for i, v := range raw {
			data[i] = int32(v) % mod
		}
		enc, err := Encode(data)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(data) {
			return false
		}
		for i := range data {
			if dec[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int32, 100000)
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = 0
		} else {
			data[i] = int32(rng.Intn(256) - 128)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int32, 100000)
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = 0
		} else {
			data[i] = int32(rng.Intn(256) - 128)
		}
	}
	enc, err := Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
