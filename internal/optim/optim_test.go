package optim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFindGlobalMinQuadratic(t *testing.T) {
	obj := func(x float64) float64 { return (x - 3.2) * (x - 3.2) }
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 10, MaxIterations: 60, Cutoff: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-3.2) > 0.05 {
		t.Errorf("minimum at %v, want ~3.2 (f=%v, iters=%d)", res.X, res.F, res.Iterations)
	}
}

func TestFindGlobalMinMultimodal(t *testing.T) {
	// A function with many local minima; the global one is near x=7.5.
	obj := func(x float64) float64 {
		return 2 + math.Sin(3*x) + 0.5*math.Cos(7*x) - 2*math.Exp(-(x-7.5)*(x-7.5))
	}
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 10, MaxIterations: 120, Cutoff: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-7.5) > 0.5 {
		t.Errorf("global minimum at %v, want ~7.5 (f=%v)", res.X, res.F)
	}
}

func TestFindGlobalMinStepFunction(t *testing.T) {
	// Step-like objective mimicking ZFP accuracy mode's ratio curve:
	// the objective is zero on a narrow plateau only.
	obj := func(x float64) float64 {
		step := math.Floor(x * 4)
		target := 17.0
		return math.Min((step-target)*(step-target), 1e6)
	}
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 20, MaxIterations: 200, Cutoff: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("expected convergence onto the plateau, best f=%v at x=%v", res.F, res.X)
	}
	if res.X < 4.25 || res.X >= 4.5 {
		t.Errorf("converged x=%v outside the target plateau [4.25,4.5)", res.X)
	}
}

func TestEarlyTerminationCutoff(t *testing.T) {
	calls := 0
	obj := func(x float64) float64 {
		calls++
		return math.Abs(x - 5)
	}
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 10, MaxIterations: 500, Cutoff: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence, got f=%v", res.F)
	}
	if res.F > 1.0 {
		t.Errorf("converged with f=%v above cutoff", res.F)
	}
	if calls >= 500 {
		t.Errorf("cutoff should terminate early, used %d calls", calls)
	}
	if res.Iterations != calls {
		t.Errorf("iterations %d != calls %d", res.Iterations, calls)
	}
}

func TestNegativeCutoffDisablesEarlyTermination(t *testing.T) {
	obj := func(x float64) float64 { return 0 } // always at minimum
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 1, MaxIterations: 17, Cutoff: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Errorf("negative cutoff should never report convergence")
	}
	if res.Iterations != 17 {
		t.Errorf("should exhaust iteration budget, used %d", res.Iterations)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	obj := func(x float64) float64 { return math.Sin(5*x) + x*x/20 }
	a, err := FindGlobalMin(obj, Options{Lower: -5, Upper: 5, MaxIterations: 40, Cutoff: -1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindGlobalMin(obj, Options{Lower: -5, Upper: 5, MaxIterations: 40, Cutoff: -1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.X != b.X || a.F != b.F || len(a.History) != len(b.History) {
		t.Errorf("same seed should give identical trajectories")
	}
	c, err := FindGlobalMin(obj, Options{Lower: -5, Upper: 5, MaxIterations: 40, Cutoff: -1, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.History {
		if i >= len(c.History) || a.History[i] != c.History[i] {
			same = false
			break
		}
	}
	if same {
		t.Logf("different seeds produced identical trajectories (possible but unexpected)")
	}
}

func TestInvalidIntervals(t *testing.T) {
	obj := func(x float64) float64 { return x }
	cases := []Options{
		{Lower: 1, Upper: 1},
		{Lower: 2, Upper: 1},
		{Lower: math.NaN(), Upper: 1},
		{Lower: 0, Upper: math.Inf(1)},
	}
	for _, opts := range cases {
		if _, err := FindGlobalMin(obj, opts); err == nil {
			t.Errorf("interval [%v,%v] should fail", opts.Lower, opts.Upper)
		}
	}
	if _, err := FindGlobalMin(nil, Options{Lower: 0, Upper: 1}); err == nil {
		t.Errorf("nil objective should fail")
	}
}

func TestNaNObjectiveHandled(t *testing.T) {
	obj := func(x float64) float64 {
		if x < 5 {
			return math.NaN()
		}
		return (x - 7) * (x - 7)
	}
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 10, MaxIterations: 80, Cutoff: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.F) {
		t.Errorf("NaN should never be reported as the best value")
	}
	if math.Abs(res.X-7) > 0.5 {
		t.Errorf("minimum at %v, want ~7", res.X)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	calls := 0
	obj := func(x float64) float64 { calls++; return math.Sin(x * 100) }
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 1, MaxIterations: 25, Cutoff: -1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 || res.Iterations != 25 {
		t.Errorf("calls=%d iterations=%d, want 25", calls, res.Iterations)
	}
}

func TestHistoryMatchesBest(t *testing.T) {
	obj := func(x float64) float64 { return math.Cos(x) }
	res, err := FindGlobalMin(obj, Options{Lower: 0, Upper: 6, MaxIterations: 50, Cutoff: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, ev := range res.History {
		if ev.F < best {
			best = ev.F
		}
	}
	if best != res.F {
		t.Errorf("best history value %v != reported %v", best, res.F)
	}
}

func TestFindGlobalMinFewerIterationsThanBinarySearchOnStep(t *testing.T) {
	// Reproduces the paper's §V-B1 observation: on a step-like ratio curve
	// with a cutoff-based acceptance region, the global optimizer needs far
	// fewer evaluations than binary search climbing from the bottom.
	ratio := func(e float64) float64 {
		// Ratio grows slowly then jumps; the target of 8 is only reachable
		// near the top of the interval.
		return 2 + 14/(1+math.Exp(-(e-0.8)*12)) + 0.3*math.Sin(40*e)
	}
	target := 8.0
	eps := 0.1
	loss := func(e float64) float64 {
		d := ratio(e) - target
		return d * d
	}
	gRes, err := FindGlobalMin(loss, Options{Lower: 1e-6, Upper: 1.0, MaxIterations: 200,
		Cutoff: eps * eps * target * target, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := BinarySearch(ratio, target, eps*target, 1e-6, 1.0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !gRes.Converged {
		t.Fatalf("global search did not converge")
	}
	if !bRes.Converged {
		t.Fatalf("binary search did not converge")
	}
	if gRes.Iterations > bRes.Iterations*3 {
		t.Errorf("global search used %d iterations vs binary search %d", gRes.Iterations, bRes.Iterations)
	}
}

func TestBinarySearchMonotone(t *testing.T) {
	f := func(x float64) float64 { return 3 * x }
	res, err := BinarySearch(f, 12, 0.01, 0, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("binary search should converge on a monotone function")
	}
	if math.Abs(res.X-4) > 0.01 {
		t.Errorf("found x=%v, want ~4", res.X)
	}
}

func TestBinarySearchFailsOnNonMonotone(t *testing.T) {
	// A ratio curve with a dip: binary search is misled and does not reach
	// the target band within its budget, while the global optimizer does.
	f := func(x float64) float64 {
		return 10 + 5*math.Sin(3*x) // oscillates between 5 and 15
	}
	target := 14.9
	_, err := BinarySearch(f, target, 0.01, 0, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	loss := func(x float64) float64 { d := f(x) - target; return d * d }
	gRes, err := FindGlobalMin(loss, Options{Lower: 0, Upper: 10, MaxIterations: 100, Cutoff: 0.01 * 0.01, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !gRes.Converged {
		t.Errorf("global optimizer should find the target on a non-monotone curve, best f=%v", gRes.F)
	}
}

func TestBinarySearchInvalidInterval(t *testing.T) {
	if _, err := BinarySearch(func(x float64) float64 { return x }, 1, 0.1, 5, 5, 10); err == nil {
		t.Errorf("empty interval should fail")
	}
}

func TestBinarySearchDefaultsIterations(t *testing.T) {
	f := func(x float64) float64 { return x }
	res, err := BinarySearch(f, 100, 1e-9, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Errorf("unreachable target should not converge")
	}
	if res.Iterations != defaultMaxIterations {
		t.Errorf("iterations = %d, want default %d", res.Iterations, defaultMaxIterations)
	}
}

func TestGridSearch(t *testing.T) {
	evals := GridSearch(func(x float64) float64 { return x * x }, -1, 1, 5)
	if len(evals) != 5 {
		t.Fatalf("len=%d", len(evals))
	}
	if evals[0].X != -1 || evals[4].X != 1 {
		t.Errorf("grid endpoints wrong: %v", evals)
	}
	if evals[2].X != 0 || evals[2].F != 0 {
		t.Errorf("grid midpoint wrong: %v", evals[2])
	}
	if GridSearch(nil, 0, 1, 1) != nil {
		t.Errorf("n<2 should return nil")
	}
	if GridSearch(nil, 1, 0, 5) != nil {
		t.Errorf("inverted interval should return nil")
	}
}

func TestLogGridSearch(t *testing.T) {
	evals := LogGridSearch(func(x float64) float64 { return x }, 1e-6, 1, 7)
	if len(evals) != 7 {
		t.Fatalf("len=%d", len(evals))
	}
	if math.Abs(evals[0].X-1e-6) > 1e-12 || math.Abs(evals[6].X-1) > 1e-12 {
		t.Errorf("log grid endpoints wrong: %v %v", evals[0].X, evals[6].X)
	}
	for i := 1; i < len(evals); i++ {
		if evals[i].X <= evals[i-1].X {
			t.Errorf("log grid should be increasing")
		}
	}
	if LogGridSearch(nil, 0, 1, 5) != nil {
		t.Errorf("lo<=0 should return nil")
	}
}

func TestPropertyBestNeverWorseThanAnyEvaluation(t *testing.T) {
	f := func(a, b, c float64, seed int64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		obj := func(x float64) float64 {
			return math.Abs(a)*x*x + b*x + c + math.Sin(5*x)
		}
		res, err := FindGlobalMin(obj, Options{Lower: -3, Upper: 3, MaxIterations: 30, Cutoff: -1, Seed: seed})
		if err != nil {
			return false
		}
		for _, ev := range res.History {
			if ev.F < res.F {
				return false
			}
		}
		return len(res.History) == res.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResultWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		obj := func(x float64) float64 { return math.Sin(x * 13) }
		res, err := FindGlobalMin(obj, Options{Lower: 2, Upper: 9, MaxIterations: 20, Cutoff: -1, Seed: seed})
		if err != nil {
			return false
		}
		return res.X >= 2 && res.X <= 9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
