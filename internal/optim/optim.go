// Package optim implements the derivative-free scalar optimizers FRaZ uses.
//
// The primary algorithm, FindGlobalMin, follows the structure of Dlib's
// find_min_global function that the paper builds on (§V-B1): it alternates
// between a global exploration step driven by a piecewise-linear Lipschitz
// lower bound on the objective (the MaxLIPO model of Malherbe & Vayatis) and
// a local quadratic "trust region" refinement around the incumbent best
// point (in the spirit of Powell's NEWUOA). Like the paper's modified
// version, it supports an early-termination cutoff: the search stops as soon
// as the objective value drops to or below the cutoff, which is how FRaZ
// trades exactness of the ratio match for runtime (§V-B3).
//
// The package also provides the binary-search baseline the paper compares
// against and an exhaustive grid sweep used by the experiment harness to
// chart ratio-versus-bound curves (Fig. 3).
package optim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective is a deterministic scalar function of one variable. For FRaZ the
// variable is the compressor's error bound and the value is the clamped
// squared distance between achieved and target compression ratio.
type Objective func(x float64) float64

// Evaluation records one objective evaluation.
type Evaluation struct {
	X float64
	F float64
}

// Options configures FindGlobalMin.
type Options struct {
	// Lower and Upper bound the search interval. Required: Lower < Upper.
	Lower, Upper float64
	// MaxIterations caps the number of objective evaluations. Zero selects
	// the default of 100.
	MaxIterations int
	// Cutoff terminates the search as soon as an evaluation is <= Cutoff.
	// A negative cutoff disables early termination.
	Cutoff float64
	// Seed makes the initial sample deterministic. The same seed always
	// produces the same search trajectory.
	Seed int64
}

// Result reports the outcome of an optimization run.
type Result struct {
	// X is the best point found and F its objective value.
	X float64
	F float64
	// Iterations is the number of objective evaluations performed.
	Iterations int
	// Converged is true when the cutoff was reached (false when the search
	// exhausted its iteration budget).
	Converged bool
	// History holds every evaluation in the order performed.
	History []Evaluation
}

// ErrBadInterval is returned when the search interval is empty or invalid.
var ErrBadInterval = errors.New("optim: invalid search interval")

const defaultMaxIterations = 100

// FindGlobalMin searches for the global minimum of obj on [Lower, Upper].
func FindGlobalMin(obj Objective, opts Options) (Result, error) {
	if obj == nil {
		return Result{}, errors.New("optim: nil objective")
	}
	if !(opts.Lower < opts.Upper) || math.IsNaN(opts.Lower) || math.IsNaN(opts.Upper) ||
		math.IsInf(opts.Lower, 0) || math.IsInf(opts.Upper, 0) {
		return Result{}, fmt.Errorf("%w: [%v, %v]", ErrBadInterval, opts.Lower, opts.Upper)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = defaultMaxIterations
	}
	cutoff := opts.Cutoff
	rng := rand.New(rand.NewSource(opts.Seed))

	s := &searchState{
		obj:    obj,
		lower:  opts.Lower,
		upper:  opts.Upper,
		cutoff: cutoff,
		max:    maxIter,
		rng:    rng,
	}

	// Initial samples: both interval ends plus one random interior point,
	// mirroring Dlib's random initialization while guaranteeing the model
	// brackets the interval.
	initial := []float64{
		opts.Lower,
		opts.Upper,
		opts.Lower + (0.25+0.5*rng.Float64())*(opts.Upper-opts.Lower),
	}
	for _, x := range initial {
		if s.done() {
			break
		}
		s.eval(x)
	}

	// Alternate LIPO exploration and quadratic refinement.
	for !s.done() {
		var candidate float64
		if len(s.history)%2 == 0 {
			candidate = s.lipoCandidate()
		} else {
			candidate = s.quadraticCandidate()
		}
		candidate = s.dedupe(candidate)
		s.eval(candidate)
	}

	return Result{
		X:          s.bestX,
		F:          s.bestF,
		Iterations: len(s.history),
		Converged:  s.converged,
		History:    s.history,
	}, nil
}

type searchState struct {
	obj       Objective
	lower     float64
	upper     float64
	cutoff    float64
	max       int
	rng       *rand.Rand
	history   []Evaluation
	sorted    []Evaluation // kept sorted by X
	bestX     float64
	bestF     float64
	converged bool
}

func (s *searchState) done() bool {
	return s.converged || len(s.history) >= s.max
}

func (s *searchState) eval(x float64) {
	if x < s.lower {
		x = s.lower
	}
	if x > s.upper {
		x = s.upper
	}
	f := s.obj(x)
	if math.IsNaN(f) {
		f = math.Inf(1)
	}
	ev := Evaluation{X: x, F: f}
	s.history = append(s.history, ev)
	idx := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i].X >= x })
	s.sorted = append(s.sorted, Evaluation{})
	copy(s.sorted[idx+1:], s.sorted[idx:])
	s.sorted[idx] = ev
	if len(s.history) == 1 || f < s.bestF {
		s.bestX, s.bestF = x, f
	}
	if s.cutoff >= 0 && f <= s.cutoff {
		s.converged = true
	}
}

// lipoCandidate picks the minimiser of the piecewise-linear Lipschitz lower
// bound built from all evaluations so far. With a zero Lipschitz estimate
// (flat data) it falls back to splitting the widest unexplored gap.
func (s *searchState) lipoCandidate() float64 {
	pts := s.sorted
	if len(pts) < 2 {
		return s.lower + s.rng.Float64()*(s.upper-s.lower)
	}
	// Estimate the Lipschitz constant from observed slopes, inflated
	// slightly so the bound stays admissible between samples.
	var k float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].X - pts[i-1].X
		if dx <= 0 {
			continue
		}
		slope := math.Abs(pts[i].F-pts[i-1].F) / dx
		if slope > k {
			k = slope
		}
	}
	k *= 1.1

	if k == 0 || math.IsInf(k, 0) {
		return s.widestGapMidpoint()
	}

	bestVal := math.Inf(1)
	bestX := s.widestGapMidpoint()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		dx := b.X - a.X
		if dx <= 0 {
			continue
		}
		// Minimum of max(a.F - k(x-a.X), b.F - k(b.X-x)) on [a.X, b.X].
		x := (a.X+b.X)/2 + (b.F-a.F)/(2*k)
		if x < a.X {
			x = a.X
		}
		if x > b.X {
			x = b.X
		}
		val := (a.F+b.F)/2 - k*dx/2
		// Prefer intervals with low bound values; break ties toward wide
		// intervals to keep exploring.
		val -= 1e-12 * dx
		if val < bestVal {
			bestVal = val
			bestX = x
		}
	}
	return bestX
}

// quadraticCandidate fits a parabola through the best point and its closest
// neighbours and jumps to the parabola's minimum, clamped to the bracket.
// When the fit is degenerate it bisects toward the best point's larger gap.
func (s *searchState) quadraticCandidate() float64 {
	pts := s.sorted
	n := len(pts)
	if n < 3 {
		return s.widestGapMidpoint()
	}
	// Locate the best point in the sorted order.
	bi := 0
	for i, p := range pts {
		if p.F < pts[bi].F {
			bi = i
		}
	}
	lo := bi - 1
	hi := bi + 1
	if lo < 0 {
		lo, bi, hi = 0, 1, 2
	}
	if hi >= n {
		hi = n - 1
		bi = n - 2
		lo = n - 3
	}
	x0, x1, x2 := pts[lo].X, pts[bi].X, pts[hi].X
	f0, f1, f2 := pts[lo].F, pts[bi].F, pts[hi].F
	den := (x0 - x1) * (x0 - x2) * (x1 - x2)
	if den == 0 {
		return s.widestGapMidpoint()
	}
	a := (x2*(f1-f0) + x1*(f0-f2) + x0*(f2-f1)) / den
	b := (x2*x2*(f0-f1) + x1*x1*(f2-f0) + x0*x0*(f1-f2)) / den
	if a <= 0 {
		// Concave or flat fit: no interior minimum; bisect the wider side of
		// the best point instead.
		if x1-x0 > x2-x1 {
			return (x0 + x1) / 2
		}
		return (x1 + x2) / 2
	}
	x := -b / (2 * a)
	if x < x0 {
		x = x0
	}
	if x > x2 {
		x = x2
	}
	return x
}

// widestGapMidpoint returns the midpoint of the widest gap between samples,
// ensuring global coverage of the interval.
func (s *searchState) widestGapMidpoint() float64 {
	pts := s.sorted
	if len(pts) == 0 {
		return (s.lower + s.upper) / 2
	}
	bestGap := -1.0
	bestMid := (s.lower + s.upper) / 2
	prev := s.lower
	for i := 0; i <= len(pts); i++ {
		var cur float64
		if i == len(pts) {
			cur = s.upper
		} else {
			cur = pts[i].X
		}
		if gap := cur - prev; gap > bestGap {
			bestGap = gap
			bestMid = prev + gap/2
		}
		prev = cur
	}
	return bestMid
}

// dedupe nudges a candidate that coincides with an existing sample toward
// unexplored space so every iteration gains information.
func (s *searchState) dedupe(x float64) float64 {
	const rel = 1e-9
	span := s.upper - s.lower
	for _, p := range s.sorted {
		if math.Abs(p.X-x) <= rel*span {
			return s.widestGapMidpoint()
		}
	}
	return x
}

// --- baselines --------------------------------------------------------------

// MonotoneFunc is a scalar function assumed to be non-decreasing in x, such
// as an idealised ratio-versus-error-bound curve.
type MonotoneFunc func(x float64) float64

// BinarySearchResult reports the outcome of the binary-search baseline.
type BinarySearchResult struct {
	X          float64
	Value      float64
	Iterations int
	Converged  bool
	History    []Evaluation
}

// BinarySearch finds x in [lo, hi] with f(x) within tol of target, assuming
// f is non-decreasing. It is the baseline the paper contrasts with FRaZ's
// optimizer (§V-B1): on non-monotonic ratio curves it can converge to the
// wrong region, and even on monotonic ones it wastes evaluations walking in
// from the interval ends.
func BinarySearch(f MonotoneFunc, target, tol, lo, hi float64, maxIter int) (BinarySearchResult, error) {
	if !(lo < hi) {
		return BinarySearchResult{}, fmt.Errorf("%w: [%v, %v]", ErrBadInterval, lo, hi)
	}
	if maxIter <= 0 {
		maxIter = defaultMaxIterations
	}
	res := BinarySearchResult{}
	bestDist := math.Inf(1)
	for i := 0; i < maxIter; i++ {
		mid := (lo + hi) / 2
		v := f(mid)
		res.History = append(res.History, Evaluation{X: mid, F: v})
		res.Iterations++
		if d := math.Abs(v - target); d < bestDist {
			bestDist = d
			res.X = mid
			res.Value = v
		}
		if math.Abs(v-target) <= tol {
			res.Converged = true
			return res, nil
		}
		if v < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return res, nil
}

// GridSearch evaluates f at n evenly spaced points on [lo, hi] and returns
// every evaluation. It is used by the experiment harness to chart
// ratio-versus-bound curves exhaustively (paper Fig. 3 and Fig. 4).
func GridSearch(f Objective, lo, hi float64, n int) []Evaluation {
	if n < 2 || !(lo < hi) {
		return nil
	}
	out := make([]Evaluation, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = Evaluation{X: x, F: f(x)}
	}
	return out
}

// LogGridSearch evaluates f at n log-spaced points on [lo, hi], lo > 0.
// Error bounds span many orders of magnitude, so log spacing matches how
// compressor behaviour actually varies.
func LogGridSearch(f Objective, lo, hi float64, n int) []Evaluation {
	if n < 2 || !(lo < hi) || lo <= 0 {
		return nil
	}
	out := make([]Evaluation, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		x := math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
		out[i] = Evaluation{X: x, F: f(x)}
	}
	return out
}
