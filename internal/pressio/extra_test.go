package pressio

import (
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/metrics"
)

func TestExtraBackendsRegistered(t *testing.T) {
	for _, name := range []string{"sz:rel", "zfp:precision", "flate:lossless"} {
		if _, err := New(name); err != nil {
			t.Errorf("backend %s not registered: %v", name, err)
		}
	}
}

func TestSZRelativeBoundScalesWithRange(t *testing.T) {
	c, err := New("sz:rel")
	if err != nil {
		t.Fatal(err)
	}
	buf := testField3D()
	res, err := Run(c, buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxError > 1e-3*res.Report.ValueRange {
		t.Errorf("relative bound violated: maxErr=%v range=%v", res.Report.MaxError, res.Report.ValueRange)
	}
	if res.Report.CompressionRatio <= 1.5 {
		t.Errorf("1e-3 relative bound should compress meaningfully, got %.2f", res.Report.CompressionRatio)
	}
	// Invalid relative bounds are rejected.
	if _, err := c.Compress(buf, 0); err == nil {
		t.Errorf("zero relative bound should fail")
	}
	if _, err := c.Compress(buf, 2); err == nil {
		t.Errorf("relative bound above 1 should fail")
	}
}

func TestSZRelativeConstantField(t *testing.T) {
	c, err := New("sz:rel")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float32, 256)
	for i := range data {
		data[i] = 7.25
	}
	buf, err := NewBuffer(data, grid.MustDims(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxError != 0 {
		t.Errorf("constant field should survive relative-bound compression unchanged, maxErr=%v", res.Report.MaxError)
	}
}

func TestZFPPrecisionBackend(t *testing.T) {
	c, err := New("zfp:precision")
	if err != nil {
		t.Fatal(err)
	}
	if c.ErrorBounded() {
		t.Errorf("fixed-precision mode should not claim an absolute error bound")
	}
	buf := testField3D()
	lowPrec, _, err := Ratio(c, buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	highPrec, _, err := Ratio(c, buf, 28)
	if err != nil {
		t.Fatal(err)
	}
	if !(lowPrec > highPrec) {
		t.Errorf("fewer bit planes should compress better: 8 planes %.2f vs 28 planes %.2f", lowPrec, highPrec)
	}
	resHigh, err := Run(c, buf, 28)
	if err != nil {
		t.Fatal(err)
	}
	resLow, err := Run(c, buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(resHigh.Report.PSNR > resLow.Report.PSNR) {
		t.Errorf("more planes should improve PSNR: %v vs %v", resHigh.Report.PSNR, resLow.Report.PSNR)
	}
}

func TestLosslessBaselineIsExactButWeak(t *testing.T) {
	c, err := New("flate:lossless")
	if err != nil {
		t.Fatal(err)
	}
	buf := testField3D()
	res, err := Run(c, buf, 0.5 /* ignored */)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxError != 0 {
		t.Errorf("lossless baseline must be exact, maxErr=%v", res.Report.MaxError)
	}
	// The paper's motivation: lossless compression of floating-point
	// simulation data yields very small ratios compared with what the
	// error-bounded compressors reach on the same field.
	if res.Report.CompressionRatio > 3 {
		t.Errorf("lossless ratio unexpectedly high (%.2f); the test field may be too smooth", res.Report.CompressionRatio)
	}
	szc, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	szRes, err := Run(szc, buf, 1e-3*res.Report.ValueRange)
	if err != nil {
		t.Fatal(err)
	}
	if !(szRes.Report.CompressionRatio > res.Report.CompressionRatio) {
		t.Errorf("error-bounded SZ (%.2f:1) should beat lossless DEFLATE (%.2f:1)",
			szRes.Report.CompressionRatio, res.Report.CompressionRatio)
	}
}

func TestLosslessDecompressErrors(t *testing.T) {
	c, err := New("flate:lossless")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress([]byte{1, 2, 3}, grid.MustDims(4), container.Float32); err == nil {
		t.Errorf("garbage input should fail")
	}
	buf := testField1D()
	comp, err := c.Compress(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(comp, grid.MustDims(3), container.Float32); err == nil {
		t.Errorf("shape mismatch should fail")
	}
	dec, err := c.Decompress(comp, buf.Shape, buf.DType())
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxAbsError(buf.Float32(), dec.Float32()) != 0 {
		t.Errorf("lossless round trip should be exact")
	}
}
