package pressio

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/pool"
)

// These tests pin the pool discipline of SealBlocked's failure paths: a seal
// aborted by cancellation (or by one block's failure) has already produced
// payloads for the blocks that finished, and those buffers must go back to
// the byte pool — the success path recycles them after container.NewBlocked
// copies, so an error path that drops them leaks one buffer per completed
// block on every aborted request. A long-running server cancelling requests
// on timeout would bleed pooled memory continuously.

// probeCompressor is a stub whose Compress hands out pool-backed payloads
// and runs a caller hook per invocation, so a test can trigger cancellation
// or failure at an exact point in the blocked pipeline while recording the
// identity of every buffer the pipeline now owns.
type probeCompressor struct {
	onCall func(call int) error // non-nil error fails that block

	mu     sync.Mutex
	calls  int
	handed map[*byte]bool
}

const probePayloadLen = 512 // capacity class 512: nothing else in the tests uses it

func (p *probeCompressor) Name() string                   { return "test:probe" }
func (p *probeCompressor) BoundName() string              { return "absolute error bound" }
func (p *probeCompressor) ErrorBounded() bool             { return true }
func (p *probeCompressor) SupportsShape(grid.Dims) bool   { return true }
func (p *probeCompressor) BoundRange() (float64, float64) { return 1e-12, 1 }

func (p *probeCompressor) Compress(buf Buffer, bound float64) ([]byte, error) {
	p.mu.Lock()
	p.calls++
	call := p.calls
	p.mu.Unlock()
	if p.onCall != nil {
		if err := p.onCall(call); err != nil {
			return nil, err
		}
	}
	out := pool.GetBytes(probePayloadLen)[:probePayloadLen]
	for i := range out {
		out[i] = byte(call)
	}
	p.mu.Lock()
	p.handed[&out[0]] = true
	p.mu.Unlock()
	return out, nil
}

func (p *probeCompressor) Decompress([]byte, grid.Dims, container.DType) (Buffer, error) {
	return Buffer{}, errors.New("probe compressor does not decompress")
}

// drainPools empties the byte pool's primary and victim caches (sync.Pool
// keeps one GC generation of victims) so the identity assertions below see a
// deterministic free-list state.
func drainPools() {
	runtime.GC()
	runtime.GC()
}

func probeField(t *testing.T) Buffer {
	t.Helper()
	buf, err := NewBuffer(make([]float32, 8*16), grid.MustDims(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSealBlockedCancelRecyclesCompletedPayloads cancels the context from
// inside the first block's compression — the moment a payload exists that
// the aborted seal will never use — and asserts that payload returns to the
// pool: the next Get of its capacity class must observe the same backing
// array.
func TestSealBlockedCancelRecyclesCompletedPayloads(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probe := &probeCompressor{handed: map[*byte]bool{}}
	probe.onCall = func(call int) error {
		if call == 1 {
			cancel() // feed loop stops; block 0's payload is already committed
		}
		return nil
	}

	drainPools()
	_, err := SealBlocked(ctx, probe, probeField(t), 1e-3, 4, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SealBlocked under cancellation: got %v, want context.Canceled", err)
	}

	got := pool.GetBytes(probePayloadLen)
	if !probe.handed[&got[0]] {
		t.Errorf("completed block payload was not recycled on the cancellation path")
	}
}

// TestSealBlockedBlockFailureRecyclesCompletedPayloads drives the same
// guarantee through a mid-seal block failure: blocks that compressed before
// (or despite) another block's error must be recycled, not dropped with the
// error.
func TestSealBlockedBlockFailureRecyclesCompletedPayloads(t *testing.T) {
	probe := &probeCompressor{handed: map[*byte]bool{}}
	probe.onCall = func(call int) error {
		if call == 2 {
			return errors.New("synthetic block failure")
		}
		return nil
	}

	drainPools()
	_, err := SealBlocked(context.Background(), probe, probeField(t), 1e-3, 4, 1)
	if err == nil {
		t.Fatal("SealBlocked succeeded despite a failing block")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("want the block's own failure, got %v", err)
	}

	// Blocks 1, 3, and 4 completed (call 2 failed); all three payloads must
	// be back on the free list.
	for i := 0; i < 3; i++ {
		got := pool.GetBytes(probePayloadLen)
		if !probe.handed[&got[0]] {
			t.Errorf("recycled payload %d is not one the probe handed out", i)
		}
	}
}
