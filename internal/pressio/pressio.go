// Package pressio provides a small generic abstraction over the lossy
// compressors in this repository, playing the role libpressio plays in the
// paper: FRaZ never talks to SZ, ZFP, or MGARD directly, only to this
// interface, which is what makes the framework compressor-agnostic.
//
// Each registered compressor exposes exactly one tunable scalar parameter —
// its error bound (or, for the ZFP fixed-rate baseline, its rate) — which is
// the dimension FRaZ's autotuner searches over.
//
// Buffers are dtype-tagged: a Buffer carries either float32 or float64 data
// behind one opaque value, and every layer above this package (the tuner,
// the container seal/open paths, the public API) threads that tag through
// without caring which width it is. Only the codec kernels — and the
// adapters in this package that dispatch to them — know the element width.
package pressio

import (
	"fmt"

	"fraz/internal/blocks"
	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/metrics"
	"fraz/internal/mgard"
	"fraz/internal/sz"
	"fraz/internal/zfp"
)

// Buffer couples a flat float array — single or double precision — with its
// logical shape. The element type is carried as a dtype tag plus a typed
// view over the same backing slice, never a copy; construct one with
// NewBuffer (float32) or NewBufferOf (either width). The zero Buffer is an
// empty float32 buffer.
type Buffer struct {
	// Shape is the logical shape, slowest dimension first.
	Shape grid.Dims

	dtype container.DType
	f32   []float32
	f64   []float64
}

// NewBuffer validates and constructs a float32 Buffer. It is NewBufferOf
// fixed at single precision, kept for the many call sites that predate
// float64 support.
func NewBuffer(data []float32, shape grid.Dims) (Buffer, error) {
	return NewBufferOf(data, shape)
}

// NewBufferOf validates and constructs a Buffer over float32 or float64
// data. The data slice is referenced, not copied.
func NewBufferOf[T grid.Float](data []T, shape grid.Dims) (Buffer, error) {
	if err := shape.Validate(); err != nil {
		return Buffer{}, err
	}
	if len(data) != shape.Len() {
		return Buffer{}, fmt.Errorf("pressio: data length %d does not match shape %v", len(data), shape)
	}
	switch d := any(data).(type) {
	case []float32:
		return Buffer{Shape: shape, dtype: container.Float32, f32: d}, nil
	case []float64:
		return Buffer{Shape: shape, dtype: container.Float64, f64: d}, nil
	}
	panic("pressio: unreachable element type")
}

// DType reports the buffer's element type tag.
func (b Buffer) DType() container.DType { return b.dtype }

// Len reports the number of elements.
func (b Buffer) Len() int {
	if b.dtype == container.Float64 {
		return len(b.f64)
	}
	return len(b.f32)
}

// Bytes returns the uncompressed size of the buffer in bytes.
func (b Buffer) Bytes() int { return b.Len() * b.dtype.Size() }

// Float32 returns the single-precision view of the data, nil for a float64
// buffer.
func (b Buffer) Float32() []float32 { return b.f32 }

// Float64 returns the double-precision view of the data, nil for a float32
// buffer.
func (b Buffer) Float64() []float64 { return b.f64 }

// ValueRange returns max-min of the data, whatever its width.
func (b Buffer) ValueRange() float64 {
	if b.dtype == container.Float64 {
		return grid.ValueRange(b.f64)
	}
	return grid.ValueRange(b.f32)
}

// Slice views one planned block of the buffer as a Buffer of its own — a
// zero-copy subslice at either width, which is what keeps the blocked seal
// path allocation-free on the way down.
func (b Buffer) Slice(blk blocks.Block) (Buffer, error) {
	if b.dtype == container.Float64 {
		sub, err := blocks.Slice(b.f64, blk)
		if err != nil {
			return Buffer{}, err
		}
		return Buffer{Shape: blk.Shape, dtype: b.dtype, f64: sub}, nil
	}
	sub, err := blocks.Slice(b.f32, blk)
	if err != nil {
		return Buffer{}, err
	}
	return Buffer{Shape: blk.Shape, dtype: b.dtype, f32: sub}, nil
}

// scatterFrom copies a decompressed block buffer into place inside b, the
// write half of the blocked open path.
func (b Buffer) scatterFrom(blk blocks.Block, src Buffer) error {
	if src.dtype != b.dtype {
		return fmt.Errorf("pressio: scatter %s block into %s buffer", src.dtype, b.dtype)
	}
	if b.dtype == container.Float64 {
		return blocks.Scatter(b.f64, blk, src.f64)
	}
	return blocks.Scatter(b.f32, blk, src.f32)
}

// newZeroBuffer allocates an empty buffer of the given dtype and shape. The
// caller must have validated the dtype with checkDType.
func newZeroBuffer(dt container.DType, shape grid.Dims) Buffer {
	if dt == container.Float64 {
		return Buffer{Shape: shape, dtype: dt, f64: make([]float64, shape.Len())}
	}
	return Buffer{Shape: shape, dtype: dt, f32: make([]float32, shape.Len())}
}

// checkDType is the one place an element-type tag is validated before a
// decode path commits to it: Open, OpenBlocked, and the per-codec
// decompression dispatch all report unsupported dtypes through this helper,
// so the error message cannot drift between them.
func checkDType(d container.DType) error {
	if d.Size() == 0 {
		return fmt.Errorf("pressio: cannot decode %s payloads (this build reads float32 and float64)", d)
	}
	return nil
}

// Compressor is the generic error-bounded compressor interface FRaZ tunes.
//
// Implementations must be safe for concurrent use: the tuner's
// region-parallel search and the blocked seal path both invoke Compress on
// one instance from multiple goroutines (all registered codecs are
// stateless, which satisfies this for free). Compress reads the element
// width off the buffer's tag; Decompress is told it explicitly — the
// container header carries it — and returns a buffer tagged the same way.
type Compressor interface {
	// Name identifies the compressor and mode, e.g. "sz:abs" or
	// "zfp:accuracy".
	Name() string
	// BoundName describes the tunable parameter, e.g. "absolute error bound".
	BoundName() string
	// ErrorBounded reports whether the tunable parameter guarantees a
	// pointwise error bound (false only for the ZFP fixed-rate baseline).
	ErrorBounded() bool
	// SupportsShape reports whether the compressor accepts data of the given
	// shape (e.g. the MGARD back end rejects 1-D data).
	SupportsShape(shape grid.Dims) bool
	// BoundRange returns the smallest and largest admissible values of the
	// tunable parameter.
	BoundRange() (lo, hi float64)
	// Compress compresses the buffer with the tunable parameter set to bound.
	// The returned stream must be freshly allocated (never alias buf or
	// codec-internal state): the blocked seal path recycles block payloads
	// into the byte pool once the container has copied them.
	Compress(buf Buffer, bound float64) ([]byte, error)
	// Decompress reconstructs data previously compressed by this compressor
	// at the given element width. The returned buffer must be freshly
	// allocated (never alias comp or codec-internal state): the blocked open
	// path recycles it into the slice pools after scattering it into place.
	Decompress(comp []byte, shape grid.Dims, dtype container.DType) (Buffer, error)
}

// compressTyped routes a buffer to the kernel closure matching its element
// width. It is the compress half of the adapter boilerplate every codec
// would otherwise repeat.
func compressTyped(buf Buffer,
	f32 func([]float32, grid.Dims) ([]byte, error),
	f64 func([]float64, grid.Dims) ([]byte, error)) ([]byte, error) {
	if buf.dtype == container.Float64 {
		return f64(buf.f64, buf.Shape)
	}
	return f32(buf.f32, buf.Shape)
}

// decompressTyped routes a decode to the kernel matching the requested
// dtype and wraps the result in a buffer tagged with it.
func decompressTyped(dt container.DType, comp []byte, shape grid.Dims,
	f32 func([]byte, grid.Dims) ([]float32, error),
	f64 func([]byte, grid.Dims) ([]float64, error)) (Buffer, error) {
	switch dt {
	case container.Float32:
		data, err := f32(comp, shape)
		if err != nil {
			return Buffer{}, err
		}
		return NewBufferOf(data, shape)
	case container.Float64:
		data, err := f64(comp, shape)
		if err != nil {
			return Buffer{}, err
		}
		return NewBufferOf(data, shape)
	default:
		return Buffer{}, checkDType(dt)
	}
}

// Result captures one compression run: the parameter used, the achieved
// ratio, and the full quality report.
type Result struct {
	Compressor string
	Bound      float64
	Compressed int
	Report     metrics.Report
}

// Evaluate computes the full quality report between an original buffer and
// its reconstruction, dispatching on the shared element width.
func Evaluate(orig, dec Buffer, compressedBytes int) (metrics.Report, error) {
	if orig.dtype != dec.dtype {
		return metrics.Report{}, fmt.Errorf("pressio: evaluate %s reconstruction against %s original", dec.dtype, orig.dtype)
	}
	if orig.dtype == container.Float64 {
		return metrics.EvaluateGrid(orig.f64, dec.f64, orig.Shape, compressedBytes)
	}
	return metrics.EvaluateGrid(orig.f32, dec.f32, orig.Shape, compressedBytes)
}

// Run compresses, decompresses, and evaluates the buffer with the given
// bound, returning the full result. It is the convenience used by the
// experiment harness; FRaZ's inner loop uses Ratio instead, which skips the
// decompression when only the size is needed.
func Run(c Compressor, buf Buffer, bound float64) (Result, error) {
	comp, err := c.Compress(buf, bound)
	if err != nil {
		return Result{}, err
	}
	dec, err := c.Decompress(comp, buf.Shape, buf.dtype)
	if err != nil {
		return Result{}, err
	}
	rep, err := Evaluate(buf, dec, len(comp))
	if err != nil {
		return Result{}, err
	}
	return Result{Compressor: c.Name(), Bound: bound, Compressed: len(comp), Report: rep}, nil
}

// Ratio compresses the buffer with the given bound and returns the achieved
// compression ratio and compressed size. This is the single black-box
// evaluation FRaZ's optimizer performs at every iteration.
func Ratio(c Compressor, buf Buffer, bound float64) (float64, int, error) {
	comp, err := c.Compress(buf, bound)
	if err != nil {
		return 0, 0, err
	}
	return metrics.CompressionRatio(buf.Bytes(), len(comp)), len(comp), nil
}

// --- SZ adapter -------------------------------------------------------------

type szCompressor struct{}

func (szCompressor) Name() string      { return "sz:abs" }
func (szCompressor) BoundName() string { return "absolute error bound" }
func (szCompressor) ErrorBounded() bool {
	return true
}
func (szCompressor) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (szCompressor) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (szCompressor) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := sz.Options{ErrorBound: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return sz.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return sz.Compress(d, s, opts) })
}
func (szCompressor) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, sz.Decompress[float32], sz.Decompress[float64])
}

// --- ZFP adapters -----------------------------------------------------------

type zfpAccuracy struct{}

func (zfpAccuracy) Name() string       { return "zfp:accuracy" }
func (zfpAccuracy) BoundName() string  { return "absolute error tolerance" }
func (zfpAccuracy) ErrorBounded() bool { return true }
func (zfpAccuracy) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (zfpAccuracy) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (zfpAccuracy) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := zfp.Options{Mode: zfp.ModeAccuracy, Tolerance: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) })
}
func (zfpAccuracy) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, zfp.Decompress[float32], zfp.Decompress[float64])
}

type zfpFixedRate struct{}

func (zfpFixedRate) Name() string       { return "zfp:rate" }
func (zfpFixedRate) BoundName() string  { return "bits per value" }
func (zfpFixedRate) ErrorBounded() bool { return false }
func (zfpFixedRate) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (zfpFixedRate) BoundRange() (float64, float64) { return 1, 32 }
func (zfpFixedRate) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := zfp.Options{Mode: zfp.ModeFixedRate, Rate: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) })
}
func (zfpFixedRate) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, zfp.Decompress[float32], zfp.Decompress[float64])
}

// --- MGARD adapters ----------------------------------------------------------

type mgardInfinity struct{}

func (mgardInfinity) Name() string       { return "mgard:abs" }
func (mgardInfinity) BoundName() string  { return "infinity-norm bound" }
func (mgardInfinity) ErrorBounded() bool { return true }
func (mgardInfinity) SupportsShape(shape grid.Dims) bool {
	nd := shape.NDims()
	return shape.Validate() == nil && (nd == 2 || nd == 3)
}
func (mgardInfinity) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (mgardInfinity) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := mgard.Options{Norm: mgard.NormInfinity, Bound: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return mgard.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return mgard.Compress(d, s, opts) })
}
func (mgardInfinity) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, mgard.Decompress[float32], mgard.Decompress[float64])
}

type mgardL2 struct{}

func (mgardL2) Name() string       { return "mgard:l2" }
func (mgardL2) BoundName() string  { return "mean-squared-error bound" }
func (mgardL2) ErrorBounded() bool { return true }
func (mgardL2) SupportsShape(shape grid.Dims) bool {
	nd := shape.NDims()
	return shape.Validate() == nil && (nd == 2 || nd == 3)
}
func (mgardL2) BoundRange() (float64, float64) { return 1e-18, 1e12 }
func (mgardL2) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := mgard.Options{Norm: mgard.NormL2, Bound: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return mgard.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return mgard.Compress(d, s, opts) })
}
func (mgardL2) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, mgard.Decompress[float32], mgard.Decompress[float64])
}

func init() {
	Register(Codec{
		Name: "sz:abs", New: func() Compressor { return szCompressor{} },
		Caps: Capabilities{BoundName: "absolute error bound", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:accuracy", New: func() Compressor { return zfpAccuracy{} },
		Caps: Capabilities{BoundName: "absolute error tolerance", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:rate", New: func() Compressor { return zfpFixedRate{} },
		Caps: Capabilities{BoundName: "bits per value", ErrorBounded: false, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "mgard:abs", New: func() Compressor { return mgardInfinity{} },
		Caps: Capabilities{BoundName: "infinity-norm bound", ErrorBounded: true, MinRank: 2, MaxRank: 3},
	})
	Register(Codec{
		Name: "mgard:l2", New: func() Compressor { return mgardL2{} },
		Caps: Capabilities{BoundName: "mean-squared-error bound", ErrorBounded: true, MinRank: 2, MaxRank: 3},
	})
}
