// Package pressio provides a small generic abstraction over the lossy
// compressors in this repository, playing the role libpressio plays in the
// paper: FRaZ never talks to SZ, ZFP, or MGARD directly, only to this
// interface, which is what makes the framework compressor-agnostic.
//
// Each registered compressor exposes exactly one tunable scalar parameter —
// its error bound (or, for the ZFP fixed-rate baseline, its rate) — which is
// the dimension FRaZ's autotuner searches over.
package pressio

import (
	"fmt"

	"fraz/internal/grid"
	"fraz/internal/metrics"
	"fraz/internal/mgard"
	"fraz/internal/sz"
	"fraz/internal/zfp"
)

// Buffer couples a flat float32 array with its logical shape.
type Buffer struct {
	Data  []float32
	Shape grid.Dims
}

// NewBuffer validates and constructs a Buffer.
func NewBuffer(data []float32, shape grid.Dims) (Buffer, error) {
	if err := shape.Validate(); err != nil {
		return Buffer{}, err
	}
	if len(data) != shape.Len() {
		return Buffer{}, fmt.Errorf("pressio: data length %d does not match shape %v", len(data), shape)
	}
	return Buffer{Data: data, Shape: shape}, nil
}

// Bytes returns the uncompressed size of the buffer in bytes.
func (b Buffer) Bytes() int { return len(b.Data) * 4 }

// Compressor is the generic error-bounded compressor interface FRaZ tunes.
//
// Implementations must be safe for concurrent use: the tuner's
// region-parallel search and the blocked seal path both invoke Compress on
// one instance from multiple goroutines (all registered codecs are
// stateless, which satisfies this for free).
type Compressor interface {
	// Name identifies the compressor and mode, e.g. "sz:abs" or
	// "zfp:accuracy".
	Name() string
	// BoundName describes the tunable parameter, e.g. "absolute error bound".
	BoundName() string
	// ErrorBounded reports whether the tunable parameter guarantees a
	// pointwise error bound (false only for the ZFP fixed-rate baseline).
	ErrorBounded() bool
	// SupportsShape reports whether the compressor accepts data of the given
	// shape (e.g. the MGARD back end rejects 1-D data).
	SupportsShape(shape grid.Dims) bool
	// BoundRange returns the smallest and largest admissible values of the
	// tunable parameter.
	BoundRange() (lo, hi float64)
	// Compress compresses the buffer with the tunable parameter set to bound.
	Compress(buf Buffer, bound float64) ([]byte, error)
	// Decompress reconstructs data previously compressed by this compressor.
	Decompress(comp []byte, shape grid.Dims) ([]float32, error)
}

// Result captures one compression run: the parameter used, the achieved
// ratio, and the full quality report.
type Result struct {
	Compressor string
	Bound      float64
	Compressed int
	Report     metrics.Report
}

// Run compresses, decompresses, and evaluates the buffer with the given
// bound, returning the full result. It is the convenience used by the
// experiment harness; FRaZ's inner loop uses Ratio instead, which skips the
// decompression when only the size is needed.
func Run(c Compressor, buf Buffer, bound float64) (Result, error) {
	comp, err := c.Compress(buf, bound)
	if err != nil {
		return Result{}, err
	}
	dec, err := c.Decompress(comp, buf.Shape)
	if err != nil {
		return Result{}, err
	}
	rep, err := metrics.EvaluateGrid(buf.Data, dec, buf.Shape, len(comp))
	if err != nil {
		return Result{}, err
	}
	return Result{Compressor: c.Name(), Bound: bound, Compressed: len(comp), Report: rep}, nil
}

// Ratio compresses the buffer with the given bound and returns the achieved
// compression ratio and compressed size. This is the single black-box
// evaluation FRaZ's optimizer performs at every iteration.
func Ratio(c Compressor, buf Buffer, bound float64) (float64, int, error) {
	comp, err := c.Compress(buf, bound)
	if err != nil {
		return 0, 0, err
	}
	return metrics.CompressionRatio(buf.Bytes(), len(comp)), len(comp), nil
}

// --- SZ adapter -------------------------------------------------------------

type szCompressor struct{}

func (szCompressor) Name() string      { return "sz:abs" }
func (szCompressor) BoundName() string { return "absolute error bound" }
func (szCompressor) ErrorBounded() bool {
	return true
}
func (szCompressor) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (szCompressor) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (szCompressor) Compress(buf Buffer, bound float64) ([]byte, error) {
	return sz.Compress(buf.Data, buf.Shape, sz.Options{ErrorBound: bound})
}
func (szCompressor) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return sz.Decompress(comp, shape)
}

// --- ZFP adapters -----------------------------------------------------------

type zfpAccuracy struct{}

func (zfpAccuracy) Name() string       { return "zfp:accuracy" }
func (zfpAccuracy) BoundName() string  { return "absolute error tolerance" }
func (zfpAccuracy) ErrorBounded() bool { return true }
func (zfpAccuracy) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (zfpAccuracy) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (zfpAccuracy) Compress(buf Buffer, bound float64) ([]byte, error) {
	return zfp.Compress(buf.Data, buf.Shape, zfp.Options{Mode: zfp.ModeAccuracy, Tolerance: bound})
}
func (zfpAccuracy) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return zfp.Decompress(comp, shape)
}

type zfpFixedRate struct{}

func (zfpFixedRate) Name() string       { return "zfp:rate" }
func (zfpFixedRate) BoundName() string  { return "bits per value" }
func (zfpFixedRate) ErrorBounded() bool { return false }
func (zfpFixedRate) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (zfpFixedRate) BoundRange() (float64, float64) { return 1, 32 }
func (zfpFixedRate) Compress(buf Buffer, bound float64) ([]byte, error) {
	return zfp.Compress(buf.Data, buf.Shape, zfp.Options{Mode: zfp.ModeFixedRate, Rate: bound})
}
func (zfpFixedRate) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return zfp.Decompress(comp, shape)
}

// --- MGARD adapters ----------------------------------------------------------

type mgardInfinity struct{}

func (mgardInfinity) Name() string       { return "mgard:abs" }
func (mgardInfinity) BoundName() string  { return "infinity-norm bound" }
func (mgardInfinity) ErrorBounded() bool { return true }
func (mgardInfinity) SupportsShape(shape grid.Dims) bool {
	nd := shape.NDims()
	return shape.Validate() == nil && (nd == 2 || nd == 3)
}
func (mgardInfinity) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (mgardInfinity) Compress(buf Buffer, bound float64) ([]byte, error) {
	return mgard.Compress(buf.Data, buf.Shape, mgard.Options{Norm: mgard.NormInfinity, Bound: bound})
}
func (mgardInfinity) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return mgard.Decompress(comp, shape)
}

type mgardL2 struct{}

func (mgardL2) Name() string       { return "mgard:l2" }
func (mgardL2) BoundName() string  { return "mean-squared-error bound" }
func (mgardL2) ErrorBounded() bool { return true }
func (mgardL2) SupportsShape(shape grid.Dims) bool {
	nd := shape.NDims()
	return shape.Validate() == nil && (nd == 2 || nd == 3)
}
func (mgardL2) BoundRange() (float64, float64) { return 1e-18, 1e12 }
func (mgardL2) Compress(buf Buffer, bound float64) ([]byte, error) {
	return mgard.Compress(buf.Data, buf.Shape, mgard.Options{Norm: mgard.NormL2, Bound: bound})
}
func (mgardL2) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return mgard.Decompress(comp, shape)
}

func init() {
	Register(Codec{
		Name: "sz:abs", New: func() Compressor { return szCompressor{} },
		Caps: Capabilities{BoundName: "absolute error bound", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:accuracy", New: func() Compressor { return zfpAccuracy{} },
		Caps: Capabilities{BoundName: "absolute error tolerance", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:rate", New: func() Compressor { return zfpFixedRate{} },
		Caps: Capabilities{BoundName: "bits per value", ErrorBounded: false, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "mgard:abs", New: func() Compressor { return mgardInfinity{} },
		Caps: Capabilities{BoundName: "infinity-norm bound", ErrorBounded: true, MinRank: 2, MaxRank: 3},
	})
	Register(Codec{
		Name: "mgard:l2", New: func() Compressor { return mgardL2{} },
		Caps: Capabilities{BoundName: "mean-squared-error bound", ErrorBounded: true, MinRank: 2, MaxRank: 3},
	})
}
