package pressio

import (
	"math"
	"sync"
	"sync/atomic"

	"fraz/internal/metrics"
)

// This file implements the shared compressor-evaluation cache. FRaZ's
// region-parallel search (paper Algorithm 2) runs K overlapping searches of
// the same buffer concurrently, and its trust-region refinement clusters
// evaluations ever more tightly around the incumbent best bound — both
// produce near-identical error bounds whose compressions are byte-for-byte
// redundant. The cache memoises the (ratio, size) outcome per (codec,
// dataset fingerprint, quantized bound), and deduplicates in-flight
// evaluations so two regions asking for the same bound at the same time
// trigger exactly one compression.

// quantDropBits is the number of low-order float64 mantissa bits cleared by
// QuantizeBound: 44 of the 52, keeping 8. Bounds within one part in 2^8
// (≈0.4%) of each other therefore share a cache slot — far finer than the
// ratio changes the 10% default acceptance band can resolve, but coarse
// enough that a converging trust region collides with its own trail and
// with the overlapping neighbour region's samples.
const quantDropBits = 44

// QuantizeBound snaps a positive error bound down onto a logarithmic grid
// with ≈0.4% relative spacing. Bounds on the same grid point share one cache
// slot: the compressor runs for the first of them, and the measured
// (bound, ratio, size) triple answers the rest. Non-positive and non-finite
// bounds are returned unchanged.
func QuantizeBound(bound float64) float64 {
	if !(bound > 0) || math.IsInf(bound, 0) {
		return bound
	}
	return math.Float64frombits(math.Float64bits(bound) &^ (1<<quantDropBits - 1))
}

// FNV-1a (64-bit) constants; the hash is hand-rolled so fingerprinting
// allocates nothing — hash/fnv's New64a puts its state on the heap, and the
// old chunked re-encoding staged a scratch copy of every float.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint hashes a buffer's element type, shape, and contents (FNV-1a
// over the raw float bits) into the cache-key component that distinguishes
// datasets. Two buffers with equal fingerprints share cached evaluations, so
// the hash covers every bit of every value — and the dtype, so a float32
// field can never answer for the float64 field with the same bit pattern.
// The data is hashed through the buffer's zero-copy byte view, so a
// fingerprint allocates nothing (pinned by TestFingerprintAllocFree); the
// fingerprint is process-local — exactly the cache's lifetime — so hashing
// in host byte order is safe.
func Fingerprint(buf Buffer) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(len(buf.Shape)))
	for _, e := range buf.Shape {
		h = fnvUint64(h, uint64(e))
	}
	h = (h ^ uint64(uint8(buf.DType()))) * fnvPrime64
	return fnvBytes(h, buf.RawBytes())
}

// CacheKey identifies one memoised evaluation.
type CacheKey struct {
	// Codec is the compressor name the bound was evaluated with.
	Codec string
	// Fingerprint identifies the dataset (see Fingerprint).
	Fingerprint uint64
	// Bound is the float64 bit pattern of the quantized bound.
	Bound uint64
	// Full marks entries that carry the complete compress+decompress metric
	// report (quality-objective evaluations) rather than just the compressed
	// size. The two live in separate slots: a full evaluation costs a round
	// trip a ratio-only entry never paid for, so one must not answer for the
	// other.
	Full bool
}

// CacheEntry is one memoised evaluation: the bound the compressor actually
// ran with (callers mapping to the same quantized key receive this bound, so
// the reported ratio is always exact for the reported bound) and its
// outcome.
type CacheEntry struct {
	// Bound is the error bound the entry was measured at.
	Bound float64
	// Ratio is the compression ratio achieved at Bound.
	Ratio float64
	// Size is the compressed size in bytes at Bound.
	Size int
	// Report is the full quality report of the compress+decompress round
	// trip, valid only when HasReport is set (entries recorded through
	// Evaluator.Full).
	Report    metrics.Report
	HasReport bool
}

// cacheSlot is a single-flight slot: the first requester computes while
// later ones wait on done. complete is set (under the cache mutex) once the
// computation finished, marking the slot safe to evict.
type cacheSlot struct {
	done     chan struct{}
	complete bool
	entry    CacheEntry
	err      error
}

// DefaultMaxEntries bounds the cache size. Long-lived tuners on streaming
// data accumulate entries for fingerprints that never recur, so at capacity
// the oldest completed entries are evicted first — a bounded memory
// footprint traded against an occasional re-warm of old bounds.
const DefaultMaxEntries = 1 << 16

// Cache memoises compressor evaluations. It is safe for concurrent use; the
// zero value is not ready — use NewCache or NewCacheSized.
type Cache struct {
	mu      sync.Mutex
	m       map[CacheKey]*cacheSlot
	maxSize int
	// order records completed entries oldest-first for the coarse FIFO
	// eviction sweep. It may hold stale keys (re-inserted after an earlier
	// eviction); the sweep drops those as it scans.
	order     []CacheKey
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewCache returns an empty evaluation cache holding at most
// DefaultMaxEntries completed evaluations.
func NewCache() *Cache {
	return NewCacheSized(DefaultMaxEntries)
}

// NewCacheSized returns an empty evaluation cache holding at most maxEntries
// completed evaluations (<= 0 selects DefaultMaxEntries). At capacity the
// oldest completed entries are evicted first, so a long tuning run over
// streaming fields — whose fingerprints never recur — holds bounded memory
// no matter how many fields pass through.
func NewCacheSized(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{m: make(map[CacheKey]*cacheSlot), maxSize: maxEntries}
}

// do returns the memoised outcome for key, computing it with fn exactly once
// across all concurrent callers. The boolean reports whether the result came
// from the cache (including waiting on another caller's in-flight
// computation — the compression was saved either way). Failed evaluations
// are not retained: concurrent waiters receive the in-flight error, but the
// slot is released so later callers retry instead of being served a
// poisoned entry for the cache's lifetime.
func (c *Cache) do(key CacheKey, fn func() (CacheEntry, error)) (entry CacheEntry, hit bool, err error) {
	c.mu.Lock()
	if s, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-s.done
		if s.err != nil {
			// Waiting on an in-flight evaluation that failed saved nothing:
			// no usable (ratio, size) came back, so it must not be counted
			// as a hit (it would inflate the savings every Result reports).
			c.misses.Add(1)
			return s.entry, false, s.err
		}
		c.hits.Add(1)
		return s.entry, true, s.err
	}
	if len(c.m) >= c.maxSize {
		c.evictOldestLocked()
	}
	s := &cacheSlot{done: make(chan struct{})}
	c.m[key] = s
	c.mu.Unlock()
	c.misses.Add(1)
	s.entry, s.err = fn()
	c.mu.Lock()
	s.complete = true
	if s.err != nil {
		delete(c.m, key)
	} else {
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	close(s.done)
	return s.entry, false, s.err
}

// evictOldestLocked frees room for one insertion by deleting completed
// entries oldest-first (coarse FIFO: insertion order, no access recency).
// In-flight slots are never evicted — their waiters must still be answered
// through the map — and stale order entries (keys already replaced by a
// newer insertion of the same key) are dropped as the sweep passes them.
// Called with c.mu held.
func (c *Cache) evictOldestLocked() {
	for len(c.order) > 0 && len(c.m) >= c.maxSize {
		k := c.order[0]
		c.order = c.order[1:]
		s, ok := c.m[k]
		if !ok || !s.complete {
			continue
		}
		delete(c.m, k)
		c.evictions.Add(1)
	}
}

// Stats reports the cumulative hit, miss, and eviction counts across all
// users of the cache. A hit is an evaluation served a usable result without
// invoking the compressor; failed evaluations — including waits on an
// in-flight evaluation that failed — count as misses. Evictions count the
// completed entries discarded by the FIFO sweep to stay under the size cap.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// Len reports the number of distinct evaluations stored.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Evaluator performs cached ratio evaluations of one (compressor, buffer)
// pair. It computes the buffer fingerprint once at construction and keeps
// its own hit/miss counters, so a tuning run can report savings even when
// the underlying Cache is shared with other runs. It is safe for concurrent
// use by the parallel region searches.
type Evaluator struct {
	cache  *Cache
	comp   Compressor
	buf    Buffer
	fp     uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewEvaluator binds a cache to one compressor/buffer pair. A nil cache is
// allowed and disables memoisation (every Ratio call compresses).
func NewEvaluator(cache *Cache, comp Compressor, buf Buffer) *Evaluator {
	e := &Evaluator{cache: cache, comp: comp, buf: buf}
	if cache != nil {
		e.fp = Fingerprint(buf)
	}
	return e
}

// Ratio evaluates the compression ratio at the given bound, serving repeats
// from the cache. On a miss the compressor runs at exactly the requested
// bound (so an uncontended search follows the same trajectory it would
// without the cache); on a hit the caller receives the cached entry's bound,
// ratio, and size, keeping the three mutually exact. The returned bound is
// therefore the one the ratio was actually measured at, never more than the
// quantization spacing (≈0.4%) away from the request.
func (e *Evaluator) Ratio(bound float64) (ratio float64, size int, evaluated float64, err error) {
	if e.cache == nil {
		e.misses.Add(1)
		ratio, size, err = Ratio(e.comp, e.buf, bound)
		return ratio, size, bound, err
	}
	key := CacheKey{Codec: e.comp.Name(), Fingerprint: e.fp, Bound: math.Float64bits(QuantizeBound(bound))}
	entry, hit, err := e.cache.do(key, func() (CacheEntry, error) {
		r, s, err := Ratio(e.comp, e.buf, bound)
		return CacheEntry{Bound: bound, Ratio: r, Size: s}, err
	})
	if hit {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	return entry.Ratio, entry.Size, entry.Bound, err
}

// Full evaluates the complete compress+decompress quality report at the
// given bound, serving repeats from the cache under the same quantized-bound
// key space as Ratio (with the Full flag set, so a round trip is never
// answered by a compress-only entry). Quality-objective searches call this
// at every iteration; without the cache each probe of a revisited bound
// would redundantly re-run the whole round trip.
func (e *Evaluator) Full(bound float64) (rep metrics.Report, evaluated float64, err error) {
	if e.cache == nil {
		e.misses.Add(1)
		res, err := Run(e.comp, e.buf, bound)
		return res.Report, bound, err
	}
	key := CacheKey{Codec: e.comp.Name(), Fingerprint: e.fp, Bound: math.Float64bits(QuantizeBound(bound)), Full: true}
	entry, hit, err := e.cache.do(key, func() (CacheEntry, error) {
		res, err := Run(e.comp, e.buf, bound)
		if err != nil {
			return CacheEntry{}, err
		}
		return CacheEntry{
			Bound:     bound,
			Ratio:     res.Report.CompressionRatio,
			Size:      res.Compressed,
			Report:    res.Report,
			HasReport: true,
		}, nil
	})
	if hit {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	return entry.Report, entry.Bound, err
}

// Stats reports this evaluator's own hit and miss counts (a subset of the
// shared cache's totals).
func (e *Evaluator) Stats() (hits, misses int) {
	return int(e.hits.Load()), int(e.misses.Load())
}
