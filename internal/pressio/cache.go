package pressio

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the shared compressor-evaluation cache. FRaZ's
// region-parallel search (paper Algorithm 2) runs K overlapping searches of
// the same buffer concurrently, and its trust-region refinement clusters
// evaluations ever more tightly around the incumbent best bound — both
// produce near-identical error bounds whose compressions are byte-for-byte
// redundant. The cache memoises the (ratio, size) outcome per (codec,
// dataset fingerprint, quantized bound), and deduplicates in-flight
// evaluations so two regions asking for the same bound at the same time
// trigger exactly one compression.

// quantDropBits is the number of low-order float64 mantissa bits cleared by
// QuantizeBound: 44 of the 52, keeping 8. Bounds within one part in 2^8
// (≈0.4%) of each other therefore share a cache slot — far finer than the
// ratio changes the 10% default acceptance band can resolve, but coarse
// enough that a converging trust region collides with its own trail and
// with the overlapping neighbour region's samples.
const quantDropBits = 44

// QuantizeBound snaps a positive error bound down onto a logarithmic grid
// with ≈0.4% relative spacing. Bounds on the same grid point share one cache
// slot: the compressor runs for the first of them, and the measured
// (bound, ratio, size) triple answers the rest. Non-positive and non-finite
// bounds are returned unchanged.
func QuantizeBound(bound float64) float64 {
	if !(bound > 0) || math.IsInf(bound, 0) {
		return bound
	}
	return math.Float64frombits(math.Float64bits(bound) &^ (1<<quantDropBits - 1))
}

// Fingerprint hashes a buffer's shape and contents (FNV-1a over the raw
// float bits) into the cache-key component that distinguishes datasets. Two
// buffers with equal fingerprints share cached evaluations, so the hash
// covers every bit of every value. Data is fed to the hash in chunks so no
// buffer-sized copy is allocated.
func Fingerprint(buf Buffer) uint64 {
	h := fnv.New64a()
	var scratch [4096]byte
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(buf.Shape)))
	n := 8
	for _, e := range buf.Shape {
		binary.LittleEndian.PutUint64(scratch[n:], uint64(e))
		n += 8
	}
	h.Write(scratch[:n])
	data := buf.Data
	for len(data) > 0 {
		chunk := data
		if len(chunk) > len(scratch)/4 {
			chunk = chunk[:len(scratch)/4]
		}
		for i, f := range chunk {
			binary.LittleEndian.PutUint32(scratch[4*i:], math.Float32bits(f))
		}
		h.Write(scratch[:4*len(chunk)])
		data = data[len(chunk):]
	}
	return h.Sum64()
}

// CacheKey identifies one memoised evaluation.
type CacheKey struct {
	// Codec is the compressor name the bound was evaluated with.
	Codec string
	// Fingerprint identifies the dataset (see Fingerprint).
	Fingerprint uint64
	// Bound is the float64 bit pattern of the quantized bound.
	Bound uint64
}

// CacheEntry is one memoised evaluation: the bound the compressor actually
// ran with (callers mapping to the same quantized key receive this bound, so
// the reported ratio is always exact for the reported bound) and its
// outcome.
type CacheEntry struct {
	// Bound is the error bound the entry was measured at.
	Bound float64
	// Ratio is the compression ratio achieved at Bound.
	Ratio float64
	// Size is the compressed size in bytes at Bound.
	Size int
}

// cacheSlot is a single-flight slot: the first requester computes while
// later ones wait on done. complete is set (under the cache mutex) once the
// computation finished, marking the slot safe to evict.
type cacheSlot struct {
	done     chan struct{}
	complete bool
	entry    CacheEntry
	err      error
}

// DefaultMaxEntries bounds the cache size. Long-lived tuners on streaming
// data accumulate entries for fingerprints that never recur, so at capacity
// the completed entries are swept and the cache restarts cold — a bounded
// memory footprint traded against an occasional re-warm.
const DefaultMaxEntries = 1 << 16

// Cache memoises compressor evaluations. It is safe for concurrent use; the
// zero value is not ready — use NewCache.
type Cache struct {
	mu      sync.Mutex
	m       map[CacheKey]*cacheSlot
	maxSize int
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewCache returns an empty evaluation cache holding at most
// DefaultMaxEntries completed evaluations.
func NewCache() *Cache {
	return &Cache{m: make(map[CacheKey]*cacheSlot), maxSize: DefaultMaxEntries}
}

// do returns the memoised outcome for key, computing it with fn exactly once
// across all concurrent callers. The boolean reports whether the result came
// from the cache (including waiting on another caller's in-flight
// computation — the compression was saved either way). Failed evaluations
// are not retained: concurrent waiters receive the in-flight error, but the
// slot is released so later callers retry instead of being served a
// poisoned entry for the cache's lifetime.
func (c *Cache) do(key CacheKey, fn func() (CacheEntry, error)) (entry CacheEntry, hit bool, err error) {
	c.mu.Lock()
	if s, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-s.done
		if s.err != nil {
			// Waiting on an in-flight evaluation that failed saved nothing:
			// no usable (ratio, size) came back, so it must not be counted
			// as a hit (it would inflate the savings every Result reports).
			c.misses.Add(1)
			return s.entry, false, s.err
		}
		c.hits.Add(1)
		return s.entry, true, s.err
	}
	if len(c.m) >= c.maxSize {
		// At capacity: sweep every completed entry (in-flight slots must
		// stay so their waiters still get answered through the map).
		for k, old := range c.m {
			if old.complete {
				delete(c.m, k)
			}
		}
	}
	s := &cacheSlot{done: make(chan struct{})}
	c.m[key] = s
	c.mu.Unlock()
	c.misses.Add(1)
	s.entry, s.err = fn()
	c.mu.Lock()
	s.complete = true
	if s.err != nil {
		delete(c.m, key)
	}
	c.mu.Unlock()
	close(s.done)
	return s.entry, false, s.err
}

// Stats reports the cumulative hit and miss counts across all users of the
// cache. A hit is an evaluation served a usable result without invoking the
// compressor; failed evaluations — including waits on an in-flight
// evaluation that failed — count as misses.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of distinct evaluations stored.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Evaluator performs cached ratio evaluations of one (compressor, buffer)
// pair. It computes the buffer fingerprint once at construction and keeps
// its own hit/miss counters, so a tuning run can report savings even when
// the underlying Cache is shared with other runs. It is safe for concurrent
// use by the parallel region searches.
type Evaluator struct {
	cache  *Cache
	comp   Compressor
	buf    Buffer
	fp     uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewEvaluator binds a cache to one compressor/buffer pair. A nil cache is
// allowed and disables memoisation (every Ratio call compresses).
func NewEvaluator(cache *Cache, comp Compressor, buf Buffer) *Evaluator {
	e := &Evaluator{cache: cache, comp: comp, buf: buf}
	if cache != nil {
		e.fp = Fingerprint(buf)
	}
	return e
}

// Ratio evaluates the compression ratio at the given bound, serving repeats
// from the cache. On a miss the compressor runs at exactly the requested
// bound (so an uncontended search follows the same trajectory it would
// without the cache); on a hit the caller receives the cached entry's bound,
// ratio, and size, keeping the three mutually exact. The returned bound is
// therefore the one the ratio was actually measured at, never more than the
// quantization spacing (≈0.4%) away from the request.
func (e *Evaluator) Ratio(bound float64) (ratio float64, size int, evaluated float64, err error) {
	if e.cache == nil {
		e.misses.Add(1)
		ratio, size, err = Ratio(e.comp, e.buf, bound)
		return ratio, size, bound, err
	}
	key := CacheKey{Codec: e.comp.Name(), Fingerprint: e.fp, Bound: math.Float64bits(QuantizeBound(bound))}
	entry, hit, err := e.cache.do(key, func() (CacheEntry, error) {
		r, s, err := Ratio(e.comp, e.buf, bound)
		return CacheEntry{Bound: bound, Ratio: r, Size: s}, err
	})
	if hit {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	return entry.Ratio, entry.Size, entry.Bound, err
}

// Stats reports this evaluator's own hit and miss counts (a subset of the
// shared cache's totals).
func (e *Evaluator) Stats() (hits, misses int) {
	return int(e.hits.Load()), int(e.misses.Load())
}
