package pressio

import (
	"unsafe"

	"fraz/internal/container"
	"fraz/internal/pool"
)

// RawBytes returns the buffer's contents as a byte view over the same
// backing memory — no copy is made. The view is valid only as long as the
// buffer's data is, and its byte order is the host's, so it is strictly
// process-local: fingerprinting and in-memory size accounting may use it,
// serialization must not. A nil slice is returned for an empty buffer.
func (b Buffer) RawBytes() []byte {
	if b.dtype == container.Float64 {
		if len(b.f64) == 0 {
			return nil
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&b.f64[0])), len(b.f64)*8)
	}
	if len(b.f32) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&b.f32[0])), len(b.f32)*4)
}

// recycle parks the buffer's backing slice in the element pool. Only for
// buffers whose data is provably dead — the blocked open path calls it after
// scattering a block's decode buffer into the output field. The Compressor
// contract makes this safe: Decompress returns freshly allocated data, so
// the slice aliases nothing the codec or caller retains.
func (b Buffer) recycle() {
	if b.dtype == container.Float64 {
		pool.PutFloat64(b.f64)
		return
	}
	pool.PutFloat32(b.f32)
}
