package pressio

import (
	"math"

	"fraz/internal/container"
	"fraz/internal/frsz"
	"fraz/internal/grid"
)

// frszRate adapts the FRSZ-style true fixed-rate codec. It is the only
// registered codec implementing RateCompressor: its bound is the exact
// number of bits every value costs, so a fixed-ratio objective is satisfied
// by arithmetic instead of search (see the direct-satisfaction fast path in
// internal/core). The bound is rounded to the nearest whole bit; the
// searchable BoundRange stays within the float32 width so the fallback
// search is valid for both dtypes, while the direct path may go up to
// MaxBits for float64 data.
type frszRate struct{}

func (frszRate) Name() string       { return "frsz:rate" }
func (frszRate) BoundName() string  { return "bits per value" }
func (frszRate) ErrorBounded() bool { return false }
func (frszRate) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil
}
func (frszRate) BoundRange() (float64, float64) { return 1, 32 }
func (frszRate) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := frsz.Options{BitsPerValue: int(math.Round(bound))}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return frsz.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return frsz.Compress(d, s, opts) })
}
func (frszRate) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape,
		func(b []byte, s grid.Dims) ([]float32, error) { return frsz.Decompress[float32](b, s) },
		func(b []byte, s grid.Dims) ([]float64, error) { return frsz.Decompress[float64](b, s) })
}

// CompressedSize implements RateCompressor: the exact stream size for this
// shape at a whole-bit rate, no evaluation needed.
func (frszRate) CompressedSize(shape grid.Dims, bitsPerValue int) int {
	return frsz.CompressedSize(shape.Len(), shape.NDims(), bitsPerValue, 0)
}

// MaxBits implements RateCompressor: the full IEEE width of the element
// type.
func (frszRate) MaxBits(dt container.DType) int {
	if dt == container.Float64 {
		return frsz.MaxBits(8)
	}
	return frsz.MaxBits(4)
}

func init() {
	Register(Codec{
		Name: "frsz:rate", New: func() Compressor { return frszRate{} },
		Caps: Capabilities{BoundName: "bits per value", MinRank: 1, MaxRank: 4, FixedRate: true},
	})
}
