package pressio

import (
	"context"
	"math"
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
)

// TestSealBlockedLosslessBitExact checks the strongest round-trip property
// available: with the lossless codec, the blocked path must reproduce the
// original buffer bit for bit — and therefore agree exactly with what the
// monolithic path reconstructs.
func TestSealBlockedLosslessBitExact(t *testing.T) {
	buf := testField3D()
	c, err := New("flate:lossless")
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Seal(c, buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	monoOut, err := Open(mono)
	if err != nil {
		t.Fatal(err)
	}

	cn, err := SealBlocked(context.Background(), c, buf, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Version != container.VersionBlocked || cn.NumBlocks() != 4 {
		t.Fatalf("sealed v%d with %d blocks, want v%d with 4", cn.Header.Version, cn.NumBlocks(), container.VersionBlocked)
	}
	// Through the wire format, exercising the v2 encode/decode too.
	enc, err := cn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Open(dec) // auto-routes to the blocked path
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(buf.Shape) {
		t.Fatalf("opened shape %v, want %v", out.Shape, buf.Shape)
	}
	for i := range buf.Float32() {
		if out.Float32()[i] != buf.Float32()[i] {
			t.Fatalf("value %d: blocked round trip %v != original %v", i, out.Float32()[i], buf.Float32()[i])
		}
		if out.Float32()[i] != monoOut.Float32()[i] {
			t.Fatalf("value %d: blocked %v != monolithic %v", i, out.Float32()[i], monoOut.Float32()[i])
		}
	}
}

// TestSealBlockedErrorBoundHolds checks the lossy path: every reconstructed
// value of a blocked sz:abs round trip stays within the error bound of the
// original, exactly as the monolithic guarantee promises per block.
func TestSealBlockedErrorBoundHolds(t *testing.T) {
	buf := testField3D()
	c, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	const bound = 0.01
	cn, err := SealBlocked(context.Background(), c, buf, bound, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Ratio <= 0 {
		t.Errorf("recorded ratio = %v, want > 0", cn.Header.Ratio)
	}
	out, err := OpenBlocked(context.Background(), cn, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf.Float32() {
		if diff := math.Abs(float64(out.Float32()[i]) - float64(buf.Float32()[i])); diff > bound {
			t.Fatalf("value %d error %v exceeds bound %v", i, diff, bound)
		}
	}
}

// TestSealBlockedFallsBackToMonolithic: one block (or an unsplittable
// shape) produces a plain version-1 container.
func TestSealBlockedFallsBackToMonolithic(t *testing.T) {
	buf := testField3D()
	c, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1} {
		cn, err := SealBlocked(context.Background(), c, buf, 0.01, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cn.Header.Version != container.Version || cn.Blocks != nil {
			t.Errorf("blocks=%d sealed v%d with an index, want monolithic v1", n, cn.Header.Version)
		}
	}
	// A 1-row slowest axis cannot be split either.
	flat, err := NewBuffer(make([]float32, 64), grid.MustDims(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	cn, err := SealBlocked(context.Background(), c, flat, 0.01, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Blocks != nil {
		t.Errorf("1-row field sealed with %d blocks, want monolithic", cn.NumBlocks())
	}
}

// TestOpenBlockedRejectsTamperedIndex: a container whose block count does
// not match any valid plan of its shape must be rejected, not mis-scattered.
func TestOpenBlockedRejectsTamperedIndex(t *testing.T) {
	buf := testField3D()
	c, err := New("flate:lossless")
	if err != nil {
		t.Fatal(err)
	}
	cn, err := SealBlocked(context.Background(), c, buf, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating the index (keeping the payload) desynchronises the plan.
	cn.Blocks = cn.Blocks[:3]
	if _, err := OpenBlocked(context.Background(), cn, 0); err == nil {
		t.Errorf("tampered block index should fail to open")
	}
}

func TestOpenBlockedRoutesMonolithic(t *testing.T) {
	buf := testField3D()
	c, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Seal(c, buf, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	out, err := OpenBlocked(context.Background(), cn, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(buf.Shape) {
		t.Errorf("opened shape %v, want %v", out.Shape, buf.Shape)
	}
}
