package pressio

import (
	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/szx"
)

// szxCompressor adapts the SZx-style ultra-fast codec. It is the speed tier
// of the registry: roughly an order of magnitude faster than sz:abs at a
// data-dependent ratio cost, with the same absolute-error-bound contract.
// Because the codec predicts nothing across neighbours it is rank-agnostic,
// so it is the only lossy codec accepting 4-D data.
type szxCompressor struct{}

func (szxCompressor) Name() string       { return "szx:abs" }
func (szxCompressor) BoundName() string  { return "absolute error bound" }
func (szxCompressor) ErrorBounded() bool { return true }
func (szxCompressor) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil
}
func (szxCompressor) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (szxCompressor) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := szx.Options{ErrorBound: bound}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return szx.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return szx.Compress(d, s, opts) })
}
func (szxCompressor) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape,
		func(b []byte, s grid.Dims) ([]float32, error) { return szx.Decompress[float32](b, s) },
		func(b []byte, s grid.Dims) ([]float64, error) { return szx.Decompress[float64](b, s) })
}

func init() {
	Register(Codec{
		Name: "szx:abs", New: func() Compressor { return szxCompressor{} },
		Caps: Capabilities{BoundName: "absolute error bound", ErrorBounded: true, MinRank: 1, MaxRank: 4},
	})
}
