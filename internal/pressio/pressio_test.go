package pressio

import (
	"math"
	"math/rand"
	"testing"

	"fraz/internal/grid"
	"fraz/internal/metrics"
)

func testField3D() Buffer {
	shape := grid.MustDims(12, 14, 16)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(21))
	i := 0
	for z := 0; z < shape[0]; z++ {
		for y := 0; y < shape[1]; y++ {
			for x := 0; x < shape[2]; x++ {
				data[i] = float32(25*math.Sin(float64(x)/5)*math.Cos(float64(y)/6) +
					10*math.Sin(float64(z)/3) + 0.1*rng.NormFloat64())
				i++
			}
		}
	}
	buf, err := NewBuffer(data, shape)
	if err != nil {
		panic(err)
	}
	return buf
}

func testField1D() Buffer {
	shape := grid.MustDims(5000)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 100))
	}
	buf, _ := NewBuffer(data, shape)
	return buf
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(make([]float32, 5), grid.MustDims(6)); err == nil {
		t.Errorf("length mismatch should fail")
	}
	if _, err := NewBuffer(nil, grid.Dims{}); err == nil {
		t.Errorf("empty shape should fail")
	}
	buf, err := NewBuffer(make([]float32, 6), grid.MustDims(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if buf.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", buf.Bytes())
	}
}

func TestNamesContainAllBackends(t *testing.T) {
	names := Names()
	want := []string{"mgard:abs", "mgard:l2", "sz:abs", "zfp:accuracy", "zfp:rate"}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("registry missing %q (have %v)", w, names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Errorf("unknown compressor should fail")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate registration should panic")
		}
	}()
	Register(Codec{Name: "sz:abs", New: func() Compressor { return szCompressor{} }})
}

func TestAllErrorBoundedBackendsRespectBound(t *testing.T) {
	buf3 := testField3D()
	bound := 0.01
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if !c.ErrorBounded() {
			continue
		}
		if !c.SupportsShape(buf3.Shape) {
			continue
		}
		if c.BoundName() == "" {
			t.Errorf("%s: empty bound name", name)
		}
		lo, hi := c.BoundRange()
		if !(lo > 0) || !(hi > lo) {
			t.Errorf("%s: nonsensical bound range [%v,%v]", name, lo, hi)
		}
		res, err := Run(c, buf3, bound)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Report.CompressionRatio <= 1 {
			t.Errorf("%s: expected some compression, got CR=%.2f", name, res.Report.CompressionRatio)
		}
		switch name {
		case "mgard:l2":
			// mgard:l2 bounds the MSE rather than the max error.
			if res.Report.MSE > bound {
				t.Errorf("%s: MSE %v exceeds bound %v", name, res.Report.MSE, bound)
			}
		case "sz:rel":
			// sz:rel interprets the bound relative to the value range.
			if res.Report.MaxError > bound*res.Report.ValueRange {
				t.Errorf("%s: max error %v exceeds relative bound %v of range %v", name, res.Report.MaxError, bound, res.Report.ValueRange)
			}
		default:
			if res.Report.MaxError > bound {
				t.Errorf("%s: max error %v exceeds bound %v", name, res.Report.MaxError, bound)
			}
		}
	}
}

func TestShapeSupportMatrix(t *testing.T) {
	shape1 := grid.MustDims(100)
	shape2 := grid.MustDims(10, 10)
	shape3 := grid.MustDims(5, 5, 5)
	cases := map[string][3]bool{
		"sz:abs":       {true, true, true},
		"zfp:accuracy": {true, true, true},
		"zfp:rate":     {true, true, true},
		"mgard:abs":    {false, true, true},
		"mgard:l2":     {false, true, true},
	}
	for name, want := range cases {
		c, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		got := [3]bool{c.SupportsShape(shape1), c.SupportsShape(shape2), c.SupportsShape(shape3)}
		if got != want {
			t.Errorf("%s: shape support %v, want %v", name, got, want)
		}
	}
}

func TestZFPRateBackendSizeControl(t *testing.T) {
	buf := testField3D()
	c, err := New("zfp:rate")
	if err != nil {
		t.Fatal(err)
	}
	if c.ErrorBounded() {
		t.Errorf("zfp:rate should not claim an error bound")
	}
	ratio4, _, err := Ratio(c, buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio8, _, err := Ratio(c, buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 4 bits/value should give roughly twice the ratio of 8 bits/value.
	if !(ratio4 > ratio8*1.5) {
		t.Errorf("rate 4 ratio %.2f should be well above rate 8 ratio %.2f", ratio4, ratio8)
	}
}

func TestRatioMatchesRun(t *testing.T) {
	buf := testField1D()
	c, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	ratio, size, err := Ratio(c, buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, buf, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if size != res.Compressed {
		t.Errorf("size mismatch: %d vs %d", size, res.Compressed)
	}
	if math.Abs(ratio-res.Report.CompressionRatio) > 1e-9 {
		t.Errorf("ratio mismatch: %v vs %v", ratio, res.Report.CompressionRatio)
	}
	if res.Compressor != "sz:abs" || res.Bound != 1e-3 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestRunPropagatesCompressErrors(t *testing.T) {
	buf := testField1D()
	c, err := New("mgard:abs")
	if err != nil {
		t.Fatal(err)
	}
	// mgard does not support 1-D data; Run must surface the error.
	if _, err := Run(c, buf, 0.1); err == nil {
		t.Errorf("expected error for unsupported shape")
	}
}

func TestMonotoneTrendSZ(t *testing.T) {
	// Over widely separated bounds the ratio should broadly increase even
	// though it is locally non-monotonic.
	buf := testField3D()
	c, _ := New("sz:abs")
	rLow, _, err := Ratio(c, buf, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, _, err := Ratio(c, buf, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	if !(rHigh > rLow) {
		t.Errorf("ratio at 1e-1 (%.2f) should exceed ratio at 1e-6 (%.2f)", rHigh, rLow)
	}
	_ = metrics.Report{}
}
