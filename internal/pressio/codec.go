package pressio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/metrics"
)

// Capabilities describes the static properties of a registered codec, so
// callers can select a back end without instantiating one (e.g. which
// compressors apply to 1-D particle data, or which guarantee a pointwise
// error bound worth asserting after decompression).
type Capabilities struct {
	// BoundName names the tunable scalar parameter, e.g. "absolute error
	// bound" or "bits per value".
	BoundName string
	// ErrorBounded reports whether the tunable parameter guarantees a
	// pointwise error bound (false for the ZFP fixed-rate and
	// fixed-precision baselines).
	ErrorBounded bool
	// Lossless marks codecs that reconstruct the data bit-exactly; their
	// bound parameter is ignored, so callers should not quote it as an
	// error guarantee.
	Lossless bool
	// MinRank and MaxRank bound the data ranks the codec accepts.
	MinRank, MaxRank int
	// Float32 and Float64 report which element widths the codec accepts.
	// Register defaults both to true when neither is set, matching the
	// dtype-generic adapters; a width-restricted codec declares its window
	// explicitly.
	Float32, Float64 bool
	// FixedRate marks true fixed-rate codecs: the tunable parameter is the
	// storage itself (bits per value), so the compressed size — and
	// therefore the compression ratio — is a closed-form function of the
	// shape and the parameter. The tuner exploits this to satisfy a
	// fixed-ratio objective directly, with zero search evaluations; see
	// RateCompressor. Note zfp:rate does NOT qualify: its "bits per value"
	// steers an embedded coder whose output length still depends on the
	// data, so its ratio must be searched like any other codec's.
	FixedRate bool
}

// RateCompressor is the contract behind Capabilities.FixedRate: a codec
// whose compressed size is pure arithmetic over the shape and the
// bits-per-value parameter. Register enforces that a codec declares
// FixedRate if and only if its instances implement this interface, so a
// FixedRate capability in the registry is a checked promise, not an
// annotation.
type RateCompressor interface {
	Compressor
	// CompressedSize returns the exact stream size in bytes that
	// Compress(buf, bitsPerValue) produces for a buffer of this shape —
	// before any evaluation runs. Inverting it turns a target ratio into a
	// bits-per-value setting.
	CompressedSize(shape grid.Dims, bitsPerValue int) int
	// MaxBits reports the largest valid bits-per-value for the element
	// width (the full IEEE width, at which the codec approaches
	// losslessness).
	MaxBits(dt container.DType) int
}

// SupportsRank reports whether the codec accepts data of the given rank.
func (c Capabilities) SupportsRank(rank int) bool {
	return rank >= c.MinRank && rank <= c.MaxRank
}

// SupportsDType reports whether the codec accepts elements of the given
// width.
func (c Capabilities) SupportsDType(d container.DType) bool {
	switch d {
	case container.Float32:
		return c.Float32
	case container.Float64:
		return c.Float64
	}
	return false
}

// Codec is the registry descriptor for one compressor configuration: its
// wire name (recorded in .fraz container headers), a factory for instances,
// and its static capabilities.
type Codec struct {
	// Name identifies the codec, e.g. "sz:abs". It is the name written into
	// container headers, so renaming a codec orphans existing archives.
	Name string
	// New constructs a ready-to-use compressor instance.
	New func() Compressor
	// Caps describes what the codec can do.
	Caps Capabilities
}

// ErrUnknownCompressor is returned by New and Open for unregistered names.
var ErrUnknownCompressor = errors.New("pressio: unknown compressor")

var (
	registryMu sync.RWMutex
	registry   = map[string]Codec{}
)

// Register adds a codec descriptor to the registry. It is called from init
// functions and by tests installing fakes; registering a duplicate name, an
// empty name, or a nil factory panics, as those are always programming
// errors.
//
// BoundName and ErrorBounded also exist as methods on the Compressor
// instances the factory produces. To keep the two from drifting, Register
// instantiates the codec once: empty Caps fields are filled in from the
// instance, and populated ones that contradict it panic.
func Register(c Codec) {
	if c.Name == "" {
		panic("pressio: Register with empty codec name")
	}
	if c.New == nil {
		panic(fmt.Sprintf("pressio: Register(%q) with nil factory", c.Name))
	}
	inst := c.New()
	if inst == nil {
		panic(fmt.Sprintf("pressio: Register(%q) factory returned nil", c.Name))
	}
	if got := inst.Name(); got != c.Name {
		panic(fmt.Sprintf("pressio: Register(%q) factory builds compressor named %q", c.Name, got))
	}
	if c.Caps.BoundName == "" {
		c.Caps.BoundName = inst.BoundName()
		c.Caps.ErrorBounded = inst.ErrorBounded()
	} else {
		if c.Caps.BoundName != inst.BoundName() {
			panic(fmt.Sprintf("pressio: Register(%q): Caps.BoundName %q disagrees with instance %q", c.Name, c.Caps.BoundName, inst.BoundName()))
		}
		if c.Caps.ErrorBounded != inst.ErrorBounded() {
			panic(fmt.Sprintf("pressio: Register(%q): Caps.ErrorBounded disagrees with instance", c.Name))
		}
	}
	if _, isRate := inst.(RateCompressor); isRate != c.Caps.FixedRate {
		if isRate {
			panic(fmt.Sprintf("pressio: Register(%q): instance implements RateCompressor but Caps.FixedRate is false", c.Name))
		}
		panic(fmt.Sprintf("pressio: Register(%q): Caps.FixedRate promised but instance does not implement RateCompressor", c.Name))
	}
	if !c.Caps.Float32 && !c.Caps.Float64 {
		// The dtype window is declarative; every in-tree adapter dispatches
		// on the buffer's dtype tag and handles both widths, so an
		// unspecified window means "both".
		c.Caps.Float32, c.Caps.Float64 = true, true
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("pressio: duplicate registration of %q", c.Name))
	}
	registry[c.Name] = c
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Codec, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	return c, ok
}

// New instantiates a registered compressor by name.
func New(name string) (Compressor, error) {
	c, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (available: %v)", ErrUnknownCompressor, name, Names())
	}
	return c.New(), nil
}

// Codecs lists the registered descriptors sorted by name.
func Codecs() []Codec {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Codec, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the registered codec names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Seal compresses the buffer at the given bound and wraps the result in a
// self-describing container carrying the codec name, the bound, the achieved
// ratio, the element type, and the shape — everything Open needs to reverse
// it.
func Seal(c Compressor, buf Buffer, bound float64) (container.Container, error) {
	comp, err := c.Compress(buf, bound)
	if err != nil {
		return container.Container{}, fmt.Errorf("pressio: seal with %s: %w", c.Name(), err)
	}
	ratio := metrics.CompressionRatio(buf.Bytes(), len(comp))
	return container.New(c.Name(), bound, ratio, buf.DType(), buf.Shape, comp)
}

// Open routes a decoded container to the codec named in its header and
// reconstructs the original buffer at the element width the header records.
// It is the inverse of Seal (and, through OpenBlocked, of SealBlocked:
// blocked containers are detected by their block index and decoded
// block-parallel) and the only decompression entry point that needs no
// out-of-band knowledge.
func Open(cn container.Container) (Buffer, error) {
	if cn.Blocks != nil {
		return OpenBlocked(context.Background(), cn, 0)
	}
	if err := checkDType(cn.Header.DType); err != nil {
		return Buffer{}, err
	}
	c, err := New(cn.Header.Codec)
	if err != nil {
		return Buffer{}, err
	}
	buf, err := c.Decompress(cn.Payload, cn.Header.Shape, cn.Header.DType)
	if err != nil {
		return Buffer{}, fmt.Errorf("pressio: open %s container: %w", cn.Header.Codec, err)
	}
	return buf, nil
}
