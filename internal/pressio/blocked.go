package pressio

import (
	"context"
	"fmt"

	"fraz/internal/blocks"
	"fraz/internal/container"
	"fraz/internal/metrics"
	"fraz/internal/parallel"
	"fraz/internal/pool"
)

// This file implements the blocked (format v2) seal/open path: the buffer is
// split along its slowest axis into independent sub-buffers, each compressed
// and decompressed on its own — turning one monolithic compressor invocation
// into an embarrassingly parallel batch, the structure SZx's fixed-size
// block pipeline and FZ-GPU's block-parallel kernels exploit for their
// throughput. Every block is a complete N-d field, so the existing codecs
// run on blocks unchanged; the container's block index (per-block offset,
// length, CRC) is what lets Open decode the blocks concurrently too.

// SealBlocked compresses the buffer as numBlocks independent slowest-axis
// blocks at the given bound, running up to `workers` compressions
// concurrently (0 = GOMAXPROCS), and wraps the payloads in a version-2
// blocked container. numBlocks <= 1 (or a shape whose slowest axis cannot be
// split) falls back to the monolithic Seal and a version-1 container, so
// callers can pass the requested block count straight through.
//
// The recorded ratio is the achieved whole-field ratio: uncompressed bytes
// over the summed block payload sizes (index overhead excluded, matching how
// Seal reports the monolithic payload ratio).
func SealBlocked(ctx context.Context, c Compressor, buf Buffer, bound float64, numBlocks, workers int) (container.Container, error) {
	// The monolithic fallback below never consults ctx (Seal is
	// synchronous), so honour a cancellation that happened before the call
	// either way — symmetric with OpenBlocked.
	if err := ctx.Err(); err != nil {
		return container.Container{}, err
	}
	plan, err := blocks.Plan(buf.Shape, numBlocks)
	if err != nil {
		return container.Container{}, fmt.Errorf("pressio: seal blocked with %s: %w", c.Name(), err)
	}
	if len(plan) <= 1 {
		return Seal(c, buf, bound)
	}
	payloads := make([][]byte, len(plan))
	err = parallel.ForEach(ctx, len(plan), workers, func(ctx context.Context, i int) error {
		sub, err := buf.Slice(plan[i])
		if err != nil {
			return err
		}
		p, err := c.Compress(sub, bound)
		if err != nil {
			return fmt.Errorf("block %d (%s): %w", i, sub.Shape, err)
		}
		payloads[i] = p
		return nil
	})
	if err != nil {
		// ForEach has drained its workers, so every non-nil payload is a
		// completed compression nobody will consume — a cancellation (or one
		// block's failure) must hand them back to the pool, or every aborted
		// seal leaks one buffer per finished block.
		for _, p := range payloads {
			if p != nil {
				pool.PutBytes(p)
			}
		}
		return container.Container{}, fmt.Errorf("pressio: seal blocked with %s: %w", c.Name(), err)
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	ratio := metrics.CompressionRatio(buf.Bytes(), total)
	cn, err := container.NewBlocked(c.Name(), bound, ratio, buf.DType(), buf.Shape, payloads)
	// NewBlocked copied every payload into the container's contiguous
	// payload area, so the per-block buffers are dead — recycle them for the
	// next seal's compressions. (The monolithic Seal path must NOT do this:
	// container.New keeps its payload by reference.)
	for _, p := range payloads {
		pool.PutBytes(p)
	}
	return cn, err
}

// OpenBlocked reconstructs the buffer of a blocked (version-2) container,
// decompressing up to `workers` blocks concurrently (0 = GOMAXPROCS). Each
// block resolves its own compressor instance from the registry — cheap for
// the stateless codecs, and it keeps the decode path independent of any
// instance the caller holds. Monolithic containers are routed to Open, so
// OpenBlocked accepts any container.
func OpenBlocked(ctx context.Context, cn container.Container, workers int) (Buffer, error) {
	// The monolithic route below never consults ctx (Open is synchronous),
	// so honour a cancellation that happened before the call either way.
	if err := ctx.Err(); err != nil {
		return Buffer{}, err
	}
	if cn.Blocks == nil {
		return Open(cn)
	}
	if err := checkDType(cn.Header.DType); err != nil {
		return Buffer{}, err
	}
	if _, ok := Lookup(cn.Header.Codec); !ok {
		return Buffer{}, fmt.Errorf("%w: %q (available: %v)", ErrUnknownCompressor, cn.Header.Codec, Names())
	}
	plan, err := blocks.Plan(cn.Header.Shape, len(cn.Blocks))
	if err != nil {
		return Buffer{}, fmt.Errorf("pressio: open blocked %s container: %w", cn.Header.Codec, err)
	}
	if len(plan) != len(cn.Blocks) {
		return Buffer{}, fmt.Errorf("pressio: open blocked %s container: %d blocks indexed, shape %s splits into %d",
			cn.Header.Codec, len(cn.Blocks), cn.Header.Shape, len(plan))
	}
	out := newZeroBuffer(cn.Header.DType, cn.Header.Shape)
	err = parallel.ForEach(ctx, len(plan), workers, func(ctx context.Context, i int) error {
		c, err := New(cn.Header.Codec)
		if err != nil {
			return err
		}
		payload, err := cn.BlockPayload(i)
		if err != nil {
			return err
		}
		dec, err := c.Decompress(payload, plan[i].Shape, cn.Header.DType)
		if err != nil {
			return fmt.Errorf("block %d (%s): %w", i, plan[i].Shape, err)
		}
		if err := out.scatterFrom(plan[i], dec); err != nil {
			// The decoded block is dead on this path too: recycle it before
			// surfacing the error, symmetric with the success path below.
			dec.recycle()
			return err
		}
		// The block's decode buffer is dead once scattered into out;
		// recycle it so the pool-aware codecs allocate each block buffer
		// once per pipeline instead of once per block.
		dec.recycle()
		return nil
	})
	if err != nil {
		return Buffer{}, fmt.Errorf("pressio: open blocked %s container: %w", cn.Header.Codec, err)
	}
	return out, nil
}
