package pressio

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fraz/internal/container"
	"fraz/internal/grid"
)

func TestQuantizeBound(t *testing.T) {
	if q := QuantizeBound(1e-3); !(q > 0) || q > 1e-3 {
		t.Errorf("QuantizeBound(1e-3) = %v, want positive and <= 1e-3", q)
	}
	if math.Abs(QuantizeBound(1e-3)-1e-3)/1e-3 > 0.02 {
		t.Errorf("QuantizeBound(1e-3) = %v moved more than 2%%", QuantizeBound(1e-3))
	}
	// Nearby bounds collapse onto one grid point.
	a, b := QuantizeBound(1.0), QuantizeBound(1.0001)
	if a != b {
		t.Errorf("QuantizeBound(1.0)=%v and QuantizeBound(1.0001)=%v should coincide", a, b)
	}
	// Clearly distinct bounds stay distinct.
	if QuantizeBound(1.0) == QuantizeBound(1.1) {
		t.Errorf("QuantizeBound should separate 1.0 and 1.1")
	}
	// Degenerate inputs pass through.
	for _, v := range []float64{0, -1, math.Inf(1)} {
		if QuantizeBound(v) != v {
			t.Errorf("QuantizeBound(%v) = %v, want unchanged", v, QuantizeBound(v))
		}
	}
	if !math.IsNaN(QuantizeBound(math.NaN())) {
		t.Errorf("QuantizeBound(NaN) should stay NaN")
	}
}

func TestFingerprintDistinguishesDataAndShape(t *testing.T) {
	buf1, err := NewBuffer([]float32{1, 2, 3, 4}, grid.MustDims(4))
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := NewBuffer([]float32{1, 2, 3, 5}, grid.MustDims(4))
	if err != nil {
		t.Fatal(err)
	}
	buf3, err := NewBuffer([]float32{1, 2, 3, 4}, grid.MustDims(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	fp1, fp2, fp3 := Fingerprint(buf1), Fingerprint(buf2), Fingerprint(buf3)
	if fp1 == fp2 {
		t.Errorf("different data should fingerprint differently")
	}
	if fp1 == fp3 {
		t.Errorf("different shape should fingerprint differently")
	}
	if fp1 != Fingerprint(buf1) {
		t.Errorf("fingerprint should be deterministic")
	}
}

// countingCompressor wraps a real compressor and counts Compress calls.
type countingCompressor struct {
	Compressor
	calls atomic.Int64
}

func (c *countingCompressor) Compress(buf Buffer, bound float64) ([]byte, error) {
	c.calls.Add(1)
	return c.Compressor.Compress(buf, bound)
}

func TestEvaluatorServesRepeatsFromCache(t *testing.T) {
	inner, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	comp := &countingCompressor{Compressor: inner}
	buf := testField3D()
	cache := NewCache()
	ev := NewEvaluator(cache, comp, buf)

	r1, s1, q1, err := ev.Ratio(0.01)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, q2, err := ev.Ratio(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || s1 != s2 || q1 != q2 {
		t.Errorf("repeat evaluation differs: (%v,%v,%v) vs (%v,%v,%v)", r1, s1, q1, r2, s2, q2)
	}
	// A bound within the quantization resolution also hits.
	if _, _, _, err := ev.Ratio(0.010000001); err != nil {
		t.Fatal(err)
	}
	if got := comp.calls.Load(); got != 1 {
		t.Errorf("compressor invoked %d times, want 1", got)
	}
	if hits, misses := ev.Stats(); hits != 2 || misses != 1 {
		t.Errorf("evaluator stats = %d hits / %d misses, want 2/1", hits, misses)
	}
	if hits, misses, _ := cache.Stats(); hits != 2 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 2/1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}

func TestEvaluatorDistinguishesCodecAndData(t *testing.T) {
	cache := NewCache()
	buf := testField3D()
	szc, _ := New("sz:abs")
	zfpc, _ := New("zfp:accuracy")
	ev1 := NewEvaluator(cache, szc, buf)
	ev2 := NewEvaluator(cache, zfpc, buf)
	if _, _, _, err := ev1.Ratio(0.01); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ev2.Ratio(0.01); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("different codecs should not share entries: len = %d", cache.Len())
	}
}

func TestEvaluatorNilCacheCompressesEveryTime(t *testing.T) {
	inner, _ := New("sz:abs")
	comp := &countingCompressor{Compressor: inner}
	ev := NewEvaluator(nil, comp, testField3D())
	for i := 0; i < 3; i++ {
		if _, _, q, err := ev.Ratio(0.01); err != nil || q != 0.01 {
			t.Fatalf("nil-cache Ratio = bound %v, err %v; want exact bound and nil", q, err)
		}
	}
	if got := comp.calls.Load(); got != 3 {
		t.Errorf("compressor invoked %d times, want 3", got)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	cache := NewCache()
	var computed atomic.Int64
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	key := CacheKey{Codec: "fake", Fingerprint: 1, Bound: 2}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			entry, _, err := cache.do(key, func() (CacheEntry, error) {
				computed.Add(1)
				return CacheEntry{Bound: 2, Ratio: 4.2, Size: 100}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if entry.Ratio != 4.2 || entry.Size != 100 {
				t.Errorf("entry = %+v", entry)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := computed.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	hits, misses, _ := cache.Stats()
	if misses != 1 || hits != callers-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1", hits, misses, callers-1)
	}
}

func TestCacheBoundedSize(t *testing.T) {
	cache := NewCacheSized(2)
	fill := func(fp uint64) {
		t.Helper()
		_, _, err := cache.do(CacheKey{Codec: "fake", Fingerprint: fp}, func() (CacheEntry, error) {
			return CacheEntry{Ratio: float64(fp)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for fp := uint64(1); fp <= 10; fp++ {
		fill(fp)
		if cache.Len() > 2 {
			t.Fatalf("cache grew to %d entries with maxSize 2", cache.Len())
		}
	}
	if _, _, evictions := cache.Stats(); evictions == 0 {
		t.Errorf("evictions = 0 after overfilling a 2-entry cache")
	}
	// Eviction is FIFO: the most recent insertions survive.
	if _, hit, _ := cache.do(CacheKey{Codec: "fake", Fingerprint: 10}, func() (CacheEntry, error) {
		return CacheEntry{}, errors.New("should have been cached")
	}); !hit {
		t.Errorf("newest entry was evicted before older ones")
	}
	// An evicted key is recomputed rather than served stale.
	entry, hit, err := cache.do(CacheKey{Codec: "fake", Fingerprint: 1}, func() (CacheEntry, error) {
		return CacheEntry{Ratio: 42}, nil
	})
	if err != nil || hit || entry.Ratio != 42 {
		t.Errorf("evicted key: entry=%+v hit=%v err=%v, want recompute", entry, hit, err)
	}
}

func TestCacheSizedDefault(t *testing.T) {
	if c := NewCacheSized(0); c.maxSize != DefaultMaxEntries {
		t.Errorf("NewCacheSized(0).maxSize = %d, want DefaultMaxEntries", c.maxSize)
	}
}

// TestEvaluatorFullCachesReports pins the quality-objective evaluation path:
// the compress+decompress round trip runs once per quantized bound, repeats
// are served from the cache, and full entries do not collide with
// compress-only entries at the same bound.
func TestEvaluatorFullCachesReports(t *testing.T) {
	inner, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	comp := &countingCompressor{Compressor: inner}
	buf := testField3D()
	cache := NewCache()
	ev := NewEvaluator(cache, comp, buf)

	rep1, q1, err := ev.Full(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CompressionRatio <= 0 || math.IsNaN(rep1.PSNR) || math.IsNaN(rep1.SSIM) {
		t.Fatalf("full report incomplete: %+v", rep1)
	}
	rep2, q2, err := ev.Full(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 || q1 != q2 {
		t.Errorf("repeat full evaluation differs")
	}
	if got := comp.calls.Load(); got != 1 {
		t.Errorf("compressor invoked %d times for two Full calls, want 1", got)
	}
	// A ratio evaluation at the same bound is a distinct entry (the report
	// costs a round trip the ratio path never ran), not a collision.
	if _, _, _, err := ev.Ratio(0.01); err != nil {
		t.Fatal(err)
	}
	if got := comp.calls.Load(); got != 2 {
		t.Errorf("ratio after full at same bound invoked compressor %d times total, want 2", got)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2 (one full, one ratio)", cache.Len())
	}
	if hits, misses := ev.Stats(); hits != 1 || misses != 2 {
		t.Errorf("evaluator stats = %d/%d, want 1 hit / 2 misses", hits, misses)
	}
}

// TestEvaluatorFullNilCache mirrors the nil-cache ratio contract: every call
// runs the round trip at exactly the requested bound.
func TestEvaluatorFullNilCache(t *testing.T) {
	inner, _ := New("sz:abs")
	comp := &countingCompressor{Compressor: inner}
	ev := NewEvaluator(nil, comp, testField3D())
	for i := 0; i < 2; i++ {
		if _, q, err := ev.Full(0.01); err != nil || q != 0.01 {
			t.Fatalf("nil-cache Full = bound %v, err %v", q, err)
		}
	}
	if got := comp.calls.Load(); got != 2 {
		t.Errorf("compressor invoked %d times, want 2", got)
	}
}

func TestCacheDoesNotRetainErrors(t *testing.T) {
	cache := NewCache()
	boom := errors.New("boom")
	key := CacheKey{Codec: "fake", Fingerprint: 3, Bound: 4}
	calls := 0
	_, _, err := cache.do(key, func() (CacheEntry, error) {
		calls++
		return CacheEntry{}, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	// The failed slot is released, so the next caller retries and a
	// transient failure cannot poison the key for the cache's lifetime.
	entry, hit, err := cache.do(key, func() (CacheEntry, error) {
		calls++
		return CacheEntry{Bound: 4, Ratio: 2, Size: 8}, nil
	})
	if err != nil || hit || entry.Ratio != 2 {
		t.Errorf("retry after error: entry=%+v hit=%v err=%v", entry, hit, err)
	}
	if calls != 2 {
		t.Errorf("failing evaluation called %d times, want 2 (one failure, one retry)", calls)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1 (only the success)", cache.Len())
	}
}

// TestCacheFailedWaitIsNotAHit pins the accounting on the single-flight
// path: a caller that waits on an in-flight evaluation which then fails got
// nothing from the cache, so it must not be counted as a hit.
func TestCacheFailedWaitIsNotAHit(t *testing.T) {
	cache := NewCache()
	boom := errors.New("boom")
	key := CacheKey{Codec: "fake", Fingerprint: 9, Bound: 1}

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, hit, err := cache.do(key, func() (CacheEntry, error) {
			close(entered) // the evaluation is now in flight
			<-release
			return CacheEntry{}, boom
		})
		if hit || !errors.Is(err, boom) {
			t.Errorf("originator: hit=%v err=%v, want miss with boom", hit, err)
		}
	}()

	<-entered
	waiter := make(chan struct{})
	go func() {
		defer close(waiter)
		// Usually this caller blocks on the in-flight slot and receives its
		// failure; if scheduling delays it past the originator's cleanup it
		// recomputes (and fails again) instead. The accounting under test
		// is identical either way: no hit, one more miss.
		_, hit, err := cache.do(key, func() (CacheEntry, error) {
			return CacheEntry{}, boom
		})
		if hit {
			t.Errorf("waiter on a failed evaluation reported a cache hit")
		}
		if !errors.Is(err, boom) {
			t.Errorf("waiter err = %v, want the evaluation failure", err)
		}
	}()

	// Give the waiter a moment to reach the in-flight slot, then fail the
	// evaluation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-done
	<-waiter

	hits, misses, _ := cache.Stats()
	if hits != 0 {
		t.Errorf("hits = %d, want 0 (nothing was served from the cache)", hits)
	}
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (one failed compute, one failed wait)", misses)
	}
}

// TestEvaluatorMirrorsFailedWaitAccounting checks the same property through
// Evaluator.Ratio: a failed evaluation never increments the evaluator's hit
// counter either.
func TestEvaluatorMirrorsFailedWaitAccounting(t *testing.T) {
	cache := NewCache()
	c, err := New("sz:rel")
	if err != nil {
		t.Fatal(err)
	}
	buf := testField3D()
	ev := NewEvaluator(cache, c, buf)
	// sz:rel rejects bounds > 1, so this evaluation fails deterministically.
	if _, _, _, err := ev.Ratio(7); err == nil {
		t.Fatal("expected the out-of-range bound to fail")
	}
	if _, _, _, err := ev.Ratio(7); err == nil {
		t.Fatal("expected the retried bound to fail")
	}
	if hits, misses := ev.Stats(); hits != 0 || misses != 2 {
		t.Errorf("evaluator stats = %d hits / %d misses, want 0/2", hits, misses)
	}
	if hits, _, _ := cache.Stats(); hits != 0 {
		t.Errorf("cache hits = %d, want 0", hits)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	buf := testField3D()
	c, err := New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	const bound = 0.01
	cn, err := Seal(c, buf, bound)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Codec != "sz:abs" || cn.Header.Bound != bound || !cn.Header.Shape.Equal(buf.Shape) {
		t.Errorf("sealed header = %+v", cn.Header)
	}
	if cn.Header.Ratio <= 0 {
		t.Errorf("sealed ratio = %v, want > 0", cn.Header.Ratio)
	}

	// Through the wire format and back.
	enc, err := cn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Open(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(buf.Shape) || out.Len() != buf.Len() {
		t.Fatalf("opened buffer shape %v with %d values", out.Shape, out.Len())
	}
	for i := range buf.Float32() {
		if diff := math.Abs(float64(out.Float32()[i]) - float64(buf.Float32()[i])); diff > bound {
			t.Fatalf("value %d error %v exceeds bound %v", i, diff, bound)
		}
	}
}

func TestOpenRejectsUnknownCodec(t *testing.T) {
	cn, err := container.New("no-such-codec", 1, 1, container.Float32, grid.MustDims(4), []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cn); !errors.Is(err, ErrUnknownCompressor) {
		t.Errorf("err = %v, want ErrUnknownCompressor", err)
	}
}

func TestOpenRejectsUnknownDType(t *testing.T) {
	cn, err := container.New("sz:abs", 1, 1, container.Float32, grid.MustDims(4), []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	cn.Header.DType = 7
	if _, err := Open(cn); err == nil {
		t.Errorf("unknown dtype should fail")
	}
}

func TestCodecsAndLookup(t *testing.T) {
	codecs := Codecs()
	if len(codecs) != len(Names()) {
		t.Fatalf("Codecs() has %d entries, Names() %d", len(codecs), len(Names()))
	}
	for i := 1; i < len(codecs); i++ {
		if codecs[i-1].Name >= codecs[i].Name {
			t.Errorf("Codecs() not sorted at %d: %q >= %q", i, codecs[i-1].Name, codecs[i].Name)
		}
	}
	c, ok := Lookup("mgard:abs")
	if !ok {
		t.Fatal("mgard:abs not registered")
	}
	if c.Caps.SupportsRank(1) || !c.Caps.SupportsRank(2) || !c.Caps.SupportsRank(3) {
		t.Errorf("mgard:abs caps = %+v", c.Caps)
	}
	if !c.Caps.ErrorBounded {
		t.Errorf("mgard:abs should be error bounded")
	}
	if _, ok := Lookup("nope"); ok {
		t.Errorf("Lookup of unregistered name should fail")
	}
	// Capabilities agree with the instances they describe.
	for _, cd := range Codecs() {
		inst := cd.New()
		if inst.Name() != cd.Name {
			t.Errorf("codec %q instance reports name %q", cd.Name, inst.Name())
		}
		if inst.ErrorBounded() != cd.Caps.ErrorBounded {
			t.Errorf("codec %q: ErrorBounded mismatch", cd.Name)
		}
		if inst.BoundName() != cd.Caps.BoundName {
			t.Errorf("codec %q: BoundName mismatch", cd.Name)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register(Codec{New: func() Compressor { return szCompressor{} }}) })
	mustPanic("nil factory", func() { Register(Codec{Name: "x"}) })
}
