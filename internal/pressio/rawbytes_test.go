package pressio

import (
	"encoding/binary"
	"math"
	"testing"

	"fraz/internal/grid"
)

func TestRawBytesView(t *testing.T) {
	f32, err := NewBufferOf([]float32{1.5, -2.25}, grid.MustDims(2))
	if err != nil {
		t.Fatal(err)
	}
	raw := f32.RawBytes()
	if len(raw) != 8 {
		t.Fatalf("float32 view has %d bytes, want 8", len(raw))
	}
	// The view aliases the buffer: a write through the original data must be
	// visible, proving no copy was taken.
	f32.Float32()[0] = 4.5
	var host [4]byte
	if isLittleEndian() {
		binary.LittleEndian.PutUint32(host[:], math.Float32bits(4.5))
	} else {
		binary.BigEndian.PutUint32(host[:], math.Float32bits(4.5))
	}
	for i := 0; i < 4; i++ {
		if raw[i] != host[i] {
			t.Fatalf("view byte %d = %#x, want %#x (view does not alias the data)", i, raw[i], host[i])
		}
	}

	f64, err := NewBufferOf([]float64{3.75}, grid.MustDims(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f64.RawBytes()); got != 8 {
		t.Fatalf("float64 view has %d bytes, want 8", got)
	}
	if (Buffer{}).RawBytes() != nil {
		t.Error("empty buffer should view as nil")
	}
}

func isLittleEndian() bool {
	return binary.NativeEndian.Uint16([]byte{1, 0}) == 1
}

func TestFingerprintDistinguishes(t *testing.T) {
	a, _ := NewBufferOf([]float32{1, 2, 3, 4}, grid.MustDims(4))
	b, _ := NewBufferOf([]float32{1, 2, 3, 5}, grid.MustDims(4))
	c, _ := NewBufferOf([]float32{1, 2, 3, 4}, grid.MustDims(2, 2))
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("fingerprints collide across different contents")
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprints collide across different shapes")
	}
	d64 := []float64{1, 2, 3, 4}
	d, _ := NewBufferOf(d64, grid.MustDims(4))
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("fingerprints collide across dtypes")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Error("fingerprint not deterministic")
	}
}

// TestFingerprintAllocFree pins the zero-copy fingerprint path: hashing goes
// through the buffer's raw byte view with a hand-rolled FNV-1a, so a
// fingerprint of any size buffer performs zero heap allocations (the old
// path staged every float through a scratch copy and allocated the hash
// state).
func TestFingerprintAllocFree(t *testing.T) {
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	buf, err := NewBufferOf(data, grid.MustDims(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	var sink uint64
	allocs := testing.AllocsPerRun(20, func() {
		sink += Fingerprint(buf)
	})
	if allocs != 0 {
		t.Errorf("Fingerprint allocates %v times per call, want 0", allocs)
	}
	_ = sink
}

func BenchmarkFingerprint(b *testing.B) {
	b.ReportAllocs()
	data := make([]float32, 1<<20)
	for i := range data {
		data[i] = float32(i)
	}
	buf, err := NewBufferOf(data, grid.MustDims(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Bytes()))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Fingerprint(buf)
	}
	_ = sink
}
