package pressio

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/pool"
	"fraz/internal/sz"
	"fraz/internal/zfp"
)

// This file registers the secondary compressor configurations: SZ with a
// value-range-relative bound, ZFP's fixed-precision mode, and a lossless
// DEFLATE baseline. The relative SZ mode is the configuration most
// scientific users actually run (bounds quoted as 10^-3 of the value range);
// the lossless baseline substantiates the paper's motivating claim that
// lossless compressors cannot meaningfully reduce floating-point simulation
// data.

// --- SZ with a range-relative error bound -------------------------------------

type szRelative struct{}

func (szRelative) Name() string       { return "sz:rel" }
func (szRelative) BoundName() string  { return "value-range-relative error bound" }
func (szRelative) ErrorBounded() bool { return true }
func (szRelative) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (szRelative) BoundRange() (float64, float64) { return 1e-12, 1 }
func (szRelative) Compress(buf Buffer, bound float64) ([]byte, error) {
	if !(bound > 0) || bound > 1 {
		return nil, fmt.Errorf("sz:rel: relative bound must be in (0,1], got %v", bound)
	}
	vr := buf.ValueRange()
	if vr <= 0 {
		vr = 1 // constant field: any positive absolute bound preserves it
	}
	opts := sz.Options{ErrorBound: bound * vr}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return sz.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return sz.Compress(d, s, opts) })
}
func (szRelative) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, sz.Decompress[float32], sz.Decompress[float64])
}

// --- ZFP fixed-precision -------------------------------------------------------

type zfpPrecision struct{}

func (zfpPrecision) Name() string       { return "zfp:precision" }
func (zfpPrecision) BoundName() string  { return "bit planes per block" }
func (zfpPrecision) ErrorBounded() bool { return false }
func (zfpPrecision) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}

// BoundRange is capped at 32 planes — valid for either width — because the
// registry's range cannot depend on the buffer that arrives later. Doubles
// therefore top out near float32 resolution in this mode; use zfp:accuracy
// (whose bound drives the plane cutoff through the exponent, reaching all
// 64 planes) when float64 data needs tighter fidelity.
func (zfpPrecision) BoundRange() (float64, float64) { return 1, 32 }
func (zfpPrecision) Compress(buf Buffer, bound float64) ([]byte, error) {
	opts := zfp.Options{Mode: zfp.ModeFixedPrecision, Precision: int(math.Round(bound))}
	return compressTyped(buf,
		func(d []float32, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) },
		func(d []float64, s grid.Dims) ([]byte, error) { return zfp.Compress(d, s, opts) })
}
func (zfpPrecision) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, zfp.Decompress[float32], zfp.Decompress[float64])
}

// --- lossless DEFLATE baseline --------------------------------------------------

// losslessMagic32 and losslessMagic64 tag the element width of a lossless
// stream, mirroring the typed magics of the lossy kernels (float32 streams
// keep the bytes earlier builds wrote).
const (
	losslessMagic32 = 0x4C5A4631 // "LZF1"
	losslessMagic64 = 0x4C5A4632 // "LZF2"
)

// errLossless is the base error for the lossless baseline codec.
var errLossless = errors.New("flate:lossless")

type losslessFlate struct{}

func (losslessFlate) Name() string       { return "flate:lossless" }
func (losslessFlate) BoundName() string  { return "unused (lossless)" }
func (losslessFlate) ErrorBounded() bool { return true } // zero error by construction
func (losslessFlate) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil
}
func (losslessFlate) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (losslessFlate) Compress(buf Buffer, _ float64) ([]byte, error) {
	return compressTyped(buf, losslessCompress[float32], losslessCompress[float64])
}
func (losslessFlate) Decompress(comp []byte, shape grid.Dims, dt container.DType) (Buffer, error) {
	return decompressTyped(dt, comp, shape, losslessDecompress[float32], losslessDecompress[float64])
}

// getFloats bridges the generic element type to the pool's concrete free
// lists. Buffers handed out here flow back via Buffer recycling in the
// blocked open path (see Compressor.Decompress's contract).
func getFloats[T grid.Float](n int) []T {
	if grid.ElemSize[T]() == 4 {
		return any(pool.GetFloat32(n)).([]T)
	}
	return any(pool.GetFloat64(n)).([]T)
}

func losslessMagicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return losslessMagic32
	}
	return losslessMagic64
}

// flateReaders and flateWriters recycle DEFLATE state (a 32 KiB window plus
// decode tables) across calls. The blocked open path decodes one payload per
// block, so without these pools every block pays the reader's setup
// allocations again.
var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

var flateWriters = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(io.Discard, flate.BestCompression)
	if err != nil {
		panic(err) // the level constant is valid; NewWriter cannot fail on it
	}
	return fw
}}

func losslessCompress[T grid.Float](data []T, _ grid.Dims) ([]byte, error) {
	elem := grid.ElemSize[T]()
	raw := pool.GetBytes(4 + len(data)*elem)
	defer pool.PutBytes(raw)
	binary.LittleEndian.PutUint32(raw[:4], losslessMagicFor[T]())
	if elem == 4 {
		for i, v := range data {
			binary.LittleEndian.PutUint32(raw[4+4*i:], math.Float32bits(float32(v)))
		}
	} else {
		for i, v := range data {
			binary.LittleEndian.PutUint64(raw[4+8*i:], math.Float64bits(float64(v)))
		}
	}
	var out bytes.Buffer
	fw := flateWriters.Get().(*flate.Writer)
	defer flateWriters.Put(fw)
	fw.Reset(&out)
	if _, err := fw.Write(raw); err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	return out.Bytes(), nil
}

func losslessDecompress[T grid.Float](comp []byte, shape grid.Dims) ([]T, error) {
	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	elem := grid.ElemSize[T]()
	var raw []byte
	if shape != nil {
		// The shape fixes the payload size exactly, so the inflated bytes can
		// come from the pool instead of ReadAll's repeated growth: read the
		// expected length plus one sentinel byte that must hit EOF.
		want := 4 + shape.Len()*elem
		raw = pool.GetBytes(want + 1)
		defer pool.PutBytes(raw)
		n, err := io.ReadFull(fr, raw)
		switch {
		case err == nil || n > want:
			return nil, fmt.Errorf("%w: payload longer than shape %v expects", errLossless, shape)
		case err != io.ErrUnexpectedEOF && err != io.EOF:
			return nil, fmt.Errorf("%w: %v", errLossless, err)
		case n != want:
			return nil, fmt.Errorf("%w: truncated payload", errLossless)
		}
		raw = raw[:n]
	} else {
		all, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errLossless, err)
		}
		raw = all
	}
	fr.Close()
	if len(raw) < 4 || binary.LittleEndian.Uint32(raw[:4]) != losslessMagicFor[T]() {
		return nil, fmt.Errorf("%w: bad magic", errLossless)
	}
	raw = raw[4:]
	if len(raw)%elem != 0 {
		return nil, fmt.Errorf("%w: truncated payload", errLossless)
	}
	n := len(raw) / elem
	if shape != nil && n != shape.Len() {
		return nil, fmt.Errorf("%w: payload holds %d values, shape %v expects %d", errLossless, n, shape, shape.Len())
	}
	out := getFloats[T](n)
	if elem == 4 {
		for i := range out {
			out[i] = T(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
	} else {
		for i := range out {
			out[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
	}
	return out, nil
}

func init() {
	Register(Codec{
		Name: "sz:rel", New: func() Compressor { return szRelative{} },
		Caps: Capabilities{BoundName: "value-range-relative error bound", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:precision", New: func() Compressor { return zfpPrecision{} },
		Caps: Capabilities{BoundName: "bit planes per block", ErrorBounded: false, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "flate:lossless", New: func() Compressor { return losslessFlate{} },
		Caps: Capabilities{BoundName: "unused (lossless)", ErrorBounded: true, Lossless: true, MinRank: 1, MaxRank: 4},
	})
}
