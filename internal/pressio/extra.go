package pressio

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fraz/internal/grid"
	"fraz/internal/sz"
	"fraz/internal/zfp"
)

// This file registers the secondary compressor configurations: SZ with a
// value-range-relative bound, ZFP's fixed-precision mode, and a lossless
// DEFLATE baseline. The relative SZ mode is the configuration most
// scientific users actually run (bounds quoted as 10^-3 of the value range);
// the lossless baseline substantiates the paper's motivating claim that
// lossless compressors cannot meaningfully reduce floating-point simulation
// data.

// --- SZ with a range-relative error bound -------------------------------------

type szRelative struct{}

func (szRelative) Name() string       { return "sz:rel" }
func (szRelative) BoundName() string  { return "value-range-relative error bound" }
func (szRelative) ErrorBounded() bool { return true }
func (szRelative) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (szRelative) BoundRange() (float64, float64) { return 1e-12, 1 }
func (szRelative) Compress(buf Buffer, bound float64) ([]byte, error) {
	if !(bound > 0) || bound > 1 {
		return nil, fmt.Errorf("sz:rel: relative bound must be in (0,1], got %v", bound)
	}
	vr := grid.ValueRange(buf.Data)
	if vr <= 0 {
		vr = 1 // constant field: any positive absolute bound preserves it
	}
	return sz.Compress(buf.Data, buf.Shape, sz.Options{ErrorBound: bound * vr})
}
func (szRelative) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return sz.Decompress(comp, shape)
}

// --- ZFP fixed-precision -------------------------------------------------------

type zfpPrecision struct{}

func (zfpPrecision) Name() string       { return "zfp:precision" }
func (zfpPrecision) BoundName() string  { return "bit planes per block" }
func (zfpPrecision) ErrorBounded() bool { return false }
func (zfpPrecision) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil && shape.NDims() <= 3
}
func (zfpPrecision) BoundRange() (float64, float64) { return 1, 32 }
func (zfpPrecision) Compress(buf Buffer, bound float64) ([]byte, error) {
	prec := int(math.Round(bound))
	return zfp.Compress(buf.Data, buf.Shape, zfp.Options{Mode: zfp.ModeFixedPrecision, Precision: prec})
}
func (zfpPrecision) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	return zfp.Decompress(comp, shape)
}

// --- lossless DEFLATE baseline --------------------------------------------------

const losslessMagic = 0x4C5A4631 // "LZF1"

// errLossless is the base error for the lossless baseline codec.
var errLossless = errors.New("flate:lossless")

type losslessFlate struct{}

func (losslessFlate) Name() string       { return "flate:lossless" }
func (losslessFlate) BoundName() string  { return "unused (lossless)" }
func (losslessFlate) ErrorBounded() bool { return true } // zero error by construction
func (losslessFlate) SupportsShape(shape grid.Dims) bool {
	return shape.Validate() == nil
}
func (losslessFlate) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (losslessFlate) Compress(buf Buffer, _ float64) ([]byte, error) {
	raw := make([]byte, 4+len(buf.Data)*4)
	binary.LittleEndian.PutUint32(raw[:4], losslessMagic)
	for i, v := range buf.Data {
		binary.LittleEndian.PutUint32(raw[4+4*i:], math.Float32bits(v))
	}
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestCompression)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	return out.Bytes(), nil
}
func (losslessFlate) Decompress(comp []byte, shape grid.Dims) ([]float32, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errLossless, err)
	}
	fr.Close()
	if len(raw) < 4 || binary.LittleEndian.Uint32(raw[:4]) != losslessMagic {
		return nil, fmt.Errorf("%w: bad magic", errLossless)
	}
	raw = raw[4:]
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%w: truncated payload", errLossless)
	}
	n := len(raw) / 4
	if shape != nil && n != shape.Len() {
		return nil, fmt.Errorf("%w: payload holds %d values, shape %v expects %d", errLossless, n, shape, shape.Len())
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func init() {
	Register(Codec{
		Name: "sz:rel", New: func() Compressor { return szRelative{} },
		Caps: Capabilities{BoundName: "value-range-relative error bound", ErrorBounded: true, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "zfp:precision", New: func() Compressor { return zfpPrecision{} },
		Caps: Capabilities{BoundName: "bit planes per block", ErrorBounded: false, MinRank: 1, MaxRank: 3},
	})
	Register(Codec{
		Name: "flate:lossless", New: func() Compressor { return losslessFlate{} },
		Caps: Capabilities{BoundName: "unused (lossless)", ErrorBounded: true, Lossless: true, MinRank: 1, MaxRank: 4},
	})
}
