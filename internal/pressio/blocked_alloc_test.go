package pressio

import (
	"context"
	"math"
	"testing"

	"fraz/internal/grid"
)

// TestOpenBlockedAllocBudget pins the allocation count of the blocked open
// path: per-block scratch (decode outputs, chunk buffers, coder working
// sets, DEFLATE state) is routed through internal/pool, so a warm pipeline
// must stay within a small per-codec budget instead of re-allocating per
// block. The ceilings carry slack for map/interface noise but sit far below
// the pre-pooling counts (flate:lossless ~95, zfp ~900, sz ~505 allocs/op
// at this block count), so a leak back to make() trips the test.
func TestOpenBlockedAllocBudget(t *testing.T) {
	shape := grid.MustDims(64, 64)
	f32 := make([]float32, shape.Len())
	for i := range f32 {
		f32[i] = float32(math.Sin(float64(i) / 9))
	}
	buf, err := NewBufferOf(f32, shape)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		codec  string
		bound  float64
		budget float64
	}{
		{"flate:lossless", 1, 80},
		{"sz:abs", 1e-3, 280},
		{"zfp:accuracy", 1e-3, 120},
		{"szx:abs", 1e-3, 60},
		{"frsz:rate", 8, 60},
	}
	for _, tc := range cases {
		t.Run(tc.codec, func(t *testing.T) {
			c, err := New(tc.codec)
			if err != nil {
				t.Fatal(err)
			}
			cn, err := SealBlocked(context.Background(), c, buf, tc.bound, 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			open := func() {
				if _, err := OpenBlocked(context.Background(), cn, 1); err != nil {
					t.Fatal(err)
				}
			}
			open() // warm the pools; first iteration pays one-time priming
			if got := testing.AllocsPerRun(20, open); got > tc.budget {
				t.Errorf("blocked open of %s costs %.0f allocs/op, budget %.0f — per-block scratch is being allocated again", tc.codec, got, tc.budget)
			}
		})
	}
}
