package experiments

import (
	"math"

	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
	"fraz/internal/zfp"
)

// Figure1 reproduces the paper's Fig. 1: ZFP's fixed-accuracy mode versus
// its fixed-rate mode on a Hurricane field. The first half of the table is
// the rate-distortion curve (PSNR versus bit rate) for both modes; the
// footnotes report the full quality metrics at a common compression ratio,
// the analogue of the paper's PSNR/max-error/SSIM/ACF annotations.
func Figure1(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "TCf", cfg.timeSteps(d.TimeSteps)-1)
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Figure 1: ZFP fixed-accuracy vs fixed-rate rate distortion (Hurricane TCf)",
		"mode", "bit_rate", "psnr_db", "max_error")

	// Fixed-accuracy curve: sweep tolerances spanning the useful range.
	vr := valueRangeOf(buf)
	tolerances := []float64{1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 5e-1}
	acc := mustCompressor("zfp:accuracy")
	for _, frac := range tolerances {
		res, err := pressio.Run(acc, buf, frac*vr)
		if err != nil {
			return nil, err
		}
		tab.AddRow("fixed-accuracy", res.Report.BitRate, res.Report.PSNR, res.Report.MaxError)
	}

	// Fixed-rate curve.
	rates := []float64{16, 12, 8, 6, 4, 2, 1}
	fixed := mustCompressor("zfp:rate")
	for _, rate := range rates {
		res, err := pressio.Run(fixed, buf, rate)
		if err != nil {
			return nil, err
		}
		tab.AddRow("fixed-rate", res.Report.BitRate, res.Report.PSNR, res.Report.MaxError)
	}

	// Quality comparison at a common compression ratio, tuned by FRaZ for
	// the accuracy mode and set directly for the rate mode.
	targetCR := 16.0
	rate := 32.0 / targetCR
	_, accFull, err := qualityAt(acc, buf, targetCR, 0.1, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	frFull, err := pressio.Run(fixed, buf, rate)
	if err != nil {
		return nil, err
	}
	accSSIM, frSSIM := ssimPair(acc, fixed, buf, accFull.Bound, rate)
	tab.AddNote("at CR≈%.0f — fixed-accuracy (FRaZ-tuned): CR=%.1f PSNR=%.1f maxErr=%.3g SSIM=%.4f ACF=%.3f",
		targetCR, accFull.Report.CompressionRatio, accFull.Report.PSNR, accFull.Report.MaxError, accSSIM, accFull.Report.ErrorACF)
	tab.AddNote("at CR≈%.0f — fixed-rate:                 CR=%.1f PSNR=%.1f maxErr=%.3g SSIM=%.4f ACF=%.3f",
		targetCR, frFull.Report.CompressionRatio, frFull.Report.PSNR, frFull.Report.MaxError, frSSIM, frFull.Report.ErrorACF)
	return tab, nil
}

// ssimPair computes slice SSIM for two already-chosen settings of two
// compressors on the same buffer; failures degrade to NaN rather than
// aborting the whole experiment.
func ssimPair(a, b pressio.Compressor, buf pressio.Buffer, boundA, boundB float64) (float64, float64) {
	compute := func(c pressio.Compressor, bound float64) float64 {
		comp, err := c.Compress(buf, bound)
		if err != nil {
			return math.NaN()
		}
		dec, err := c.Decompress(comp, buf.Shape, buf.DType())
		if err != nil {
			return math.NaN()
		}
		s, err := sliceSSIM(buf.Float32(), dec.Float32(), buf.Shape)
		if err != nil {
			return math.NaN()
		}
		return s
	}
	return compute(a, boundA), compute(b, boundB)
}

func valueRangeOf(buf pressio.Buffer) float64 {
	data := buf.Float32()
	var min, max float32
	if len(data) > 0 {
		min, max = data[0], data[0]
	}
	for _, v := range data {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	vr := float64(max) - float64(min)
	if vr <= 0 {
		vr = 1
	}
	return vr
}

// figure9Case describes one sub-figure of Fig. 9.
type figure9Case struct {
	Dataset string
	Field   string
	// MGARD is skipped for 1-D datasets, as in the paper.
	SkipMGARD bool
}

// Figure9 reproduces the paper's Fig. 9: rate-distortion curves (PSNR versus
// bit rate) for SZ(FRaZ), ZFP(FRaZ), ZFP(fixed-rate), and MGARD(FRaZ) on one
// representative field of each of the five applications.
func Figure9(cfg Config) ([]*report.Table, error) {
	cases := []figure9Case{
		{Dataset: "Hurricane", Field: "TCf"},
		{Dataset: "NYX", Field: "temperature"},
		{Dataset: "CESM", Field: "CLDHGH"},
		{Dataset: "HACC", Field: "x", SkipMGARD: true},
		{Dataset: "EXAALT", Field: "x", SkipMGARD: true},
	}
	targets := []float64{4, 8, 16, 32}
	if cfg.Quick {
		targets = []float64{4, 10, 24}
	}

	var tables []*report.Table
	for _, cse := range cases {
		d, err := dataset.New(cse.Dataset, cfg.Scale)
		if err != nil {
			return nil, err
		}
		buf, err := fieldBuffer(d, cse.Field, 0)
		if err != nil {
			return nil, err
		}
		tab := report.NewTable(
			"Figure 9: rate distortion — "+cse.Dataset+" ("+cse.Field+")",
			"compressor", "target_ratio", "achieved_ratio", "bit_rate", "psnr_db", "feasible")

		tuned := []string{"sz:abs", "zfp:accuracy"}
		if !cse.SkipMGARD {
			tuned = append(tuned, "mgard:abs")
		}
		for _, name := range tuned {
			c := mustCompressor(name)
			for _, target := range targets {
				tunedRes, full, err := qualityAt(c, buf, target, 0.1, cfg.Seed, cfg.Workers)
				if err != nil {
					return nil, err
				}
				tab.AddRow(name+" (FRaZ)", target, full.Report.CompressionRatio,
					full.Report.BitRate, full.Report.PSNR, tunedRes.Feasible)
			}
		}
		// The ZFP fixed-rate baseline reaches the target ratio by
		// construction (rate = 32/CR bits per value).
		fixed := mustCompressor("zfp:rate")
		for _, target := range targets {
			rate := 32.0 / target
			if rate < 1 {
				rate = 1
			}
			full, err := pressio.Run(fixed, buf, rate)
			if err != nil {
				return nil, err
			}
			tab.AddRow("zfp:rate (fixed-rate)", target, full.Report.CompressionRatio,
				full.Report.BitRate, full.Report.PSNR, true)
		}
		if cse.SkipMGARD {
			tab.AddNote("MGARD omitted: it does not support 1-D data (as in the paper)")
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// Figure10 reproduces the paper's Fig. 10: quality of the decompressed NYX
// temperature field when every compressor is driven to (approximately) the
// same compression ratio. The paper renders slice images; this table reports
// the quantitative annotations attached to those images: PSNR, SSIM of the
// middle slice, and the error autocorrelation.
func Figure10(cfg Config) (*report.Table, error) {
	d, err := dataset.New("NYX", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "temperature", d.TimeSteps-1)
	if err != nil {
		return nil, err
	}
	// The paper targets 85:1 because that is ZFP's closest feasible ratio at
	// that scale; at the reduced synthetic scale high ratios may not be
	// reachable, so the harness walks down a list of targets until the ZFP
	// accuracy mode can express one, then holds every compressor to it.
	target := 0.0
	zfpAcc := mustCompressor("zfp:accuracy")
	var zfpTuned pressioTuned
	candidates := []float64{85, 50, 30, 20, 12}
	for i, candidate := range candidates {
		res, full, err := qualityAt(zfpAcc, buf, candidate, 0.1, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		// The last candidate is accepted even if infeasible so the figure
		// still renders with a best-effort target.
		if res.Feasible || i == len(candidates)-1 {
			target = candidate
			zfpTuned = pressioTuned{res: full, feasible: res.Feasible}
			break
		}
	}

	tab := report.NewTable("Figure 10: quality at a common compression ratio (NYX temperature)",
		"compressor", "achieved_ratio", "psnr_db", "ssim_mid_slice", "acf_error", "feasible")

	addRow := func(name string, full pressio.Result, feasible bool) error {
		comp, err := mustCompressor(full.Compressor).Compress(buf, full.Bound)
		if err != nil {
			return err
		}
		dec, err := mustCompressor(full.Compressor).Decompress(comp, buf.Shape, buf.DType())
		if err != nil {
			return err
		}
		ssim, err := sliceSSIM(buf.Float32(), dec.Float32(), buf.Shape)
		if err != nil {
			return err
		}
		tab.AddRow(name, full.Report.CompressionRatio, full.Report.PSNR, ssim, full.Report.ErrorACF, feasible)
		return nil
	}

	// SZ via FRaZ.
	szRes, szFull, err := qualityAt(mustCompressor("sz:abs"), buf, target, 0.1, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := addRow("SZ (FRaZ)", szFull, szRes.Feasible); err != nil {
		return nil, err
	}
	// ZFP accuracy via FRaZ (already tuned above).
	if err := addRow("ZFP (FRaZ)", zfpTuned.res, zfpTuned.feasible); err != nil {
		return nil, err
	}
	// ZFP fixed-rate at the equivalent rate.
	rate := 32.0 / target
	if rate < 1 {
		rate = 1
	}
	frFull, err := pressio.Run(mustCompressor("zfp:rate"), buf, rate)
	if err != nil {
		return nil, err
	}
	if err := addRow("ZFP (fixed-rate)", frFull, true); err != nil {
		return nil, err
	}
	// MGARD via FRaZ.
	mgRes, mgFull, err := qualityAt(mustCompressor("mgard:abs"), buf, target, 0.1, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := addRow("MGARD (FRaZ)", mgFull, mgRes.Feasible); err != nil {
		return nil, err
	}

	tab.AddNote("common target ratio %.0f:1 (the largest the ZFP accuracy mode could express at this scale)", target)
	tab.AddNote("compare fixed-accuracy-derived rows against the fixed-rate row: the FRaZ rows should show higher PSNR/SSIM at the same ratio")
	return tab, nil
}

// pressioTuned pairs a full evaluation with its feasibility flag.
type pressioTuned struct {
	res      pressio.Result
	feasible bool
}

// zfpFixedRateSize is referenced by the ablation benchmarks to document the
// exact-size property of fixed-rate mode.
func zfpFixedRateSize(buf pressio.Buffer, rate float64) int {
	return zfp.CompressedSizeFixedRate(buf.Shape, rate)
}
