package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fraz"
	"fraz/internal/dataset"
	"fraz/internal/report"
)

// Portfolio compares the per-field codec race (fraz.CodecAuto, the policy a
// .frazd dataset archive applies by default) against sealing every field of
// one application snapshot with a single global codec — the workflow the
// paper's evaluation implies, where one codec is picked per application. The
// claim under test: heterogeneous snapshots have no single best codec, so a
// per-field portfolio matches or beats the best global choice at equal
// quality, and the winner set is genuinely mixed (>= 2 distinct codecs).
func Portfolio(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	fields := d.Fields
	if cfg.Quick {
		// A deliberately heterogeneous subset — sparse cloud water, its
		// log-scaled sibling, noisy precipitation, smooth pressure, and a
		// velocity component — so the race has structure to disagree about.
		want := map[string]bool{"CLOUDf": true, "QCLOUDf.log10": true, "PRECIPf": true, "Pf": true, "Uf": true}
		var subset []dataset.Field
		for _, f := range fields {
			if want[f.Name] {
				subset = append(subset, f)
			}
		}
		fields = subset
	}
	const targetPSNR = 50 // quality floor every policy must hit (max-error bands are infeasible on near-constant fields)

	type fieldData struct {
		name  string
		data  []float32
		shape []int
	}
	loaded := make([]fieldData, 0, len(fields))
	var rawBytes int64
	for _, f := range fields {
		data, shape, err := d.Generate(f.Name, 0)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, fieldData{name: f.Name, data: data, shape: shape})
		rawBytes += int64(len(data)) * 4
	}

	cache := fraz.NewEvalCache(0)
	opts := func(extra ...fraz.Option) []fraz.Option {
		return append([]fraz.Option{
			fraz.TargetPSNR(targetPSNR),
			fraz.Seed(cfg.Seed),
			fraz.Workers(cfg.Workers),
			fraz.SharedCache(cache),
			// Monolithic containers: the race then samples the whole field,
			// so each candidate's score is its exact full-field
			// ratio-at-quality rather than a block estimate. At these synthetic
			// scales that keeps the comparison about codec choice, not
			// sampling noise.
			fraz.Blocks(1),
		}, extra...)
	}
	sealAll := func(codec string) (packed int64, winners map[string]int, err error) {
		client, err := fraz.New(codec, opts()...)
		if err != nil {
			return 0, nil, err
		}
		winners = map[string]int{}
		for _, f := range loaded {
			var arc bytes.Buffer
			res, err := client.Compress(context.Background(), &arc, f.data, f.shape)
			if err != nil {
				return 0, nil, fmt.Errorf("%s on %s: %w", codec, f.name, err)
			}
			packed += res.BytesWritten
			winners[res.Codec]++
		}
		return packed, winners, nil
	}

	tab := report.NewTable(fmt.Sprintf("Portfolio: per-field auto vs one global codec (Hurricane snapshot, %d fields, PSNR >= %d)", len(loaded), targetPSNR),
		"policy", "fields", "distinct_codecs", "aggregate_ratio", "winners")

	autoPacked, autoWinners, err := sealAll(fraz.CodecAuto)
	if err != nil {
		return nil, fmt.Errorf("portfolio: auto policy: %w", err)
	}
	autoRatio := float64(rawBytes) / float64(autoPacked)
	tab.AddRow("auto", len(loaded), len(autoWinners), autoRatio, winnerSummary(autoWinners))

	bestSingle := 0.0
	bestName := ""
	for _, info := range fraz.Codecs() {
		rank := len(loaded[0].shape)
		if info.Lossless || !info.ErrorBounded || !info.SupportsRank(rank) || !info.SupportsDType("float32") {
			continue
		}
		packed, _, err := sealAll(info.Name)
		var inf *fraz.InfeasibleError
		if errors.As(err, &inf) {
			tab.AddRow(info.Name, 0, 1, 0.0, fmt.Sprintf("infeasible (closest ratio %.2f)", inf.ClosestRatio))
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("portfolio: %w", err)
		}
		ratio := float64(rawBytes) / float64(packed)
		tab.AddRow(info.Name, len(loaded), 1, ratio, info.Name)
		if ratio > bestSingle {
			bestSingle, bestName = ratio, info.Name
		}
	}

	tab.AddNote("aggregate_ratio = total raw bytes / total sealed payload bytes across the snapshot, every field within the same PSNR band")
	tab.AddNote("auto picked %d distinct codecs across %d fields; best single codec is %s at %.2f (auto: %.2f)",
		len(autoWinners), len(loaded), bestName, bestSingle, autoRatio)
	if len(autoWinners) < 2 {
		tab.AddNote("WARNING: expected the race to select >= 2 distinct codecs on this snapshot")
	}
	if autoRatio < bestSingle*0.999 {
		tab.AddNote("WARNING: expected the per-field portfolio to match or beat the best global codec")
	}
	return tab, nil
}

func winnerSummary(winners map[string]int) string {
	names := make([]string, 0, len(winners))
	for n := range winners {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s x%d", n, winners[n])
	}
	return strings.Join(parts, ", ")
}
