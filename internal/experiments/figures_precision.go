package experiments

import (
	"context"
	"fmt"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// Precision tunes the same synthetic fields at float32 and at float64 and
// reports the two precisions side by side: the tuned bound, the achieved
// ratio, the reconstruction PSNR at that bound, and the seal throughput.
// Double-precision inputs carry twice the raw bytes but also twice the
// incompressible mantissa noise, so the fixed-ratio search lands on a
// different bound — this table is the direct evidence that the dtype-generic
// pipeline tunes both widths rather than merely accepting them.
func Precision(cfg Config) (*report.Table, error) {
	type target struct {
		app, field string
	}
	targets := []target{
		{"Hurricane", "TCf"},
		{"CESM", "CLDHGH"},
		{"NYX", "baryon_density"},
	}
	if cfg.Quick {
		targets = targets[:2]
	}
	const ratio = 12.0

	tab := report.NewTable(
		fmt.Sprintf("Precision — same field tuned to ratio %.0f at float32 vs float64 (sz:abs)", ratio),
		"field", "dtype", "raw_MB", "tuned_bound", "achieved_ratio", "psnr_db", "max_err", "tune_ms", "seal_MBps", "feasible")

	comp := mustCompressor("sz:abs")
	for _, tg := range targets {
		d, err := dataset.New(tg.app, cfg.Scale)
		if err != nil {
			return nil, err
		}
		data32, shape, err := d.Generate(tg.field, 0)
		if err != nil {
			return nil, err
		}
		data64, _, err := d.Generate64(tg.field, 0)
		if err != nil {
			return nil, err
		}
		buf32, err := pressio.NewBufferOf(data32, shape)
		if err != nil {
			return nil, err
		}
		buf64, err := pressio.NewBufferOf(data64, shape)
		if err != nil {
			return nil, err
		}
		for _, buf := range []pressio.Buffer{buf32, buf64} {
			tu, err := core.NewTuner(comp, core.Config{
				TargetRatio: ratio,
				Seed:        cfg.Seed,
				Workers:     cfg.Workers,
				Regions:     6,
			})
			if err != nil {
				return nil, err
			}
			tuneStart := time.Now()
			res, err := tu.TuneBuffer(context.Background(), buf)
			if err != nil {
				return nil, fmt.Errorf("precision: tuning %s/%s %s: %w", tg.app, tg.field, buf.DType(), err)
			}
			tuneMS := float64(time.Since(tuneStart).Microseconds()) / 1e3

			full, err := pressio.Run(comp, buf, res.ErrorBound)
			if err != nil {
				return nil, fmt.Errorf("precision: evaluating %s/%s %s: %w", tg.app, tg.field, buf.DType(), err)
			}
			sealStart := time.Now()
			if _, err := pressio.Seal(comp, buf, res.ErrorBound); err != nil {
				return nil, err
			}
			sealMBps := float64(buf.Bytes()) / 1e6 / time.Since(sealStart).Seconds()

			tab.AddRow(
				fmt.Sprintf("%s/%s", tg.app, tg.field),
				buf.DType().String(),
				float64(buf.Bytes())/1e6,
				res.ErrorBound,
				res.AchievedRatio,
				full.Report.PSNR,
				full.Report.MaxError,
				tuneMS,
				sealMBps,
				res.Feasible,
			)
		}
	}
	tab.AddNote("float64 rows carry twice the raw bytes; the same fixed ratio therefore budgets twice the compressed bytes per value, which the search spends on a tighter bound (higher PSNR) where the field's structure allows it.")
	return tab, nil
}
