package experiments

import (
	"strings"
	"testing"
)

func TestCacheSavings(t *testing.T) {
	tab, err := CacheSavings(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
	totalHits := 0
	for _, row := range tab.Rows {
		evals := row[3].(int)
		hits := row[4].(int)
		misses := row[5].(int)
		if hits+misses != evals {
			t.Errorf("hits %d + compressor calls %d != evaluations %d in row %v", hits, misses, evals, row)
		}
		totalHits += hits
	}
	if totalHits == 0 {
		t.Errorf("cache experiment recorded no hits at all")
	}
	if !strings.Contains(tab.String(), "served from cache") {
		t.Errorf("table should note the total savings:\n%s", tab.String())
	}
}
