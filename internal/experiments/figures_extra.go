package experiments

import (
	"context"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// RegionAblation quantifies the design choices behind the paper's parallel
// orchestrator (Fig. 5, §V-C): how the number of overlapping error-bound
// regions and the overlap fraction affect the number of compressor calls on
// the critical path and the wall-clock tuning time.
func RegionAblation(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	type variant struct {
		regions int
		overlap float64
	}
	variants := []variant{
		{1, 0},
		{4, 0},
		{4, parallel10()},
		{12, 0},
		{12, parallel10()},
	}
	tab := report.NewTable("Region ablation: overlapping-region search (Hurricane CLOUDf, SZ, target 8:1)",
		"regions", "overlap_pct", "feasible", "total_calls", "winning_region_calls", "time_ms")
	for _, v := range variants {
		c := mustCompressor("sz:abs")
		tu, err := core.NewTuner(c, core.Config{
			TargetRatio:            8,
			Tolerance:              0.1,
			Regions:                v.regions,
			Overlap:                v.overlap,
			Seed:                   cfg.Seed,
			Workers:                cfg.Workers,
			MaxIterationsPerRegion: 24,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := tu.TuneBuffer(context.Background(), buf)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		winning := res.Iterations
		for _, rr := range res.Regions {
			if rr.Acceptable && rr.Iterations > 0 && rr.Iterations < winning {
				winning = rr.Iterations
			}
		}
		tab.AddRow(v.regions, v.overlap*100, res.Feasible, res.Iterations, winning,
			float64(elapsed.Microseconds())/1000)
	}
	tab.AddNote("splitting the range shortens the winning region's serial path; overlap protects targets near region borders (paper Fig. 5)")
	return tab, nil
}

// parallel10 returns the default 10% overlap without importing the parallel
// package here just for one constant.
func parallel10() float64 { return 0.10 }

// LosslessMotivation reproduces the paper's motivating claim (§I): lossless
// compressors cannot meaningfully reduce scientific floating-point data
// because of the high-entropy mantissas, while error-bounded lossy
// compression at a modest relative bound reaches order-of-magnitude ratios
// on the same fields.
func LosslessMotivation(cfg Config) (*report.Table, error) {
	fields := []struct{ app, field string }{
		{"Hurricane", "TCf"},
		{"CESM", "CLDHGH"},
		{"NYX", "temperature"},
		{"HACC", "x"},
		{"EXAALT", "x"},
	}
	lossless := mustCompressor("flate:lossless")
	lossy := mustCompressor("sz:abs")
	tab := report.NewTable("Motivation: lossless vs error-bounded lossy compression (relative bound 1e-3)",
		"dataset", "field", "lossless_ratio", "lossy_ratio", "lossy_max_error")
	for _, f := range fields {
		d, err := dataset.New(f.app, cfg.Scale)
		if err != nil {
			return nil, err
		}
		buf, err := fieldBuffer(d, f.field, 0)
		if err != nil {
			return nil, err
		}
		losslessRatio, _, err := pressio.Ratio(lossless, buf, 1)
		if err != nil {
			return nil, err
		}
		vr := buf.ValueRange()
		if vr <= 0 {
			vr = 1
		}
		res, err := pressio.Run(lossy, buf, vr*1e-3)
		if err != nil {
			return nil, err
		}
		tab.AddRow(f.app, f.field, losslessRatio, res.Report.CompressionRatio, res.Report.MaxError)
	}
	tab.AddNote("lossless DEFLATE stands in for Gzip/Zstd; SZ runs at a 10^-3 value-range-relative bound")
	return tab, nil
}
