package experiments

import (
	"fmt"
	"time"

	"fraz/internal/container"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// Speed compares the codec tiers' raw seal/open throughput at the paper's
// 10^-3 relative operating point: the prediction-and-entropy-coding tier
// (sz:abs), the transform tier (zfp:accuracy), and the SZx-style ultra-fast
// tier (szx:abs), at both element widths. It is the table behind the "when
// does szx pay" guidance in the README: szx trades ~5-8x worse ratio for
// 1-2 orders of magnitude more throughput, which is the right trade exactly
// when the pipeline is ingest-bound rather than capacity-bound (cf. SZx,
// Yu et al., and the FZ-GPU/cuSZp line of work).
func Speed(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	data32, shape, err := d.Generate("CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	buf32, err := pressio.NewBuffer(data32, shape)
	if err != nil {
		return nil, err
	}
	data64, _, err := d.Generate64("CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	buf64, err := pressio.NewBufferOf(data64, shape)
	if err != nil {
		return nil, err
	}

	codecs := []string{"szx:abs", "sz:abs", "zfp:accuracy"}
	reps := 5
	if cfg.Quick {
		reps = 2
	}

	tab := report.NewTable("Codec tier throughput at the 1e-3 relative bound (Hurricane/CLOUDf)",
		"codec", "dtype", "seal_MBps", "open_MBps", "ratio", "seal_speedup_vs_sz")

	type row struct {
		codec, dtype       string
		sealMBps, openMBps float64
		ratio              float64
	}
	var rows []row
	for _, dc := range []struct {
		name string
		buf  pressio.Buffer
	}{{"float32", buf32}, {"float64", buf64}} {
		for _, name := range codecs {
			comp := mustCompressor(name)
			bound := dc.buf.ValueRange() * 1e-3
			mb := float64(dc.buf.Bytes()) / 1e6

			var sealT, openT time.Duration
			var ratio float64
			for i := 0; i < reps; i++ {
				s, o, r, err := timeSealOpen(1, func() (container.Container, error) {
					return pressio.Seal(comp, dc.buf, bound)
				})
				if err != nil {
					return nil, fmt.Errorf("speed %s/%s: %w", name, dc.name, err)
				}
				sealT += s
				openT += o
				ratio = r
			}
			rows = append(rows, row{
				codec: name, dtype: dc.name,
				sealMBps: mbps(mb*float64(reps), sealT),
				openMBps: mbps(mb*float64(reps), openT),
				ratio:    ratio,
			})
		}
	}

	szSeal := map[string]float64{}
	for _, r := range rows {
		if r.codec == "sz:abs" {
			szSeal[r.dtype] = r.sealMBps
		}
	}
	for _, r := range rows {
		speedup := 0.0
		if s := szSeal[r.dtype]; s > 0 {
			speedup = round2(r.sealMBps / s)
		}
		tab.AddRow(r.codec, r.dtype, r.sealMBps, r.openMBps, round2(r.ratio), speedup)
	}
	tab.AddNote("each cell averages %d monolithic seal/open repetitions at bound = 1e-3 x value range", reps)
	tab.AddNote("szx trades compression ratio for throughput; see cmd/frazperf for the gated full matrix")
	return tab, nil
}
