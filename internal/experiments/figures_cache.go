package experiments

import (
	"context"
	"fmt"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/report"
)

// CacheSavings charts what the shared evaluation cache saves per field: it
// tunes a short time series of several Hurricane fields at an easy and a
// hard target ratio and reports, for each, how many compressor evaluations
// were served from the cache instead of being recompressed. Hard (barely
// reachable or infeasible) targets burn the full region iteration budget —
// the paper's worst case for tuning time (Fig. 7) — and are exactly where
// the overlapping region searches revisit each other's bounds, so the
// savings concentrate where the runtime hurts most.
func CacheSavings(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	fields := []string{"CLOUDf", "TCf", "Pf"}
	if cfg.Quick {
		fields = fields[:2]
	}
	targets := []float64{10, 60}
	steps := cfg.timeSteps(4)

	tab := report.NewTable("Evaluation cache: compressor calls saved per field (Hurricane, SZ)",
		"field", "target_ratio", "steps", "evaluations", "cache_hits", "compressor_calls", "saved_pct")
	var totalHits, totalMisses int
	for _, field := range fields {
		for _, target := range targets {
			tu, err := core.NewTuner(mustCompressor("sz:abs"), core.Config{
				TargetRatio:            target,
				Tolerance:              0.1,
				Seed:                   cfg.Seed,
				Workers:                cfg.Workers,
				Regions:                6,
				MaxIterationsPerRegion: 12,
			})
			if err != nil {
				return nil, err
			}
			res, err := tu.TuneSeries(context.Background(), series(d, field, steps))
			if err != nil {
				return nil, err
			}
			totalHits += res.CacheHits
			totalMisses += res.CacheMisses
			tab.AddRow(fmt.Sprintf("%s/%s", d.Name, field), target, steps,
				res.TotalIterations, res.CacheHits, res.CacheMisses,
				report.SavingsPercent(res.CacheHits, res.CacheMisses))
		}
	}
	tab.AddNote("total: %s", report.Savings(totalHits, totalMisses))
	tab.AddNote("each cache hit is one compressor invocation Algorithm 2's overlapping region searches did not repeat")
	return tab, nil
}
