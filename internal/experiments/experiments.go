// Package experiments regenerates every evaluation table and figure of the
// paper on the synthetic SDRBench stand-ins. Each exported function
// corresponds to one figure or table (see DESIGN.md's per-experiment index)
// and returns a report.Table whose rows are the same series the paper plots:
// the absolute numbers differ — the substrate is a pure-Go reimplementation
// on synthetic data rather than the authors' Bebop testbed — but the shapes
// (who wins, where ratios saturate, where convergence fails) are the point.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/grid"
	"fraz/internal/metrics"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// Config controls the scale and thoroughness of the experiment runs.
type Config struct {
	// Scale selects the synthetic dataset resolution.
	Scale dataset.Scale
	// Seed makes every run deterministic.
	Seed int64
	// Workers bounds concurrency inside FRaZ.
	Workers int
	// MaxTimeSteps caps the number of time-steps used by the series
	// experiments (0 = the dataset's full count).
	MaxTimeSteps int
	// Quick trims parameter sweeps so the whole suite finishes in seconds;
	// it is what the unit tests and the default bench configuration use.
	Quick bool
}

// DefaultConfig returns the configuration used by the benchmarks: small
// scale, trimmed sweeps, deterministic seed.
func DefaultConfig() Config {
	return Config{Scale: dataset.ScaleTiny, Seed: 42, Quick: true, MaxTimeSteps: 12}
}

func (c Config) timeSteps(datasetSteps int) int {
	if c.MaxTimeSteps > 0 && c.MaxTimeSteps < datasetSteps {
		return c.MaxTimeSteps
	}
	return datasetSteps
}

// fieldBuffer generates one field/time-step as a pressio.Buffer.
func fieldBuffer(d dataset.Dataset, field string, step int) (pressio.Buffer, error) {
	data, shape, err := d.Generate(field, step)
	if err != nil {
		return pressio.Buffer{}, err
	}
	return pressio.NewBuffer(data, shape)
}

// series builds a core.Series backed by the dataset generator.
func series(d dataset.Dataset, field string, steps int) core.Series {
	return core.Series{
		Field: fmt.Sprintf("%s/%s", d.Name, field),
		Steps: steps,
		At: func(i int) (pressio.Buffer, error) {
			return fieldBuffer(d, field, i)
		},
	}
}

// timedCompressor wraps a pressio.Compressor and accumulates the wall-clock
// time spent inside Compress calls, which is how the harness separates
// "compression time" from total tuning time for Fig. 7.
type timedCompressor struct {
	pressio.Compressor
	mu      sync.Mutex
	elapsed time.Duration
	calls   int
}

func newTimedCompressor(c pressio.Compressor) *timedCompressor {
	return &timedCompressor{Compressor: c}
}

func (t *timedCompressor) Compress(buf pressio.Buffer, bound float64) ([]byte, error) {
	start := time.Now()
	out, err := t.Compressor.Compress(buf, bound)
	d := time.Since(start)
	t.mu.Lock()
	t.elapsed += d
	t.calls++
	t.mu.Unlock()
	return out, err
}

// CompressionTime reports the cumulative time spent compressing.
func (t *timedCompressor) CompressionTime() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.elapsed
}

// Calls reports the number of Compress invocations.
func (t *timedCompressor) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// mustCompressor resolves a registered compressor or panics; experiment code
// only references the compressors registered by the pressio package itself.
func mustCompressor(name string) pressio.Compressor {
	c, err := pressio.New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// tuneOnce runs FRaZ on a single buffer for one target ratio.
func tuneOnce(c pressio.Compressor, buf pressio.Buffer, target, tolerance float64, seed int64, workers int) (core.Result, error) {
	tu, err := core.NewTuner(c, core.Config{
		TargetRatio: target,
		Tolerance:   tolerance,
		Seed:        seed,
		Workers:     workers,
		Regions:     6,
	})
	if err != nil {
		return core.Result{}, err
	}
	return tu.TuneBuffer(context.Background(), buf)
}

// qualityAt runs FRaZ to reach the target ratio with an error-bounded
// compressor and then evaluates the decompressed quality at the recommended
// bound, returning the full pressio result alongside the tuning result.
func qualityAt(c pressio.Compressor, buf pressio.Buffer, target, tolerance float64, seed int64, workers int) (core.Result, pressio.Result, error) {
	tuned, err := tuneOnce(c, buf, target, tolerance, seed, workers)
	if err != nil {
		return core.Result{}, pressio.Result{}, err
	}
	full, err := pressio.Run(c, buf, tuned.ErrorBound)
	if err != nil {
		return tuned, pressio.Result{}, err
	}
	return tuned, full, nil
}

// sliceSSIM computes the SSIM of the middle 2-D slice of original versus
// reconstruction, matching the slice-based visual comparison in Fig. 10.
func sliceSSIM(original, reconstructed []float32, shape grid.Dims) (float64, error) {
	plane := 0
	if shape.NDims() == 3 {
		plane = shape[0] / 2
	}
	origSlice, sliceShape, err := grid.Slice2D(original, shape, plane)
	if err != nil {
		return 0, err
	}
	recSlice, _, err := grid.Slice2D(reconstructed, shape, plane)
	if err != nil {
		return 0, err
	}
	return metrics.SSIM(origSlice, recSlice, sliceShape)
}

// Run executes the named experiment. It is the dispatcher used by the
// frazbench command; names follow the paper's figure/table numbering.
func Run(name string, cfg Config) ([]*report.Table, error) {
	switch name {
	case "fig1":
		t, err := Figure1(cfg)
		return wrap(t, err)
	case "fig3":
		t, err := Figure3(cfg)
		return wrap(t, err)
	case "fig4":
		t, err := Figure4(cfg)
		return wrap(t, err)
	case "fig6":
		t, err := Figure6(cfg)
		return wrap(t, err)
	case "fig7":
		t, err := Figure7(cfg)
		return wrap(t, err)
	case "fig8":
		t, err := Figure8(cfg)
		return wrap(t, err)
	case "fig9":
		return Figure9(cfg)
	case "fig10":
		t, err := Figure10(cfg)
		return wrap(t, err)
	case "table3":
		t, err := TableIII(cfg)
		return wrap(t, err)
	case "iters":
		t, err := IterationComparison(cfg)
		return wrap(t, err)
	case "direct":
		t, err := Direct(cfg)
		return wrap(t, err)
	case "regions":
		t, err := RegionAblation(cfg)
		return wrap(t, err)
	case "lossless":
		t, err := LosslessMotivation(cfg)
		return wrap(t, err)
	case "cache":
		t, err := CacheSavings(cfg)
		return wrap(t, err)
	case "blocks":
		t, err := BlockedThroughput(cfg)
		return wrap(t, err)
	case "objectives":
		t, err := Objectives(cfg)
		return wrap(t, err)
	case "precision":
		t, err := Precision(cfg)
		return wrap(t, err)
	case "speed":
		t, err := Speed(cfg)
		return wrap(t, err)
	case "portfolio":
		t, err := Portfolio(cfg)
		return wrap(t, err)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
}

func wrap(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

// Names lists the available experiment identifiers. The fig*/table* entries
// correspond to the paper's evaluation; "iters", "regions", and "lossless"
// back specific claims made in its text (§V-B1, §V-C/Fig. 5, and §I),
// "direct" contrasts the zero-evaluation frsz fast path with the search
// codecs on fixed-ratio objectives,
// "cache" charts the evaluations saved by the shared evaluation cache,
// "blocks" measures the blocked (v2) seal/open path against the monolithic
// one, "objectives" compares convergence cost across the four tuning
// objectives (ratio, PSNR, SSIM, max-error), "precision" tunes the same
// fields at float32 versus float64, "speed" compares the codec tiers'
// raw seal/open throughput (szx versus sz and zfp), and "portfolio" pits the
// per-field codec race (fraz.CodecAuto) against each single global codec on
// one multi-field snapshot.
func Names() []string {
	return []string{"fig1", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "table3", "iters", "direct", "regions", "lossless", "cache", "blocks", "objectives", "precision", "speed", "portfolio"}
}
