package experiments

import (
	"context"
	"fmt"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/report"
)

// Objectives compares the unified tuner across its four objectives on one
// representative field: how many compressor evaluations each target costs to
// converge, what it achieves, and what fraction of evaluations the shared
// cache absorbed. It substantiates the framework's answer to the paper's
// §VII future work — one search loop, many acceptance criteria — and makes
// the cost asymmetry visible: quality objectives pay a compress+decompress
// round trip per evaluation where the ratio objective pays a compression.
func Objectives(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "TCf", 0)
	if err != nil {
		return nil, err
	}
	vr := buf.ValueRange()

	objectives := []core.Objective{
		core.FixedRatio(10),
		core.FixedPSNR(60),
		core.FixedSSIM(0.9),
		core.FixedMaxError(0.02 * vr),
	}
	codecs := []string{"sz:abs", "zfp:accuracy"}
	if cfg.Quick {
		codecs = codecs[:1]
	}

	tab := report.NewTable("Objectives: convergence cost across tuning targets (Hurricane TCf)",
		"codec", "objective", "target", "achieved", "achieved_ratio", "iterations", "cache_hits", "feasible", "ms")
	for _, name := range codecs {
		for _, obj := range objectives {
			tu, err := core.NewTuner(mustCompressor(name), core.Config{
				Objective:              obj,
				Regions:                6,
				MaxIterationsPerRegion: 12,
				Seed:                   cfg.Seed,
				Workers:                cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			res, err := tu.TuneBuffer(context.Background(), buf)
			if err != nil {
				return nil, fmt.Errorf("objectives: %s/%s: %w", name, obj.Name, err)
			}
			tab.AddRow(name, res.Objective, res.Target, res.AchievedValue, res.AchievedRatio,
				res.Iterations, res.CacheHits, res.Feasible, res.Elapsed.Milliseconds())
		}
	}
	tab.AddNote("every objective runs the same region-parallel MaxLIPO search; only the measured quantity differs")
	tab.AddNote("quality objectives (psnr/ssim/max-error) round-trip each evaluation, so their iterations cost more wall-clock than ratio iterations")
	return tab, nil
}
