package experiments

import (
	"context"
	"fmt"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/optim"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// Figure3 reproduces the paper's Fig. 3: the relationship between SZ's
// absolute error bound and the achieved compression ratio on the hurricane
// QCLOUDf.log10 field, which is not monotonic — the motivation for using a
// global optimizer instead of bisection.
func Figure3(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "QCLOUDf.log10", 20)
	if err != nil {
		return nil, err
	}
	c := mustCompressor("sz:abs")
	points := 60
	if cfg.Quick {
		points = 30
	}
	vr := buf.ValueRange()
	evals := optim.GridSearch(func(e float64) float64 {
		ratio, _, err := pressio.Ratio(c, buf, e)
		if err != nil {
			return 0
		}
		return ratio
	}, vr*1e-4, vr*0.02, points)

	tab := report.NewTable("Figure 3: SZ compression ratio vs error bound (Hurricane QCLOUDf.log10)",
		"error_bound", "compression_ratio")
	nonMonotone := 0
	for i, ev := range evals {
		tab.AddRow(ev.X, ev.F)
		if i > 0 && ev.F < evals[i-1].F {
			nonMonotone++
		}
	}
	tab.AddNote("ratio decreases while the bound increases at %d of %d consecutive sample pairs (non-monotonic, as in the paper)", nonMonotone, len(evals)-1)
	return tab, nil
}

// Figure4 reproduces the paper's Fig. 4: the ratio-versus-bound curve of a
// step-like compressor (ZFP accuracy mode) on the left, and the clamped
// quadratic loss FRaZ actually minimises on the right, with the acceptance
// region marked.
func Figure4(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	c := mustCompressor("zfp:accuracy")
	target := 12.0
	tolerance := 0.1
	points := 40
	if cfg.Quick {
		points = 24
	}
	vr := buf.ValueRange()
	if vr <= 0 {
		vr = 1
	}
	evals := optim.LogGridSearch(func(e float64) float64 {
		ratio, _, err := pressio.Ratio(c, buf, e)
		if err != nil {
			return 0
		}
		return ratio
	}, vr*1e-7, vr*0.5, points)

	tab := report.NewTable("Figure 4: ratio curve and FRaZ loss (ZFP accuracy, Hurricane CLOUDf)",
		"error_bound", "compression_ratio", "loss", "in_acceptance_region")
	feasiblePoints := 0
	for _, ev := range evals {
		loss := core.Loss(ev.F, target, core.Gamma)
		in := core.InBand(ev.F, target, tolerance)
		if in {
			feasiblePoints++
		}
		tab.AddRow(ev.X, ev.F, loss, in)
	}
	tab.AddNote("target ratio %.0f, tolerance %.0f%%: %d of %d sampled bounds fall in the acceptance region", target, tolerance*100, feasiblePoints, len(evals))
	return tab, nil
}

// Figure6 reproduces the paper's Fig. 6: per-time-step convergence of FRaZ
// on the Hurricane CLOUDf field for a feasible target (the paper's good
// case, ρt=8) and a mostly infeasible one (the bad case, ρt=15), including
// how often the reused bound had to be retrained (§V-C).
func Figure6(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	steps := cfg.timeSteps(d.TimeSteps)
	c := mustCompressor("sz:abs")

	run := func(target float64) (core.SeriesResult, error) {
		tu, err := core.NewTuner(c, core.Config{
			TargetRatio: target,
			Tolerance:   0.1,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
			Regions:     6,
		})
		if err != nil {
			return core.SeriesResult{}, err
		}
		return tu.TuneSeries(context.Background(), series(d, "CLOUDf", steps))
	}

	// The paper's good case is a comfortably feasible target and its bad
	// case a target outside the compressor's reachable ratio range for most
	// time-steps. At the reduced synthetic scale SZ's effective minimum
	// ratio on this field is around 7.5 (see Fig. 7), so the bad case uses a
	// target below that floor rather than the paper's 15.
	goodTarget, badTarget := 8.0, 3.0
	good, err := run(goodTarget)
	if err != nil {
		return nil, err
	}
	bad, err := run(badTarget)
	if err != nil {
		return nil, err
	}

	tab := report.NewTable("Figure 6: per-time-step convergence (Hurricane CLOUDf, SZ)",
		"time_step", "ratio@target=8", "converged@8", "ratio@target=3", "converged@3")
	for i := 0; i < steps; i++ {
		tab.AddRow(i,
			good.Steps[i].Result.AchievedRatio, good.Steps[i].Result.Feasible,
			bad.Steps[i].Result.AchievedRatio, bad.Steps[i].Result.Feasible)
	}
	tab.AddNote("target %.0f: %d/%d steps converged, %d retrains", goodTarget, good.ConvergedSteps, steps, good.Retrains)
	tab.AddNote("target %.0f: %d/%d steps converged, %d retrains", badTarget, bad.ConvergedSteps, steps, bad.Retrains)
	return tab, nil
}

// Figure7 reproduces the paper's Fig. 7: sensitivity of FRaZ's runtime to
// the requested target ratio. Infeasible targets (below the compressor's
// effective minimum ratio or beyond its maximum) burn the full iteration
// budget, while feasible targets converge quickly.
func Figure7(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	steps := cfg.timeSteps(6)
	targets := []float64{2, 4, 6, 8, 10, 12, 15, 18, 22, 26, 29}
	if cfg.Quick {
		targets = []float64{2, 5, 8, 12, 18, 26}
	}

	tab := report.NewTable("Figure 7: sensitivity to the target compression ratio (Hurricane CLOUDf, SZ)",
		"target_ratio", "total_time_ms", "compressor_cpu_ms", "iterations", "converged_steps")
	for _, target := range targets {
		timed := newTimedCompressor(mustCompressor("sz:abs"))
		tu, err := core.NewTuner(timed, core.Config{
			TargetRatio: target,
			Tolerance:   0.1,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
			Regions:     6,
			// A tight per-region budget keeps the infeasible cases bounded,
			// playing the role of the paper's iteration cap.
			MaxIterationsPerRegion: 12,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := tu.TuneSeries(context.Background(), series(d, "CLOUDf", steps))
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		tab.AddRow(target,
			float64(total.Microseconds())/1000,
			float64(timed.CompressionTime().Microseconds())/1000,
			res.TotalIterations,
			fmt.Sprintf("%d/%d", res.ConvergedSteps, steps))
	}
	tab.AddNote("low targets sit below SZ's effective minimum ratio and exhaust the iteration budget, as in the paper")
	tab.AddNote("compressor_cpu_ms sums time spent inside the compressor across all parallel region workers, so it can exceed the wall-clock total")
	return tab, nil
}

// Figure8 reproduces the paper's Fig. 8: strong scaling of the tuning job
// (fields x time-steps x regions) as the worker count grows, for SZ and ZFP.
// The runtime is lower-bounded by the longest-running field, which the table
// reports as the critical path.
func Figure8(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	steps := cfg.timeSteps(4)
	fields := []string{"CLOUDf", "QCLOUDf", "TCf", "Pf", "Uf", "Vf"}
	if cfg.Quick {
		fields = fields[:4]
	}
	workerCounts := []int{1, 2, 4, 8}
	compressors := []string{"sz:abs", "zfp:accuracy"}

	tab := report.NewTable("Figure 8: strong scaling of the tuning job (Hurricane)",
		"compressor", "workers", "runtime_ms", "critical_path_ms", "speedup_vs_1")
	for _, name := range compressors {
		var baseline float64
		for _, workers := range workerCounts {
			c := mustCompressor(name)
			tu, err := core.NewTuner(c, core.Config{
				TargetRatio:            8,
				Tolerance:              0.15,
				Seed:                   cfg.Seed,
				Workers:                workers,
				Regions:                4,
				MaxIterationsPerRegion: 10,
			})
			if err != nil {
				return nil, err
			}
			sers := make([]core.Series, len(fields))
			for i, f := range fields {
				sers[i] = series(d, f, steps)
			}
			start := time.Now()
			results, err := tu.TuneFields(context.Background(), sers)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			var critical time.Duration
			for _, r := range results {
				if r.Elapsed > critical {
					critical = r.Elapsed
				}
			}
			ms := float64(elapsed.Microseconds()) / 1000
			if workers == 1 {
				baseline = ms
			}
			speedup := 0.0
			if ms > 0 {
				speedup = baseline / ms
			}
			tab.AddRow(name, workers, ms, float64(critical.Microseconds())/1000, speedup)
		}
	}
	tab.AddNote("runtime is lower-bounded by the longest field's tuning time (the critical path), as discussed for Fig. 8 in the paper")
	return tab, nil
}

// IterationComparison reproduces the §V-B1 claim that FRaZ's global
// optimizer reaches the target ratio in fewer compressor invocations than a
// binary search over the error bound, especially when the ratio curve is not
// monotonic. It reports, per field, the calls made by the winning region
// (the serial critical path), the aggregate calls across all parallel
// regions, and the binary-search baseline on the full range.
func IterationComparison(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	step := cfg.timeSteps(d.TimeSteps) - 1
	fields := []string{"CLOUDf", "QCLOUDf.log10"}
	target := 8.0
	tolerance := 0.1

	tab := report.NewTable("Iteration comparison: FRaZ vs binary search (Hurricane, SZ, target 8:1)",
		"field", "method", "compressor_calls", "achieved_ratio", "converged")
	for _, field := range fields {
		buf, err := fieldBuffer(d, field, step)
		if err != nil {
			return nil, err
		}
		c := mustCompressor("sz:abs")
		frazRes, err := tuneOnce(c, buf, target, tolerance, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		// The winning region's iteration count is the serial critical path a
		// single MPI rank would have executed.
		winning := frazRes.Iterations
		for _, rr := range frazRes.Regions {
			if rr.Acceptable && rr.Iterations > 0 && rr.Iterations < winning {
				winning = rr.Iterations
			}
		}
		tab.AddRow(field, "FRaZ (winning region)", winning, frazRes.AchievedRatio, frazRes.Feasible)
		tab.AddRow(field, "FRaZ (all regions, parallel)", frazRes.Iterations, frazRes.AchievedRatio, frazRes.Feasible)

		// Binary search baseline over the same full range, assuming
		// (incorrectly in general) that the ratio rises monotonically.
		vr := buf.ValueRange()
		if vr <= 0 {
			vr = 1
		}
		calls := 0
		binRes, err := optim.BinarySearch(func(e float64) float64 {
			calls++
			ratio, _, err := pressio.Ratio(c, buf, e)
			if err != nil {
				return 0
			}
			return ratio
		}, target, tolerance*target, vr*1e-9, vr, 64)
		if err != nil {
			return nil, err
		}
		tab.AddRow(field, "binary search", calls, binRes.Value, binRes.Converged)
	}
	tab.AddNote("the winning-region count is the serial path a single worker executes; the parallel total includes the regions cancelled by early termination")
	return tab, nil
}

// Direct backs the frsz direct-satisfaction claim: for a fixed-ratio
// objective a rate-capable codec inverts the target ratio into a whole-bit
// bits-per-value setting arithmetically and seals with zero search
// evaluations, while error-bounded codecs pay the multi-region search for the
// same objective. The table reports the tuning cost side by side.
func Direct(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	codecs := []string{"sz:abs", "zfp:accuracy", "frsz:rate"}
	targets := []float64{4, 8}
	if cfg.Quick {
		targets = []float64{8}
	}

	tab := report.NewTable("Direct satisfaction: tuning cost for fixed-ratio objectives (Hurricane CLOUDf)",
		"compressor", "target_ratio", "evaluations", "tune_ms", "direct", "achieved_ratio", "converged")
	for _, name := range codecs {
		for _, target := range targets {
			c := mustCompressor(name)
			start := time.Now()
			res, err := tuneOnce(c, buf, target, 0.1, cfg.Seed, cfg.Workers)
			if err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			tab.AddRow(name, target, res.Iterations, ms, res.Direct, res.AchievedRatio, res.Feasible)
		}
	}
	tab.AddNote("frsz:rate computes bits-per-value = width/target and seals directly; sz and zfp search the error-bound axis, and infeasible targets burn the full iteration budget")
	return tab, nil
}

// TableIII reproduces the paper's Table III: the dataset inventory, with the
// synthetic (scaled-down) sizes of this reproduction alongside the original
// SDRBench sizes for reference.
func TableIII(cfg Config) (*report.Table, error) {
	originalSizes := map[string]string{
		"Hurricane": "59 GB",
		"HACC":      "11 GB",
		"CESM":      "48 GB",
		"EXAALT":    "1.1 GB",
		"NYX":       "35 GB",
	}
	tab := report.NewTable("Table III: dataset descriptions (synthetic stand-ins)",
		"name", "domain", "time_steps", "dims", "fields", "synthetic_size_MB", "paper_size")
	for _, d := range dataset.All(cfg.Scale) {
		tab.AddRow(d.Name, d.Domain, d.TimeSteps, d.Fields[0].Shape.NDims(), len(d.Fields),
			float64(d.TotalBytes())/1e6, originalSizes[d.Name])
	}
	tab.AddNote("grid resolutions are scaled down (scale=%s); dimensionality, field counts, and time-step counts follow the paper", cfg.Scale)
	return tab, nil
}
