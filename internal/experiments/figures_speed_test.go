package experiments

import "testing"

func TestSpeed(t *testing.T) {
	tab, err := Speed(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 rows (3 codecs x 2 dtypes), got %d", len(tab.Rows))
	}
	// The szx tier must out-run sz by a wide margin at both widths; the
	// speedup column is cell index 5.
	found := 0
	for _, r := range tab.Rows {
		if r[0] == "szx:abs" {
			found++
			sp, ok := r[5].(float64)
			if !ok || sp < 3 {
				t.Errorf("szx:abs %v: seal speedup vs sz:abs %v, want >= 3x", r[1], r[5])
			}
		}
	}
	if found != 2 {
		t.Fatalf("want szx:abs rows at both dtypes, found %d", found)
	}
}

func BenchmarkSpeedExperiment(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Speed(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
