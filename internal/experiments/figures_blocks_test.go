package experiments

import (
	"strings"
	"testing"
)

func TestBlockedThroughput(t *testing.T) {
	tab, err := BlockedThroughput(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One monolithic baseline row plus one per quick-mode worker count.
	checkTable(t, tab, 3)
	if tab.Rows[0][0] != "monolithic" {
		t.Errorf("first row should be the monolithic baseline, got %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:] {
		if row[0] != "blocked" {
			t.Errorf("expected blocked row, got %v", row)
		}
		blocksN := row[1].(int)
		workers := row[2].(int)
		if blocksN != 2*workers {
			t.Errorf("row %v: blocks %d != 2x workers %d", row, blocksN, workers)
		}
		if ratio := row[7].(float64); ratio <= 1 {
			t.Errorf("row %v: implausible compression ratio %v", row, ratio)
		}
	}
	if !strings.Contains(tab.String(), "seal_speedup") {
		t.Errorf("table should carry the speedup column:\n%s", tab.String())
	}
}
