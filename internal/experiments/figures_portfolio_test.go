package experiments

import (
	"strings"
	"testing"
)

func TestPortfolio(t *testing.T) {
	tab, err := Portfolio(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3) // auto + at least two global codecs
	if tab.Rows[0][0] != "auto" {
		t.Fatalf("first row is %v, want the auto policy", tab.Rows[0])
	}
	// The acceptance criteria of the portfolio claim: the race picks a
	// genuinely mixed winner set and matches or beats the best single codec.
	// The experiment itself flags violations as WARNING notes, so the test
	// only needs to assert their absence.
	out := tab.String()
	if strings.Contains(out, "WARNING") {
		t.Errorf("portfolio table carries a WARNING note:\n%s", out)
	}
}
