package experiments

import (
	"context"
	"fmt"
	"time"

	"fraz/internal/container"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

// BlockedThroughput measures what the blocked (format v2) seal/open path
// buys over the monolithic one: it compresses a synthetic Hurricane field at
// a fixed error bound monolithically and then block-parallel at several
// worker counts, reporting wall-clock seal/open time, throughput, and the
// speedup over the monolithic baseline. The block decomposition is the same
// structure SZx's fixed-size block pipeline and FZ-GPU's block-parallel
// kernels exploit; on a single-core host the speedup column degenerates to
// ~1x and the table instead shows the (small) cost of blocking.
func BlockedThroughput(cfg Config) (*report.Table, error) {
	d, err := dataset.New("Hurricane", cfg.Scale)
	if err != nil {
		return nil, err
	}
	buf, err := fieldBuffer(d, "CLOUDf", 0)
	if err != nil {
		return nil, err
	}
	comp := mustCompressor("sz:abs")
	// A 10^-3 relative bound is the paper's typical operating point.
	bound := buf.ValueRange() * 1e-3

	workerCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		workerCounts = []int{1, 4}
	}

	tab := report.NewTable("Blocked seal/open throughput vs monolithic (Hurricane/CLOUDf, sz:abs)",
		"mode", "blocks", "workers", "seal_ms", "seal_MBps", "seal_speedup", "open_ms", "ratio")
	mb := float64(buf.Bytes()) / 1e6

	sealMono, openMono, ratioMono, err := timeSealOpen(1, func() (container.Container, error) {
		return pressio.Seal(comp, buf, bound)
	})
	if err != nil {
		return nil, err
	}
	tab.AddRow("monolithic", 1, 1, ms(sealMono), mbps(mb, sealMono), 1.0, ms(openMono), round2(ratioMono))

	for _, workers := range workerCounts {
		workers := workers
		blocksN := 2 * workers
		sealB, openB, ratioB, err := timeSealOpen(workers, func() (container.Container, error) {
			return pressio.SealBlocked(context.Background(), comp, buf, bound, blocksN, workers)
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow("blocked", blocksN, workers, ms(sealB), mbps(mb, sealB),
			round2(float64(sealMono)/float64(sealB)), ms(openB), round2(ratioB))
	}
	tab.AddNote("fixed bound %.3g; blocked rows tile the slowest axis with 2 blocks per worker", bound)
	tab.AddNote("seal_speedup is monolithic seal time over blocked seal time at that worker count")
	return tab, nil
}

// timeSealOpen seals via the given function, times it, then times opening
// the resulting container with the same worker count the seal used, so the
// row's open_ms reflects the advertised parallelism rather than whatever
// GOMAXPROCS happens to be.
func timeSealOpen(workers int, seal func() (container.Container, error)) (sealT, openT time.Duration, ratio float64, err error) {
	start := time.Now()
	cn, err := seal()
	sealT = time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	start = time.Now()
	if _, err := pressio.OpenBlocked(context.Background(), cn, workers); err != nil {
		return 0, 0, 0, fmt.Errorf("open after seal: %w", err)
	}
	return sealT, time.Since(start), cn.Header.Ratio, nil
}

func ms(d time.Duration) float64 { return round2(float64(d.Nanoseconds()) / 1e6) }

func mbps(mb float64, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return round2(mb / s)
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
