package experiments

import (
	"strings"
	"testing"

	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxTimeSteps = 4
	cfg.Workers = 2
	return cfg
}

func checkTable(t *testing.T, tab *report.Table, minRows int) {
	t.Helper()
	if tab == nil {
		t.Fatalf("nil table")
	}
	if len(tab.Rows) < minRows {
		t.Fatalf("table %q has %d rows, want at least %d", tab.Title, len(tab.Rows), minRows)
	}
	out := tab.String()
	if !strings.Contains(out, tab.Columns[0]) {
		t.Errorf("rendered table missing header: %s", out)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.Quick || cfg.Scale != dataset.ScaleTiny {
		t.Errorf("unexpected default config %+v", cfg)
	}
	if cfg.timeSteps(100) != cfg.MaxTimeSteps {
		t.Errorf("timeSteps should cap at MaxTimeSteps")
	}
	if cfg.timeSteps(3) != 3 {
		t.Errorf("timeSteps should not exceed the dataset's count")
	}
}

func TestNamesAndRunDispatch(t *testing.T) {
	names := Names()
	if len(names) != 19 {
		t.Errorf("expected 19 experiments, got %d", len(names))
	}
	if _, err := Run("bogus", quickConfig()); err == nil {
		t.Errorf("unknown experiment should fail")
	}
	tables, err := Run("table3", quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("table3 should produce one table")
	}
}

func TestTableIII(t *testing.T) {
	tab, err := TableIII(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	out := tab.String()
	for _, app := range dataset.Names() {
		if !strings.Contains(out, app) {
			t.Errorf("Table III missing %s", app)
		}
	}
}

func TestFigure1ShapeHolds(t *testing.T) {
	tab, err := Figure1(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
	// The core claim of Fig. 1: at comparable bit rates, fixed-accuracy
	// PSNR beats fixed-rate PSNR. Verify the aggregate: the best
	// fixed-accuracy PSNR per bit-rate bucket is at least the fixed-rate
	// one in the majority of overlapping buckets.
	type point struct{ bitRate, psnr float64 }
	var acc, fr []point
	for _, row := range tab.Rows {
		mode := row[0].(string)
		p := point{row[1].(float64), row[2].(float64)}
		if mode == "fixed-accuracy" {
			acc = append(acc, p)
		} else {
			fr = append(fr, p)
		}
	}
	if len(acc) == 0 || len(fr) == 0 {
		t.Fatalf("both modes should be present")
	}
	wins := 0
	for _, f := range fr {
		// find the accuracy point with the closest (not larger) bit rate
		best := -1.0
		for _, a := range acc {
			if a.bitRate <= f.bitRate*1.05 && a.psnr > best {
				best = a.psnr
			}
		}
		if best >= f.psnr {
			wins++
		}
	}
	if wins*2 < len(fr) {
		t.Errorf("fixed-accuracy should dominate fixed-rate at comparable bit rates (wins=%d of %d)", wins, len(fr))
	}
}

func TestFigure3NonMonotonicNote(t *testing.T) {
	tab, err := Figure3(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "non-monotonic") {
		t.Errorf("Figure 3 should report non-monotonicity, notes: %v", tab.Notes)
	}
}

func TestFigure4LossColumnConsistent(t *testing.T) {
	tab, err := Figure4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 10)
	for _, row := range tab.Rows {
		ratio := row[1].(float64)
		loss := row[2].(float64)
		if ratio > 0 && loss < 0 {
			t.Errorf("negative loss in row %v", row)
		}
	}
}

func TestFigure6ConvergenceContrast(t *testing.T) {
	tab, err := Figure6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
	if len(tab.Notes) != 2 {
		t.Fatalf("Figure 6 should have two summary notes, got %v", tab.Notes)
	}
}

func TestFigure7RowsPerTarget(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxTimeSteps = 2
	tab, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	for _, row := range tab.Rows {
		total := row[1].(float64)
		compressorCPU := row[2].(float64)
		iterations := row[3].(int)
		if total <= 0 || compressorCPU <= 0 || iterations <= 0 {
			t.Errorf("non-positive timing/iteration values in row %v", row)
		}
	}
}

func TestFigure8SpeedupColumns(t *testing.T) {
	cfg := quickConfig()
	cfg.MaxTimeSteps = 2
	tab, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 8)
	for _, row := range tab.Rows {
		if row[2].(float64) <= 0 {
			t.Errorf("non-positive runtime in row %v", row)
		}
	}
}

func TestFigure9AllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 9 sweeps all datasets")
	}
	tables, err := Figure9(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("Figure 9 should produce one table per application, got %d", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 6)
		hasFixedRate := false
		for _, row := range tab.Rows {
			if strings.Contains(row[0].(string), "fixed-rate") {
				hasFixedRate = true
			}
		}
		if !hasFixedRate {
			t.Errorf("%s: missing the fixed-rate baseline", tab.Title)
		}
	}
	// 1-D datasets must not include MGARD.
	for _, tab := range tables {
		if strings.Contains(tab.Title, "HACC") || strings.Contains(tab.Title, "EXAALT") {
			for _, row := range tab.Rows {
				if strings.Contains(row[0].(string), "mgard") {
					t.Errorf("%s: MGARD should be skipped for 1-D data", tab.Title)
				}
			}
		}
	}
}

func TestFigure10QualityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 10 runs every compressor")
	}
	tab, err := Figure10(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 4)
	var frazZFP, fixedZFP float64
	for _, row := range tab.Rows {
		name := row[0].(string)
		psnr := row[2].(float64)
		switch name {
		case "ZFP (FRaZ)":
			frazZFP = psnr
		case "ZFP (fixed-rate)":
			fixedZFP = psnr
		}
	}
	if !(frazZFP > fixedZFP) {
		t.Errorf("ZFP(FRaZ) PSNR %.1f should beat ZFP(fixed-rate) PSNR %.1f at the same ratio", frazZFP, fixedZFP)
	}
}

func TestIterationComparison(t *testing.T) {
	tab, err := IterationComparison(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 6)
	for _, row := range tab.Rows {
		calls := row[2].(int)
		if calls <= 0 {
			t.Errorf("call count missing in row %v", row)
		}
	}
	// The winning-region count must never exceed the parallel total.
	for i := 0; i+1 < len(tab.Rows); i += 3 {
		winning := tab.Rows[i][2].(int)
		total := tab.Rows[i+1][2].(int)
		if winning > total {
			t.Errorf("winning region calls %d exceed parallel total %d", winning, total)
		}
	}
}

func TestDirectExperimentContrast(t *testing.T) {
	tab, err := Direct(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3)
	for _, row := range tab.Rows {
		name := row[0].(string)
		evals := row[2].(int)
		direct := row[4].(bool)
		if name == "frsz:rate" {
			if evals != 0 || !direct {
				t.Errorf("frsz:rate should tune directly with 0 evaluations, got evals=%d direct=%v", evals, direct)
			}
			if !row[6].(bool) {
				t.Errorf("frsz:rate direct tune should converge, row %v", row)
			}
		} else if evals <= 0 || direct {
			t.Errorf("%s should pay search evaluations (evals=%d direct=%v)", name, evals, direct)
		}
	}
}

func TestTimedCompressor(t *testing.T) {
	c := mustCompressor("sz:abs")
	timed := newTimedCompressor(c)
	d, _ := dataset.New("EXAALT", dataset.ScaleTiny)
	buf, err := fieldBuffer(d, "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pressio.Ratio(timed, buf, 1e-3); err != nil {
		t.Fatal(err)
	}
	if timed.Calls() != 1 {
		t.Errorf("expected 1 call, got %d", timed.Calls())
	}
	if timed.CompressionTime() <= 0 {
		t.Errorf("compression time should be positive")
	}
}

func TestZFPFixedRateSizeHelper(t *testing.T) {
	d, _ := dataset.New("NYX", dataset.ScaleTiny)
	buf, err := fieldBuffer(d, "temperature", 0)
	if err != nil {
		t.Fatal(err)
	}
	c := mustCompressor("zfp:rate")
	comp, err := c.Compress(buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != zfpFixedRateSize(buf, 4) {
		t.Errorf("fixed-rate size prediction %d does not match actual %d", zfpFixedRateSize(buf, 4), len(comp))
	}
}

func TestRegionAblation(t *testing.T) {
	tab, err := RegionAblation(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	for _, row := range tab.Rows {
		total := row[3].(int)
		winning := row[4].(int)
		if winning > total {
			t.Errorf("winning-region calls %d exceed total %d in row %v", winning, total, row)
		}
	}
}

func TestLosslessMotivation(t *testing.T) {
	tab, err := LosslessMotivation(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 5)
	lossyWins := 0
	for _, row := range tab.Rows {
		lossless := row[2].(float64)
		lossy := row[3].(float64)
		if lossless <= 0 || lossy <= 0 {
			t.Errorf("non-positive ratio in row %v", row)
		}
		if lossy > lossless {
			lossyWins++
		}
	}
	if lossyWins < 4 {
		t.Errorf("error-bounded lossy compression should beat lossless on most fields, won %d/5", lossyWins)
	}
}

func TestObjectivesExperiment(t *testing.T) {
	tab, err := Objectives(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: one codec, four objectives.
	checkTable(t, tab, 4)
}

func TestPrecisionComparesBothWidths(t *testing.T) {
	tab, err := Precision(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := tab.Rows
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("precision table should pair float32/float64 rows, got %d rows", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		if rows[i][1] != "float32" || rows[i+1][1] != "float64" {
			t.Fatalf("row pair %d dtypes = %v / %v", i/2, rows[i][1], rows[i+1][1])
		}
		if rows[i][0] != rows[i+1][0] {
			t.Fatalf("row pair %d compares different fields: %v vs %v", i/2, rows[i][0], rows[i+1][0])
		}
	}
}
