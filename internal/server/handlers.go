package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fraz"
)

// Endpoint names used in metrics labels.
const (
	epCompress   = "compress"
	epDecompress = "decompress"
	epArchives   = "archives"
)

// header/query parameter names. Headers win over query parameters so curl
// one-liners can use either.
func param(r *http.Request, name string) string {
	if v := r.Header.Get("X-Fraz-" + name); v != "" {
		return v
	}
	return r.URL.Query().Get(strings.ToLower(name))
}

func tenantOf(r *http.Request) string {
	if t := param(r, "Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	// ClosestRatio is set on 422 infeasible responses: the best ratio the
	// search observed, so the client can decide how to relax its request.
	ClosestRatio float64 `json:"closest_ratio,omitempty"`
}

func (s *Server) fail(w http.ResponseWriter, endpoint string, code int, body apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.cfg.Log.Printf("frazd: writing %d error body: %v", code, err)
	}
	s.met.observeRequest(endpoint, code)
}

// reject answers an admission refusal: 429 (saturation) or 503 (draining /
// deadline pressure), always with a Retry-After hint so well-behaved
// clients back off instead of hammering.
func (s *Server) reject(w http.ResponseWriter, endpoint string, code int, reason, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	s.met.observeRejection(reason)
	s.fail(w, endpoint, code, apiError{Error: msg})
}

// admit runs the shared admission path: drain check, tenant + queue seats.
// It returns a non-nil leave func on success; on refusal the response has
// been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) func() {
	if s.draining.Load() {
		s.reject(w, endpoint, http.StatusServiceUnavailable, "draining", "server is draining; retry elsewhere")
		return nil
	}
	leave, err := s.adm.enter(tenantOf(r))
	switch {
	case errors.Is(err, errTenantSaturated):
		s.reject(w, endpoint, http.StatusTooManyRequests, "tenant",
			fmt.Sprintf("tenant %q has reached its concurrency limit (%d)", tenantOf(r), s.cfg.PerTenant))
		return nil
	case errors.Is(err, errQueueFull):
		s.reject(w, endpoint, http.StatusTooManyRequests, "queue", "admission queue is full")
		return nil
	}
	return leave
}

// compressParams is the tuning request distilled from headers/query.
type compressParams struct {
	shape     []int
	wide      bool // element width: false=float32, true=float64
	codec     string
	objective string
	target    float64
	tolerance float64
	tolSet    bool
	blocks    int
	store     bool
}

func parseShape(s string) ([]int, error) {
	if s == "" {
		return nil, errors.New("missing shape (X-Fraz-Shape header or ?shape=, e.g. 100x500x500)")
	}
	parts := strings.Split(s, "x")
	if len(parts) < 1 || len(parts) > 4 {
		return nil, fmt.Errorf("shape %q must have 1-4 extents", s)
	}
	shape := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad shape extent %q", p)
		}
		shape[i] = v
	}
	return shape, nil
}

func parseCompressParams(r *http.Request) (compressParams, error) {
	p := compressParams{codec: fraz.DefaultCodec, objective: "ratio", target: 10}
	var err error
	if p.shape, err = parseShape(param(r, "Shape")); err != nil {
		return p, err
	}
	switch dt := param(r, "DType"); dt {
	case "", "float32", "f32":
	case "float64", "f64":
		p.wide = true
	default:
		return p, fmt.Errorf("unknown dtype %q (want float32 or float64)", dt)
	}
	if c := param(r, "Codec"); c != "" {
		p.codec = c
	}
	if o := param(r, "Objective"); o != "" {
		p.objective = o
	}
	if t := param(r, "Target"); t != "" {
		if p.target, err = strconv.ParseFloat(t, 64); err != nil {
			return p, fmt.Errorf("bad target %q", t)
		}
	} else if p.objective != "ratio" {
		return p, fmt.Errorf("objective %q needs an explicit target (X-Fraz-Target)", p.objective)
	}
	if t := param(r, "Tolerance"); t != "" {
		if p.tolerance, err = strconv.ParseFloat(t, 64); err != nil {
			return p, fmt.Errorf("bad tolerance %q", t)
		}
		p.tolSet = true
	}
	if b := param(r, "Blocks"); b != "" {
		if p.blocks, err = strconv.Atoi(b); err != nil || p.blocks < 0 {
			return p, fmt.Errorf("bad blocks %q", b)
		}
	}
	p.store = boolParam(r, "Store")
	return p, nil
}

func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(param(r, name)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// options maps the parsed request onto the public API's functional options.
func (p compressParams) options(s *Server) ([]fraz.Option, error) {
	var target fraz.Option
	switch p.objective {
	case "ratio":
		target = fraz.Ratio(p.target)
	case "psnr":
		target = fraz.TargetPSNR(p.target)
	case "ssim":
		target = fraz.TargetSSIM(p.target)
	case "max-error":
		target = fraz.TargetMaxError(p.target)
	default:
		return nil, fmt.Errorf("unknown objective %q (want ratio, psnr, ssim, or max-error)", p.objective)
	}
	opts := []fraz.Option{
		target,
		fraz.Blocks(p.blocks),
		fraz.Workers(s.cfg.SealWorkers),
		fraz.Seed(1), // deterministic service: same field + request → same archive
		fraz.SharedCache(s.cache),
	}
	if p.tolSet {
		opts = append(opts, fraz.Tolerance(p.tolerance))
	}
	return opts, nil
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, epCompress, http.StatusMethodNotAllowed, apiError{Error: "POST a raw field body"})
		return
	}
	p, err := parseCompressParams(r)
	if err != nil {
		s.fail(w, epCompress, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	opts, err := p.options(s)
	if err != nil {
		s.fail(w, epCompress, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	client, err := fraz.New(p.codec, opts...)
	if err != nil {
		s.fail(w, epCompress, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	leave := s.admit(w, r, epCompress)
	if leave == nil {
		return
	}
	defer leave()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	elems := 1
	for _, e := range p.shape {
		elems *= e
	}
	elemSize := 4
	if p.wide {
		elemSize = 8
	}
	want := int64(elems) * int64(elemSize)
	if want > s.cfg.MaxFieldBytes {
		s.fail(w, epCompress, http.StatusRequestEntityTooLarge,
			apiError{Error: fmt.Sprintf("field of %d bytes exceeds the %d-byte limit", want, s.cfg.MaxFieldBytes)})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, want+1))
	if err != nil {
		s.fail(w, epCompress, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	if int64(len(body)) != want {
		s.fail(w, epCompress, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("body is %d bytes; shape %v at %d bytes/value needs exactly %d", len(body), p.shape, elemSize, want)})
		return
	}

	release, err := s.adm.acquire(ctx)
	if err != nil {
		// The deadline (or the client hanging up) expired while queued.
		s.reject(w, epCompress, http.StatusServiceUnavailable, "queue-timeout", "timed out waiting for a worker slot")
		return
	}
	defer release()
	if s.sealHook != nil {
		s.sealHook()
	}

	var arc bytes.Buffer
	start := time.Now()
	var res *fraz.CompressResult
	if p.wide {
		res, err = client.Compress64(ctx, &arc, decodeRaw64(body), p.shape)
	} else {
		res, err = client.Compress(ctx, &arc, decodeRaw32(body), p.shape)
	}
	s.met.sealSeconds.get(p.codec).observe(time.Since(start).Seconds())
	if err != nil {
		s.compressError(w, err)
		return
	}
	s.met.bytesIn.add(uint64(want))
	s.met.bytesSealed.add(uint64(arc.Len()))

	h := w.Header()
	h.Set("X-Fraz-Codec", res.Codec)
	h.Set("X-Fraz-DType", dtypeName(p.wide))
	h.Set("X-Fraz-Shape", shapeString(p.shape))
	h.Set("X-Fraz-Bound", formatFloat(res.ErrorBound))
	h.Set("X-Fraz-Ratio", formatFloat(res.Ratio))
	h.Set("X-Fraz-Objective", res.Objective)
	h.Set("X-Fraz-Target", formatFloat(res.Target))
	h.Set("X-Fraz-Achieved", formatFloat(res.AchievedValue))
	h.Set("X-Fraz-Blocks", strconv.Itoa(res.Blocks))
	h.Set("X-Fraz-Evaluations", strconv.Itoa(res.Evaluations))
	h.Set("X-Fraz-Cache-Hits", strconv.Itoa(res.CacheHits))

	if p.store {
		id, ok := s.store.put(arc.Bytes(), archiveMeta{
			Codec:      res.Codec,
			DType:      dtypeName(p.wide),
			Shape:      shapeString(p.shape),
			ErrorBound: res.ErrorBound,
			Ratio:      res.Ratio,
			Blocks:     res.Blocks,
			Objective:  res.Objective,
			Target:     res.Target,
			Achieved:   res.AchievedValue,
		})
		if !ok {
			s.fail(w, epCompress, http.StatusInsufficientStorage,
				apiError{Error: "archive exceeds the server's store budget; request it inline instead"})
			return
		}
		h.Set("Location", "/v1/archives/"+id)
		h.Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		if err := json.NewEncoder(w).Encode(map[string]any{
			"id":          id,
			"bytes":       arc.Len(),
			"codec":       res.Codec,
			"ratio":       res.Ratio,
			"bound":       res.ErrorBound,
			"objective":   res.Objective,
			"target":      res.Target,
			"achieved":    res.AchievedValue,
			"blocks":      res.Blocks,
			"evaluations": res.Evaluations,
			"cache_hits":  res.CacheHits,
		}); err != nil {
			s.cfg.Log.Printf("frazd: writing store response: %v", err)
		}
		s.met.observeRequest(epCompress, http.StatusCreated)
		return
	}

	h.Set("Content-Type", "application/x-fraz")
	h.Set("Content-Length", strconv.Itoa(arc.Len()))
	if _, err := w.Write(arc.Bytes()); err != nil {
		// The archive was built; only the client's connection died. Nothing
		// can be re-sent on this response, so log and account it.
		s.cfg.Log.Printf("frazd: streaming archive: %v", err)
	}
	s.met.observeRequest(epCompress, http.StatusOK)
}

// compressError maps a failed seal onto the API's status codes.
func (s *Server) compressError(w http.ResponseWriter, err error) {
	var inf *fraz.InfeasibleError
	switch {
	case errors.As(err, &inf):
		s.fail(w, epCompress, http.StatusUnprocessableEntity,
			apiError{Error: err.Error(), ClosestRatio: inf.ClosestRatio})
	case errors.Is(err, context.DeadlineExceeded):
		s.reject(w, epCompress, http.StatusServiceUnavailable, "timeout", "request deadline exceeded mid-tune")
	case errors.Is(err, context.Canceled):
		// The client went away; the response writer is dead but account the
		// outcome anyway.
		s.met.observeRequest(epCompress, 499)
	default:
		s.fail(w, epCompress, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, epDecompress, http.StatusMethodNotAllowed, apiError{Error: "POST a .fraz archive body (or ?id=<stored archive>)"})
		return
	}
	leave := s.admit(w, r, epDecompress)
	if leave == nil {
		return
	}
	defer leave()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var archive []byte
	if id := r.URL.Query().Get("id"); id != "" {
		a, ok := s.store.get(id)
		if !ok {
			s.fail(w, epDecompress, http.StatusNotFound, apiError{Error: fmt.Sprintf("no stored archive %q", id)})
			return
		}
		archive = a.data
	} else {
		var err error
		archive, err = io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxArchiveBytes+1))
		if err != nil {
			s.fail(w, epDecompress, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading body: %v", err)})
			return
		}
		if int64(len(archive)) > s.cfg.MaxArchiveBytes {
			s.fail(w, epDecompress, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("archive exceeds the %d-byte limit", s.cfg.MaxArchiveBytes)})
			return
		}
	}

	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.reject(w, epDecompress, http.StatusServiceUnavailable, "queue-timeout", "timed out waiting for a worker slot")
		return
	}
	defer release()

	res, err := fraz.DecompressFull(ctx, bytes.NewReader(archive), fraz.Workers(s.cfg.SealWorkers))
	if err != nil {
		switch {
		case errors.Is(err, fraz.ErrCorrupt), errors.Is(err, fraz.ErrUnknownCodec):
			s.fail(w, epDecompress, http.StatusBadRequest, apiError{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded):
			s.reject(w, epDecompress, http.StatusServiceUnavailable, "timeout", "request deadline exceeded mid-decode")
		default:
			s.fail(w, epDecompress, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}

	var raw []byte
	if res.Data64 != nil {
		raw = encodeRaw64(res.Data64)
	} else {
		raw = encodeRaw32(res.Data)
	}

	h := w.Header()
	h.Set("X-Fraz-Codec", res.Codec)
	h.Set("X-Fraz-DType", res.DType)
	h.Set("X-Fraz-Shape", shapeString(res.Shape))
	h.Set("X-Fraz-Bound", formatFloat(res.ErrorBound))
	h.Set("X-Fraz-Ratio", formatFloat(res.Ratio))
	h.Set("X-Fraz-Version", strconv.Itoa(res.Version))
	h.Set("X-Fraz-Blocks", strconv.Itoa(res.Blocks))
	if o := res.Objective; o != nil {
		h.Set("X-Fraz-Objective", o.Name)
		h.Set("X-Fraz-Target", formatFloat(o.Target))
		h.Set("X-Fraz-Tolerance", formatFloat(o.Tolerance))
		h.Set("X-Fraz-Achieved", formatFloat(o.Achieved))
	}

	if boolParam(r, "Verify") {
		checks, err := verifyRecord(res, raw)
		if err != nil {
			s.fail(w, epDecompress, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
			return
		}
		h.Set("X-Fraz-Verified", strings.Join(checks, ","))
	}

	s.met.bytesOpened.add(uint64(len(raw)))
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(raw)))
	if _, err := w.Write(raw); err != nil {
		s.cfg.Log.Printf("frazd: streaming field: %v", err)
	}
	s.met.observeRequest(epDecompress, http.StatusOK)
}

// verifyRecord re-checks every promise the archive itself can witness: the
// recorded ratio against the actual payload and field sizes (1% band, the
// same check `fraz -decompress -verify` applies), and — for
// quality-targeted archives — that the recorded achieved value sits inside
// the recorded acceptance band. Quality promises measured against the
// original field need that field; holders verify those client-side with
// `fraz -decompress -verify -in ...`.
func verifyRecord(res *fraz.DecompressResult, raw []byte) ([]string, error) {
	checks := []string{"crc"} // every block CRC was checked during decode
	if res.CompressedBytes > 0 && res.Ratio > 0 {
		actual := float64(len(raw)) / float64(res.CompressedBytes)
		if actual/res.Ratio < 0.99 || actual/res.Ratio > 1.01 {
			return nil, fmt.Errorf("verify failed: recorded ratio %.4f, recomputed %.4f from sizes", res.Ratio, actual)
		}
		checks = append(checks, "ratio")
	}
	if o := res.Objective; o != nil {
		if !o.InBand(o.Achieved) {
			return nil, fmt.Errorf("verify failed: recorded %s %.6g outside its own recorded band %g ± %g",
				o.Name, o.Achieved, o.Target, o.Tolerance)
		}
		checks = append(checks, "objective-record")
	}
	return checks, nil
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/archives/")
	if id == "" || strings.Contains(id, "/") {
		s.fail(w, epArchives, http.StatusNotFound, apiError{Error: "archive ids look like /v1/archives/<id>"})
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		a, ok := s.store.get(id)
		if !ok {
			s.fail(w, epArchives, http.StatusNotFound, apiError{Error: fmt.Sprintf("no stored archive %q", id)})
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/x-fraz")
		h.Set("Content-Length", strconv.Itoa(len(a.data)))
		h.Set("X-Fraz-Codec", a.meta.Codec)
		h.Set("X-Fraz-DType", a.meta.DType)
		h.Set("X-Fraz-Shape", a.meta.Shape)
		h.Set("X-Fraz-Bound", formatFloat(a.meta.ErrorBound))
		h.Set("X-Fraz-Ratio", formatFloat(a.meta.Ratio))
		h.Set("X-Fraz-Blocks", strconv.Itoa(a.meta.Blocks))
		if r.Method == http.MethodHead {
			s.met.observeRequest(epArchives, http.StatusOK)
			return
		}
		if _, err := w.Write(a.data); err != nil {
			s.cfg.Log.Printf("frazd: streaming stored archive: %v", err)
		}
		s.met.observeRequest(epArchives, http.StatusOK)
	case http.MethodDelete:
		if !s.store.remove(id) {
			s.fail(w, epArchives, http.StatusNotFound, apiError{Error: fmt.Sprintf("no stored archive %q", id)})
			return
		}
		w.WriteHeader(http.StatusNoContent)
		s.met.observeRequest(epArchives, http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, HEAD, DELETE")
		s.fail(w, epArchives, http.StatusMethodNotAllowed, apiError{Error: "GET, HEAD, or DELETE"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeTo(w, s.gauges())
}

func dtypeName(wide bool) string {
	if wide {
		return "float64"
	}
	return "float32"
}

func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, e := range shape {
		parts[i] = strconv.Itoa(e)
	}
	return strings.Join(parts, "x")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
