// Package server implements frazd, the long-running compression service
// over the public fraz package: streaming upload of raw field data, tuned
// (tune→seal→archive) server-side against a fixed-ratio or quality
// objective, archive download, and decompress-with-verify — with the
// production plumbing a multi-tenant deployment needs.
//
// # Request path
//
//	POST /v1/compress      raw little-endian field in, .fraz archive out
//	                       (?store=1 keeps the archive server-side instead)
//	GET  /v1/archives/{id} download a stored archive
//	POST /v1/decompress    .fraz archive in (body or ?id=), raw field out
//	                       (?verify=1 re-checks the recorded promises)
//
// Field geometry and tuning intent travel in X-Fraz-* headers (or query
// parameters of the same lowercase names): shape, dtype, codec, objective,
// target, tolerance, blocks, tenant. See docs/http-api.md for the full
// reference.
//
// # Admission and backpressure
//
// CPU-bound work (tuning, sealing, opening) runs on a worker pool sized to
// the machine (Config.Concurrency, default GOMAXPROCS) behind a bounded
// admission queue. A request beyond the queue bound — or beyond its tenant's
// concurrency allowance — is rejected immediately with 429 and a Retry-After
// hint rather than queueing unboundedly; a server that is draining rejects
// new work with 503 while in-flight seals run to completion. Request
// deadlines (Config.RequestTimeout) cancel the tune mid-search through the
// context threaded into the public API.
//
// # The shared evaluation-cache tier
//
// All requests tune through one size-bounded fraz.EvalCache keyed by data
// fingerprint: a request re-tuning a field the server has seen — any
// tenant, any connection — is answered from memory instead of re-running
// the compressor. The /metrics endpoint exports its hit/miss/eviction
// counters alongside queue depth, tunes in flight, bytes sealed, and
// per-codec seal-latency histograms in Prometheus text format; /healthz and
// /readyz serve liveness and drain-aware readiness.
package server
