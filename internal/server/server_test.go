package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"fraz"
)

// testField synthesizes the same smooth compressible field the root package
// tests use, as raw little-endian bytes ready for upload.
func testShape() []int { return []int{16, 12, 10} }

func testField32() []float32 {
	shape := testShape()
	n := shape[0] * shape[1] * shape[2]
	data := make([]float32, n)
	for i := range data {
		z := i / (shape[1] * shape[2])
		rem := i % (shape[1] * shape[2])
		y := rem / shape[2]
		x := rem % shape[2]
		data[i] = float32(math.Sin(float64(z)*0.3) * math.Cos(float64(y)*0.2) * math.Sin(float64(x)*0.4+1))
	}
	return data
}

func testField64() []float64 {
	f32 := testField32()
	out := make([]float64, len(f32))
	for i, v := range f32 {
		out[i] = float64(v)
	}
	return out
}

func rawBody(wide bool) []byte {
	if wide {
		return encodeRaw64(testField64())
	}
	return encodeRaw32(testField32())
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompress(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/compress", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func headerFloat(t *testing.T, resp *http.Response, name string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(resp.Header.Get(name), 64)
	if err != nil {
		t.Fatalf("header %s=%q: %v", name, resp.Header.Get(name), err)
	}
	return v
}

// TestEndToEndOverHTTP is the tentpole acceptance test: upload float32 and
// float64 fields under a fixed-ratio and a fixed-PSNR objective, download
// the archive, decompress it through the service, and verify the objective
// record round-tripped.
func TestEndToEndOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name      string
		dtype     string
		objective string
		target    float64
		tolerance float64
	}{
		// Tolerances are fractional: the acceptance band is target·(1±tol).
		{"float32-ratio", "float32", "ratio", 10, 0.25},
		{"float64-ratio", "float64", "ratio", 10, 0.25},
		{"float32-psnr", "float32", "psnr", 60, 0.1},
		{"float64-psnr", "float64", "psnr", 60, 0.1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wide := tc.dtype == "float64"
			resp := postCompress(t, ts.URL, rawBody(wide), map[string]string{
				"X-Fraz-Shape":     "16x12x10",
				"X-Fraz-DType":     tc.dtype,
				"X-Fraz-Objective": tc.objective,
				"X-Fraz-Target":    fmt.Sprint(tc.target),
				"X-Fraz-Tolerance": fmt.Sprint(tc.tolerance),
			})
			archive := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compress: status %d body %s", resp.StatusCode, archive)
			}
			if got := resp.Header.Get("X-Fraz-Objective"); got != tc.objective {
				t.Fatalf("X-Fraz-Objective = %q, want %q", got, tc.objective)
			}
			achieved := headerFloat(t, resp, "X-Fraz-Achieved")
			band := tc.tolerance * tc.target
			if achieved < tc.target-band || achieved > tc.target+band {
				t.Fatalf("achieved %s %.4f outside %g ± %g", tc.objective, achieved, tc.target, band)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-fraz" {
				t.Fatalf("Content-Type = %q", ct)
			}

			// Decompress through the service with verification on.
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/decompress?verify=1", bytes.NewReader(archive))
			if err != nil {
				t.Fatal(err)
			}
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw := readAll(t, dresp)
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("decompress: status %d body %s", dresp.StatusCode, raw)
			}
			if got := dresp.Header.Get("X-Fraz-DType"); got != tc.dtype {
				t.Fatalf("decompressed dtype %q, want %q", got, tc.dtype)
			}
			if got := dresp.Header.Get("X-Fraz-Shape"); got != "16x12x10" {
				t.Fatalf("decompressed shape %q", got)
			}
			if want := len(rawBody(wide)); len(raw) != want {
				t.Fatalf("decompressed %d bytes, want %d", len(raw), want)
			}
			verified := dresp.Header.Get("X-Fraz-Verified")
			if !strings.Contains(verified, "ratio") {
				t.Fatalf("X-Fraz-Verified = %q, want ratio check", verified)
			}
			if tc.objective == "psnr" {
				// Quality archives carry the full objective record; check it
				// survived the HTTP round trip and self-verifies.
				if !strings.Contains(verified, "objective-record") {
					t.Fatalf("X-Fraz-Verified = %q, want objective-record check", verified)
				}
				if got := dresp.Header.Get("X-Fraz-Objective"); got != "psnr" {
					t.Fatalf("recorded objective %q, want psnr", got)
				}
				recAchieved := headerFloat(t, dresp, "X-Fraz-Achieved")
				if recAchieved != achieved {
					t.Fatalf("recorded achieved %.6g, compress reported %.6g", recAchieved, achieved)
				}
			}

			// Reconstruction must respect the tuned error bound.
			bound := headerFloat(t, dresp, "X-Fraz-Bound")
			checkWithinBound(t, wide, raw, bound)
		})
	}
}

func checkWithinBound(t *testing.T, wide bool, raw []byte, bound float64) {
	t.Helper()
	// Allow slack: sz:abs quantizes against the sampled block's range.
	limit := bound * 1.5
	if wide {
		orig, got := testField64(), decodeRaw64(raw)
		for i := range orig {
			if d := math.Abs(orig[i] - got[i]); d > limit {
				t.Fatalf("value %d off by %g, bound %g", i, d, bound)
			}
		}
		return
	}
	orig, got := testField32(), decodeRaw32(raw)
	for i := range orig {
		if d := math.Abs(float64(orig[i] - got[i])); d > limit {
			t.Fatalf("value %d off by %g, bound %g", i, d, bound)
		}
	}
}

// TestFixedRateDirectOverHTTP uploads under the fixed-rate codec and checks
// the direct-satisfaction path surfaces over HTTP: a fixed-ratio objective
// with frsz:rate must seal with zero search evaluations (the tuner inverts
// the target ratio into a bits-per-value setting arithmetically) and still
// round-trip through the service.
func TestFixedRateDirectOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, dtype := range []string{"float32", "float64"} {
		t.Run(dtype, func(t *testing.T) {
			wide := dtype == "float64"
			resp := postCompress(t, ts.URL, rawBody(wide), map[string]string{
				"X-Fraz-Shape":     "16x12x10",
				"X-Fraz-DType":     dtype,
				"X-Fraz-Codec":     "frsz:rate",
				"X-Fraz-Objective": "ratio",
				"X-Fraz-Target":    "8",
				"X-Fraz-Tolerance": "0.25",
			})
			archive := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compress: status %d body %s", resp.StatusCode, archive)
			}
			if got := resp.Header.Get("X-Fraz-Codec"); got != "frsz:rate" {
				t.Fatalf("X-Fraz-Codec = %q, want frsz:rate", got)
			}
			if got := resp.Header.Get("X-Fraz-Evaluations"); got != "0" {
				t.Fatalf("X-Fraz-Evaluations = %q, want 0 (direct satisfaction)", got)
			}
			achieved := headerFloat(t, resp, "X-Fraz-Achieved")
			if achieved < 6 || achieved > 10 {
				t.Fatalf("achieved ratio %.3f outside 8 ± 25%%", achieved)
			}

			dresp, err := http.Post(ts.URL+"/v1/decompress?verify=1", "application/x-fraz", bytes.NewReader(archive))
			if err != nil {
				t.Fatal(err)
			}
			raw := readAll(t, dresp)
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("decompress: status %d body %s", dresp.StatusCode, raw)
			}
			if want := len(rawBody(wide)); len(raw) != want {
				t.Fatalf("decompressed %d bytes, want %d", len(raw), want)
			}
		})
	}
}

// TestStoreAndArchiveLifecycle covers ?store=1 → GET by id → decompress by
// id → DELETE.
func TestStoreAndArchiveLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postCompress(t, ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape": "16x12x10",
		"X-Fraz-Store": "1",
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("store: status %d body %s", resp.StatusCode, body)
	}
	var created struct {
		ID    string  `json:"id"`
		Bytes int     `json:"bytes"`
		Ratio float64 `json:"ratio"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("created body %s: %v", body, err)
	}
	if created.ID == "" || created.Bytes <= 0 {
		t.Fatalf("created = %+v", created)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/archives/"+created.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Download the archive by id.
	aresp, err := http.Get(ts.URL + "/v1/archives/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	archive := readAll(t, aresp)
	if aresp.StatusCode != http.StatusOK || len(archive) != created.Bytes {
		t.Fatalf("archive GET: status %d, %d bytes (want %d)", aresp.StatusCode, len(archive), created.Bytes)
	}
	// It must be a valid .fraz container.
	if _, err := fraz.DecompressFull(context.Background(), bytes.NewReader(archive)); err != nil {
		t.Fatalf("downloaded archive does not decode: %v", err)
	}

	// Decompress by id, no body.
	dresp, err := http.Post(ts.URL+"/v1/decompress?id="+created.ID, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, dresp)
	if dresp.StatusCode != http.StatusOK || len(raw) != len(rawBody(false)) {
		t.Fatalf("decompress by id: status %d, %d bytes", dresp.StatusCode, len(raw))
	}

	// Re-uploading the identical field lands on the same content address.
	resp2 := postCompress(t, ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape": "16x12x10",
		"X-Fraz-Store": "1",
	})
	body2 := readAll(t, resp2)
	var again struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body2, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != created.ID {
		t.Fatalf("same upload produced id %s then %s", created.ID, again.ID)
	}

	// DELETE, then both lookups 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/archives/"+created.ID, nil)
	delresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, delresp)
	if delresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", delresp.StatusCode)
	}
	gone, err := http.Get(ts.URL + "/v1/archives/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, gone)
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: status %d", gone.StatusCode)
	}
}

// TestBadRequests walks the 4xx surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxFieldBytes: 1 << 20})
	cases := []struct {
		name string
		hdr  map[string]string
		body []byte
		want int
	}{
		{"missing shape", map[string]string{}, rawBody(false), http.StatusBadRequest},
		{"bad shape", map[string]string{"X-Fraz-Shape": "0x12"}, rawBody(false), http.StatusBadRequest},
		{"bad dtype", map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-DType": "int8"}, rawBody(false), http.StatusBadRequest},
		{"unknown codec", map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Codec": "nope"}, rawBody(false), http.StatusBadRequest},
		{"unknown objective", map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Objective": "vibes", "X-Fraz-Target": "1"}, rawBody(false), http.StatusBadRequest},
		{"objective without target", map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Objective": "psnr"}, rawBody(false), http.StatusBadRequest},
		{"short body", map[string]string{"X-Fraz-Shape": "16x12x10"}, rawBody(false)[:100], http.StatusBadRequest},
		{"oversized field", map[string]string{"X-Fraz-Shape": "1024x1024"}, nil, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postCompress(t, ts.URL, tc.body, tc.hdr)
			body := readAll(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not a JSON error: %v", body, err)
			}
		})
	}

	// GET on compress is a method error.
	resp, err := http.Get(ts.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compress: status %d", resp.StatusCode)
	}

	// Garbage archive on decompress.
	dresp, err := http.Post(ts.URL+"/v1/decompress", "application/x-fraz", strings.NewReader("not a container"))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, dresp)
	if dresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage decompress: status %d", dresp.StatusCode)
	}

	// Unknown archive id.
	aresp, err := http.Get(ts.URL + "/v1/archives/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, aresp)
	if aresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown archive: status %d", aresp.StatusCode)
	}
}

// TestInfeasibleTargetReturns422 asks for a ratio no codec can reach on
// this field and expects the structured infeasibility answer.
func TestInfeasibleTargetReturns422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postCompress(t, ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape":     "16x12x10",
		"X-Fraz-Target":    "100000",
		"X-Fraz-Tolerance": "0.01",
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", resp.StatusCode, body)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.ClosestRatio <= 0 {
		t.Fatalf("closest_ratio = %g, want > 0 (body %s)", e.ClosestRatio, body)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	// Liveness stays green during a drain.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hresp)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: status %d", hresp.StatusCode)
	}
}
