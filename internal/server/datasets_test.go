package server

import (
	"bytes"
	"encoding/json"
	"math"
	"mime/multipart"
	"net/http"
	"testing"
)

// noisyField32 is a rougher second field so the per-field codec race has
// something to disagree about.
func noisyField32() []float32 {
	shape := testShape()
	n := shape[0] * shape[1] * shape[2]
	data := make([]float32, n)
	rng := uint64(42)
	for i := range data {
		rng = rng*6364136223846793005 + 1442695040888963407
		noise := float64(rng>>40)/float64(1<<24) - 0.5
		data[i] = float32(math.Sin(float64(i)*0.05) + 0.8*noise)
	}
	return data
}

// postDataset uploads named fields as one multipart request.
func postDataset(t *testing.T, url string, fields map[string][]float32, hdr map[string]string) *http.Response {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for name, data := range fields {
		part, err := mw.CreateFormFile(name, name+".f32")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := part.Write(encodeRaw32(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/datasets", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

type datasetCreateBody struct {
	ID             string  `json:"id"`
	Bytes          int     `json:"bytes"`
	AggregateRatio float64 `json:"aggregate_ratio"`
	Fields         []struct {
		Name  string  `json:"name"`
		Codec string  `json:"codec"`
		Ratio float64 `json:"ratio"`
		Raced int     `json:"raced"`
	} `json:"fields"`
}

func TestDatasetUploadAndFieldDownload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	smooth := testField32()
	noisy := noisyField32()
	resp := postDataset(t, ts.URL, map[string][]float32{"SMOOTH": smooth, "NOISE": noisy},
		map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Objective": "psnr", "X-Fraz-Target": "55"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/datasets = %d: %s", resp.StatusCode, body)
	}
	var created datasetCreateBody
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("bad create body %s: %v", body, err)
	}
	if created.ID == "" || len(created.Fields) != 2 {
		t.Fatalf("create body = %+v, want id and 2 fields", created)
	}
	if created.AggregateRatio <= 1 {
		t.Errorf("aggregate ratio %.2f, want > 1", created.AggregateRatio)
	}
	for _, f := range created.Fields {
		if f.Codec == "" || f.Codec == "auto" {
			t.Errorf("field %s sealed with codec %q, want a concrete winner", f.Name, f.Codec)
		}
		if f.Raced < 2 {
			t.Errorf("field %s raced %d codecs, want >= 2", f.Name, f.Raced)
		}
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/"+created.ID {
		t.Errorf("Location = %q, want /v1/datasets/%s", loc, created.ID)
	}

	// The directory listing names both fields.
	resp, err := http.Get(ts.URL + "/v1/datasets/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	dirBody := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET dataset = %d: %s", resp.StatusCode, dirBody)
	}
	var dir struct {
		Fields []struct {
			Name string `json:"name"`
			Step int    `json:"step"`
		} `json:"fields"`
	}
	if err := json.Unmarshal(dirBody, &dir); err != nil {
		t.Fatal(err)
	}
	if len(dir.Fields) != 2 {
		t.Fatalf("directory lists %d fields, want 2: %s", len(dir.Fields), dirBody)
	}

	// Each field downloads alone and reconstructs within the PSNR band.
	for name, orig := range map[string][]float32{"SMOOTH": smooth, "NOISE": noisy} {
		resp, err := http.Get(ts.URL + "/v1/datasets/" + created.ID + "/fields/" + name)
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET field %s = %d: %s", name, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-Fraz-Objective"); got != "psnr" {
			t.Errorf("field %s objective header = %q, want psnr", name, got)
		}
		if resp.Header.Get("X-Fraz-Codec") == "" {
			t.Errorf("field %s response missing X-Fraz-Codec", name)
		}
		recon := decodeRaw32(raw)
		if len(recon) != len(orig) {
			t.Fatalf("field %s: %d values back, want %d", name, len(recon), len(orig))
		}
		if got := psnrOf(orig, recon); got < 50 {
			t.Errorf("field %s PSNR %.1f dB, want >= 50 (target 55 ± default band)", name, got)
		}
	}
}

func psnrOf(orig, recon []float32) float64 {
	lo, hi := orig[0], orig[0]
	var mse float64
	for i := range orig {
		if orig[i] < lo {
			lo = orig[i]
		}
		if orig[i] > hi {
			hi = orig[i]
		}
		d := float64(orig[i]) - float64(recon[i])
		mse += d * d
	}
	mse /= float64(len(orig))
	if mse == 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(float64(hi-lo)) - 10*math.Log10(mse)
}

func TestDatasetPinnedCodec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postDataset(t, ts.URL, map[string][]float32{"F": testField32()},
		map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Codec": "zfp:accuracy", "X-Fraz-Objective": "psnr", "X-Fraz-Target": "50"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var created datasetCreateBody
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if len(created.Fields) != 1 || created.Fields[0].Codec != "zfp:accuracy" {
		t.Fatalf("fields = %+v, want one field pinned to zfp:accuracy", created.Fields)
	}
	if created.Fields[0].Raced != 0 {
		t.Errorf("pinned codec raced %d candidates, want 0", created.Fields[0].Raced)
	}
}

func TestDatasetErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Non-multipart body.
	resp := postCompressTo(t, ts.URL, "/v1/datasets", []byte("raw"), map[string]string{"X-Fraz-Shape": "4"})
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-multipart POST = %d: %s, want 400", resp.StatusCode, body)
	}

	// Wrong field size.
	resp = postDataset(t, ts.URL, map[string][]float32{"F": make([]float32, 7)},
		map[string]string{"X-Fraz-Shape": "16x12x10"})
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short field POST = %d: %s, want 400", resp.StatusCode, body)
	}

	// Unknown dataset id.
	for _, path := range []string{"/v1/datasets/deadbeef", "/v1/datasets/deadbeef/fields/F"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if body := readAll(t, resp); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d: %s, want 404", path, resp.StatusCode, body)
		}
	}

	// Stored dataset, unknown field / bad step / single-field archive id.
	resp = postDataset(t, ts.URL, map[string][]float32{"F": testField32()},
		map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Objective": "psnr", "X-Fraz-Target": "50"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d: %s", resp.StatusCode, body)
	}
	var created datasetCreateBody
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]int{
		"/v1/datasets/" + created.ID + "/fields/MISSING":  http.StatusNotFound,
		"/v1/datasets/" + created.ID + "/fields/F?step=9": http.StatusNotFound,
		"/v1/datasets/" + created.ID + "/fields/F?step=x": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if body := readAll(t, resp); resp.StatusCode != want {
			t.Errorf("GET %s = %d: %s, want %d", path, resp.StatusCode, body, want)
		}
	}

	// A single-field archive id is not a dataset id, even though the store
	// is shared.
	resp = postCompress(t, ts.URL, rawBody(false),
		map[string]string{"X-Fraz-Shape": "16x12x10", "X-Fraz-Store": "1"})
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("store compress = %d: %s", resp.StatusCode, body)
	}
	var stored struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &stored); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets/" + stored.ID)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET dataset with archive id = %d: %s, want 404", resp.StatusCode, body)
	}
}

// postCompressTo posts an arbitrary body to an arbitrary path.
func postCompressTo(t *testing.T, url, path string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDatasetDrainRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp := postDataset(t, ts.URL, map[string][]float32{"F": testField32()},
		map[string]string{"X-Fraz-Shape": "16x12x10"})
	if body := readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining POST /v1/datasets = %d: %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
}

func TestDatasetMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/datasets = %d, want 405", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/abc", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/datasets/abc = %d, want 405", resp.StatusCode)
	}
}
