package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fraz"
)

// This file is the service's multi-field surface: POST /v1/datasets uploads
// a set of named fields (one multipart part each), tunes and seals every
// field into one .frazd dataset archive — racing the codec registry per
// field unless the request names a codec — and shelves the archive in the
// same content-addressed store single-field archives use. GET
// /v1/datasets/{id}/fields/{name} then decodes exactly one field out of the
// stored archive: the directory seek and single-payload read mean a request
// for one field of a large snapshot never decompresses its neighbours.

const epDatasets = "datasets"

// datasetCodecLabel marks a stored archive as a dataset (the store is shared
// with single-field containers; the Codec slot records the kind, not a
// codec, because each field carries its own codec record inside).
const datasetCodecLabel = "dataset"

func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, epDatasets, http.StatusMethodNotAllowed, apiError{Error: "POST a multipart body, one part per field"})
		return
	}
	p, err := parseCompressParams(r)
	if err != nil {
		s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	opts, err := p.options(s)
	if err != nil {
		s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// The dataset endpoint defaults to the per-field codec race; an explicit
	// X-Fraz-Codec pins every field to one codec instead.
	codec := fraz.CodecAuto
	if c := param(r, "Codec"); c != "" {
		codec = c
	}

	leave := s.admit(w, r, epDatasets)
	if leave == nil {
		return
	}
	defer leave()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	mr, err := r.MultipartReader()
	if err != nil {
		s.fail(w, epDatasets, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("datasets are uploaded as multipart/form-data, one part per field: %v", err)})
		return
	}

	elems := 1
	for _, e := range p.shape {
		elems *= e
	}
	elemSize := 4
	if p.wide {
		elemSize = 8
	}
	want := int64(elems) * int64(elemSize)
	if want > s.cfg.MaxFieldBytes {
		s.fail(w, epDatasets, http.StatusRequestEntityTooLarge,
			apiError{Error: fmt.Sprintf("each field of %d bytes exceeds the %d-byte limit", want, s.cfg.MaxFieldBytes)})
		return
	}

	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.reject(w, epDatasets, http.StatusServiceUnavailable, "queue-timeout", "timed out waiting for a worker slot")
		return
	}
	defer release()
	if s.sealHook != nil {
		s.sealHook()
	}

	var arc bytes.Buffer
	ds, err := fraz.NewDataset(&arc, append([]fraz.Option{fraz.Codec(codec)}, opts...)...)
	if err != nil {
		s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	type fieldReport struct {
		Name     string  `json:"name"`
		Codec    string  `json:"codec"`
		Bound    float64 `json:"bound"`
		Ratio    float64 `json:"ratio"`
		Bytes    int64   `json:"bytes"`
		Achieved float64 `json:"achieved,omitempty"`
		Raced    int     `json:"raced,omitempty"`
	}
	var fields []fieldReport
	var rawBytes int64
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading multipart body: %v", err)})
			return
		}
		name := part.FormName()
		if name == "" {
			name = part.FileName()
		}
		body, err := io.ReadAll(io.LimitReader(part, want+1))
		part.Close()
		if err != nil {
			s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: fmt.Sprintf("field %s: reading part: %v", name, err)})
			return
		}
		if int64(len(body)) != want {
			s.fail(w, epDatasets, http.StatusBadRequest,
				apiError{Error: fmt.Sprintf("field %s is %d bytes; shape %v at %d bytes/value needs exactly %d", name, len(body), p.shape, elemSize, want)})
			return
		}

		start := time.Now()
		var res *fraz.FieldResult
		if p.wide {
			res, err = ds.AddField64(ctx, name, decodeRaw64(body), p.shape)
		} else {
			res, err = ds.AddField(ctx, name, decodeRaw32(body), p.shape)
		}
		if err != nil {
			s.datasetFieldError(w, name, err)
			return
		}
		s.met.sealSeconds.get(res.Codec).observe(time.Since(start).Seconds())
		s.met.bytesIn.add(uint64(want))
		rawBytes += want
		fr := fieldReport{
			Name:     name,
			Codec:    res.Codec,
			Bound:    res.ErrorBound,
			Ratio:    res.Ratio,
			Bytes:    res.BytesWritten,
			Achieved: res.AchievedValue,
		}
		if res.Selection != nil {
			fr.Raced = len(res.Selection.Raced())
		}
		fields = append(fields, fr)
	}
	if len(fields) == 0 {
		s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: "the multipart body carried no field parts"})
		return
	}
	if err := ds.Close(); err != nil {
		s.fail(w, epDatasets, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	s.met.bytesSealed.add(uint64(arc.Len()))

	id, ok := s.store.put(arc.Bytes(), archiveMeta{
		Codec: datasetCodecLabel,
		DType: dtypeName(p.wide),
		Shape: shapeString(p.shape),
	})
	if !ok {
		s.fail(w, epDatasets, http.StatusInsufficientStorage,
			apiError{Error: "dataset archive exceeds the server's store budget"})
		return
	}

	h := w.Header()
	h.Set("Location", "/v1/datasets/"+id)
	h.Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	if err := json.NewEncoder(w).Encode(map[string]any{
		"id":              id,
		"bytes":           arc.Len(),
		"fields":          fields,
		"aggregate_ratio": float64(rawBytes) / float64(arc.Len()),
	}); err != nil {
		s.cfg.Log.Printf("frazd: writing dataset response: %v", err)
	}
	s.met.observeRequest(epDatasets, http.StatusCreated)
}

// datasetFieldError maps a failed per-field seal onto the API's status
// codes, naming the field so a many-field upload fails diagnosably.
func (s *Server) datasetFieldError(w http.ResponseWriter, name string, err error) {
	var inf *fraz.InfeasibleError
	switch {
	case errors.As(err, &inf):
		s.fail(w, epDatasets, http.StatusUnprocessableEntity,
			apiError{Error: fmt.Sprintf("field %s: %v", name, err), ClosestRatio: inf.ClosestRatio})
	case errors.Is(err, fraz.ErrDuplicateField):
		s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: fmt.Sprintf("field %s: %v", name, err)})
	case errors.Is(err, context.DeadlineExceeded):
		s.reject(w, epDatasets, http.StatusServiceUnavailable, "timeout", "request deadline exceeded mid-tune")
	case errors.Is(err, context.Canceled):
		s.met.observeRequest(epDatasets, 499)
	default:
		s.fail(w, epDatasets, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("field %s: %v", name, err)})
	}
}

// handleDatasetGet serves GET /v1/datasets/{id} (the directory, as JSON) and
// GET /v1/datasets/{id}/fields/{name}[?step=n] (one lazily decoded field,
// raw little-endian).
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		s.fail(w, epDatasets, http.StatusMethodNotAllowed, apiError{Error: "GET /v1/datasets/{id} or /v1/datasets/{id}/fields/{name}"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	id, sub, hasSub := strings.Cut(rest, "/")
	if id == "" {
		s.fail(w, epDatasets, http.StatusNotFound, apiError{Error: "dataset ids look like /v1/datasets/<id>"})
		return
	}
	a, ok := s.store.get(id)
	if !ok || a.meta.Codec != datasetCodecLabel {
		s.fail(w, epDatasets, http.StatusNotFound, apiError{Error: fmt.Sprintf("no stored dataset %q", id)})
		return
	}
	ds, err := fraz.OpenDataset(bytes.NewReader(a.data))
	if err != nil {
		// The store is content-addressed and in-memory, so this means the
		// archive was corrupt at upload — a server bug, not a client one.
		s.fail(w, epDatasets, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}

	if !hasSub {
		type entry struct {
			Name  string `json:"name"`
			Step  int    `json:"step"`
			Bytes int64  `json:"bytes"`
		}
		var entries []entry
		for _, fi := range ds.Fields() {
			entries = append(entries, entry{Name: fi.Name, Step: fi.Step, Bytes: fi.Bytes})
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{
			"id":     id,
			"bytes":  len(a.data),
			"dtype":  a.meta.DType,
			"shape":  a.meta.Shape,
			"fields": entries,
		}); err != nil {
			s.cfg.Log.Printf("frazd: writing dataset directory: %v", err)
		}
		s.met.observeRequest(epDatasets, http.StatusOK)
		return
	}

	name, found := strings.CutPrefix(sub, "fields/")
	if !found || name == "" || strings.Contains(name, "/") {
		s.fail(w, epDatasets, http.StatusNotFound, apiError{Error: "field downloads look like /v1/datasets/<id>/fields/<name>"})
		return
	}
	step := 0
	if v := r.URL.Query().Get("step"); v != "" {
		step, err = strconv.Atoi(v)
		if err != nil || step < 0 {
			s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad step %q", v)})
			return
		}
	}

	leave := s.admit(w, r, epDatasets)
	if leave == nil {
		return
	}
	defer leave()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.reject(w, epDatasets, http.StatusServiceUnavailable, "queue-timeout", "timed out waiting for a worker slot")
		return
	}
	defer release()

	res, err := ds.OpenFieldStep(ctx, name, step)
	if err != nil {
		switch {
		case errors.Is(err, fraz.ErrFieldNotFound):
			s.fail(w, epDatasets, http.StatusNotFound, apiError{Error: err.Error()})
		case errors.Is(err, fraz.ErrCorrupt), errors.Is(err, fraz.ErrUnknownCodec):
			s.fail(w, epDatasets, http.StatusBadRequest, apiError{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded):
			s.reject(w, epDatasets, http.StatusServiceUnavailable, "timeout", "request deadline exceeded mid-decode")
		default:
			s.fail(w, epDatasets, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}

	var raw []byte
	if res.Data64 != nil {
		raw = encodeRaw64(res.Data64)
	} else {
		raw = encodeRaw32(res.Data)
	}
	s.met.bytesOpened.add(uint64(len(raw)))

	h := w.Header()
	h.Set("X-Fraz-Codec", res.Codec)
	h.Set("X-Fraz-DType", res.DType)
	h.Set("X-Fraz-Shape", shapeString(res.Shape))
	h.Set("X-Fraz-Bound", formatFloat(res.ErrorBound))
	h.Set("X-Fraz-Ratio", formatFloat(res.Ratio))
	h.Set("X-Fraz-Step", strconv.Itoa(step))
	if o := res.Objective; o != nil {
		h.Set("X-Fraz-Objective", o.Name)
		h.Set("X-Fraz-Target", formatFloat(o.Target))
		h.Set("X-Fraz-Achieved", formatFloat(o.Achieved))
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(raw)))
	if r.Method == http.MethodHead {
		s.met.observeRequest(epDatasets, http.StatusOK)
		return
	}
	if _, err := w.Write(raw); err != nil {
		s.cfg.Log.Printf("frazd: streaming field: %v", err)
	}
	s.met.observeRequest(epDatasets, http.StatusOK)
}
