package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// heldServer builds a server whose seal stage blocks until released, so
// tests can park requests at a known point inside a worker slot and probe
// the admission gate deterministically.
type heldServer struct {
	s       *Server
	ts      *httptest.Server
	entered chan struct{} // one receive per request reaching the seal stage
	release chan struct{} // one send lets one held request proceed
}

func newHeldServer(t *testing.T, cfg Config) *heldServer {
	t.Helper()
	h := &heldServer{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	h.s = New(cfg)
	h.s.sealHook = func() {
		h.entered <- struct{}{}
		<-h.release
	}
	h.ts = httptest.NewServer(h.s.Handler())
	t.Cleanup(func() {
		// Unstick anything still parked before tearing the listener down.
		close(h.release)
		h.ts.Close()
	})
	return h
}

// start fires a compress request for the tenant in the background and
// returns a channel carrying its final status code.
func (h *heldServer) start(t *testing.T, tenant string) <-chan int {
	t.Helper()
	done := make(chan int, 1)
	go func() {
		resp := postCompress(t, h.ts.URL, rawBody(false), map[string]string{
			"X-Fraz-Shape":  "16x12x10",
			"X-Fraz-Tenant": tenant,
		})
		readAll(t, resp)
		done <- resp.StatusCode
	}()
	return done
}

func (h *heldServer) waitHeld(t *testing.T) {
	t.Helper()
	select {
	case <-h.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no request reached the seal stage")
	}
}

// waitQueued polls until n requests are admitted but not running.
func (h *heldServer) waitQueued(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.s.adm.queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want >= %d", h.s.adm.queued(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func requireStatus(t *testing.T, done <-chan int, want int) {
	t.Helper()
	select {
	case got := <-done:
		if got != want {
			t.Fatalf("status %d, want %d", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("request did not finish")
	}
}

// TestPerTenantSaturationReturns429 is the acceptance criterion: with a
// per-tenant limit of N, the N+1st concurrent request from that tenant is
// rejected with 429 and a Retry-After header while another tenant still
// gets in.
func TestPerTenantSaturationReturns429(t *testing.T) {
	const n = 2
	h := newHeldServer(t, Config{Concurrency: n, QueueDepth: 8, PerTenant: n, RetryAfter: 3 * time.Second})

	inflight := make([]<-chan int, n)
	for i := range inflight {
		inflight[i] = h.start(t, "alice")
		h.waitHeld(t) // each occupies a worker slot before the next starts
	}

	// The N+1st concurrent request from alice: immediate 429.
	resp := postCompress(t, h.ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape":  "16x12x10",
		"X-Fraz-Tenant": "alice",
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	// A different tenant is admitted (it queues for a slot, which is fine —
	// admission succeeded; release everything and it completes).
	other := h.start(t, "bob")
	h.waitQueued(t, 1)

	for range inflight {
		h.release <- struct{}{}
	}
	h.release <- struct{}{} // bob's turn in the seal stage
	for _, done := range inflight {
		requireStatus(t, done, http.StatusOK)
	}
	requireStatus(t, other, http.StatusOK)

	// With the system drained, alice is welcome again.
	again := h.start(t, "alice")
	h.waitHeld(t)
	h.release <- struct{}{}
	requireStatus(t, again, http.StatusOK)
}

// TestQueueFullReturns429 fills workers and the bounded queue with distinct
// tenants; the next arrival is rejected rather than queued unboundedly.
func TestQueueFullReturns429(t *testing.T) {
	h := newHeldServer(t, Config{Concurrency: 1, QueueDepth: 1, PerTenant: 1})

	running := h.start(t, "a")
	h.waitHeld(t)
	queued := h.start(t, "b") // fills the queue seat
	h.waitQueued(t, 1)

	resp := postCompress(t, h.ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape":  "16x12x10",
		"X-Fraz-Tenant": "c",
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	h.release <- struct{}{}
	h.release <- struct{}{}
	requireStatus(t, running, http.StatusOK)
	requireStatus(t, queued, http.StatusOK)
}

// TestDrainCompletesInFlight is the graceful-shutdown criterion: after
// BeginDrain, new work gets 503 + Retry-After but requests already admitted
// run to completion.
func TestDrainCompletesInFlight(t *testing.T) {
	h := newHeldServer(t, Config{Concurrency: 2})

	inflight := h.start(t, "a")
	h.waitHeld(t)

	h.s.BeginDrain()
	if !h.s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	resp := postCompress(t, h.ts.URL, rawBody(false), map[string]string{
		"X-Fraz-Shape": "16x12x10",
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection without Retry-After")
	}

	// The in-flight request is unaffected.
	h.release <- struct{}{}
	requireStatus(t, inflight, http.StatusOK)
}

// TestRequestTimeoutWhileQueued caps queueing time by the request deadline:
// a request stuck waiting for a worker slot gives up with 503.
func TestRequestTimeoutWhileQueued(t *testing.T) {
	h := newHeldServer(t, Config{Concurrency: 1, QueueDepth: 4, PerTenant: 4,
		RequestTimeout: 200 * time.Millisecond})

	// Occupy the only slot. Its own deadline will also fire, so don't
	// assert on its status — only that the queued request times out.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postCompress(t, h.ts.URL, rawBody(false), map[string]string{
			"X-Fraz-Shape": "16x12x10", "X-Fraz-Tenant": "a",
		})
		readAll(t, resp)
	}()
	h.waitHeld(t)

	queued := h.start(t, "b")
	requireStatus(t, queued, http.StatusServiceUnavailable)

	h.release <- struct{}{}
	wg.Wait()
}
