package server

import (
	"log"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"fraz"
)

// Config sizes the service. The zero value of every field selects a
// production-shaped default, so server.New(server.Config{}) is a working
// server tuned to the machine it runs on.
type Config struct {
	// Concurrency is the worker-pool size: how many requests may tune, seal,
	// or open at once. Default GOMAXPROCS — the pool exists to keep the
	// machine busy, not oversubscribed.
	Concurrency int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot beyond the pool itself. Requests past the bound are rejected with
	// 429 immediately. Default 2×Concurrency.
	QueueDepth int
	// PerTenant bounds one tenant's requests in the system (queued +
	// running); the next concurrent request from that tenant gets 429 +
	// Retry-After. Tenants are named by the X-Fraz-Tenant header (missing =
	// "anonymous"). Default Concurrency — one tenant may fill the pool but
	// never the queue on top of it.
	PerTenant int
	// SealWorkers is the intra-request parallelism handed to the fraz
	// Client (block compressions per seal). Default 1: under concurrent
	// load, cross-request parallelism from the pool already saturates the
	// machine, and unshared seals keep per-request latency predictable.
	SealWorkers int
	// CacheEntries bounds the server-wide evaluation cache shared by every
	// request (<=0 = the fraz default, 65536 entries).
	CacheEntries int
	// MaxFieldBytes caps an uploaded raw field; bigger requests get 413.
	// Default 1 GiB.
	MaxFieldBytes int64
	// MaxArchiveBytes caps an uploaded .fraz archive on the decompress
	// path. Default MaxFieldBytes (an archive bigger than any admissible
	// field is nonsense).
	MaxArchiveBytes int64
	// StoreMaxBytes and StoreMaxEntries bound the server-side archive store
	// (?store=1). Defaults: 256 MiB, 1024 archives.
	StoreMaxBytes   int64
	StoreMaxEntries int
	// RequestTimeout caps one request end to end, queueing included; the
	// deadline cancels an in-flight tune through its context. Default 120s.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 rejections. Default 1s.
	RetryAfter time.Duration
	// Log receives one line per failed request; nil = the stdlib default
	// logger.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Concurrency
	}
	if c.PerTenant <= 0 {
		c.PerTenant = c.Concurrency
	}
	if c.SealWorkers <= 0 {
		c.SealWorkers = 1
	}
	if c.MaxFieldBytes <= 0 {
		c.MaxFieldBytes = 1 << 30
	}
	if c.MaxArchiveBytes <= 0 {
		c.MaxArchiveBytes = c.MaxFieldBytes
	}
	if c.StoreMaxBytes <= 0 {
		c.StoreMaxBytes = 256 << 20
	}
	if c.StoreMaxEntries <= 0 {
		c.StoreMaxEntries = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the frazd service: an http.Handler plus the shared state behind
// it — worker pool, admission gate, server-wide evaluation cache, archive
// store, and metrics. Build one with New, mount Handler, and call
// BeginDrain before shutting the http.Server down.
type Server struct {
	cfg      Config
	cache    *fraz.EvalCache
	adm      *admission
	store    *archiveStore
	met      serverMetrics
	draining atomic.Bool

	// sealHook, when non-nil, runs inside the worker slot before the seal
	// starts. Tests use it to hold requests at a known point.
	sealHook func()
}

// New builds a Server from the config (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		cache: fraz.NewEvalCache(cfg.CacheEntries),
		adm:   newAdmission(cfg.Concurrency, cfg.QueueDepth, cfg.PerTenant),
		store: newArchiveStore(cfg.StoreMaxBytes, cfg.StoreMaxEntries),
	}
}

// Handler returns the service's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compress", s.handleCompress)
	mux.HandleFunc("/v1/decompress", s.handleDecompress)
	mux.HandleFunc("/v1/archives/", s.handleArchive)
	mux.HandleFunc("/v1/datasets", s.handleDatasetCreate)
	mux.HandleFunc("/v1/datasets/", s.handleDatasetGet)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// BeginDrain flips the server into drain mode: /readyz turns 503 (so load
// balancers stop routing here), and new compress/decompress work is
// rejected with 503 + Retry-After while requests already admitted run to
// completion. The caller then lets http.Server.Shutdown wait for the
// in-flight handlers. Idempotent.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CacheStats exposes the server-wide evaluation cache counters (the same
// numbers /metrics exports), for tests and embedding programs.
func (s *Server) CacheStats() fraz.CacheStats { return s.cache.Stats() }

func (s *Server) gauges() gaugeSnapshot {
	cs := s.cache.Stats()
	bytes, entries := s.store.stats()
	g := gaugeSnapshot{
		running:        s.adm.running.Load(),
		queued:         s.adm.queued(),
		cacheHits:      cs.Hits,
		cacheMisses:    cs.Misses,
		cacheEvictions: cs.Evictions,
		cacheEntries:   cs.Entries,
		cacheHitRate:   cs.HitRate(),
		storeBytes:     bytes,
		storeEntries:   entries,
	}
	if s.draining.Load() {
		g.draining = 1
	}
	return g
}
