package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzDecompressHandler throws arbitrary bytes at the archive-upload path.
// The handler must answer every input with a well-formed HTTP status — 200
// for a valid container, 4xx for garbage — and never panic or hang.
func FuzzDecompressHandler(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a container"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	// Seed one genuine archive so the corpus explores the valid-header
	// neighborhood, where parser bugs actually live.
	s := New(Config{MaxArchiveBytes: 1 << 20})
	seed := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/compress", bytes.NewReader(rawBody(false)))
	req.Header.Set("X-Fraz-Shape", "16x12x10")
	s.Handler().ServeHTTP(seed, req)
	if seed.Code == http.StatusOK {
		f.Add(seed.Body.Bytes())
	}

	h := s.Handler()
	f.Fuzz(func(t *testing.T, archive []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/decompress?verify=1", bytes.NewReader(archive))
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusUnprocessableEntity, http.StatusServiceUnavailable:
		default:
			t.Fatalf("decompress handler answered %d for %d-byte input", rec.Code, len(archive))
		}
	})
}
