package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the ops surface's measurement layer: a minimal, stdlib-only
// Prometheus-text-format registry. The server needs a fixed, small set of
// instrument shapes — counters, gauges, and latency histograms with one
// label — and hand-rolling them keeps the binary dependency-free while
// /metrics stays scrapeable by any Prometheus-compatible collector.

// counter is a monotonically increasing uint64 metric.
type counter struct {
	v atomic.Uint64
}

func (c *counter) add(n uint64) { c.v.Add(n) }
func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) value() uint64 {
	return c.v.Load()
}

// labeledCounters is a counter family keyed by one pre-rendered label set,
// e.g. `endpoint="compress",code="200"`.
type labeledCounters struct {
	mu sync.Mutex
	m  map[string]*counter
}

func (l *labeledCounters) get(labels string) *counter {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]*counter)
	}
	c, ok := l.m[labels]
	if !ok {
		c = &counter{}
		l.m[labels] = c
	}
	return c
}

// snapshot returns the label sets in deterministic order, so consecutive
// scrapes diff cleanly.
func (l *labeledCounters) snapshot() []struct {
	labels string
	value  uint64
} {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.m))
	for k := range l.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		labels string
		value  uint64
	}, len(keys))
	for i, k := range keys {
		out[i].labels = k
		out[i].value = l.m[k].value()
	}
	return out
}

// sealBuckets are the upper bounds (seconds) of the per-codec seal-latency
// histogram: log-spaced from 1ms to 10s, the plausible range from an szx
// seal of a tiny field to a quality-objective tune of a large one.
var sealBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a Prometheus-style cumulative histogram. The sum is kept as
// float64 bits in an atomic CAS loop so observe stays lock-free.
type histogram struct {
	counts  []atomic.Uint64 // one per bucket, non-cumulative; rendered cumulatively
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(sealBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(sealBuckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// histogramVec is a histogram family keyed by one label value (codec name).
type histogramVec struct {
	mu sync.Mutex
	m  map[string]*histogram
}

func (hv *histogramVec) get(key string) *histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if hv.m == nil {
		hv.m = make(map[string]*histogram)
	}
	h, ok := hv.m[key]
	if !ok {
		h = newHistogram()
		hv.m[key] = h
	}
	return h
}

func (hv *histogramVec) keys() []string {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	keys := make([]string, 0, len(hv.m))
	for k := range hv.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// serverMetrics is every instrument the server exports.
type serverMetrics struct {
	requests    labeledCounters // frazd_requests_total{endpoint,code}
	rejected    labeledCounters // frazd_rejected_total{reason}
	bytesIn     counter         // raw field bytes accepted for compression
	bytesSealed counter         // archive bytes produced
	bytesOpened counter         // raw field bytes reconstructed
	sealSeconds histogramVec    // frazd_seal_seconds{codec}
}

func (m *serverMetrics) observeRequest(endpoint string, code int) {
	m.requests.get(fmt.Sprintf("endpoint=%q,code=\"%d\"", endpoint, code)).inc()
}

func (m *serverMetrics) observeRejection(reason string) {
	m.rejected.get(fmt.Sprintf("reason=%q", reason)).inc()
}

// writeMetrics renders the exposition. The gauge values that live outside
// serverMetrics (queue depth, in-flight tunes, cache counters) are passed in
// by the server at scrape time, so this layer holds no back-pointer.
func (m *serverMetrics) writeTo(w io.Writer, g gaugeSnapshot) {
	fmt.Fprintf(w, "# HELP frazd_tunes_in_flight Requests currently holding a worker slot.\n")
	fmt.Fprintf(w, "# TYPE frazd_tunes_in_flight gauge\n")
	fmt.Fprintf(w, "frazd_tunes_in_flight %d\n", g.running)
	fmt.Fprintf(w, "# HELP frazd_queue_depth Admitted requests waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE frazd_queue_depth gauge\n")
	fmt.Fprintf(w, "frazd_queue_depth %d\n", g.queued)
	fmt.Fprintf(w, "# HELP frazd_draining Whether the server is draining (rejecting new work).\n")
	fmt.Fprintf(w, "# TYPE frazd_draining gauge\n")
	fmt.Fprintf(w, "frazd_draining %d\n", g.draining)

	fmt.Fprintf(w, "# HELP frazd_requests_total Completed requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE frazd_requests_total counter\n")
	for _, c := range m.requests.snapshot() {
		fmt.Fprintf(w, "frazd_requests_total{%s} %d\n", c.labels, c.value)
	}
	fmt.Fprintf(w, "# HELP frazd_rejected_total Requests rejected before doing work, by reason.\n")
	fmt.Fprintf(w, "# TYPE frazd_rejected_total counter\n")
	for _, c := range m.rejected.snapshot() {
		fmt.Fprintf(w, "frazd_rejected_total{%s} %d\n", c.labels, c.value)
	}

	fmt.Fprintf(w, "# HELP frazd_field_bytes_total Raw field bytes accepted for compression.\n")
	fmt.Fprintf(w, "# TYPE frazd_field_bytes_total counter\n")
	fmt.Fprintf(w, "frazd_field_bytes_total %d\n", m.bytesIn.value())
	fmt.Fprintf(w, "# HELP frazd_sealed_bytes_total Archive bytes produced by seals (rate() of this is bytes sealed per second).\n")
	fmt.Fprintf(w, "# TYPE frazd_sealed_bytes_total counter\n")
	fmt.Fprintf(w, "frazd_sealed_bytes_total %d\n", m.bytesSealed.value())
	fmt.Fprintf(w, "# HELP frazd_opened_bytes_total Raw field bytes reconstructed by decompressions.\n")
	fmt.Fprintf(w, "# TYPE frazd_opened_bytes_total counter\n")
	fmt.Fprintf(w, "frazd_opened_bytes_total %d\n", m.bytesOpened.value())

	fmt.Fprintf(w, "# HELP frazd_cache_hits_total Evaluation-cache hits across all requests.\n")
	fmt.Fprintf(w, "# TYPE frazd_cache_hits_total counter\n")
	fmt.Fprintf(w, "frazd_cache_hits_total %d\n", g.cacheHits)
	fmt.Fprintf(w, "# HELP frazd_cache_misses_total Evaluation-cache misses (compressor evaluations performed).\n")
	fmt.Fprintf(w, "# TYPE frazd_cache_misses_total counter\n")
	fmt.Fprintf(w, "frazd_cache_misses_total %d\n", g.cacheMisses)
	fmt.Fprintf(w, "# HELP frazd_cache_evictions_total Evaluation-cache entries evicted to stay under the size cap.\n")
	fmt.Fprintf(w, "# TYPE frazd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "frazd_cache_evictions_total %d\n", g.cacheEvictions)
	fmt.Fprintf(w, "# HELP frazd_cache_entries Evaluation-cache entries currently resident.\n")
	fmt.Fprintf(w, "# TYPE frazd_cache_entries gauge\n")
	fmt.Fprintf(w, "frazd_cache_entries %d\n", g.cacheEntries)
	fmt.Fprintf(w, "# HELP frazd_cache_hit_rate Hits over hits+misses since start.\n")
	fmt.Fprintf(w, "# TYPE frazd_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "frazd_cache_hit_rate %g\n", g.cacheHitRate)

	fmt.Fprintf(w, "# HELP frazd_archive_store_bytes Bytes held by the server-side archive store.\n")
	fmt.Fprintf(w, "# TYPE frazd_archive_store_bytes gauge\n")
	fmt.Fprintf(w, "frazd_archive_store_bytes %d\n", g.storeBytes)
	fmt.Fprintf(w, "# HELP frazd_archive_store_entries Archives held by the server-side archive store.\n")
	fmt.Fprintf(w, "# TYPE frazd_archive_store_entries gauge\n")
	fmt.Fprintf(w, "frazd_archive_store_entries %d\n", g.storeEntries)

	fmt.Fprintf(w, "# HELP frazd_seal_seconds Tune+seal wall time per codec.\n")
	fmt.Fprintf(w, "# TYPE frazd_seal_seconds histogram\n")
	for _, codec := range m.sealSeconds.keys() {
		h := m.sealSeconds.get(codec)
		cum := uint64(0)
		for i, le := range sealBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "frazd_seal_seconds_bucket{codec=%q,le=%q} %d\n", codec, trimFloat(le), cum)
		}
		cum += h.counts[len(sealBuckets)].Load()
		fmt.Fprintf(w, "frazd_seal_seconds_bucket{codec=%q,le=\"+Inf\"} %d\n", codec, cum)
		fmt.Fprintf(w, "frazd_seal_seconds_sum{codec=%q} %g\n", codec, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "frazd_seal_seconds_count{codec=%q} %d\n", codec, h.count.Load())
	}
}

// gaugeSnapshot carries the point-in-time gauge values the server computes
// at scrape time.
type gaugeSnapshot struct {
	running, queued                        int64
	draining                               int
	cacheHits, cacheMisses, cacheEvictions uint64
	cacheEntries                           int
	cacheHitRate                           float64
	storeBytes                             int64
	storeEntries                           int
}

// trimFloat renders a bucket bound the way Prometheus clients conventionally
// do: shortest decimal form.
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
