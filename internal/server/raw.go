package server

import (
	"encoding/binary"
	"math"
)

// Raw field bodies are little-endian IEEE-754 on the wire — the layout
// SDRBench archives, the datagen tool, and the fraz CLI's -in/-out files
// all share — regardless of host byte order.

func decodeRaw32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func decodeRaw64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func encodeRaw32(data []float32) []byte {
	out := make([]byte, len(data)*4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func encodeRaw64(data []float64) []byte {
	out := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}
