package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// This file implements frazd's admission control: the decision, made before
// any CPU is spent, of whether a request may enter the system at all — and
// the worker pool that then bounds how many admitted requests tune or seal
// concurrently. The split matters for backpressure semantics: saturation is
// reported immediately (429 + Retry-After), never by letting requests queue
// unboundedly while the client waits blind.

// errTenantSaturated rejects a request whose tenant already has its full
// concurrency allowance in the system (queued or running).
var errTenantSaturated = errors.New("server: tenant concurrency limit reached")

// errQueueFull rejects a request when the admission queue (everything
// admitted but not yet finished) is at capacity.
var errQueueFull = errors.New("server: admission queue full")

// admission is the two-stage gate: enter() reserves a seat in the bounded
// system (per-tenant fairness + global queue bound, both non-blocking), and
// acquire() then waits for one of the worker slots that bound concurrent
// CPU work.
type admission struct {
	// slots is the worker pool: a buffered channel used as a counting
	// semaphore, capacity = Config.Concurrency.
	slots chan struct{}
	// maxAdmitted bounds everything in the system: running + queued.
	maxAdmitted int
	admitted    atomic.Int64
	running     atomic.Int64

	perTenant int
	mu        sync.Mutex
	tenants   map[string]int
}

func newAdmission(concurrency, queueDepth, perTenant int) *admission {
	return &admission{
		slots:       make(chan struct{}, concurrency),
		maxAdmitted: concurrency + queueDepth,
		perTenant:   perTenant,
		tenants:     make(map[string]int),
	}
}

// enter reserves the tenant's and the queue's seat. It never blocks: a
// request that cannot be seated is the caller's cue to answer 429. The
// returned leave func must be called exactly once when the request finishes
// (success or failure).
func (a *admission) enter(tenant string) (leave func(), err error) {
	a.mu.Lock()
	if a.tenants[tenant] >= a.perTenant {
		a.mu.Unlock()
		return nil, errTenantSaturated
	}
	a.tenants[tenant]++
	a.mu.Unlock()

	if a.admitted.Add(1) > int64(a.maxAdmitted) {
		a.admitted.Add(-1)
		a.leaveTenant(tenant)
		return nil, errQueueFull
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			a.admitted.Add(-1)
			a.leaveTenant(tenant)
		})
	}, nil
}

func (a *admission) leaveTenant(tenant string) {
	a.mu.Lock()
	if a.tenants[tenant] <= 1 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant]--
	}
	a.mu.Unlock()
}

// acquire blocks until a worker slot frees up or the context ends; the
// request's deadline therefore caps its queueing time too. The returned
// release func must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	a.running.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.running.Add(-1)
			<-a.slots
		})
	}, nil
}

// queued reports admitted requests not currently holding a worker slot.
func (a *admission) queued() int64 {
	q := a.admitted.Load() - a.running.Load()
	if q < 0 {
		q = 0
	}
	return q
}
