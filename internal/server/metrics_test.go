package server

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSharedCachePayoffAcrossRequests is the acceptance criterion for the
// server-wide cache: uploading the same field twice shows the second tune
// hitting the cache — the hit counter increments and the second request
// reports cache hits where the first reported none.
func TestSharedCachePayoffAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	hdr := map[string]string{"X-Fraz-Shape": "16x12x10"}

	first := postCompress(t, ts.URL, rawBody(false), hdr)
	readAll(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first upload: status %d", first.StatusCode)
	}
	firstHits, _ := strconv.Atoi(first.Header.Get("X-Fraz-Cache-Hits"))
	firstEvals, _ := strconv.Atoi(first.Header.Get("X-Fraz-Evaluations"))
	afterFirst := s.CacheStats()
	if afterFirst.Misses == 0 {
		t.Fatalf("first upload produced no cache misses: %+v", afterFirst)
	}

	second := postCompress(t, ts.URL, rawBody(false), hdr)
	readAll(t, second)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second upload: status %d", second.StatusCode)
	}
	secondHits, _ := strconv.Atoi(second.Header.Get("X-Fraz-Cache-Hits"))
	secondEvals, _ := strconv.Atoi(second.Header.Get("X-Fraz-Evaluations"))
	afterSecond := s.CacheStats()

	if secondHits == 0 {
		t.Fatalf("second identical upload reported no cache hits (first %d/%d, second %d/%d)",
			firstHits, firstEvals, secondHits, secondEvals)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Fatalf("server-wide hit counter did not grow: %d -> %d", afterFirst.Hits, afterSecond.Hits)
	}
	freshFirst := afterFirst.Misses
	freshSecond := afterSecond.Misses - afterFirst.Misses
	if freshSecond >= freshFirst {
		t.Fatalf("second upload evaluated as much as the first: %d vs %d fresh misses", freshSecond, freshFirst)
	}

	// The payoff is visible on the ops surface too.
	m := scrapeMetrics(t, ts.URL)
	if m["frazd_cache_hits_total"] == 0 {
		t.Fatal("frazd_cache_hits_total = 0 after a cache-hit upload")
	}
	if m["frazd_cache_hit_rate"] <= 0 || m["frazd_cache_hit_rate"] >= 1 {
		t.Fatalf("frazd_cache_hit_rate = %g, want in (0,1)", m["frazd_cache_hit_rate"])
	}
}

// TestMetricsExposition exercises the whole scrape after a little traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postCompress(t, ts.URL, rawBody(false), map[string]string{"X-Fraz-Shape": "16x12x10"})
	archive := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: status %d", resp.StatusCode)
	}
	dresp, err := http.Post(ts.URL+"/v1/decompress", "application/x-fraz", strings.NewReader(string(archive)))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, dresp)
	badresp := postCompress(t, ts.URL, nil, map[string]string{"X-Fraz-Shape": "bogus"})
	readAll(t, badresp)

	m := scrapeMetrics(t, ts.URL)
	checks := []struct {
		name string
		want float64
	}{
		{`frazd_requests_total{endpoint="compress",code="200"}`, 1},
		{`frazd_requests_total{endpoint="decompress",code="200"}`, 1},
		{`frazd_requests_total{endpoint="compress",code="400"}`, 1},
		{`frazd_tunes_in_flight`, 0},
		{`frazd_queue_depth`, 0},
		{`frazd_draining`, 0},
		{`frazd_field_bytes_total`, float64(len(rawBody(false)))},
		{`frazd_opened_bytes_total`, float64(len(rawBody(false)))},
		{`frazd_sealed_bytes_total`, float64(len(archive))},
		{`frazd_seal_seconds_count{codec="sz:abs"}`, 1},
	}
	for _, c := range checks {
		got, ok := m[c.name]
		if !ok {
			t.Errorf("metric %s missing from scrape", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	if _, ok := m[`frazd_seal_seconds_bucket{codec="sz:abs",le="+Inf"}`]; !ok {
		t.Error("seal histogram +Inf bucket missing")
	}
	if m[`frazd_cache_misses_total`] == 0 {
		t.Error("frazd_cache_misses_total = 0 after a tune")
	}

	// Rejections are labeled by reason.
	s2, ts2 := newTestServer(t, Config{})
	s2.BeginDrain()
	r := postCompress(t, ts2.URL, rawBody(false), map[string]string{"X-Fraz-Shape": "16x12x10"})
	readAll(t, r)
	m2 := scrapeMetrics(t, ts2.URL)
	if m2[`frazd_rejected_total{reason="draining"}`] != 1 {
		t.Errorf("draining rejection not counted: %v", m2[`frazd_rejected_total{reason="draining"}`])
	}
	if m2[`frazd_draining`] != 1 {
		t.Error("frazd_draining gauge not set")
	}
}
