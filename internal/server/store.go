package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// This file is the server-side archive shelf: compressed containers a
// client asked the server to keep (?store=1) for later download or
// decompression by id. Ids are content-addressed (truncated SHA-256 of the
// archive bytes), so re-uploading the same field at the same tuning
// parameters lands on the same id instead of duplicating storage. The store
// is size-bounded with FIFO eviction — it is a staging area between
// pipeline stages, not durable storage.

// archiveMeta is what the store remembers about an archive beyond its
// bytes; it is rendered into response headers on download.
type archiveMeta struct {
	Codec      string
	DType      string
	Shape      string
	ErrorBound float64
	Ratio      float64
	Blocks     int
	Objective  string
	Target     float64
	Achieved   float64
}

type storedArchive struct {
	id   string
	data []byte
	meta archiveMeta
}

// archiveStore is a bounded in-memory map of id → archive with FIFO
// eviction by byte budget and entry count.
type archiveStore struct {
	maxBytes   int64
	maxEntries int

	mu    sync.Mutex
	m     map[string]*storedArchive
	order []string // insertion order, oldest first
	bytes int64
}

func newArchiveStore(maxBytes int64, maxEntries int) *archiveStore {
	return &archiveStore{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		m:          make(map[string]*storedArchive),
	}
}

// archiveID is the content address: the first 16 hex digits (64 bits) of
// the archive's SHA-256.
func archiveID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// put stores the archive and returns its id. The caller must not mutate
// data afterwards (the store keeps it by reference). An archive larger than
// the whole budget is refused with ok=false rather than evicting everything
// else for nothing.
func (s *archiveStore) put(data []byte, meta archiveMeta) (id string, ok bool) {
	if int64(len(data)) > s.maxBytes {
		return "", false
	}
	id = archiveID(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[id]; exists {
		return id, true // content-addressed: same bytes, same archive
	}
	for (s.bytes+int64(len(data)) > s.maxBytes || len(s.m) >= s.maxEntries) && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if a, live := s.m[oldest]; live {
			s.bytes -= int64(len(a.data))
			delete(s.m, oldest)
		}
	}
	s.m[id] = &storedArchive{id: id, data: data, meta: meta}
	s.order = append(s.order, id)
	s.bytes += int64(len(data))
	return id, true
}

func (s *archiveStore) get(id string) (*storedArchive, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.m[id]
	return a, ok
}

// remove deletes the archive; its order entry is left stale and skipped by
// the eviction sweep.
func (s *archiveStore) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.m[id]
	if !ok {
		return false
	}
	s.bytes -= int64(len(a.data))
	delete(s.m, id)
	return true
}

func (s *archiveStore) stats() (bytes int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.m)
}
