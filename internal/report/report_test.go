package report

import (
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tab := NewTable("Demo", "name", "ratio", "psnr")
	tab.AddRow("sz", 10.0, 62.341)
	tab.AddRow("zfp", 9.871, 58.0)
	tab.AddNote("synthetic data")
	out := tab.String()
	for _, want := range []string{"Demo", "name", "ratio", "psnr", "sz", "zfp", "62.34", "note: synthetic data"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Errorf("expected at least 5 lines, got %d", len(lines))
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1)
	tab.AddRow(1, 2, 3)
	out := tab.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cells should be dropped:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored title", "field", "value")
	tab.AddRow("plain", 1.5)
	tab.AddRow("with,comma", 2.0)
	tab.AddRow(`with"quote`, 3.0)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "ignored title") {
		t.Errorf("CSV should not include the title")
	}
	if !strings.Contains(out, "field,value") {
		t.Errorf("CSV missing header: %s", out)
	}
	if !strings.Contains(out, "\"with,comma\"") {
		t.Errorf("comma cell should be quoted: %s", out)
	}
	if !strings.Contains(out, "\"with\"\"quote\"") {
		t.Errorf("quote cell should be escaped: %s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("CSV should have 4 lines: %s", out)
	}
}

func TestFormatCellVariants(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow(nil)
	tab.AddRow(float32(1.25))
	tab.AddRow(42)
	tab.AddRow("text")
	out := tab.String()
	for _, want := range []string{"1.25", "42", "text"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSavings(t *testing.T) {
	if got := Savings(0, 0); got != "no evaluations" {
		t.Errorf("Savings(0,0) = %q", got)
	}
	got := Savings(25, 75)
	for _, want := range []string{"25/100", "25.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("Savings(25,75) = %q missing %q", got, want)
		}
	}
	if got := SavingsPercent(25, 75); got != 25 {
		t.Errorf("SavingsPercent(25,75) = %v", got)
	}
	if got := SavingsPercent(0, 0); got != 0 {
		t.Errorf("SavingsPercent(0,0) = %v", got)
	}
}
