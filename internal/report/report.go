// Package report renders experiment results as aligned ASCII tables and CSV,
// which is how the harness in internal/experiments regenerates the paper's
// tables and figure data series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	// Title appears above the table, e.g. "Figure 9 (a): Hurricane rate distortion".
	Title string
	// Columns holds the column headers.
	Columns []string
	// Rows holds the data; each row is rendered with %v, so callers may mix
	// strings and numbers.
	Rows [][]interface{}
	// Notes are free-form lines printed under the table.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a data row. Extra cells are dropped and missing cells are
// rendered empty, so slightly ragged callers still produce readable output.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]interface{}, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		} else {
			row[i] = ""
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case float32:
		return fmt.Sprintf("%.4g", x)
	case nil:
		return ""
	default:
		return fmt.Sprintf("%v", x)
	}
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(t.Columns))
		for c := range t.Columns {
			s := formatCell(row[c])
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (without the title or notes). Cells are
// quoted only when they contain commas or quotes.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		writeRow(cells)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the ASCII form, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteASCII(&b) //frazlint:allow errdrop -- strings.Builder writes cannot fail
	return b.String()
}

// Savings formats evaluation-cache hit/miss counters as a human-readable
// summary: hits are compressor invocations that were skipped entirely, so
// the percentage is the fraction of evaluations saved.
func Savings(hits, misses int) string {
	total := hits + misses
	if total <= 0 {
		return "no evaluations"
	}
	return fmt.Sprintf("%d/%d evaluations served from cache (%.1f%% of compressor calls saved)",
		hits, total, SavingsPercent(hits, misses))
}

// SavingsPercent returns the fraction of evaluations served from the cache
// as a percentage, for tabular output.
func SavingsPercent(hits, misses int) float64 {
	total := hits + misses
	if total <= 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}
