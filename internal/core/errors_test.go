package core

import (
	"context"
	"errors"
	"testing"
)

func TestResultCheck(t *testing.T) {
	feasible := Result{Feasible: true, AchievedRatio: 10}
	if err := feasible.Check(); err != nil {
		t.Fatalf("feasible result Check() = %v, want nil", err)
	}

	infeasible := Result{
		Compressor:     "fake",
		TargetRatio:    100,
		Tolerance:      0.1,
		AchievedRatio:  4.2,
		ErrorBound:     0.5,
		CompressedSize: 1234,
	}
	err := infeasible.Check()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Check() = %v, want errors.Is ErrInfeasible", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("Check() = %T, want *InfeasibleError", err)
	}
	if ie.ClosestRatio != 4.2 || ie.TargetRatio != 100 || ie.ErrorBound != 0.5 || ie.CompressedSize != 1234 {
		t.Errorf("InfeasibleError fields not carried over: %+v", ie)
	}
}

// TestSealBlockedRequireFeasible asks for a ratio no bound can reach: with
// RequireFeasible the seal must fail with the infeasible sentinel (and no
// container), while the default still seals at the closest observed bound.
func TestSealBlockedRequireFeasible(t *testing.T) {
	// Ratio saturates at 8 regardless of bound, so a target of 1000 is
	// unreachable for every region.
	fake := fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 { return 8 }}
	tu, err := NewTuner(fake, Config{TargetRatio: 1000, Tolerance: 0.05, Regions: 2, Seed: 1, MaxIterationsPerRegion: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(64)

	cn, sr, err := tu.SealBlocked(context.Background(), buf, SealOptions{Blocks: 4, RequireFeasible: true})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("RequireFeasible seal err = %v, want ErrInfeasible", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) || ie.ClosestRatio <= 0 {
		t.Fatalf("infeasible seal should report the closest observed ratio, got %+v", err)
	}
	if cn.Payload != nil {
		t.Errorf("infeasible seal returned a container")
	}
	if sr.Tuning.Feasible || sr.Tuning.Iterations == 0 {
		t.Errorf("SealResult should carry the tuning outcome, got %+v", sr.Tuning)
	}

	cn, _, err = tu.SealBlocked(context.Background(), buf, SealOptions{Blocks: 4})
	if err != nil {
		t.Fatalf("default seal should fall back to the closest bound: %v", err)
	}
	if cn.Payload == nil {
		t.Errorf("default infeasible seal should still produce a container")
	}
}

// TestSealBlockedPrediction seeds the seal with an in-band bound: the tuning
// step must reuse it instead of training.
func TestSealBlockedPrediction(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 { return 10 }}
	tu, err := NewTuner(fake, Config{TargetRatio: 10, Tolerance: 0.1, Regions: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, sr, err := tu.SealBlocked(context.Background(), smallBuffer(64), SealOptions{Blocks: 4, Prediction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Tuning.UsedPrediction {
		t.Errorf("prediction 0.25 lands in band but was not reused: %+v", sr.Tuning)
	}
	if sr.Tuning.ErrorBound != 0.25 {
		t.Errorf("tuned bound = %v, want the predicted 0.25", sr.Tuning.ErrorBound)
	}
}
