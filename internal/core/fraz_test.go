package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"fraz/internal/container"
	"fraz/internal/dataset"
	"fraz/internal/grid"
	"fraz/internal/pressio"
)

// fakeCompressor is a deterministic stand-in whose ratio-versus-bound curve
// is controllable, so the tuner's search logic can be tested in isolation
// from the real codecs.
type fakeCompressor struct {
	name    string
	ratioFn func(bound float64) float64
	// calls counts Compress invocations; it is updated atomically because
	// the tuner runs region searches on concurrent goroutines.
	calls *int64
}

func (f fakeCompressor) Name() string                   { return f.name }
func (f fakeCompressor) BoundName() string              { return "fake bound" }
func (f fakeCompressor) ErrorBounded() bool             { return true }
func (f fakeCompressor) SupportsShape(s grid.Dims) bool { return s.Validate() == nil }
func (f fakeCompressor) BoundRange() (float64, float64) { return 1e-12, 1e12 }
func (f fakeCompressor) Decompress(c []byte, s grid.Dims, dt container.DType) (pressio.Buffer, error) {
	return pressio.NewBuffer(make([]float32, s.Len()), s)
}
func (f fakeCompressor) Compress(buf pressio.Buffer, bound float64) ([]byte, error) {
	if f.calls != nil {
		atomic.AddInt64(f.calls, 1)
	}
	ratio := f.ratioFn(bound)
	if ratio < 1 {
		ratio = 1
	}
	size := int(float64(buf.Bytes()) / ratio)
	if size < 1 {
		size = 1
	}
	return make([]byte, size), nil
}

func smallBuffer(n int) pressio.Buffer {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 10))
	}
	buf, err := pressio.NewBuffer(data, grid.MustDims(n))
	if err != nil {
		panic(err)
	}
	return buf
}

// smoothRatio is a monotone, smooth ratio curve reaching ~64 at bound 2.
func smoothRatio(bound float64) float64 {
	return 1 + 63*bound/(bound+0.05)/(2/(2+0.05))
}

func TestNewTunerValidation(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	cases := []Config{
		{TargetRatio: 0.5},
		{TargetRatio: 1},
		{TargetRatio: math.NaN()},
		{TargetRatio: 10, Tolerance: 1.5},
		{TargetRatio: 10, Tolerance: -0.1},
		{TargetRatio: 10, MaxError: -1},
	}
	for _, cfg := range cases {
		if _, err := NewTuner(fake, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := NewTuner(nil, Config{TargetRatio: 10}); err == nil {
		t.Errorf("nil compressor should be rejected")
	}
	tu, err := NewTuner(fake, Config{TargetRatio: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tu.Config()
	if cfg.Tolerance != DefaultTolerance || cfg.Regions == 0 || cfg.MaxIterationsPerRegion == 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if tu.Compressor().Name() != "fake" {
		t.Errorf("Compressor accessor wrong")
	}
}

func TestLossAndCutoff(t *testing.T) {
	if Loss(10, 10, Gamma) != 0 {
		t.Errorf("exact match should have zero loss")
	}
	if got := Loss(12, 10, Gamma); got != 4 {
		t.Errorf("Loss(12,10) = %v, want 4", got)
	}
	if got := Loss(math.Inf(1), 10, Gamma); got != Gamma {
		t.Errorf("infinite ratio should clamp to gamma")
	}
	if got := Loss(math.NaN(), 10, Gamma); got != Gamma {
		t.Errorf("NaN should clamp to gamma")
	}
	if got := Cutoff(10, 0.1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cutoff(10, 0.1) = %v, want 1", got)
	}
}

func TestInBand(t *testing.T) {
	if !InBand(10, 10, 0.1) || !InBand(9, 10, 0.1) || !InBand(11, 10, 0.1) {
		t.Errorf("values inside the band misclassified")
	}
	if InBand(8.9, 10, 0.1) || InBand(11.1, 10, 0.1) {
		t.Errorf("values outside the band misclassified")
	}
}

func TestPropertyLossBounded(t *testing.T) {
	f := func(achieved, target float64) bool {
		l := Loss(achieved, target, Gamma)
		return l >= 0 && l <= Gamma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTuneBufferFeasibleTarget(t *testing.T) {
	var calls int64
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio, calls: &calls}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), smallBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("target 20 should be feasible, got %+v", res)
	}
	if !InBand(res.AchievedRatio, 20, 0.1) {
		t.Errorf("achieved ratio %v outside band", res.AchievedRatio)
	}
	if res.ErrorBound <= 0 || res.ErrorBound > 2 {
		t.Errorf("recommended bound %v outside the search range", res.ErrorBound)
	}
	if res.Iterations <= 0 || int64(res.Iterations) != atomic.LoadInt64(&calls) {
		t.Errorf("iterations %d should equal compressor calls %d", res.Iterations, atomic.LoadInt64(&calls))
	}
	if res.Compressor != "fake" || res.TargetRatio != 20 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestTuneBufferInfeasibleTargetReportsClosest(t *testing.T) {
	// The ratio curve saturates at 12, so a target of 50 is infeasible.
	fake := fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 {
		return 1 + 11*bound/(bound+0.01)
	}}
	tu, err := NewTuner(fake, Config{TargetRatio: 50, Tolerance: 0.05, MaxError: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), smallBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("target 50 should be infeasible, got %+v", res)
	}
	if res.AchievedRatio < 10 || res.AchievedRatio > 12.5 {
		t.Errorf("closest observed ratio should approach the saturation value, got %v", res.AchievedRatio)
	}
	closest := ClosestObserved(res)
	if len(closest) == 0 {
		t.Fatalf("expected observed evaluations")
	}
	for i := 1; i < len(closest); i++ {
		if math.Abs(closest[i-1].Ratio-50) > math.Abs(closest[i].Ratio-50) {
			t.Errorf("ClosestObserved not sorted by distance to target")
		}
	}
}

func TestTuneBufferStepFunctionRatio(t *testing.T) {
	// Step-like curve imitating ZFP accuracy mode: only a few ratios are
	// reachable; the target of 16 sits on a plateau.
	fake := fakeCompressor{name: "fake-step", ratioFn: func(bound float64) float64 {
		return math.Pow(2, math.Floor(math.Log2(bound*1e4+1)))
	}}
	tu, err := NewTuner(fake, Config{TargetRatio: 16, Tolerance: 0.1, MaxError: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), smallBuffer(8192))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Errorf("plateau target should be found, got ratio %v", res.AchievedRatio)
	}
}

func TestTuneBufferNonMonotoneRatio(t *testing.T) {
	// Non-monotonic curve like SZ's (Fig. 3): a dip in the middle.
	fake := fakeCompressor{name: "fake-dip", ratioFn: func(bound float64) float64 {
		return 60 + 40*bound - 25*math.Exp(-(bound-0.25)*(bound-0.25)*200)
	}}
	tu, err := NewTuner(fake, Config{TargetRatio: 45, Tolerance: 0.05, MaxError: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), smallBuffer(8192))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Errorf("target inside the dip should be reachable, got %v", res.AchievedRatio)
	}
}

func TestTuneWithPredictionReuse(t *testing.T) {
	var calls int64
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio, calls: &calls}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(4096)
	first, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil || !first.Feasible {
		t.Fatalf("initial tuning failed: %+v err=%v", first, err)
	}
	atomic.StoreInt64(&calls, 0)
	second, err := tu.TuneWithPrediction(context.Background(), buf, first.ErrorBound)
	if err != nil {
		t.Fatal(err)
	}
	if !second.UsedPrediction || !second.Feasible {
		t.Errorf("prediction should be reused: %+v", second)
	}
	if second.Iterations != 1 {
		t.Errorf("prediction reuse should cost exactly one evaluation, got %d", second.Iterations)
	}
	// The tuner already measured this exact bound during training, so the
	// prediction evaluation is served from the evaluation cache without
	// invoking the compressor at all.
	if got := atomic.LoadInt64(&calls); got != 0 {
		t.Errorf("prediction reuse compressed %d times, want 0 (cache hit)", got)
	}
	if second.CacheHits != 1 || second.CacheMisses != 0 {
		t.Errorf("prediction reuse stats = %d hits / %d misses, want 1/0", second.CacheHits, second.CacheMisses)
	}
}

func TestTuneWithBadPredictionRetrains(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.05, MaxError: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneWithPrediction(context.Background(), smallBuffer(4096), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedPrediction {
		t.Errorf("a hopeless prediction should trigger retraining")
	}
	if !res.Feasible {
		t.Errorf("retraining should still find the target")
	}
	if len(res.Regions) == 0 {
		t.Errorf("retraining should report region results")
	}
}

// faultyAtCompressor fails Compress for bounds below a threshold and
// otherwise behaves like the wrapped fake — a stand-in for a compressor
// whose parameter validation rejects a bound that drifted out of range.
type faultyAtCompressor struct {
	fakeCompressor
	failBelow float64
}

func (f faultyAtCompressor) Compress(buf pressio.Buffer, bound float64) ([]byte, error) {
	if bound < f.failBelow {
		return nil, errFaulty
	}
	return f.fakeCompressor.Compress(buf, bound)
}

var errFaulty = errors.New("faulty compressor: bound rejected")

// TestTuneWithPredictionRecordsEvaluationError pins the distinction between
// a prediction that missed the band (PredictionErr nil, retrain) and one the
// compressor failed to evaluate at all (PredictionErr records the cause).
func TestTuneWithPredictionRecordsEvaluationError(t *testing.T) {
	fake := faultyAtCompressor{
		fakeCompressor: fakeCompressor{name: "fake-faulty", ratioFn: smoothRatio},
		failBelow:      1e-6,
	}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, LowerBound: 1e-5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(4096)

	// The prediction sits in the compressor's failing range: the evaluation
	// errors, the failure is recorded, and the tuner still retrains.
	res, err := tu.TuneWithPrediction(context.Background(), buf, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.PredictionErr, errFaulty) {
		t.Errorf("PredictionErr = %v, want the compressor failure", res.PredictionErr)
	}
	if res.UsedPrediction {
		t.Errorf("a failed prediction evaluation must not be reused")
	}
	if !res.Feasible {
		t.Errorf("retraining should still find the target: %+v", res)
	}

	// A prediction that evaluates fine but misses the band records no error.
	missed, err := tu.TuneWithPrediction(context.Background(), buf, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if missed.PredictionErr != nil {
		t.Errorf("a merely-missed prediction should not record an error, got %v", missed.PredictionErr)
	}
}

// TestTuneSeriesCountsPredictionErrors checks the series-level accounting:
// a step whose prediction evaluation fails increments PredictionErrors.
func TestTuneSeriesCountsPredictionErrors(t *testing.T) {
	// Step 0 trains normally. Step 1 uses a different buffer (so the
	// prediction evaluation cannot be served from the cache) and its first
	// compression — which is exactly the prediction evaluation — fails.
	var step atomic.Int64
	var failedOnce atomic.Bool
	base := fakeCompressor{name: "fake-series-faulty", ratioFn: smoothRatio}
	comp := predicateFaultyCompressor{fakeCompressor: base, fail: func(bound float64) bool {
		return step.Load() == 1 && failedOnce.CompareAndSwap(false, true)
	}}
	tu, err := NewTuner(comp, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tu.TuneSeries(context.Background(), Series{
		Field: "f",
		Steps: 2,
		At: func(i int) (pressio.Buffer, error) {
			step.Store(int64(i))
			return smallBuffer(4096 + i), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.PredictionErrors != 1 {
		t.Errorf("PredictionErrors = %d, want 1 (step 1's prediction failed to evaluate)", out.PredictionErrors)
	}
	if out.Steps[0].Result.PredictionErr != nil {
		t.Errorf("step 0 ran without a prediction, PredictionErr = %v", out.Steps[0].Result.PredictionErr)
	}
	if out.Steps[1].Result.PredictionErr == nil {
		t.Errorf("step 1 should record its prediction evaluation error")
	}
	if !out.Steps[1].Retrained {
		t.Errorf("step 1 should have retrained after the failed prediction")
	}
}

// predicateFaultyCompressor fails Compress when the predicate says so.
type predicateFaultyCompressor struct {
	fakeCompressor
	fail func(bound float64) bool
}

func (p predicateFaultyCompressor) Compress(buf pressio.Buffer, bound float64) ([]byte, error) {
	if p.fail(bound) {
		return nil, errFaulty
	}
	return p.fakeCompressor.Compress(buf, bound)
}

func TestTuneBufferUnsupportedShape(t *testing.T) {
	c, err := pressio.New("mgard:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tu.TuneBuffer(context.Background(), smallBuffer(100)); err == nil {
		t.Errorf("1-D buffer should be rejected for mgard")
	}
}

func TestTuneSeriesRetrainsOnRegimeChange(t *testing.T) {
	// The ratio curve shifts abruptly at step 5, so the reused bound misses
	// the band there and the tuner must retrain.
	makeFake := func(step int) fakeCompressor {
		shift := 1.0
		if step >= 5 {
			shift = 3.0
		}
		return fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 {
			return 1 + 63*bound/(bound+0.05*shift)/(2/(2+0.05*shift))
		}}
	}
	// The compressor changes per step via a closure over the step index, and
	// the data changes with the regime too (as it would in a real series —
	// the evaluation cache keys on the data fingerprint, so a regime change
	// with identical bytes would otherwise be served stale ratios).
	var stepIndex int
	fake := fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 {
		return makeFake(stepIndex).ratioFn(bound)
	}}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	calm := smallBuffer(4096)
	stormy := smallBuffer(4096)
	stormyData := stormy.Float32()
	for i := range stormyData {
		stormyData[i] *= 1.5
	}
	series := Series{
		Field: "synthetic",
		Steps: 10,
		At: func(i int) (pressio.Buffer, error) {
			stepIndex = i
			if i >= 5 {
				return stormy, nil
			}
			return calm, nil
		},
	}
	res, err := tu.TuneSeries(context.Background(), series)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 10 {
		t.Fatalf("expected 10 steps, got %d", len(res.Steps))
	}
	if res.Retrains < 2 {
		t.Errorf("expected at least the initial training plus the regime change, got %d retrains", res.Retrains)
	}
	if res.Retrains > 5 {
		t.Errorf("bound reuse should avoid retraining most steps, got %d retrains", res.Retrains)
	}
	if res.ConvergedSteps < 8 {
		t.Errorf("most steps should converge, got %d/10", res.ConvergedSteps)
	}
	if res.TotalIterations <= 0 {
		t.Errorf("total iterations not accumulated")
	}
}

func TestTuneSeriesValidation(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, _ := NewTuner(fake, Config{TargetRatio: 10})
	if _, err := tu.TuneSeries(context.Background(), Series{Field: "x", Steps: 0}); err == nil {
		t.Errorf("zero steps should fail")
	}
	if _, err := tu.TuneSeries(context.Background(), Series{Field: "x", Steps: 3, At: nil}); err == nil {
		t.Errorf("nil provider should fail")
	}
}

func TestTuneSeriesCancelled(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, _ := NewTuner(fake, Config{TargetRatio: 10, MaxError: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tu.TuneSeries(ctx, Series{Field: "x", Steps: 3, At: func(i int) (pressio.Buffer, error) {
		return smallBuffer(256), nil
	}})
	if err == nil {
		t.Errorf("cancelled context should abort the series")
	}
}

func TestTuneFieldsParallel(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, err := NewTuner(fake, Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(2048)
	mk := func(name string) Series {
		return Series{Field: name, Steps: 3, At: func(i int) (pressio.Buffer, error) { return buf, nil }}
	}
	results, err := tu.TuneFields(context.Background(), []Series{mk("a"), mk("b"), mk("c")})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 series results")
	}
	for _, r := range results {
		if r.ConvergedSteps != 3 {
			t.Errorf("series %s: %d/3 converged", r.Field, r.ConvergedSteps)
		}
	}
}

func TestTuneRealSZOnSyntheticHurricane(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compressor tuning is slow")
	}
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("TCf", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 10, Tolerance: 0.1, Seed: 9, Regions: 6, MaxIterationsPerRegion: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("10:1 should be feasible for SZ on the hurricane field, got ratio %.2f", res.AchievedRatio)
	}
	// Verify independently that the recommended bound reproduces the ratio.
	ratio, _, err := pressio.Ratio(c, buf, res.ErrorBound)
	if err != nil {
		t.Fatal(err)
	}
	if !InBand(ratio, 10, 0.1) {
		t.Errorf("recommended bound %v re-evaluates to ratio %.2f outside the band", res.ErrorBound, ratio)
	}
}

func TestTuneRealZFPAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compressor tuning is slow")
	}
	d, err := dataset.New("NYX", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("temperature", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pressio.New("zfp:accuracy")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 8, Tolerance: 0.2, Seed: 10, Regions: 6, MaxIterationsPerRegion: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	// ZFP accuracy mode expresses few ratios; with a 20% tolerance the
	// request should still generally be satisfiable. If not feasible, the
	// reported closest ratio must at least be positive and finite.
	if res.AchievedRatio <= 0 || math.IsInf(res.AchievedRatio, 0) {
		t.Errorf("nonsensical achieved ratio %v", res.AchievedRatio)
	}
	if res.Feasible && !InBand(res.AchievedRatio, 8, 0.2) {
		t.Errorf("feasible flag inconsistent with achieved ratio %v", res.AchievedRatio)
	}
}
