package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fraz/internal/grid"
	"fraz/internal/metrics"
	"fraz/internal/optim"
	"fraz/internal/parallel"
	"fraz/internal/pressio"
)

// This file implements the first item of the paper's future-work list
// (§VII): tuning to an *arbitrary user quality target* — "error bounds that
// correspond with the quality of a scientist's analysis result", such as a
// required SSIM or PSNR — instead of a target compression ratio. The search
// machinery is the same (clamped quadratic loss, region-parallel global
// minimisation with an early-termination cutoff); only the objective changes
// from the compression ratio to a decompressed-quality metric, which makes
// each evaluation a compress+decompress round trip rather than a compress.

// QualityMetric evaluates the reconstruction quality of decompressed data.
// Larger values must mean better quality (true for PSNR and SSIM).
type QualityMetric struct {
	// Name labels the metric in results ("psnr", "ssim", ...).
	Name string
	// Evaluate returns the metric value for a reconstruction.
	Evaluate func(original, reconstructed []float32, shape grid.Dims) (float64, error)
}

// PSNRMetric targets the peak signal-to-noise ratio in decibels.
func PSNRMetric() QualityMetric {
	return QualityMetric{
		Name: "psnr",
		Evaluate: func(original, reconstructed []float32, shape grid.Dims) (float64, error) {
			return metrics.PSNR(original, reconstructed), nil
		},
	}
}

// SSIMMetric targets the mean structural similarity of the central 2-D
// slice, the quality criterion cited by the paper's future-work discussion
// (Baker et al.'s SSIM threshold for valid climate analyses).
func SSIMMetric() QualityMetric {
	return QualityMetric{
		Name: "ssim",
		Evaluate: func(original, reconstructed []float32, shape grid.Dims) (float64, error) {
			plane := 0
			if shape.NDims() == 3 {
				plane = shape[0] / 2
			}
			origSlice, sliceShape, err := grid.Slice2D(original, shape, plane)
			if err != nil {
				return 0, err
			}
			recSlice, _, err := grid.Slice2D(reconstructed, shape, plane)
			if err != nil {
				return 0, err
			}
			return metrics.SSIM(origSlice, recSlice, sliceShape)
		},
	}
}

// QualityConfig controls a quality-target search.
type QualityConfig struct {
	// Target is the desired metric value (e.g. PSNR of 60 dB, SSIM of 0.95).
	Target float64
	// Tolerance is the acceptable absolute deviation from the target.
	// Zero selects 2% of the target's magnitude.
	Tolerance float64
	// MaxError caps the error bounds searched (0 = value range of the data).
	MaxError float64
	// Regions, Workers, MaxIterationsPerRegion and Seed have the same
	// meaning as in Config.
	Regions                int
	Workers                int
	MaxIterationsPerRegion int
	Seed                   int64
}

func (c QualityConfig) withDefaults() QualityConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.02 * math.Abs(c.Target)
	}
	if c.Regions <= 0 {
		c.Regions = parallel.DefaultRegions
	}
	if c.MaxIterationsPerRegion <= 0 {
		c.MaxIterationsPerRegion = DefaultMaxIterationsPerRegion
	}
	return c
}

// QualityResult is the outcome of a quality-target search.
type QualityResult struct {
	Compressor string
	Metric     string
	Target     float64
	Tolerance  float64
	// ErrorBound is the recommended error bound and AchievedQuality the
	// metric value it produces.
	ErrorBound      float64
	AchievedQuality float64
	// AchievedRatio and CompressedSize describe the size at that bound.
	AchievedRatio  float64
	CompressedSize int
	// Feasible is true when the achieved quality is within the tolerance of
	// the target.
	Feasible bool
	// Iterations counts compress+decompress round trips.
	Iterations int
	Elapsed    time.Duration
}

// ErrBadQualityConfig is returned for invalid quality-target configuration.
var ErrBadQualityConfig = errors.New("fraz: invalid quality-target configuration")

// TuneForQuality searches the compressor's error bound for the setting whose
// decompressed quality is closest to the target metric value, preferring
// (among acceptable settings) the one with the highest compression ratio:
// the largest error bound that still delivers the requested quality.
func (t *Tuner) TuneForQuality(ctx context.Context, buf pressio.Buffer, metric QualityMetric, cfg QualityConfig) (QualityResult, error) {
	start := time.Now()
	if metric.Evaluate == nil {
		return QualityResult{}, fmt.Errorf("%w: metric has no evaluator", ErrBadQualityConfig)
	}
	if math.IsNaN(cfg.Target) || math.IsInf(cfg.Target, 0) {
		return QualityResult{}, fmt.Errorf("%w: target %v", ErrBadQualityConfig, cfg.Target)
	}
	cfg = cfg.withDefaults()
	if !t.compressor.SupportsShape(buf.Shape) {
		return QualityResult{}, fmt.Errorf("fraz: compressor %s does not support shape %v", t.compressor.Name(), buf.Shape)
	}

	// Search range: same policy as ratio tuning.
	vr := grid.ValueRange(buf.Data)
	if vr <= 0 {
		vr = 1
	}
	cLo, cHi := t.compressor.BoundRange()
	lo := vr * 1e-9
	if lo < cLo {
		lo = cLo
	}
	hi := cfg.MaxError
	if hi <= 0 {
		hi = vr
	}
	if hi > cHi {
		hi = cHi
	}
	if !(lo < hi) {
		return QualityResult{}, fmt.Errorf("%w: empty error-bound range [%v, %v]", ErrBadQualityConfig, lo, hi)
	}
	// Quality metrics vary with the order of magnitude of the error bound
	// rather than its absolute value, so the search runs in log space: the
	// regions partition [ln lo, ln hi] and every candidate is exponentiated
	// before being handed to the compressor.
	regions, err := parallel.SplitRegions(math.Log(lo), math.Log(hi), cfg.Regions, parallel.DefaultOverlap)
	if err != nil {
		return QualityResult{}, err
	}

	type qualEval struct {
		bound   float64
		quality float64
		ratio   float64
		size    int
	}
	cutoff := cfg.Tolerance * cfg.Tolerance

	evaluate := func(bound float64) (qualEval, error) {
		comp, err := t.compressor.Compress(buf, bound)
		if err != nil {
			return qualEval{}, err
		}
		dec, err := t.compressor.Decompress(comp, buf.Shape)
		if err != nil {
			return qualEval{}, err
		}
		q, err := metric.Evaluate(buf.Data, dec, buf.Shape)
		if err != nil {
			return qualEval{}, err
		}
		return qualEval{
			bound:   bound,
			quality: q,
			ratio:   metrics.CompressionRatio(buf.Bytes(), len(comp)),
			size:    len(comp),
		}, nil
	}

	tasks := make([]parallel.Task[[]qualEval], len(regions))
	for i, region := range regions {
		i, region := i, region
		tasks[i] = func(taskCtx context.Context) ([]qualEval, bool, error) {
			var evals []qualEval
			objective := func(logBound float64) float64 {
				if taskCtx.Err() != nil {
					return Gamma
				}
				ev, err := evaluate(math.Exp(logBound))
				if err != nil || math.IsNaN(ev.quality) {
					return Gamma
				}
				evals = append(evals, ev)
				d := ev.quality - cfg.Target
				v := d * d
				if v > Gamma {
					return Gamma
				}
				return v
			}
			optRes, err := optim.FindGlobalMin(objective, optim.Options{
				Lower:         region.Lower,
				Upper:         region.Upper,
				MaxIterations: cfg.MaxIterationsPerRegion,
				Cutoff:        cutoff,
				Seed:          cfg.Seed + int64(i),
			})
			if err != nil {
				return evals, false, err
			}
			return evals, optRes.Converged && taskCtx.Err() == nil, nil
		}
	}
	outcomes := parallel.RunUntilAcceptable(ctx, cfg.Workers, tasks)

	res := QualityResult{
		Compressor: t.compressor.Name(),
		Metric:     metric.Name,
		Target:     cfg.Target,
		Tolerance:  cfg.Tolerance,
	}
	bestDist := math.Inf(1)
	found := false
	for _, o := range outcomes {
		if !o.Started || o.Err != nil {
			continue
		}
		for _, ev := range o.Value {
			res.Iterations++
			d := math.Abs(ev.quality - cfg.Target)
			acceptable := d <= cfg.Tolerance
			better := false
			switch {
			case !found:
				better = true
			case acceptable && !res.Feasible:
				better = true
			case acceptable == res.Feasible && acceptable:
				// Among acceptable settings prefer the higher ratio (larger
				// bound): quality is already good enough, so take the size win.
				better = ev.ratio > res.AchievedRatio
			case acceptable == res.Feasible && !acceptable:
				better = d < bestDist
			}
			if better {
				found = true
				bestDist = d
				res.ErrorBound = ev.bound
				res.AchievedQuality = ev.quality
				res.AchievedRatio = ev.ratio
				res.CompressedSize = ev.size
				res.Feasible = acceptable
			}
		}
	}
	if !found {
		res.Elapsed = time.Since(start)
		return res, fmt.Errorf("fraz: no successful quality evaluation (compressor %s)", t.compressor.Name())
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
