package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fraz/internal/pressio"
)

// This file implements the second item of the paper's future-work list
// (§VII): an online variant of FRaZ for in-situ use, where data arrives one
// acquisition (or simulation snapshot) at a time and each acquisition must
// be compressed to the target ratio before the next one arrives. The online
// tuner owns the prediction state that Algorithm 3 threads through a time
// series, adds exponential smoothing of the bound across retrains to damp
// oscillation on drifting data, and keeps running statistics so an
// instrument pipeline can monitor its own behaviour.

// OnlineConfig configures an OnlineTuner.
type OnlineConfig struct {
	// Smoothing is the exponential-smoothing factor applied to the error
	// bound across retrains: the working bound moves by Smoothing of the way
	// toward each newly trained bound. 1 (or 0, which selects the default of
	// 1) adopts new bounds immediately; smaller values damp oscillations for
	// noisy streams.
	Smoothing float64
	// RetrainAfterMisses forces a full retrain after this many consecutive
	// acquisitions whose reused bound fell outside the acceptance band but
	// were still shipped (non-strict mode). Zero retrains immediately on the
	// first miss, which is Algorithm 3's behaviour.
	RetrainAfterMisses int
}

// OnlineStats summarises the stream processed so far.
type OnlineStats struct {
	// Acquisitions is the number of buffers processed.
	Acquisitions int
	// Reused counts acquisitions served by the reused bound; Retrained
	// counts full searches (the first acquisition always retrains).
	Reused    int
	Retrained int
	// Converged counts acquisitions whose final ratio was inside the band.
	Converged int
	// TotalIterations is the cumulative number of compressor invocations.
	TotalIterations int
	// RawBytes and CompressedBytes accumulate the stream volume.
	RawBytes        int
	CompressedBytes int
	// Elapsed is the cumulative tuning + compression wall-clock time.
	Elapsed time.Duration
}

// AggregateRatio returns the overall reduction of the stream so far.
func (s OnlineStats) AggregateRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}

// OnlineResult is the outcome for one acquisition.
type OnlineResult struct {
	// Result is the underlying tuning result for this acquisition.
	Result Result
	// Compressed is the compressed stream for this acquisition, produced
	// with the recommended bound.
	Compressed []byte
	// Reused is true when the previous bound was used without retraining.
	Reused bool
}

// OnlineTuner tunes a stream of acquisitions one at a time.
// It is safe for use from a single goroutine; the embedded statistics are
// protected so they may be read concurrently by a monitoring goroutine.
type OnlineTuner struct {
	tuner *Tuner
	cfg   OnlineConfig

	mu         sync.Mutex
	prediction float64
	misses     int
	stats      OnlineStats
}

// NewOnlineTuner wraps a Tuner for streaming use.
func NewOnlineTuner(t *Tuner, cfg OnlineConfig) (*OnlineTuner, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: nil tuner", ErrBadConfig)
	}
	if cfg.Smoothing < 0 || cfg.Smoothing > 1 {
		return nil, fmt.Errorf("%w: smoothing must be in [0,1], got %v", ErrBadConfig, cfg.Smoothing)
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = 1
	}
	if cfg.RetrainAfterMisses < 0 {
		return nil, fmt.Errorf("%w: retrain-after-misses must be >= 0", ErrBadConfig)
	}
	return &OnlineTuner{tuner: t, cfg: cfg}, nil
}

// Process tunes and compresses one acquisition, updating the reusable bound
// and the running statistics.
func (o *OnlineTuner) Process(ctx context.Context, buf pressio.Buffer) (OnlineResult, error) {
	start := time.Now()
	o.mu.Lock()
	prediction := o.prediction
	misses := o.misses
	o.mu.Unlock()

	forceRetrain := o.cfg.RetrainAfterMisses > 0 && misses >= o.cfg.RetrainAfterMisses
	if forceRetrain {
		prediction = 0
	}

	res, err := o.tuner.TuneWithPrediction(ctx, buf, prediction)
	if err != nil {
		return OnlineResult{}, err
	}
	comp, err := o.tuner.Compressor().Compress(buf, res.ErrorBound)
	if err != nil {
		return OnlineResult{}, fmt.Errorf("fraz: online compression at bound %v: %w", res.ErrorBound, err)
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats.Acquisitions++
	o.stats.TotalIterations += res.Iterations
	o.stats.RawBytes += buf.Bytes()
	o.stats.CompressedBytes += len(comp)
	o.stats.Elapsed += time.Since(start)
	if res.UsedPrediction {
		o.stats.Reused++
	} else {
		o.stats.Retrained++
	}
	if res.Feasible {
		o.stats.Converged++
		o.misses = 0
		if res.UsedPrediction || o.prediction == 0 {
			o.prediction = res.ErrorBound
		} else {
			// Smooth toward the newly trained bound.
			o.prediction += o.cfg.Smoothing * (res.ErrorBound - o.prediction)
		}
	} else {
		o.misses++
	}
	return OnlineResult{Result: res, Compressed: comp, Reused: res.UsedPrediction}, nil
}

// Stats returns a copy of the running statistics.
func (o *OnlineTuner) Stats() OnlineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// CurrentBound returns the bound that will be tried first for the next
// acquisition (zero before the first feasible acquisition).
func (o *OnlineTuner) CurrentBound() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.prediction
}

// Reset clears the reusable bound and statistics, e.g. when the instrument
// reconfigures and past acquisitions stop being representative.
func (o *OnlineTuner) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.prediction = 0
	o.misses = 0
	o.stats = OnlineStats{}
}
