// Package core implements FRaZ itself: the fixed-ratio autotuning framework
// of the paper. Given an error-bounded lossy compressor (through the
// pressio abstraction), a target compression ratio ρt, and an acceptance
// tolerance ε, it searches the compressor's error-bound parameter until the
// achieved ratio ρr lands inside [ρt(1−ε), ρt(1+ε)], optionally subject to a
// maximum allowed compression error U (the paper's Eq. 1 and Eq. 2).
//
// The search follows the paper's design:
//
//   - the loss function is the clamped quadratic
//     l(e) = min((ρr(D,e) − ρt)², γ)   (§V-B2);
//   - each region of the error-bound range is searched with the Dlib-style
//     global minimiser (MaxLIPO + trust region) with an early-termination
//     cutoff of ε²ρt² (§V-B3, Algorithm 1);
//   - the range is split into K slightly overlapping regions searched in
//     parallel, and outstanding regions are cancelled as soon as one region
//     finds an acceptable bound (Algorithm 2, Fig. 5);
//   - multiple time-steps of a field reuse the previously found bound and
//     retrain only when the reused bound falls outside the acceptance band,
//     and different fields are tuned in parallel (Algorithm 3, §V-C).
//
// When no error bound in the admissible range reaches the target band, FRaZ
// reports the closest ratio it observed and marks the result infeasible,
// leaving the decision of relaxing ε or U (or switching compressors) to the
// user, exactly as §V-B3 prescribes.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"fraz/internal/metrics"
	"fraz/internal/optim"
	"fraz/internal/parallel"
	"fraz/internal/pressio"
)

// DefaultTolerance is the default fractional acceptance tolerance ε.
const DefaultTolerance = 0.1

// DefaultMaxIterationsPerRegion caps the optimizer iterations within one
// error-bound region. The paper limits iterations rather than wall time
// because compression time varies too much across datasets (§V-C).
const DefaultMaxIterationsPerRegion = 24

// Gamma is the clamp applied to the quadratic loss: 80% of the largest
// representable double, as in §V-B2.
var Gamma = 0.8 * math.MaxFloat64

// Config controls a Tuner.
type Config struct {
	// Objective is the quantity the search drives the error bound toward.
	// The zero value selects FixedRatio(TargetRatio) with Tolerance, the
	// paper's fixed-ratio objective; any other objective makes TargetRatio
	// and Tolerance below irrelevant (the objective carries its own target
	// and band).
	Objective Objective
	// TargetRatio is ρt, the requested compression ratio. Required > 1 when
	// no Objective is given.
	TargetRatio float64
	// Tolerance is ε, the fractional half-width of the acceptance band
	// [ρt(1−ε), ρt(1+ε)]. Zero selects DefaultTolerance. Only consulted when
	// no Objective is given.
	Tolerance float64
	// MaxError is U, the maximum allowed compression error. When zero, the
	// default upper bound is used: the value range of the data, which is the
	// largest error bound any of the compressors accepts meaningfully.
	MaxError float64
	// LowerBound overrides the smallest error bound searched. When zero, a
	// small fraction (1e-9) of the data's value range is used.
	LowerBound float64
	// Regions is K, the number of overlapping error-bound regions searched
	// in parallel. Zero selects parallel.DefaultRegions (12).
	Regions int
	// Overlap is the fractional overlap between adjacent regions. Zero
	// selects parallel.DefaultOverlap (10%).
	Overlap float64
	// MaxIterationsPerRegion caps optimizer iterations per region. Zero
	// selects DefaultMaxIterationsPerRegion.
	MaxIterationsPerRegion int
	// Workers bounds the number of concurrently searched regions (and, in
	// TuneFields, concurrently tuned fields). Zero uses GOMAXPROCS.
	Workers int
	// Seed makes the search deterministic.
	Seed int64
	// Cache memoises compressor evaluations across the K overlapping region
	// searches (and across tuning runs, when shared between tuners). Nil
	// gives the tuner a private cache.
	Cache *pressio.Cache
}

func (c Config) withDefaults() Config {
	if c.Tolerance <= 0 {
		c.Tolerance = DefaultTolerance
	}
	if c.Regions <= 0 {
		c.Regions = parallel.DefaultRegions
	}
	if c.Overlap <= 0 {
		c.Overlap = parallel.DefaultOverlap
	}
	if c.MaxIterationsPerRegion <= 0 {
		c.MaxIterationsPerRegion = DefaultMaxIterationsPerRegion
	}
	return c
}

// ErrBadConfig is returned for invalid tuner configuration.
var ErrBadConfig = errors.New("fraz: invalid configuration")

// Evaluation records one compressor invocation during the search.
type Evaluation struct {
	// ErrorBound is the bound handed to the compressor.
	ErrorBound float64
	// Ratio is the achieved compression ratio.
	Ratio float64
	// CompressedSize is the compressed size in bytes.
	CompressedSize int
	// Value is the tuned objective's achieved value at ErrorBound (equal to
	// Ratio for the fixed-ratio objective).
	Value float64
	// Report carries the full quality metrics when the objective required a
	// compress+decompress round trip; nil for compress-only evaluations.
	Report *metrics.Report
}

// RegionResult summarises the search within one error-bound region.
type RegionResult struct {
	Region      parallel.Region
	Iterations  int
	Best        Evaluation
	Acceptable  bool
	Started     bool
	Err         error
	Evaluations []Evaluation
}

// Result is the outcome of tuning one field/time-step.
type Result struct {
	// Compressor is the name of the tuned compressor.
	Compressor string
	// Objective names the tuned objective ("ratio", "psnr", "ssim",
	// "max-error") and Target its requested value.
	Objective string
	Target    float64
	// TargetRatio echoes Target for the fixed-ratio objective (zero
	// otherwise); Tolerance is the objective's acceptance half-width
	// (fractional for ratio/PSNR, absolute for SSIM/max-error).
	TargetRatio float64
	Tolerance   float64
	// ErrorBound is the recommended error bound setting.
	ErrorBound float64
	// AchievedValue is the objective's value at ErrorBound (equal to
	// AchievedRatio for the fixed-ratio objective).
	AchievedValue float64
	// AchievedRatio is ρr at the recommended bound, whatever the objective.
	AchievedRatio float64
	// CompressedSize is the compressed size at the recommended bound.
	CompressedSize int
	// Feasible is true when the achieved value lies in the acceptance band.
	Feasible bool
	// Iterations is the total number of compressor invocations performed.
	Iterations int
	// Direct is true when the objective was satisfied directly from codec
	// capability — a fixed-rate codec's size formula inverted into its
	// bits-per-value parameter — with zero search evaluations: Iterations
	// is 0, Regions is empty, and ErrorBound holds the whole-bit rate.
	Direct bool
	// UsedPrediction is true when a reused bound from a previous time-step
	// satisfied the target without retraining.
	UsedPrediction bool
	// PredictionErr records the error of the prediction evaluation when one
	// was tried and the compressor failed on it. It distinguishes "the
	// reused bound missed the acceptance band" (nil, retrained normally)
	// from "the compressor could not evaluate the reused bound at all",
	// which TuneSeries reporting would otherwise conflate.
	PredictionErr error
	// CacheHits counts evaluations served from the shared evaluation cache
	// without invoking the compressor; CacheMisses counts the evaluations
	// that were not (those that compressed, plus failed evaluations).
	// Iterations = CacheHits + CacheMisses.
	CacheHits   int
	CacheMisses int
	// Regions reports the per-region search results (empty when the
	// prediction was reused).
	Regions []RegionResult
	// Elapsed is the wall-clock tuning time.
	Elapsed time.Duration
}

// InBand reports whether a ratio lies within the acceptance band around the
// target, i.e. ρt(1−ε) ≤ ratio ≤ ρt(1+ε) (Eq. 1).
func InBand(ratio, target, tolerance float64) bool {
	return ratio >= target*(1-tolerance) && ratio <= target*(1+tolerance)
}

// Loss is the paper's clamped-quadratic loss l(e) = min((ρr − ρt)², γ).
func Loss(achieved, target, gamma float64) float64 {
	d := achieved - target
	v := d * d
	if v > gamma || math.IsNaN(v) {
		return gamma
	}
	return v
}

// Cutoff returns the early-termination threshold ε²ρt² used by the modified
// global minimiser (§V-B3).
func Cutoff(target, tolerance float64) float64 {
	return tolerance * tolerance * target * target
}

// Tuner searches error bounds for one compressor.
type Tuner struct {
	compressor pressio.Compressor
	cfg        Config
	obj        Objective
	cache      *pressio.Cache
}

// NewTuner validates the configuration and returns a Tuner.
func NewTuner(c pressio.Compressor, cfg Config) (*Tuner, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil compressor", ErrBadConfig)
	}
	obj := cfg.Objective
	if obj.Name == "" {
		// Legacy fixed-ratio configuration: TargetRatio/Tolerance stand in
		// for an explicit FixedRatio objective.
		if !(cfg.TargetRatio > 1) || math.IsNaN(cfg.TargetRatio) || math.IsInf(cfg.TargetRatio, 0) {
			return nil, fmt.Errorf("%w: target ratio must be > 1, got %v", ErrBadConfig, cfg.TargetRatio)
		}
		if cfg.Tolerance < 0 || cfg.Tolerance >= 1 || math.IsNaN(cfg.Tolerance) {
			return nil, fmt.Errorf("%w: tolerance must be in [0,1), got %v", ErrBadConfig, cfg.Tolerance)
		}
		obj = FixedRatio(cfg.TargetRatio)
		obj.Tolerance = cfg.Tolerance
	}
	obj = obj.WithDefaults()
	if err := obj.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.MaxError < 0 {
		return nil, fmt.Errorf("%w: max error must be >= 0, got %v", ErrBadConfig, cfg.MaxError)
	}
	cache := cfg.Cache
	if cache == nil {
		cache = pressio.NewCache()
	}
	cfg = cfg.withDefaults()
	cfg.Objective = obj
	if obj.Name == "ratio" {
		// Keep the legacy fields coherent with the objective, whichever way
		// the caller configured it.
		cfg.TargetRatio = obj.Target
		cfg.Tolerance = obj.Tolerance
	}
	return &Tuner{compressor: c, cfg: cfg, obj: obj, cache: cache}, nil
}

// Compressor returns the compressor being tuned.
func (t *Tuner) Compressor() pressio.Compressor { return t.compressor }

// Objective returns the resolved objective the tuner searches for.
func (t *Tuner) Objective() Objective { return t.obj }

// Cache returns the evaluation cache the tuner records compressor
// evaluations in (the one from Config.Cache, or the private default).
func (t *Tuner) Cache() *pressio.Cache { return t.cache }

// Config returns the effective (defaulted) configuration.
func (t *Tuner) Config() Config { return t.cfg }

// searchRange determines the error-bound interval [lo, hi] for a buffer:
// the user's U (or the data's value range) capped by the compressor's own
// admissible parameter range.
func (t *Tuner) searchRange(buf pressio.Buffer) (float64, float64, error) {
	cLo, cHi := t.compressor.BoundRange()
	vr := buf.ValueRange()
	if vr <= 0 {
		vr = 1
	}
	lo := t.cfg.LowerBound
	if lo <= 0 {
		lo = vr * 1e-9
	}
	if lo < cLo {
		lo = cLo
	}
	hi := t.cfg.MaxError
	if hi <= 0 {
		hi = vr
	}
	if hi > cHi {
		hi = cHi
	}
	if !(lo < hi) {
		return 0, 0, fmt.Errorf("%w: empty error-bound range [%v, %v]", ErrBadConfig, lo, hi)
	}
	return lo, hi, nil
}

// TuneBuffer runs the full region-parallel search for a single
// field/time-step buffer (Algorithms 1 and 2 with no prediction).
func (t *Tuner) TuneBuffer(ctx context.Context, buf pressio.Buffer) (Result, error) {
	return t.TuneWithPrediction(ctx, buf, 0)
}

// measure returns the single black-box evaluation the search performs for
// the tuner's objective: a cached compression for the fixed-ratio objective,
// a cached compress+decompress round trip (with the full metric report) for
// quality objectives. Either way the returned Evaluation carries the bound
// the measurement actually ran at and the objective's achieved Value.
func (t *Tuner) measure(eval *pressio.Evaluator) func(bound float64) (Evaluation, error) {
	if !t.obj.NeedsReport {
		return func(bound float64) (Evaluation, error) {
			ratio, size, evaluated, err := eval.Ratio(bound)
			if err != nil {
				return Evaluation{}, err
			}
			ev := Evaluation{ErrorBound: evaluated, Ratio: ratio, CompressedSize: size}
			ev.Value = t.obj.Achieved(ev)
			return ev, nil
		}
	}
	return func(bound float64) (Evaluation, error) {
		rep, evaluated, err := eval.Full(bound)
		if err != nil {
			return Evaluation{}, err
		}
		ev := Evaluation{
			ErrorBound:     evaluated,
			Ratio:          rep.CompressionRatio,
			CompressedSize: rep.CompressedBytes,
			Report:         &rep,
		}
		ev.Value = t.obj.Achieved(ev)
		return ev, nil
	}
}

// TuneWithPrediction implements the worker-task algorithm (Algorithm 1): if
// a prediction (a previously successful error bound) is provided it is tried
// first, and only if it misses the acceptance band does the region-parallel
// training run.
func (t *Tuner) TuneWithPrediction(ctx context.Context, buf pressio.Buffer, prediction float64) (Result, error) {
	start := time.Now()
	if !t.compressor.SupportsShape(buf.Shape) {
		return Result{}, fmt.Errorf("fraz: compressor %s does not support shape %v", t.compressor.Name(), buf.Shape)
	}
	if !t.obj.SupportsRank(buf.Shape.NDims()) {
		return Result{}, fmt.Errorf("fraz: objective %s is not measurable on shape %v (needs rank %d..%d)",
			t.obj.Name, buf.Shape, t.obj.MinRank, t.obj.MaxRank)
	}
	res := Result{
		Compressor:  t.compressor.Name(),
		Objective:   t.obj.Name,
		Target:      t.obj.Target,
		TargetRatio: t.cfg.TargetRatio,
		Tolerance:   t.obj.Tolerance,
	}
	// Direct satisfaction (the zero-evaluation fast path): a fixed-ratio
	// objective paired with a true fixed-rate codec needs no search — the
	// codec's size formula is inverted into a whole-bit rate, and the
	// achieved ratio is the same number a real evaluation would measure
	// (raw bytes over the codec's stream size). Prediction is skipped too:
	// arithmetic is cheaper than even one cached evaluation. When no
	// whole-bit rate lands in the acceptance band the normal search runs
	// and reports infeasibility the usual way.
	if t.obj.DirectlySatisfiable() {
		if rc, ok := t.compressor.(pressio.RateCompressor); ok {
			if ev, ok := t.directRate(rc, buf); ok {
				res.fill(ev, true)
				res.Direct = true
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
	}

	// One evaluator per tuning run: the buffer fingerprint is computed once
	// and every region search below shares the memoised evaluations.
	eval := pressio.NewEvaluator(t.cache, t.compressor, buf)
	measure := t.measure(eval)

	if prediction > 0 {
		ev, err := measure(prediction)
		res.Iterations++
		if err != nil {
			// A compressor failure at the predicted bound is not the same
			// as "the prediction missed the band": record it so series
			// reporting can tell the two apart, then retrain as usual.
			res.PredictionErr = fmt.Errorf("fraz: prediction evaluation at bound %v: %w", prediction, err)
		} else if t.obj.InBand(ev.Value) {
			res.fill(ev, true)
			res.UsedPrediction = true
			res.CacheHits, res.CacheMisses = eval.Stats()
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}

	lo, hi, err := t.searchRange(buf)
	if err != nil {
		return Result{}, err
	}
	// Quality metrics respond to the order of magnitude of the bound rather
	// than its absolute value, so their objectives search in log space: the
	// regions partition [ln lo, ln hi] and every candidate is exponentiated
	// before being handed to the compressor. The ratio search stays linear,
	// as in the paper.
	sLo, sHi := lo, hi
	if t.obj.LogSpace {
		sLo, sHi = math.Log(lo), math.Log(hi)
	}
	regions, err := parallel.SplitRegions(sLo, sHi, t.cfg.Regions, t.cfg.Overlap)
	if err != nil {
		return Result{}, err
	}

	cutoff := t.obj.SearchCutoff()
	tasks := make([]parallel.Task[RegionResult], len(regions))
	for i, region := range regions {
		i, region := i, region
		tasks[i] = func(taskCtx context.Context) (RegionResult, bool, error) {
			rr := t.searchRegion(taskCtx, measure, region, cutoff, t.cfg.Seed+int64(i))
			return rr, rr.Acceptable, rr.Err
		}
	}
	outcomes := parallel.RunUntilAcceptable(ctx, t.cfg.Workers, tasks)

	// Collect region results and pick the recommendation: among in-band
	// evaluations the closest to the target (Algorithm 2, lines 17–26) — or,
	// for PreferRatio objectives, the highest-ratio in-band one — otherwise
	// the evaluation whose value is closest to the target.
	var best *Evaluation
	bestDist := math.Inf(1)
	feasible := false
	for _, o := range outcomes {
		rr := o.Value
		rr.Started = o.Started
		res.Regions = append(res.Regions, rr)
		res.Iterations += rr.Iterations
		if !o.Started || rr.Err != nil {
			continue
		}
		for i := range rr.Evaluations {
			ev := rr.Evaluations[i]
			d := math.Abs(ev.Value - t.obj.Target)
			inBand := t.obj.InBand(ev.Value)
			var better bool
			switch {
			case feasible && !inBand:
				better = false
			case !feasible && inBand:
				better = true
				feasible = true
			case feasible && t.obj.PreferRatio:
				// Both in band: the quality is already good enough, so take
				// the size win.
				better = ev.Ratio > best.Ratio
			default:
				better = d < bestDist
			}
			if better {
				bestDist = d
				best = &rr.Evaluations[i]
			}
		}
	}
	res.CacheHits, res.CacheMisses = eval.Stats()
	// A cancelled or timed-out search is not a verdict on the data: unless
	// an in-band bound was already found before the cancellation landed, the
	// caller gets its own ctx.Err() back — never a spurious "no evaluation"
	// or "infeasible" conclusion drawn from a truncated search.
	if cerr := ctx.Err(); cerr != nil && (best == nil || !t.obj.InBand(best.Value)) {
		res.Elapsed = time.Since(start)
		return res, cerr
	}
	if best == nil {
		res.Elapsed = time.Since(start)
		return res, fmt.Errorf("fraz: no successful compressor evaluation (compressor %s)", t.compressor.Name())
	}
	res.fill(*best, t.obj.InBand(best.Value))
	res.Elapsed = time.Since(start)
	return res, nil
}

// directRate inverts the fixed-ratio target into a bits-per-value setting:
// the wanted stream size is rawBytes/ρt, the codec's affine size formula
// size(N) = overhead + ⌈elements·N/8⌉ is solved for N, and the floor and
// ceil whole-bit candidates are scored against the acceptance band — the
// in-band candidate whose achieved ratio is closest to the target wins
// (the paper's closest-to-target rule, applied to a two-point grid). ok is
// false when neither lands in the band, i.e. the band is narrower than one
// bit's worth of ratio at this size; the caller falls back to the search.
func (t *Tuner) directRate(rc pressio.RateCompressor, buf pressio.Buffer) (Evaluation, bool) {
	rawBytes := buf.Bytes()
	elements := buf.Shape.Len()
	if rawBytes == 0 || elements == 0 {
		return Evaluation{}, false
	}
	maxBits := rc.MaxBits(buf.DType())
	overhead := rc.CompressedSize(buf.Shape, 0)
	want := float64(rawBytes)/t.obj.Target - float64(overhead)
	exact := want * 8 / float64(elements)
	clamp := func(n int) int {
		if n < 1 {
			return 1
		}
		if n > maxBits {
			return maxBits
		}
		return n
	}
	lo := clamp(int(math.Floor(exact)))
	hi := clamp(int(math.Ceil(exact)))
	var best Evaluation
	bestDist := math.Inf(1)
	found := false
	for _, n := range []int{lo, hi} {
		size := rc.CompressedSize(buf.Shape, n)
		ratio := float64(rawBytes) / float64(size)
		if !t.obj.InBand(ratio) {
			continue
		}
		if d := math.Abs(ratio - t.obj.Target); d < bestDist {
			bestDist = d
			best = Evaluation{ErrorBound: float64(n), Ratio: ratio, CompressedSize: size, Value: ratio}
			found = true
		}
	}
	return best, found
}

// fill copies one chosen evaluation into the result.
func (r *Result) fill(ev Evaluation, feasible bool) {
	r.ErrorBound = ev.ErrorBound
	r.AchievedValue = ev.Value
	r.AchievedRatio = ev.Ratio
	r.CompressedSize = ev.CompressedSize
	r.Feasible = feasible
}

// searchRegion runs the cutoff-modified global minimiser within one region.
// Evaluations go through the shared evaluator, so bounds already measured by
// an overlapping region (or an earlier tuning run on the same data) are
// served from the cache instead of re-compressing (or re-round-tripping, for
// quality objectives).
func (t *Tuner) searchRegion(ctx context.Context, measure func(float64) (Evaluation, error), region parallel.Region, cutoff float64, seed int64) RegionResult {
	rr := RegionResult{Region: region, Started: true}
	// rr.Iterations counts evaluations (cached or not), not optimizer
	// steps: once the region is cancelled the objective short-circuits
	// without compressing, and those steps must not be billed.
	objective := func(x float64) float64 {
		if ctx.Err() != nil {
			// Cancelled: report the clamp so the optimizer loses interest.
			return Gamma
		}
		rr.Iterations++
		bound := x
		if t.obj.LogSpace {
			bound = math.Exp(x)
		}
		ev, err := measure(bound)
		if err != nil || math.IsNaN(ev.Value) {
			return Gamma
		}
		rr.Evaluations = append(rr.Evaluations, ev)
		return t.obj.Loss(ev.Value)
	}
	optRes, err := optim.FindGlobalMin(objective, optim.Options{
		Lower:         region.Lower,
		Upper:         region.Upper,
		MaxIterations: t.cfg.MaxIterationsPerRegion,
		Cutoff:        cutoff,
		Seed:          seed,
	})
	if err != nil {
		rr.Err = err
		return rr
	}
	rr.Acceptable = optRes.Converged && ctx.Err() == nil
	// Record the best evaluation observed in this region.
	bestDist := math.Inf(1)
	for _, ev := range rr.Evaluations {
		if d := math.Abs(ev.Value - t.obj.Target); d < bestDist {
			bestDist = d
			rr.Best = ev
		}
	}
	return rr
}

// SeriesStep is the tuning outcome for one time-step of a field series.
type SeriesStep struct {
	TimeStep int
	Result   Result
	// Retrained is true when the previous step's bound missed the band and a
	// full search was required.
	Retrained bool
}

// SeriesResult aggregates the tuning of a whole field across time-steps.
type SeriesResult struct {
	// Field names the series (e.g. "Hurricane/CLOUDf").
	Field string
	Steps []SeriesStep
	// Retrains counts how many steps required a full search (the first step
	// always does).
	Retrains int
	// PredictionErrors counts the steps whose prediction evaluation failed
	// outright (Result.PredictionErr != nil) — retrains forced by a
	// compressor failure, not by the reused bound missing the band.
	PredictionErrors int
	// ConvergedSteps counts steps whose final ratio is inside the band.
	ConvergedSteps int
	// TotalIterations is the total number of compressor evaluations.
	TotalIterations int
	// CacheHits and CacheMisses total the per-step evaluation-cache
	// counters: hits are evaluations that skipped the compressor entirely.
	CacheHits   int
	CacheMisses int
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// Series describes a field's time series through a lazy provider, so whole
// datasets never need to be resident in memory at once (the paper notes
// users decompress/tune per time-step for the same reason, §II-B).
type Series struct {
	// Field names the series for reporting.
	Field string
	// Steps is the number of time-steps.
	Steps int
	// At returns the buffer for time-step i.
	At func(i int) (pressio.Buffer, error)
}

// TuneSeries tunes every time-step of a field, reusing the previous step's
// error bound as the prediction for the next (Algorithm 3's inner loop).
func (t *Tuner) TuneSeries(ctx context.Context, s Series) (SeriesResult, error) {
	start := time.Now()
	if s.Steps <= 0 || s.At == nil {
		return SeriesResult{}, fmt.Errorf("%w: series needs a positive step count and a provider", ErrBadConfig)
	}
	out := SeriesResult{Field: s.Field}
	prediction := 0.0
	for step := 0; step < s.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		buf, err := s.At(step)
		if err != nil {
			return out, fmt.Errorf("fraz: series %s step %d: %w", s.Field, step, err)
		}
		res, err := t.TuneWithPrediction(ctx, buf, prediction)
		if err != nil {
			return out, fmt.Errorf("fraz: series %s step %d: %w", s.Field, step, err)
		}
		stepOut := SeriesStep{TimeStep: step, Result: res, Retrained: !res.UsedPrediction}
		out.Steps = append(out.Steps, stepOut)
		out.TotalIterations += res.Iterations
		out.CacheHits += res.CacheHits
		out.CacheMisses += res.CacheMisses
		if stepOut.Retrained {
			out.Retrains++
		}
		if res.PredictionErr != nil {
			out.PredictionErrors++
		}
		if res.Feasible {
			out.ConvergedSteps++
			prediction = res.ErrorBound
		}
		// An infeasible step keeps the previous prediction, as Algorithm 3
		// only updates p when the ratio landed inside the band.
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// TuneFields tunes several field series in parallel (Algorithm 3's outer
// loop), bounded by Config.Workers.
func (t *Tuner) TuneFields(ctx context.Context, series []Series) ([]SeriesResult, error) {
	results := make([]SeriesResult, len(series))
	var mu sync.Mutex
	var firstErr error
	err := parallel.ForEach(ctx, len(series), t.cfg.Workers, func(ctx context.Context, idx int) error {
		r, err := t.TuneSeries(ctx, series[idx])
		mu.Lock()
		defer mu.Unlock()
		results[idx] = r
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return err
	})
	if firstErr != nil {
		return results, firstErr
	}
	return results, err
}

// ClosestObserved returns, among all evaluations of a result's regions, the
// ones sorted by distance to the objective's target. It is a reporting
// helper used by the CLI to explain infeasible requests.
func ClosestObserved(res Result) []Evaluation {
	var all []Evaluation
	for _, rr := range res.Regions {
		all = append(all, rr.Evaluations...)
	}
	sort.Slice(all, func(i, j int) bool {
		return math.Abs(all[i].Value-res.Target) < math.Abs(all[j].Value-res.Target)
	})
	return all
}
