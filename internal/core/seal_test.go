package core

import (
	"context"
	"math"
	"testing"

	"fraz/internal/container"
	"fraz/internal/grid"
	"fraz/internal/pressio"
)

func sealTestBuffer(t *testing.T) pressio.Buffer {
	t.Helper()
	shape := grid.MustDims(16, 12, 10)
	data := make([]float32, shape.Len())
	i := 0
	for z := 0; z < shape[0]; z++ {
		for y := 0; y < shape[1]; y++ {
			for x := 0; x < shape[2]; x++ {
				data[i] = float32(20*math.Sin(float64(z)/4)*math.Cos(float64(y)/5) + float64(x)/10)
				i++
			}
		}
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSealBlockedRoundTrip(t *testing.T) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 6, Tolerance: 0.2, Regions: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := sealTestBuffer(t)
	cn, sr, err := tu.SealBlocked(context.Background(), buf, SealOptions{Blocks: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Version != container.VersionBlocked || sr.Blocks != 4 {
		t.Fatalf("sealed v%d with %d blocks, want v2 with 4", cn.Header.Version, sr.Blocks)
	}
	if sr.SampleBlock != 2 {
		t.Errorf("sample block = %d, want the middle block 2", sr.SampleBlock)
	}
	if sr.AchievedRatio <= 0 || cn.Header.Ratio != sr.AchievedRatio {
		t.Errorf("achieved ratio %v, header %v", sr.AchievedRatio, cn.Header.Ratio)
	}
	if cn.Header.Bound != sr.Tuning.ErrorBound {
		t.Errorf("container bound %v differs from tuned bound %v", cn.Header.Bound, sr.Tuning.ErrorBound)
	}

	// Round trip through the wire format; the bound tuned on the sample
	// block still caps every value's error across all blocks.
	enc, err := cn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := container.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pressio.Open(dec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf.Float32() {
		if diff := math.Abs(float64(out.Float32()[i]) - float64(buf.Float32()[i])); diff > cn.Header.Bound {
			t.Fatalf("value %d error %v exceeds sealed bound %v", i, diff, cn.Header.Bound)
		}
	}
}

func TestSealBlockedMonolithicFallback(t *testing.T) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 6, Tolerance: 0.2, Regions: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := sealTestBuffer(t)
	cn, sr, err := tu.SealBlocked(context.Background(), buf, SealOptions{Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Header.Version != container.Version || cn.Blocks != nil || sr.Blocks != 1 {
		t.Errorf("Blocks=1 sealed v%d with %d blocks, want monolithic v1", cn.Header.Version, sr.Blocks)
	}
	// The monolithic fallback tunes on the whole buffer.
	if sr.SampleBlock != 0 {
		t.Errorf("monolithic sample block = %d, want 0", sr.SampleBlock)
	}
}

func TestSealBlockedDefaultsBlockCount(t *testing.T) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 6, Tolerance: 0.2, Regions: 4, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := sealTestBuffer(t)
	cn, sr, err := tu.SealBlocked(context.Background(), buf, SealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// DefaultCount(16 rows, 2 workers) = 4 blocks.
	if sr.Blocks != 4 || cn.NumBlocks() != 4 {
		t.Errorf("defaulted to %d blocks, want 4 (2 per worker)", sr.Blocks)
	}
}

// TestSealBlockedDefaultWorkersStaysBlocked pins the all-defaults path: with
// Config.Workers unset (the GOMAXPROCS sentinel) and empty SealOptions, the
// seal must still decompose the field rather than silently degenerating to
// a monolithic container.
func TestSealBlockedDefaultWorkersStaysBlocked(t *testing.T) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 6, Tolerance: 0.2, Regions: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := sealTestBuffer(t)
	cn, sr, err := tu.SealBlocked(context.Background(), buf, SealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Even on a single-core host GOMAXPROCS >= 1, so DefaultCount yields at
	// least 2 blocks and the container must be blocked (v2).
	if sr.Blocks < 2 || cn.Blocks == nil {
		t.Errorf("all-defaults seal produced %d blocks (v%d), want a blocked container", sr.Blocks, cn.Header.Version)
	}
}
