package core

import (
	"context"
	"sync/atomic"
	"testing"

	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

// hurricaneBuffer generates a real synthetic field so the cache tests
// exercise a genuine ratio-versus-bound curve rather than a fake.
func hurricaneBuffer(t *testing.T) pressio.Buffer {
	t.Helper()
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("CLOUDf", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestTuneBufferCacheEliminatesRepeatedCompressions is the acceptance check
// for the shared evaluation cache: on a standard TuneBuffer run the K
// overlapping region searches revisit quantized bounds other regions (or the
// trust-region refinement's own trail) already measured, and every such
// revisit must be served without invoking the compressor.
func TestTuneBufferCacheEliminatesRepeatedCompressions(t *testing.T) {
	var calls int64
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio, calls: &calls}
	// A target high in the achievable range makes the low regions search
	// hard before the top region lands, which is exactly when overlapping
	// searches revisit each other's bounds. Workers=1 serialises the regions
	// so the trajectory (and hence the hit count) is machine-independent.
	tu, err := NewTuner(fake, Config{TargetRatio: 60, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), smallBuffer(512))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Errorf("standard TuneBuffer run recorded no cache hits (misses=%d)", res.CacheMisses)
	}
	if res.Iterations != res.CacheHits+res.CacheMisses {
		t.Errorf("Iterations = %d, want CacheHits+CacheMisses = %d+%d",
			res.Iterations, res.CacheHits, res.CacheMisses)
	}
	// Every cache hit is a compression the tuner did not perform.
	if got := atomic.LoadInt64(&calls); got != int64(res.CacheMisses) {
		t.Errorf("compressor invoked %d times, want one per cache miss (%d)", got, res.CacheMisses)
	}
}

// TestTuneBufferCacheWithRealCompressor repeats the check against the real
// SZ adapter on a synthetic Hurricane field.
func TestTuneBufferCacheWithRealCompressor(t *testing.T) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 8, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), hurricaneBuffer(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Errorf("real-compressor TuneBuffer run recorded no cache hits (misses=%d)", res.CacheMisses)
	}
}

// TestSharedCacheAcrossTuningRuns shows that a cache handed in through
// Config.Cache carries evaluations from one run to the next: re-tuning the
// same buffer is answered almost entirely from the cache.
func TestSharedCacheAcrossTuningRuns(t *testing.T) {
	var calls int64
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio, calls: &calls}
	cache := pressio.NewCache()
	buf := smallBuffer(512)

	run := func(seed int64) Result {
		t.Helper()
		tu, err := NewTuner(fake, Config{TargetRatio: 10, Seed: seed, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tu.TuneBuffer(context.Background(), buf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	run(1)
	callsAfterFirst := atomic.LoadInt64(&calls)
	second := run(1) // identical seed: the search trajectory repeats exactly
	if got := atomic.LoadInt64(&calls); got != callsAfterFirst {
		t.Errorf("second identical run compressed %d more times, want 0", got-callsAfterFirst)
	}
	if second.CacheMisses != 0 {
		t.Errorf("second identical run missed %d times, want 0", second.CacheMisses)
	}
	if second.CacheHits != second.Iterations {
		t.Errorf("second run: hits %d != iterations %d", second.CacheHits, second.Iterations)
	}
}

// TestSeriesAggregatesCacheCounters checks that TuneSeries totals the
// per-step counters, including the prediction reuse path.
func TestSeriesAggregatesCacheCounters(t *testing.T) {
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, err := NewTuner(fake, Config{TargetRatio: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(256)
	s := Series{
		Field: "synthetic",
		Steps: 4,
		At:    func(int) (pressio.Buffer, error) { return buf, nil },
	}
	out, err := tu.TuneSeries(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses int
	for _, step := range out.Steps {
		hits += step.Result.CacheHits
		misses += step.Result.CacheMisses
	}
	if out.CacheHits != hits || out.CacheMisses != misses {
		t.Errorf("series totals %d/%d, want %d/%d", out.CacheHits, out.CacheMisses, hits, misses)
	}
	// Steps 2..4 reuse step 1's bound on the identical buffer, so the
	// prediction evaluations themselves are cache hits.
	if out.CacheHits == 0 {
		t.Errorf("series on an identical buffer should hit the cache")
	}
}
