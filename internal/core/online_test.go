package core

import (
	"context"
	"math"
	"testing"

	"fraz/internal/pressio"
)

func onlineFake() fakeCompressor {
	return fakeCompressor{name: "fake", ratioFn: smoothRatio}
}

func TestNewOnlineTunerValidation(t *testing.T) {
	tu, err := NewTuner(onlineFake(), Config{TargetRatio: 20, MaxError: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnlineTuner(nil, OnlineConfig{}); err == nil {
		t.Errorf("nil tuner should fail")
	}
	if _, err := NewOnlineTuner(tu, OnlineConfig{Smoothing: 2}); err == nil {
		t.Errorf("smoothing > 1 should fail")
	}
	if _, err := NewOnlineTuner(tu, OnlineConfig{Smoothing: -0.1}); err == nil {
		t.Errorf("negative smoothing should fail")
	}
	if _, err := NewOnlineTuner(tu, OnlineConfig{RetrainAfterMisses: -1}); err == nil {
		t.Errorf("negative retrain-after-misses should fail")
	}
	ot, err := NewOnlineTuner(tu, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ot.CurrentBound() != 0 {
		t.Errorf("initial bound should be zero")
	}
}

func TestOnlineTunerReusesBoundAcrossAcquisitions(t *testing.T) {
	tu, err := NewTuner(onlineFake(), Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ot, err := NewOnlineTuner(tu, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(2048)
	for i := 0; i < 5; i++ {
		res, err := ot.Process(context.Background(), buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Compressed) == 0 {
			t.Fatalf("acquisition %d produced no compressed output", i)
		}
		if i > 0 && !res.Reused {
			t.Errorf("acquisition %d should reuse the bound for identical data", i)
		}
	}
	stats := ot.Stats()
	if stats.Acquisitions != 5 || stats.Retrained != 1 || stats.Reused != 4 {
		t.Errorf("unexpected stats %+v", stats)
	}
	if stats.Converged != 5 {
		t.Errorf("all acquisitions should converge, got %d", stats.Converged)
	}
	if ratio := stats.AggregateRatio(); math.Abs(ratio-20) > 4 {
		t.Errorf("aggregate ratio %v should be near the 20:1 target", ratio)
	}
	if stats.Elapsed <= 0 || stats.RawBytes != 5*buf.Bytes() {
		t.Errorf("volume/timing stats wrong: %+v", stats)
	}
}

func TestOnlineTunerReset(t *testing.T) {
	tu, _ := NewTuner(onlineFake(), Config{TargetRatio: 20, Tolerance: 0.1, MaxError: 2, Seed: 2})
	ot, _ := NewOnlineTuner(tu, OnlineConfig{})
	if _, err := ot.Process(context.Background(), smallBuffer(1024)); err != nil {
		t.Fatal(err)
	}
	if ot.CurrentBound() == 0 {
		t.Fatalf("bound should be set after a feasible acquisition")
	}
	ot.Reset()
	if ot.CurrentBound() != 0 || ot.Stats().Acquisitions != 0 {
		t.Errorf("Reset should clear state")
	}
}

func TestOnlineTunerRetrainAfterMisses(t *testing.T) {
	// A compressor whose ratio curve drifts every acquisition so the reused
	// bound always misses; with RetrainAfterMisses=2 the tuner tolerates two
	// misses before forcing a retrain.
	acq := 0
	drifting := fakeCompressor{name: "fake", ratioFn: func(bound float64) float64 {
		shift := 1.0 + float64(acq)*0.8
		return 1 + 63*bound/(bound+0.05*shift)/(2/(2+0.05*shift))
	}}
	tu, err := NewTuner(drifting, Config{TargetRatio: 20, Tolerance: 0.02, MaxError: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ot, err := NewOnlineTuner(tu, OnlineConfig{RetrainAfterMisses: 2, Smoothing: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(1024)
	for i := 0; i < 6; i++ {
		acq = i
		if _, err := ot.Process(context.Background(), buf); err != nil {
			t.Fatal(err)
		}
	}
	stats := ot.Stats()
	if stats.Acquisitions != 6 {
		t.Fatalf("unexpected stats %+v", stats)
	}
	if stats.Retrained == 0 {
		t.Errorf("drifting stream should retrain at least once: %+v", stats)
	}
	if stats.AggregateRatio() <= 1 {
		t.Errorf("stream should still be compressed: %+v", stats)
	}
}

func TestOnlineStatsAggregateRatioEmpty(t *testing.T) {
	var s OnlineStats
	if s.AggregateRatio() != 0 {
		t.Errorf("empty stats should report zero ratio")
	}
}

func TestOnlineTunerWithRealCompressor(t *testing.T) {
	if testing.Short() {
		t.Skip("real-compressor online tuning is slow")
	}
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 8, Tolerance: 0.15, Seed: 4, Regions: 4, MaxIterationsPerRegion: 12})
	if err != nil {
		t.Fatal(err)
	}
	ot, err := NewOnlineTuner(tu, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	buf := smallBuffer(8192)
	for i := 0; i < 3; i++ {
		res, err := ot.Process(context.Background(), buf)
		if err != nil {
			t.Fatal(err)
		}
		// The compressed payload must decompress to within the bound used.
		decBuf, err := c.Decompress(res.Compressed, buf.Shape, buf.DType())
		if err != nil {
			t.Fatal(err)
		}
		dec := decBuf.Float32()
		for j := range dec {
			if diff := math.Abs(float64(dec[j]) - float64(buf.Float32()[j])); diff > res.Result.ErrorBound+1e-9 {
				t.Fatalf("acquisition %d: error %v exceeds bound %v", i, diff, res.Result.ErrorBound)
			}
		}
	}
}
