package core

import (
	"fmt"
	"math"
)

// This file defines the Objective abstraction: the quantity a tuning run
// drives the compressor's error bound toward. The paper tunes one objective
// — the compression ratio (Eq. 1) — but its future-work list (§VII) asks for
// "error bounds that correspond with the quality of a scientist's analysis
// result", and fixed-quality targets (PSNR, SSIM, maximum pointwise error)
// are as demanded in practice as fixed ratios (Tao et al., "Fixed-PSNR Lossy
// Compression for Scientific Data"; Di et al.'s error-bounded-compression
// survey). Every objective runs through the same search machinery — the
// clamped quadratic loss, the region-parallel MaxLIPO minimiser with an
// early-termination cutoff, and the time-step bound-reuse loop — so the
// objective only states what is measured, what value is wanted, and how
// acceptance is judged.

// Default acceptance tolerances per built-in objective. Ratio and PSNR
// tolerances are fractional (the band is target·(1±ε), matching the paper's
// Eq. 1); SSIM and max-error tolerances are absolute half-widths (target±ε),
// because SSIM lives on a fixed [0,1] scale where a fraction of the target
// collapses to a near-zero band, and a max-error promise is itself an
// absolute quantity.
const (
	// DefaultPSNRTolerance is the fractional PSNR band: ±5% of the target
	// (±3 dB at a 60 dB target).
	DefaultPSNRTolerance = 0.05
	// DefaultSSIMTolerance is the absolute SSIM band half-width.
	DefaultSSIMTolerance = 0.02
	// DefaultMaxErrorBandFraction sizes the default absolute max-error band:
	// one tenth of the requested error magnitude.
	DefaultMaxErrorBandFraction = 0.1
)

// Objective describes one tuning target: which quantity the search measures,
// the value it must reach, and the acceptance band around it. The zero value
// is not a valid objective — use a constructor (FixedRatio, FixedPSNR,
// FixedSSIM, FixedMaxError) and override Tolerance if the default band does
// not fit.
type Objective struct {
	// Name labels the objective ("ratio", "psnr", "ssim", "max-error"). It is
	// recorded in container headers, so archives are self-describing about
	// what was promised.
	Name string
	// Target is the requested value of the measured quantity.
	Target float64
	// Tolerance is the half-width of the acceptance band: a fraction of
	// Target when Relative is set (band target·(1±ε)), an absolute width
	// otherwise (band target±ε). Zero selects the objective's default.
	Tolerance float64
	// Relative marks Tolerance as fractional.
	Relative bool
	// NeedsReport marks objectives measured on the decompressed data: every
	// evaluation is a compress+decompress round trip whose full metric
	// report is cached, instead of a compression alone.
	NeedsReport bool
	// LogSpace makes the search partition the error-bound range in log
	// space. Quality metrics respond to the order of magnitude of the bound
	// rather than its absolute value; the ratio search stays linear, as in
	// the paper.
	LogSpace bool
	// PreferRatio selects, among in-band evaluations, the one with the
	// highest compression ratio instead of the value closest to Target:
	// quality is already good enough, so take the size win. The fixed-ratio
	// objective keeps the paper's closest-to-target rule.
	PreferRatio bool
	// Achieved extracts the objective's value from one evaluation. It must
	// tolerate a nil Evaluation.Report (return NaN) so compress-only
	// evaluations degrade cleanly.
	Achieved func(ev Evaluation) float64
	// MinRank and MaxRank bound the data ranks the objective is measurable
	// on (zero = unbounded). SSIM is an image metric: it needs a 2-D slice,
	// so tuning it on 1-D data would burn the whole round-trip budget
	// measuring NaNs; the tuner rejects such shapes upfront instead.
	MinRank, MaxRank int
}

// SupportsRank reports whether the objective is measurable on data of the
// given rank.
func (o Objective) SupportsRank(rank int) bool {
	if o.MinRank > 0 && rank < o.MinRank {
		return false
	}
	if o.MaxRank > 0 && rank > o.MaxRank {
		return false
	}
	return true
}

// FixedRatio targets the compression ratio ρt — the paper's objective. The
// acceptance band is ρt·(1±ε) with ε defaulting to DefaultTolerance.
func FixedRatio(target float64) Objective {
	return Objective{
		Name:     "ratio",
		Target:   target,
		Relative: true,
		Achieved: func(ev Evaluation) float64 { return ev.Ratio },
	}
}

// FixedPSNR targets the peak signal-to-noise ratio of the reconstruction in
// decibels. The acceptance band is target·(1±ε) with ε defaulting to
// DefaultPSNRTolerance.
func FixedPSNR(db float64) Objective {
	return Objective{
		Name:        "psnr",
		Target:      db,
		Relative:    true,
		NeedsReport: true,
		LogSpace:    true,
		PreferRatio: true,
		Achieved: func(ev Evaluation) float64 {
			if ev.Report == nil {
				return math.NaN()
			}
			return ev.Report.PSNR
		},
	}
}

// FixedSSIM targets the mean structural similarity of the central 2-D slice
// — the quality criterion cited by the paper's future-work discussion (Baker
// et al.'s SSIM threshold for valid climate analyses). The acceptance band
// is target±ε (absolute) with ε defaulting to DefaultSSIMTolerance.
func FixedSSIM(target float64) Objective {
	return Objective{
		Name:        "ssim",
		Target:      target,
		NeedsReport: true,
		LogSpace:    true,
		PreferRatio: true,
		MinRank:     2,
		MaxRank:     3,
		Achieved: func(ev Evaluation) float64 {
			if ev.Report == nil {
				return math.NaN()
			}
			return ev.Report.SSIM
		},
	}
}

// FixedMaxError targets the maximum absolute pointwise error of the
// reconstruction: the tightest codec setting whose measured error spends the
// whole error budget u, rather than an error bound passed through verbatim.
// The acceptance band is target±ε (absolute) with ε defaulting to
// DefaultMaxErrorBandFraction·u.
func FixedMaxError(u float64) Objective {
	return Objective{
		Name:        "max-error",
		Target:      u,
		NeedsReport: true,
		LogSpace:    true,
		PreferRatio: true,
		Achieved: func(ev Evaluation) float64 {
			if ev.Report == nil {
				return math.NaN()
			}
			return ev.Report.MaxError
		},
	}
}

// WithDefaults returns a copy of the objective with its default tolerance
// filled in (exported so the public package can mirror tuner defaulting).
func (o Objective) WithDefaults() Objective {
	if o.Tolerance > 0 {
		return o
	}
	switch o.Name {
	case "psnr":
		o.Tolerance = DefaultPSNRTolerance
	case "ssim":
		o.Tolerance = DefaultSSIMTolerance
	case "max-error":
		o.Tolerance = DefaultMaxErrorBandFraction * math.Abs(o.Target)
	default:
		o.Tolerance = DefaultTolerance
	}
	return o
}

// validate rejects objectives the search cannot drive toward.
func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("objective has no name")
	}
	if o.Achieved == nil {
		return fmt.Errorf("objective %s has no achieved-value extractor", o.Name)
	}
	if math.IsNaN(o.Target) || math.IsInf(o.Target, 0) {
		return fmt.Errorf("objective %s target %v", o.Name, o.Target)
	}
	if o.Name == "ratio" && !(o.Target > 1) {
		return fmt.Errorf("target ratio must be > 1, got %v", o.Target)
	}
	if o.Relative && !(o.Target > 0) {
		return fmt.Errorf("objective %s with a fractional tolerance needs a positive target, got %v", o.Name, o.Target)
	}
	if !(o.Tolerance > 0) || math.IsInf(o.Tolerance, 0) {
		return fmt.Errorf("objective %s tolerance %v (want > 0)", o.Name, o.Tolerance)
	}
	if o.Relative && o.Tolerance >= 1 {
		return fmt.Errorf("objective %s fractional tolerance %v (want < 1)", o.Name, o.Tolerance)
	}
	return nil
}

// HalfWidth is the absolute half-width of the acceptance band: ε·|target|
// for relative tolerances, ε itself for absolute ones. It is what container
// headers record, so readers need not know the band's semantics.
func (o Objective) HalfWidth() float64 {
	if o.Relative {
		return o.Tolerance * math.Abs(o.Target)
	}
	return o.Tolerance
}

// Band returns the absolute acceptance interval [lo, hi].
func (o Objective) Band() (lo, hi float64) {
	if o.Relative {
		return o.Target * (1 - o.Tolerance), o.Target * (1 + o.Tolerance)
	}
	return o.Target - o.Tolerance, o.Target + o.Tolerance
}

// InBand reports whether an achieved value lies inside the acceptance band
// (false for NaN).
func (o Objective) InBand(v float64) bool {
	lo, hi := o.Band()
	return v >= lo && v <= hi
}

// Loss is the clamped quadratic l(v) = min((v − target)², γ) the search
// minimises — the paper's §V-B2 loss with the objective's value in place of
// the ratio.
func (o Objective) Loss(achieved float64) float64 {
	return Loss(achieved, o.Target, Gamma)
}

// DirectlySatisfiable reports whether the objective can be satisfied by
// codec capability alone, with zero search evaluations. Only the
// fixed-ratio objective qualifies: its achieved value is a pure function of
// the compressed size, so a true fixed-rate codec (one implementing
// pressio.RateCompressor) can invert the target into its bits-per-value
// parameter arithmetically. Quality objectives (PSNR/SSIM/max-error) are
// measured on the reconstruction, which no capability predicts — they
// always search.
func (o Objective) DirectlySatisfiable() bool {
	return o.Name == "ratio" && !o.NeedsReport
}

// SearchCutoff returns the early-termination threshold for the modified
// global minimiser: the squared half-width of the acceptance band, which for
// the fixed-ratio objective is the paper's ε²ρt² (§V-B3).
func (o Objective) SearchCutoff() float64 {
	if o.Relative {
		return Cutoff(o.Target, o.Tolerance)
	}
	return o.Tolerance * o.Tolerance
}
