package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

func nyxBuffer(t *testing.T) pressio.Buffer {
	t.Helper()
	d, err := dataset.New("NYX", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("velocity_x", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestObjectiveToleranceSemantics pins the uniform tolerance contract: ratio
// and PSNR bands are fractional (target·(1±ε)), SSIM and max-error bands are
// absolute (target±ε), and each objective's default band is sane — in
// particular the SSIM default no longer collapses toward zero the way the
// old quality fork's "2% of target magnitude" rule did for small targets.
func TestObjectiveToleranceSemantics(t *testing.T) {
	cases := []struct {
		name         string
		obj          Objective
		wantRelative bool
		wantTol      float64
		wantLo       float64
		wantHi       float64
	}{
		{"ratio default", FixedRatio(10), true, DefaultTolerance, 9, 11},
		{"psnr default", FixedPSNR(60), true, DefaultPSNRTolerance, 57, 63},
		{"ssim default", FixedSSIM(0.95), false, DefaultSSIMTolerance, 0.93, 0.97},
		{"max-error default", FixedMaxError(0.01), false, 0.001, 0.009, 0.011},
		{"psnr explicit", withTolerance(FixedPSNR(80), 0.1), true, 0.1, 72, 88},
		{"ssim explicit", withTolerance(FixedSSIM(0.5), 0.05), false, 0.05, 0.45, 0.55},
		{"max-error explicit", withTolerance(FixedMaxError(2), 0.5), false, 0.5, 1.5, 2.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.obj.WithDefaults()
			if err := o.validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if o.Relative != tc.wantRelative {
				t.Errorf("Relative = %v, want %v", o.Relative, tc.wantRelative)
			}
			if math.Abs(o.Tolerance-tc.wantTol) > 1e-12 {
				t.Errorf("Tolerance = %v, want %v", o.Tolerance, tc.wantTol)
			}
			lo, hi := o.Band()
			if math.Abs(lo-tc.wantLo) > 1e-9 || math.Abs(hi-tc.wantHi) > 1e-9 {
				t.Errorf("Band() = [%v, %v], want [%v, %v]", lo, hi, tc.wantLo, tc.wantHi)
			}
			if !o.InBand(tc.obj.Target) {
				t.Errorf("target %v not in its own band", tc.obj.Target)
			}
			if o.InBand(tc.wantHi + math.Abs(tc.wantHi)*1e-6 + 1e-9) {
				t.Errorf("value above band accepted")
			}
			if o.InBand(math.NaN()) {
				t.Errorf("NaN accepted as in band")
			}
			// HalfWidth is the absolute band half-width either way.
			if hw := o.HalfWidth(); math.Abs(hw-(tc.wantHi-tc.wantLo)/2) > 1e-9 {
				t.Errorf("HalfWidth = %v, want %v", hw, (tc.wantHi-tc.wantLo)/2)
			}
			// The search cutoff is the squared half-width.
			if co := o.SearchCutoff(); math.Abs(co-o.HalfWidth()*o.HalfWidth()) > 1e-9*co {
				t.Errorf("SearchCutoff = %v, want %v", co, o.HalfWidth()*o.HalfWidth())
			}
		})
	}
}

func withTolerance(o Objective, tol float64) Objective {
	o.Tolerance = tol
	return o
}

func TestObjectiveValidation(t *testing.T) {
	bad := []struct {
		name string
		obj  Objective
	}{
		{"no name", Objective{Target: 1, Tolerance: 0.1, Achieved: func(Evaluation) float64 { return 0 }}},
		{"no extractor", Objective{Name: "x", Target: 1, Tolerance: 0.1}},
		{"NaN target", withTolerance(FixedPSNR(math.NaN()), 0.1)},
		{"Inf target", withTolerance(FixedPSNR(math.Inf(1)), 0.1)},
		{"ratio at 1", FixedRatio(1)},
		{"relative negative target", withTolerance(FixedPSNR(-10), 0.1)},
		{"relative tolerance >= 1", withTolerance(FixedRatio(10), 1)},
		{"negative tolerance", withTolerance(FixedSSIM(0.9), -0.1)},
	}
	for _, tc := range bad {
		o := tc.obj
		if o.Tolerance == 0 {
			o = o.WithDefaults()
		}
		if err := o.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, o)
		}
	}
	// NewTuner surfaces objective validation as ErrBadConfig.
	c, _ := pressio.New("sz:abs")
	if _, err := NewTuner(c, Config{Objective: FixedSSIM(math.NaN())}); err == nil {
		t.Errorf("NewTuner accepted a NaN objective target")
	}
}

// TestTunerObjectiveResolution pins how Config maps to the resolved
// objective: the zero objective selects FixedRatio(TargetRatio, Tolerance),
// and an explicit ratio objective keeps the legacy fields coherent.
func TestTunerObjectiveResolution(t *testing.T) {
	c, _ := pressio.New("sz:abs")
	tu, err := NewTuner(c, Config{TargetRatio: 12, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	obj := tu.Objective()
	if obj.Name != "ratio" || obj.Target != 12 || obj.Tolerance != 0.05 || !obj.Relative {
		t.Errorf("legacy config resolved to %+v", obj)
	}
	tu, err = NewTuner(c, Config{Objective: FixedRatio(8)})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := tu.Config(); cfg.TargetRatio != 8 || cfg.Tolerance != DefaultTolerance {
		t.Errorf("explicit ratio objective left legacy fields at %v/%v", cfg.TargetRatio, cfg.Tolerance)
	}
	tu, err = NewTuner(c, Config{Objective: FixedPSNR(60)})
	if err != nil {
		t.Fatal(err)
	}
	if obj := tu.Objective(); obj.Name != "psnr" || obj.Tolerance != DefaultPSNRTolerance {
		t.Errorf("psnr objective resolved to %+v", obj)
	}
}

func TestTunePSNRTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	obj := FixedPSNR(60)
	tu, err := NewTuner(c, Config{Objective: obj, Regions: 6, MaxIterationsPerRegion: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("a 60 dB PSNR target should be reachable, got %+v", res)
	}
	if res.Objective != "psnr" || res.Target != 60 {
		t.Errorf("result objective metadata wrong: %q target %v", res.Objective, res.Target)
	}
	if !tu.Objective().InBand(res.AchievedValue) {
		t.Errorf("achieved PSNR %v outside the band", res.AchievedValue)
	}
	// Verify independently: compressing at the recommended bound reproduces
	// a PSNR equal to the reported one.
	full, err := pressio.Run(c, buf, res.ErrorBound)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Report.PSNR-res.AchievedValue) > 1e-6 {
		t.Errorf("re-evaluated PSNR %v differs from reported %v", full.Report.PSNR, res.AchievedValue)
	}
	if res.AchievedRatio <= 1 {
		t.Errorf("achieved ratio should show real compression, got %v", res.AchievedRatio)
	}
	if res.Iterations <= 0 || res.Compressor != "sz:abs" {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestTuneSSIMTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, err := pressio.New("zfp:accuracy")
	if err != nil {
		t.Fatal(err)
	}
	obj := FixedSSIM(0.95)
	obj.Tolerance = 0.03
	tu, err := NewTuner(c, Config{Objective: obj, Regions: 4, MaxIterationsPerRegion: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedValue <= 0 || res.AchievedValue > 1 {
		t.Errorf("SSIM out of range: %v", res.AchievedValue)
	}
	if res.Feasible && math.Abs(res.AchievedValue-0.95) > 0.03 {
		t.Errorf("feasible flag inconsistent with achieved SSIM %v", res.AchievedValue)
	}
}

// TestTuneQualityPrefersHigherRatioAmongAcceptable: with a very loose band
// many bounds are acceptable; the tuner must pick one with a higher ratio
// than a needlessly tight bound would give.
func TestTuneQualityPrefersHigherRatioAmongAcceptable(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, _ := pressio.New("sz:abs")
	obj := FixedPSNR(70)
	obj.Tolerance = 0.35 // anything from 45.5 to 94.5 dB is acceptable
	tu, err := NewTuner(c, Config{Objective: obj, Regions: 4, MaxIterationsPerRegion: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("wide acceptance band should be feasible: %+v", res)
	}
	tinyRatio, _, err := pressio.Ratio(c, buf, res.ErrorBound/100)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedRatio < tinyRatio {
		t.Errorf("selected ratio %.2f should beat the ratio of a needlessly tight bound %.2f", res.AchievedRatio, tinyRatio)
	}
}

// TestQualityTuneSeriesReusesBoundsAndCache pins the two reuse layers the
// old quality fork lacked: time-step prediction reuse (steps after the first
// skip the search) and the shared evaluation cache (repeat probes of a
// quantized bound are served without re-running the round trip).
func TestQualityTuneSeriesReusesBoundsAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, _ := pressio.New("sz:abs")
	tu, err := NewTuner(c, Config{Objective: FixedPSNR(60), Regions: 4, MaxIterationsPerRegion: 12, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := Series{
		Field: "NYX/velocity_x",
		Steps: 3,
		At:    func(int) (pressio.Buffer, error) { return buf, nil },
	}
	out, err := tu.TuneSeries(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Retrains != 1 {
		t.Errorf("identical steps should reuse the first step's bound: %d retrains", out.Retrains)
	}
	if out.CacheHits == 0 {
		t.Errorf("quality TuneSeries with reuse recorded no cache hits (misses=%d)", out.CacheMisses)
	}
}

// TestTuneFieldsBoundedCacheMemory is the eviction acceptance test: a long
// TuneFields run over many distinct fields, all sharing one small cache,
// must not grow the cache past its cap (the old behaviour accumulated one
// entry per evaluated bound per field, without limit).
func TestTuneFieldsBoundedCacheMemory(t *testing.T) {
	const cap = 16
	cache := pressio.NewCacheSized(cap)
	fake := fakeCompressor{name: "fake", ratioFn: smoothRatio}
	tu, err := NewTuner(fake, Config{TargetRatio: 10, Seed: 13, Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	series := make([]Series, 8)
	for i := range series {
		i := i
		series[i] = Series{
			Field: "field",
			Steps: 2,
			At: func(step int) (pressio.Buffer, error) {
				// Distinct data per field and step: every buffer fingerprints
				// differently, so nothing is shared and the cache would grow
				// without bound if nothing evicted.
				buf := smallBuffer(256)
				data := buf.Float32()
				for j := range data {
					data[j] += float32(i*100 + step)
				}
				return buf, nil
			},
		}
	}
	if _, err := tu.TuneFields(context.Background(), series); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got > cap {
		t.Errorf("cache grew to %d entries, cap is %d", got, cap)
	}
	if _, _, evictions := cache.Stats(); evictions == 0 {
		t.Errorf("a 16-buffer TuneFields run against a %d-entry cache evicted nothing (len=%d)", cap, cache.Len())
	}
}

// TestInfeasibleQualityError checks the generalized infeasible reporting: a
// quality target no bound can reach surfaces the objective name and closest
// value.
func TestInfeasibleQualityError(t *testing.T) {
	res := Result{
		Compressor:    "sz:abs",
		Objective:     "psnr",
		Target:        500,
		Tolerance:     0.05,
		AchievedValue: 180,
		AchievedRatio: 1.2,
		ErrorBound:    1e-9,
	}
	err := res.Check()
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("Check() = %v, want *InfeasibleError", err)
	}
	if ie.Objective != "psnr" || ie.Target != 500 || ie.ClosestValue != 180 {
		t.Errorf("infeasible fields: %+v", ie)
	}
	if msg := err.Error(); !strings.Contains(msg, "psnr") || !strings.Contains(msg, "180") {
		t.Errorf("error message should name the objective and closest value: %q", msg)
	}
}

// TestSSIMObjectiveRejectsUnmeasurableRank pins the fail-fast contract: an
// SSIM target on 1-D data must be rejected before any round trip runs, not
// burn the whole search budget measuring NaNs.
func TestSSIMObjectiveRejectsUnmeasurableRank(t *testing.T) {
	c, _ := pressio.New("sz:abs")
	tu, err := NewTuner(c, Config{Objective: FixedSSIM(0.95), Regions: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tu.TuneBuffer(context.Background(), smallBuffer(4096))
	if err == nil || !strings.Contains(err.Error(), "not measurable") {
		t.Errorf("1-D SSIM tune err = %v, want an upfront not-measurable rejection", err)
	}
	// PSNR has no rank restriction: the same 1-D buffer tunes fine.
	tu, err = NewTuner(c, Config{Objective: FixedPSNR(60), Regions: 2, MaxIterationsPerRegion: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tu.TuneBuffer(context.Background(), smallBuffer(4096)); err != nil {
		t.Errorf("1-D PSNR tune failed: %v", err)
	}
}
