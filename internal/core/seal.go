package core

import (
	"context"
	"fmt"
	"runtime"

	"fraz/internal/blocks"
	"fraz/internal/container"
	"fraz/internal/pressio"
)

// This file implements the blocked sealing path: instead of tuning and
// compressing one monolithic buffer — which serialises the whole hot path
// onto a single compressor invocation — the field is split along its
// slowest axis, the error bound is tuned once on a single sampled block,
// and every block is then compressed concurrently at that bound into a
// version-2 (blocked) container. Tuning cost drops with the sample size
// (each search evaluation compresses one block, not the whole field) and
// the final compression parallelises across however many cores are
// available, which is where the fixed-ratio workflow spends its time.

// SealOptions controls Tuner.SealBlocked.
type SealOptions struct {
	// Blocks is the number of slowest-axis blocks. Zero picks
	// blocks.DefaultCount for the configured worker count; 1 seals
	// monolithically (a version-1 container).
	Blocks int
	// Workers bounds the concurrent block compressions. Zero uses the
	// tuner's Config.Workers, which itself defaults to GOMAXPROCS.
	Workers int
	// Prediction, when positive, is an error bound to try before training —
	// typically the bound the previous time-step sealed at (Algorithm 3's
	// reuse). If it lands in the acceptance band the search is skipped.
	Prediction float64
	// RequireFeasible makes SealBlocked fail with an *InfeasibleError
	// (matching errors.Is(err, ErrInfeasible)) instead of sealing at the
	// closest observed bound when the tuned ratio misses the acceptance
	// band. The returned SealResult still carries the tuning outcome.
	RequireFeasible bool
}

// SealResult reports what SealBlocked did: the tuning outcome on the
// sampled block and the final whole-field seal.
type SealResult struct {
	// Tuning is the search result on the sampled block. Its AchievedRatio
	// and CompressedSize refer to that block alone.
	Tuning Result
	// SampleBlock is the index of the block the bound was tuned on.
	SampleBlock int
	// Blocks is the number of blocks sealed (1 = monolithic fallback).
	Blocks int
	// AchievedRatio is the whole-field compression ratio of the sealed
	// container (the ratio recorded in its header).
	AchievedRatio float64
	// AchievedValue is the whole-field value of the tuned objective (the
	// value recorded in the container's objective extension; for the
	// fixed-ratio objective it equals AchievedRatio).
	AchievedValue float64
}

// SealBlocked tunes the error bound on one sampled block of the buffer and
// compresses all blocks concurrently at the tuned bound, returning the
// ready-to-encode container. The sample is the middle block — on the
// spatially-coherent fields FRaZ targets, the interior is more
// representative of the whole than a boundary block. With Blocks <= 1 (or a
// shape that cannot be split) the result is a monolithic version-1
// container sealed at a bound tuned on the full buffer, so callers can use
// SealBlocked unconditionally.
func (t *Tuner) SealBlocked(ctx context.Context, buf pressio.Buffer, opts SealOptions) (container.Container, SealResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = t.cfg.Workers
	}
	if workers <= 0 {
		// Resolve the GOMAXPROCS sentinel here rather than leaving it to
		// parallel.ForEach: blocks.DefaultCount needs the real worker count,
		// else the default configuration would degenerate to one block.
		workers = runtime.GOMAXPROCS(0)
	}
	numBlocks := opts.Blocks
	if numBlocks <= 0 {
		numBlocks = blocks.DefaultCount(buf.Shape, workers)
	}
	if t.obj.NeedsReport {
		// Quality objectives tune — and seal — the whole field monolithically.
		// PSNR and SSIM are global statistics, so a sampled block's quality
		// does not bound the field's; and independently compressing blocks
		// shifts transform alignment and prediction contexts, changing the
		// reconstruction the promise was measured on. A monolithic seal makes
		// the archived payload byte-identical to the tuned evaluation, so the
		// recorded achieved value is exact.
		numBlocks = 1
	}
	plan, err := blocks.Plan(buf.Shape, numBlocks)
	if err != nil {
		return container.Container{}, SealResult{}, fmt.Errorf("fraz: seal blocked: %w", err)
	}

	out := SealResult{Blocks: len(plan), SampleBlock: len(plan) / 2}
	sample := buf
	if len(plan) > 1 {
		sub, err := buf.Slice(plan[out.SampleBlock])
		if err != nil {
			return container.Container{}, SealResult{}, fmt.Errorf("fraz: seal blocked: %w", err)
		}
		sample = sub
	}
	res, err := t.TuneWithPrediction(ctx, sample, opts.Prediction)
	if err != nil {
		return container.Container{}, SealResult{}, fmt.Errorf("fraz: seal blocked: tuning sample block %d: %w", out.SampleBlock, err)
	}
	out.Tuning = res
	if opts.RequireFeasible {
		if err := res.Check(); err != nil {
			return container.Container{}, out, err
		}
	}

	cn, err := pressio.SealBlocked(ctx, t.compressor, buf, res.ErrorBound, len(plan), workers)
	if err != nil {
		return container.Container{}, SealResult{}, err
	}
	out.Blocks = cn.NumBlocks()
	out.AchievedRatio = cn.Header.Ratio
	if t.obj.Name != "ratio" {
		// Record the archive's promise in the container header. The tuning
		// evaluation compressed the same whole field at the same bound the
		// seal just did, so the tuned achieved value is exactly what a
		// verifier recomputes from the archive.
		out.AchievedValue = res.AchievedValue
		cn.Header.Objective = container.Objective{
			Name:      t.obj.Name,
			Target:    t.obj.Target,
			Tolerance: t.obj.HalfWidth(),
			Achieved:  out.AchievedValue,
		}
	} else {
		out.AchievedValue = cn.Header.Ratio
	}
	return cn, out, nil
}
