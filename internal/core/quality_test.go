package core

import (
	"context"
	"math"
	"testing"

	"fraz/internal/dataset"
	"fraz/internal/metrics"
	"fraz/internal/pressio"
)

func nyxBuffer(t *testing.T) pressio.Buffer {
	t.Helper()
	d, err := dataset.New("NYX", dataset.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	data, shape, err := d.Generate("velocity_x", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestQualityMetricConstructors(t *testing.T) {
	psnr := PSNRMetric()
	if psnr.Name != "psnr" || psnr.Evaluate == nil {
		t.Errorf("PSNRMetric malformed: %+v", psnr)
	}
	ssim := SSIMMetric()
	if ssim.Name != "ssim" || ssim.Evaluate == nil {
		t.Errorf("SSIMMetric malformed: %+v", ssim)
	}
	buf := nyxBuffer(t)
	v, err := psnr.Evaluate(buf.Data, buf.Data, buf.Shape)
	if err != nil || !math.IsInf(v, 1) {
		t.Errorf("PSNR of identical data should be +Inf, got %v (%v)", v, err)
	}
	s, err := ssim.Evaluate(buf.Data, buf.Data, buf.Shape)
	if err != nil || math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM of identical data should be 1, got %v (%v)", s, err)
	}
}

func TestTuneForQualityPSNRTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, err := pressio.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	target := 60.0
	res, err := tu.TuneForQuality(context.Background(), buf, PSNRMetric(), QualityConfig{
		Target:                 target,
		Tolerance:              2,
		Regions:                6,
		MaxIterationsPerRegion: 16,
		Seed:                   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("a 60 dB PSNR target should be reachable, got %+v", res)
	}
	if math.Abs(res.AchievedQuality-target) > 2 {
		t.Errorf("achieved PSNR %v not within tolerance of %v", res.AchievedQuality, target)
	}
	// Verify independently: compressing at the recommended bound reproduces
	// a PSNR near the reported one.
	full, err := pressio.Run(c, buf, res.ErrorBound)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Report.PSNR-res.AchievedQuality) > 1e-6 {
		t.Errorf("re-evaluated PSNR %v differs from reported %v", full.Report.PSNR, res.AchievedQuality)
	}
	if res.AchievedRatio <= 1 {
		t.Errorf("achieved ratio should show real compression, got %v", res.AchievedRatio)
	}
	if res.Metric != "psnr" || res.Compressor != "sz:abs" || res.Iterations <= 0 {
		t.Errorf("result metadata wrong: %+v", res)
	}
}

func TestTuneForQualitySSIMTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	buf := nyxBuffer(t)
	c, err := pressio.New("zfp:accuracy")
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTuner(c, Config{TargetRatio: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.TuneForQuality(context.Background(), buf, SSIMMetric(), QualityConfig{
		Target:                 0.95,
		Tolerance:              0.03,
		Regions:                4,
		MaxIterationsPerRegion: 16,
		Seed:                   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedQuality <= 0 || res.AchievedQuality > 1 {
		t.Errorf("SSIM out of range: %v", res.AchievedQuality)
	}
	if res.Feasible && math.Abs(res.AchievedQuality-0.95) > 0.03 {
		t.Errorf("feasible flag inconsistent with achieved SSIM %v", res.AchievedQuality)
	}
}

func TestTuneForQualityValidation(t *testing.T) {
	buf := nyxBuffer(t)
	c, _ := pressio.New("sz:abs")
	tu, _ := NewTuner(c, Config{TargetRatio: 10})
	if _, err := tu.TuneForQuality(context.Background(), buf, QualityMetric{Name: "broken"}, QualityConfig{Target: 1}); err == nil {
		t.Errorf("metric without evaluator should fail")
	}
	if _, err := tu.TuneForQuality(context.Background(), buf, PSNRMetric(), QualityConfig{Target: math.NaN()}); err == nil {
		t.Errorf("NaN target should fail")
	}
	mg, _ := pressio.New("mgard:abs")
	tuMg, _ := NewTuner(mg, Config{TargetRatio: 10})
	oneD := smallBuffer(64)
	if _, err := tuMg.TuneForQuality(context.Background(), oneD, PSNRMetric(), QualityConfig{Target: 50}); err == nil {
		t.Errorf("unsupported shape should fail")
	}
}

func TestTuneForQualityPrefersHigherRatioAmongAcceptable(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning compresses and decompresses repeatedly")
	}
	// With a very loose tolerance many bounds are acceptable; the tuner must
	// pick one with a higher ratio than the tightest acceptable bound would
	// give.
	buf := nyxBuffer(t)
	c, _ := pressio.New("sz:abs")
	tu, _ := NewTuner(c, Config{TargetRatio: 10, Seed: 7})
	res, err := tu.TuneForQuality(context.Background(), buf, PSNRMetric(), QualityConfig{
		Target:                 70,
		Tolerance:              25, // anything from 45 to 95 dB is acceptable
		Regions:                4,
		MaxIterationsPerRegion: 12,
		Seed:                   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("wide acceptance band should be feasible: %+v", res)
	}
	// A tiny bound trivially satisfies the quality target but compresses
	// poorly; the selected bound should do noticeably better than that.
	tinyRatio, _, err := pressio.Ratio(c, buf, res.ErrorBound/100)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedRatio < tinyRatio {
		t.Errorf("selected ratio %.2f should beat the ratio of a needlessly tight bound %.2f", res.AchievedRatio, tinyRatio)
	}
	_ = metrics.Report{}
}
