package core

import (
	"errors"
	"fmt"
)

// ErrInfeasible is the sentinel for tuning runs whose best achieved value
// lies outside the acceptance band. Results carry the same information in
// Result.Feasible, but a struct field cannot cross an error-returning API
// boundary: callers that seal, archive, or exit on the outcome need an
// errors.Is-able failure. Match with errors.Is(err, ErrInfeasible) and
// recover the closest observed configuration with errors.As on
// *InfeasibleError.
var ErrInfeasible = errors.New("fraz: tuning objective not reachable within the error-bound range")

// InfeasibleError reports an infeasible tuning outcome along with the
// closest configuration the search observed, so callers can decide whether
// to relax the tolerance, raise the maximum error, or switch compressors —
// the decision §V-B3 of the paper explicitly leaves to the user.
type InfeasibleError struct {
	// Compressor is the name of the tuned compressor.
	Compressor string
	// Objective names the tuned objective ("ratio", "psnr", ...) and Target
	// its requested value.
	Objective string
	Target    float64
	// TargetRatio echoes Target for the fixed-ratio objective (zero
	// otherwise); Tolerance is the objective's acceptance half-width
	// (fractional for ratio/PSNR, absolute for SSIM/max-error).
	TargetRatio float64
	Tolerance   float64
	// ClosestValue is the achieved objective value nearest the target among
	// all successful evaluations; ClosestRatio is the compression ratio at
	// the same bound (they coincide for the fixed-ratio objective).
	ClosestValue float64
	ClosestRatio float64
	// ErrorBound is the bound that produced ClosestValue.
	ErrorBound float64
	// CompressedSize is the compressed size in bytes at ErrorBound.
	CompressedSize int
}

func (e *InfeasibleError) Error() string {
	switch e.Objective {
	case "", "ratio":
		return fmt.Sprintf("%v: %s reached ratio %.3g (want %g ± %.0f%%, closest bound %g)",
			ErrInfeasible, e.Compressor, e.ClosestRatio, e.TargetRatio, e.Tolerance*100, e.ErrorBound)
	}
	return fmt.Sprintf("%v: %s reached %s %.4g (want %g, closest bound %g)",
		ErrInfeasible, e.Compressor, e.Objective, e.ClosestValue, e.Target, e.ErrorBound)
}

// Unwrap chains to the sentinel so errors.Is(err, ErrInfeasible) matches.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// Check returns nil for a feasible result and an *InfeasibleError describing
// the closest observed configuration otherwise. It is the bridge from the
// result-struct reporting the tuner uses internally (where an infeasible
// step is data, not failure — a series keeps tuning past it) to the error
// discipline of sealing APIs, which must not silently archive a container
// that misses its ratio contract.
func (r Result) Check() error {
	if r.Feasible {
		return nil
	}
	return &InfeasibleError{
		Compressor:     r.Compressor,
		Objective:      r.Objective,
		Target:         r.Target,
		TargetRatio:    r.TargetRatio,
		Tolerance:      r.Tolerance,
		ClosestValue:   r.AchievedValue,
		ClosestRatio:   r.AchievedRatio,
		ErrorBound:     r.ErrorBound,
		CompressedSize: r.CompressedSize,
	}
}
