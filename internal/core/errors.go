package core

import (
	"errors"
	"fmt"
)

// ErrInfeasible is the sentinel for tuning runs whose best achieved ratio
// lies outside the acceptance band. Results carry the same information in
// Result.Feasible, but a struct field cannot cross an error-returning API
// boundary: callers that seal, archive, or exit on the outcome need an
// errors.Is-able failure. Match with errors.Is(err, ErrInfeasible) and
// recover the closest observed configuration with errors.As on
// *InfeasibleError.
var ErrInfeasible = errors.New("fraz: target compression ratio not reachable within the error-bound range")

// InfeasibleError reports an infeasible tuning outcome along with the
// closest configuration the search observed, so callers can decide whether
// to relax the tolerance, raise the maximum error, or switch compressors —
// the decision §V-B3 of the paper explicitly leaves to the user.
type InfeasibleError struct {
	// Compressor is the name of the tuned compressor.
	Compressor string
	// TargetRatio and Tolerance echo the request.
	TargetRatio float64
	Tolerance   float64
	// ClosestRatio is the achieved ratio nearest the target among all
	// successful evaluations.
	ClosestRatio float64
	// ErrorBound is the bound that produced ClosestRatio.
	ErrorBound float64
	// CompressedSize is the compressed size in bytes at ErrorBound.
	CompressedSize int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("%v: %s reached %.3g (want %g ± %.0f%%, closest bound %g)",
		ErrInfeasible, e.Compressor, e.ClosestRatio, e.TargetRatio, e.Tolerance*100, e.ErrorBound)
}

// Unwrap chains to the sentinel so errors.Is(err, ErrInfeasible) matches.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// Check returns nil for a feasible result and an *InfeasibleError describing
// the closest observed configuration otherwise. It is the bridge from the
// result-struct reporting the tuner uses internally (where an infeasible
// step is data, not failure — a series keeps tuning past it) to the error
// discipline of sealing APIs, which must not silently archive a container
// that misses its ratio contract.
func (r Result) Check() error {
	if r.Feasible {
		return nil
	}
	return &InfeasibleError{
		Compressor:     r.Compressor,
		TargetRatio:    r.TargetRatio,
		Tolerance:      r.Tolerance,
		ClosestRatio:   r.AchievedRatio,
		ErrorBound:     r.ErrorBound,
		CompressedSize: r.CompressedSize,
	}
}
