package zfp

import (
	"encoding/binary"
	"fmt"
	"math"

	"fraz/internal/bitstream"
	"fraz/internal/grid"
	"fraz/internal/pool"
)

// Random access. The paper motivates ZFP's fixed-rate mode partly by its
// random-access property — every block occupies exactly the same number of
// bits, so any block can be decoded without touching the rest of the stream
// (§II-B, §III). This file provides that capability for fixed-rate streams
// produced by this package, which is what FRaZ-tuned accuracy-mode streams
// give up in exchange for their much better rate distortion.

// ErrNotFixedRate is returned when random access is requested on a stream
// that was not produced in fixed-rate mode.
var ErrNotFixedRate = fmt.Errorf("zfp: random access requires a fixed-rate stream")

// BlockCount returns the number of 4^d blocks a field of the given shape is
// partitioned into.
func BlockCount(shape grid.Dims) int {
	if shape.Validate() != nil {
		return 0
	}
	return len(shape.Blocks(4))
}

// DecompressBlock decodes a single block (by index, in row-major block
// order) from a fixed-rate stream without decoding any other block. It
// returns the block's reconstructed values (only the valid, unpadded
// portion, in row-major order) and the block's extent descriptor.
func DecompressBlock[T grid.Float](buf []byte, blockIndex int) ([]T, grid.Block, error) {
	if len(buf) < 4+1+1+8 {
		return nil, grid.Block{}, ErrCorrupt
	}
	if err := checkMagic[T](binary.LittleEndian.Uint32(buf[0:4])); err != nil {
		return nil, grid.Block{}, err
	}
	mode := Mode(buf[4])
	if mode != ModeFixedRate {
		return nil, grid.Block{}, ErrNotFixedRate
	}
	nd := int(buf[5])
	if nd < 1 || nd > 3 {
		return nil, grid.Block{}, fmt.Errorf("%w: bad rank %d", ErrCorrupt, nd)
	}
	rate := math.Float64frombits(binary.LittleEndian.Uint64(buf[6:14]))
	if rate < 1 || rate > 64 {
		return nil, grid.Block{}, fmt.Errorf("%w: bad rate %v", ErrCorrupt, rate)
	}
	pos := 14
	if len(buf) < pos+4*nd {
		return nil, grid.Block{}, ErrCorrupt
	}
	shape := make(grid.Dims, nd)
	for i := 0; i < nd; i++ {
		shape[i] = int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
	}
	if err := shape.Validate(); err != nil {
		return nil, grid.Block{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	blocks := shape.Blocks(4)
	if blockIndex < 0 || blockIndex >= len(blocks) {
		return nil, grid.Block{}, fmt.Errorf("zfp: block index %d out of range [0,%d)", blockIndex, len(blocks))
	}

	blockValues := 1 << (2 * nd)
	maxbits := int(math.Round(rate * float64(blockValues)))
	if maxbits < 18 {
		maxbits = 18
	}

	// Seek: the block starts exactly blockIndex*maxbits bits into the payload.
	bitOffset := blockIndex * maxbits
	byteOffset := bitOffset / 8
	if pos+byteOffset >= len(buf) {
		return nil, grid.Block{}, fmt.Errorf("%w: truncated stream", ErrCorrupt)
	}
	r := bitstream.NewReader(buf[pos+byteOffset:])
	for skip := bitOffset % 8; skip > 0; skip-- {
		if _, err := r.ReadBit(); err != nil {
			return nil, grid.Block{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}

	blockBuf := pool.GetFloat64(blockValues)
	defer pool.PutFloat64(blockBuf)
	perm := sequencyPermutation(nd)
	var err error
	if intprecFor[T]() == 64 {
		s := getScratch[int64](blockValues)
		err = decodeBlock(r, blockBuf, nd, perm, ModeFixedRate, 0, 0, maxbits, s)
		s.release()
	} else {
		s := getScratch[int32](blockValues)
		err = decodeBlock(r, blockBuf, nd, perm, ModeFixedRate, 0, 0, maxbits, s)
		s.release()
	}
	if err != nil {
		return nil, grid.Block{}, err
	}

	b := blocks[blockIndex]
	out := make([]T, b.Len())
	// Copy the valid (unpadded) portion in row-major order.
	switch nd {
	case 1:
		for x := 0; x < b.Size[0]; x++ {
			out[x] = T(blockBuf[x])
		}
	case 2:
		i := 0
		for y := 0; y < b.Size[0]; y++ {
			for x := 0; x < b.Size[1]; x++ {
				out[i] = T(blockBuf[y*4+x])
				i++
			}
		}
	default:
		i := 0
		for z := 0; z < b.Size[0]; z++ {
			for y := 0; y < b.Size[1]; y++ {
				for x := 0; x < b.Size[2]; x++ {
					out[i] = T(blockBuf[z*16+y*4+x])
					i++
				}
			}
		}
	}
	return out, b, nil
}

// DecompressAt decodes the single value at the given multi-index from a
// fixed-rate stream, touching only the block that contains it.
func DecompressAt[T grid.Float](buf []byte, index ...int) (T, error) {
	if len(buf) < 6 {
		return 0, ErrCorrupt
	}
	nd := int(buf[5])
	if nd < 1 || nd > 3 || len(index) != nd {
		return 0, fmt.Errorf("zfp: index rank %d does not match stream rank %d", len(index), nd)
	}
	pos := 14
	if len(buf) < pos+4*nd {
		return 0, ErrCorrupt
	}
	shape := make(grid.Dims, nd)
	for i := 0; i < nd; i++ {
		shape[i] = int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
	}
	if err := shape.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for k, idx := range index {
		if idx < 0 || idx >= shape[k] {
			return 0, fmt.Errorf("zfp: index %d out of range [0,%d) in dimension %d", idx, shape[k], k)
		}
	}
	// Locate the block containing the index. Blocks are laid out in
	// row-major order over the block grid with edge 4.
	blockCounts := make([]int, nd)
	for k := range shape {
		blockCounts[k] = (shape[k] + 3) / 4
	}
	blockIndex := 0
	for k := 0; k < nd; k++ {
		blockIndex = blockIndex*blockCounts[k] + index[k]/4
	}
	values, b, err := DecompressBlock[T](buf, blockIndex)
	if err != nil {
		return 0, err
	}
	// Offset within the (possibly truncated) block.
	local := 0
	for k := 0; k < nd; k++ {
		local = local*b.Size[k] + (index[k] - b.Start[k])
	}
	return values[local], nil
}
