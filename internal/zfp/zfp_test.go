package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fraz/internal/bitstream"
	"fraz/internal/grid"
	"fraz/internal/metrics"
)

func smooth3D(nz, ny, nx int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(nz, ny, nx)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(seed))
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := 50*math.Sin(float64(x)/6)*math.Cos(float64(y)/8) + 20*math.Sin(float64(z)/4)
				v += 0.1 * rng.NormFloat64()
				data[i] = float32(v)
				i++
			}
		}
	}
	return data, shape
}

func smooth2D(ny, nx int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(ny, nx)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		y, x := i/nx, i%nx
		data[i] = float32(math.Exp(-float64((x-nx/2)*(x-nx/2)+(y-ny/2)*(y-ny/2))/500)*100 + 0.05*rng.NormFloat64())
	}
	return data, shape
}

func smooth1D(n int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(n)
	data := make([]float32, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		data[i] = float32(10*math.Sin(float64(i)/30) + 0.01*rng.NormFloat64())
	}
	return data, shape
}

func TestLiftTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		vals := make([]int32, 4)
		orig := make([]int32, 4)
		for i := range vals {
			vals[i] = int32(rng.Intn(1<<28) - 1<<27)
			orig[i] = vals[i]
		}
		fwdLift(vals, 0, 1)
		invLift(vals, 0, 1)
		for i := range vals {
			// The forward lift truncates low bits (>>1 steps), so the round
			// trip is only exact up to a few integer units; the codec's guard
			// bit planes absorb this.
			if diff := vals[i] - orig[i]; diff > 8 || diff < -8 {
				t.Fatalf("lift round trip error too large at %d: %d vs %d", i, vals[i], orig[i])
			}
		}
	}
}

func TestForwardInverseTransform3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int32, 64)
	orig := make([]int32, 64)
	for i := range vals {
		vals[i] = int32(rng.Intn(1<<26) - 1<<25)
		orig[i] = vals[i]
	}
	forwardTransform(vals, 3)
	inverseTransform(vals, 3)
	for i := range vals {
		diff := int64(vals[i]) - int64(orig[i])
		// Three lifting passes each truncate low bits; the compound error
		// stays within a few dozen integer units on 2^26-scale inputs.
		if diff > 64 || diff < -64 {
			t.Fatalf("3-D transform round trip error at %d: %d vs %d", i, vals[i], orig[i])
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	cases := []int32{0, 1, -1, 2, -2, 100, -100, math.MaxInt32, math.MinInt32 + 1, 1 << 30, -(1 << 30)}
	for _, v := range cases {
		if got := negabinaryToInt32(int32ToNegabinary(v)); got != v {
			t.Errorf("negabinary round trip %d -> %d", v, got)
		}
	}
}

func TestPropertyNegabinary(t *testing.T) {
	f := func(v int32) bool {
		return negabinaryToInt32(int32ToNegabinary(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequencyPermutationIsPermutation(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		p := sequencyPermutation(nd)
		size := 1 << (2 * nd)
		if len(p) != size {
			t.Fatalf("nd=%d: len=%d", nd, len(p))
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				t.Fatalf("nd=%d: invalid permutation %v", nd, p)
			}
			seen[v] = true
		}
		if p[0] != 0 {
			t.Errorf("nd=%d: DC coefficient should come first, got %d", nd, p[0])
		}
	}
}

func TestEncodeDecodeIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		size := []int{4, 16, 64}[trial%3]
		intprec := 32
		if trial >= 100 {
			intprec = 64
		}
		data := make([]uint64, size)
		for i := range data {
			if intprec == 32 {
				data[i] = uint64(rng.Uint32() >> uint(rng.Intn(20)))
			} else {
				data[i] = rng.Uint64() >> uint(rng.Intn(40))
			}
		}
		w := bitstream.NewWriter(0)
		encodeInts(w, data, 0, math.MaxInt32, intprec)
		r := bitstream.NewReader(w.Bytes())
		got := make([]uint64, size)
		if err := decodeInts(r, got, 0, math.MaxInt32, intprec); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("trial %d: coefficient %d = %#x, want %#x", trial, i, got[i], data[i])
			}
		}
	}
}

func accuracyRoundTrip(t *testing.T, data []float32, shape grid.Dims, tol float64) []float32 {
	t.Helper()
	comp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: tol})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	maxErr := metrics.MaxAbsError(data, dec)
	if maxErr > tol {
		t.Fatalf("tolerance violated: maxErr=%v > tol=%v (shape %v)", maxErr, tol, shape)
	}
	return dec
}

func TestAccuracyRoundTrip3D(t *testing.T) {
	data, shape := smooth3D(17, 20, 23, 1)
	for _, tol := range []float64{10, 1, 1e-2, 1e-4} {
		accuracyRoundTrip(t, data, shape, tol)
	}
}

func TestAccuracyRoundTrip2D(t *testing.T) {
	data, shape := smooth2D(45, 61, 2)
	for _, tol := range []float64{1, 1e-3} {
		accuracyRoundTrip(t, data, shape, tol)
	}
}

func TestAccuracyRoundTrip1D(t *testing.T) {
	data, shape := smooth1D(3000, 3)
	for _, tol := range []float64{0.5, 1e-3} {
		accuracyRoundTrip(t, data, shape, tol)
	}
}

func TestAccuracyRandomData(t *testing.T) {
	shape := grid.MustDims(13, 9, 21)
	rng := rand.New(rand.NewSource(11))
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = rng.Float32()*2e4 - 1e4
	}
	for _, tol := range []float64{100, 1, 0.01} {
		accuracyRoundTrip(t, data, shape, tol)
	}
}

func TestAccuracyConstantAndZeroFields(t *testing.T) {
	shape := grid.MustDims(9, 9, 9)
	zero := make([]float32, shape.Len())
	accuracyRoundTrip(t, zero, shape, 1e-3)

	constant := make([]float32, shape.Len())
	for i := range constant {
		constant[i] = -273.15
	}
	accuracyRoundTrip(t, constant, shape, 1e-3)
}

func TestAccuracyTinyShapes(t *testing.T) {
	shapes := []grid.Dims{
		grid.MustDims(1),
		grid.MustDims(3),
		grid.MustDims(5),
		grid.MustDims(2, 3),
		grid.MustDims(5, 5, 2),
	}
	rng := rand.New(rand.NewSource(13))
	for _, shape := range shapes {
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = rng.Float32() * 7
		}
		accuracyRoundTrip(t, data, shape, 1e-2)
	}
}

func TestAccuracyCompressionImprovesWithLooserTolerance(t *testing.T) {
	data, shape := smooth3D(32, 32, 32, 5)
	tight, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) >= len(tight) {
		t.Errorf("looser tolerance should compress better: %d vs %d", len(loose), len(tight))
	}
}

func TestAccuracyRatioIsStepLike(t *testing.T) {
	// Many nearby tolerances should map onto a small set of distinct
	// compressed sizes because of the floored min-exponent computation;
	// this is the behaviour FRaZ has to work around (paper §VI-B3).
	data, shape := smooth3D(16, 16, 16, 7)
	sizes := map[int]bool{}
	count := 0
	for tol := 1e-3; tol < 1e-1; tol *= 1.15 {
		comp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		sizes[len(comp)] = true
		count++
	}
	if len(sizes) >= count {
		t.Errorf("expected step-like behaviour: %d distinct sizes from %d tolerances", len(sizes), count)
	}
}

func TestFixedRateSizeIsExact(t *testing.T) {
	data, shape := smooth3D(20, 24, 28, 9)
	for _, rate := range []float64{2, 4, 8, 16} {
		comp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		want := CompressedSizeFixedRate(shape, rate)
		if len(comp) != want {
			t.Errorf("rate %v: size %d, want %d", rate, len(comp), want)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if len(dec) != len(data) {
			t.Fatalf("rate %v: decoded length %d", rate, len(dec))
		}
	}
}

func TestFixedRateQualityImprovesWithRate(t *testing.T) {
	data, shape := smooth3D(24, 24, 24, 10)
	var prevPSNR float64 = -math.MaxFloat64
	for _, rate := range []float64{2, 4, 8, 16} {
		comp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatal(err)
		}
		psnr := metrics.PSNR(data, dec)
		if psnr < prevPSNR {
			t.Errorf("PSNR should not decrease with rate: %v dB at rate %v (prev %v)", psnr, rate, prevPSNR)
		}
		prevPSNR = psnr
	}
}

func TestFixedRateWorseThanAccuracyAtSameSize(t *testing.T) {
	// The core observation behind the paper's Fig. 1: at (approximately) the
	// same compressed size, accuracy mode driven to that size gives higher
	// PSNR than fixed-rate mode.
	data, shape := smooth3D(32, 32, 32, 11)
	accComp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	accDec, err := Decompress[float32](accComp, shape)
	if err != nil {
		t.Fatal(err)
	}
	accBitRate := float64(len(accComp)*8) / float64(len(data))

	frComp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: math.Max(1, math.Floor(accBitRate))})
	if err != nil {
		t.Fatal(err)
	}
	frDec, err := Decompress[float32](frComp, shape)
	if err != nil {
		t.Fatal(err)
	}
	accPSNR := metrics.PSNR(data, accDec)
	frPSNR := metrics.PSNR(data, frDec)
	if accPSNR <= frPSNR {
		t.Errorf("accuracy mode should beat fixed-rate at similar size: acc=%.1f dB (%.2f bpv) vs fr=%.1f dB",
			accPSNR, accBitRate, frPSNR)
	}
}

func TestInvalidOptions(t *testing.T) {
	data := make([]float32, 16)
	shape := grid.MustDims(16)
	if _, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 0}); err == nil {
		t.Errorf("zero tolerance should fail")
	}
	if _, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: math.NaN()}); err == nil {
		t.Errorf("NaN tolerance should fail")
	}
	if _, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 0}); err == nil {
		t.Errorf("zero rate should fail")
	}
	if _, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 100}); err == nil {
		t.Errorf("rate > 64 should fail")
	}
	if _, err := Compress(data, shape, Options{Mode: Mode(9), Tolerance: 1}); err == nil {
		t.Errorf("unknown mode should fail")
	}
	if _, err := Compress(data, grid.MustDims(4), Options{Mode: ModeAccuracy, Tolerance: 1}); err == nil {
		t.Errorf("shape/length mismatch should fail")
	}
	if _, err := Compress(make([]float32, 16), grid.MustDims(2, 2, 2, 2), Options{Mode: ModeAccuracy, Tolerance: 1}); err == nil {
		t.Errorf("4-D should fail")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress[float32]([]byte{1, 2}, nil); err == nil {
		t.Errorf("short buffer should fail")
	}
	data, shape := smooth1D(100, 5)
	comp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), comp...)
	bad[0] ^= 0xFF
	if _, err := Decompress[float32](bad, shape); err == nil {
		t.Errorf("bad magic should fail")
	}
	if _, err := Decompress[float32](comp, grid.MustDims(99)); err == nil {
		t.Errorf("shape mismatch should fail")
	}
	if _, err := Decompress[float32](comp[:20], nil); err == nil {
		t.Errorf("truncated stream should fail")
	}
}

func TestModeString(t *testing.T) {
	if ModeAccuracy.String() != "accuracy" || ModeFixedRate.String() != "fixed-rate" {
		t.Errorf("unexpected mode strings")
	}
	if Mode(7).String() == "" {
		t.Errorf("unknown mode string should not be empty")
	}
}

func TestPropertyAccuracyBoundHolds(t *testing.T) {
	f := func(seed int64, tolExp uint8, amp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := grid.MustDims(6, 9, 7)
		scale := float64(amp%100) + 1
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = float32(scale * (math.Sin(float64(i)/11) + 0.3*rng.NormFloat64()))
		}
		tol := math.Pow(10, -float64(tolExp%5)) * scale / 100
		comp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: tol})
		if err != nil {
			return false
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			return false
		}
		return metrics.MaxAbsError(data, dec) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressAccuracy3D(b *testing.B) {
	data, shape := smooth3D(64, 64, 64, 1)
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 1e-2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressFixedRate3D(b *testing.B) {
	data, shape := smooth3D(64, 64, 64, 1)
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
