// Package zfp implements a pure-Go block-transform lossy compressor modelled
// on ZFP (Lindstrom, IEEE TVCG 2014), the second back end the paper
// evaluates and the source of its fixed-rate baseline.
//
// The pipeline follows ZFP's structure: the field is partitioned into 4^d
// blocks; each block is converted to a block-floating-point representation
// (a shared exponent plus 30-bit signed integers), decorrelated with ZFP's
// integer lifting transform along each dimension, reordered by total
// sequency, mapped to negabinary, and finally coded bit plane by bit plane
// with ZFP's group-testing embedded coder.
//
// Two modes are provided, matching the two modes the paper contrasts:
//
//   - ModeAccuracy: an absolute error tolerance determines the lowest bit
//     plane encoded (through a *floored* minimum-exponent computation, which
//     is exactly why only a step-like set of compression ratios is reachable
//     in this mode — see paper §VI-B3);
//   - ModeFixedRate: each block gets a fixed bit budget (rate × block size),
//     giving exact control of the compressed size and random access at
//     block granularity, but no error bound (the paper's Fig. 1/Fig. 9/
//     Fig. 10 baseline).
package zfp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"fraz/internal/bitstream"
	"fraz/internal/grid"
	"fraz/internal/pool"
)

// magic32 and magic64 identify ZFP-Go streams of float32 and float64 data.
// The element width is part of the magic, so a stream can never be decoded
// at the wrong precision — and float32 streams keep the exact bytes earlier
// builds wrote.
const (
	magic32 = 0x5A465031 // "ZFP1"
	magic64 = 0x5A465032 // "ZFP2"
)

// magicFor returns the stream magic for element type T.
func magicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return magic32
	}
	return magic64
}

// checkMagic validates a stream magic against element type T, separating
// "not a ZFP stream" from "a ZFP stream of the other precision".
func checkMagic[T grid.Float](m uint32) error {
	switch m {
	case magicFor[T]():
		return nil
	case magic32:
		return fmt.Errorf("%w: stream holds float32 data, caller expects %d-byte elements", ErrCorrupt, grid.ElemSize[T]())
	case magic64:
		return fmt.Errorf("%w: stream holds float64 data, caller expects %d-byte elements", ErrCorrupt, grid.ElemSize[T]())
	default:
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
}

// coeff constrains the block-floating-point coefficient domain: int32 for
// float32 input (ZFP's single-precision configuration) and int64 for
// float64. The lifting transform relies on the modular arithmetic of the
// concrete type — int32 wraparound is part of the float32 stream format —
// which is why the width is a type parameter rather than a runtime mask.
type coeff interface {
	int32 | int64
}

// intprecOf is the integer precision used for block-floating-point
// coefficients: 32 for float32 input, 64 for float64 (matching ZFP).
func intprecOf[I coeff]() int {
	var z I
	return int(unsafe.Sizeof(z)) * 8
}

// intprecFor is intprecOf keyed by the element type.
func intprecFor[T grid.Float]() int {
	if grid.ElemSize[T]() == 4 {
		return 32
	}
	return 64
}

// Mode selects how the per-block bit budget is determined.
type Mode uint8

const (
	// ModeAccuracy bounds the maximum absolute error by Options.Tolerance.
	ModeAccuracy Mode = iota
	// ModeFixedRate spends exactly Options.Rate bits per value.
	ModeFixedRate
	// ModeFixedPrecision keeps Options.Precision bit planes per block
	// (relative to each block's exponent), giving a relative-error-like
	// control without an absolute guarantee.
	ModeFixedPrecision
)

// String returns the human-readable mode name used in experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeAccuracy:
		return "accuracy"
	case ModeFixedRate:
		return "fixed-rate"
	case ModeFixedPrecision:
		return "fixed-precision"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Options configures compression.
type Options struct {
	// Mode selects accuracy (error-bounded), fixed-rate, or fixed-precision
	// compression.
	Mode Mode
	// Tolerance is the absolute error bound for ModeAccuracy. Must be > 0.
	Tolerance float64
	// Rate is the number of compressed bits per value for ModeFixedRate.
	// Must be >= 1 and <= 64.
	Rate float64
	// Precision is the number of bit planes kept per block for
	// ModeFixedPrecision. Must be in [1, 32].
	Precision int
}

// ErrInvalidInput is returned for malformed data or options.
var ErrInvalidInput = errors.New("zfp: invalid input")

// ErrCorrupt is returned by Decompress for unparsable streams.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// guardPlanes is the number of extra bit planes retained beyond the
// tolerance-derived cutoff, per dimension pair, compensating for the dynamic
// range growth of the decorrelating transform (ZFP uses 2*(d+1)).
func guardPlanes(ndims int) int { return 2 * (ndims + 1) }

// Compress compresses the field under the given options. The returned stream
// is self-describing.
func Compress[T grid.Float](data []T, shape grid.Dims, opts Options) ([]byte, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if len(data) != shape.Len() {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v", ErrInvalidInput, len(data), shape)
	}
	nd := shape.NDims()
	if nd > 3 {
		return nil, fmt.Errorf("%w: zfp supports 1-3 dimensions, got %d", ErrInvalidInput, nd)
	}
	intprec := intprecFor[T]()
	var minexp int
	var maxbits int
	precision := 0
	blockValues := 1 << (2 * nd) // 4^d
	switch opts.Mode {
	case ModeAccuracy:
		if !(opts.Tolerance > 0) || math.IsInf(opts.Tolerance, 0) || math.IsNaN(opts.Tolerance) {
			return nil, fmt.Errorf("%w: tolerance must be positive and finite, got %v", ErrInvalidInput, opts.Tolerance)
		}
		// The floor here is the source of the step-like ratio behaviour.
		minexp = int(math.Floor(math.Log2(opts.Tolerance)))
		maxbits = math.MaxInt32
	case ModeFixedRate:
		if opts.Rate < 1 || opts.Rate > 64 || math.IsNaN(opts.Rate) {
			return nil, fmt.Errorf("%w: rate must be in [1,64], got %v", ErrInvalidInput, opts.Rate)
		}
		maxbits = int(math.Round(opts.Rate * float64(blockValues)))
		if maxbits < 18 {
			maxbits = 18 // room for the block header
		}
	case ModeFixedPrecision:
		if opts.Precision < 1 || opts.Precision > intprec {
			return nil, fmt.Errorf("%w: precision must be in [1,%d], got %d", ErrInvalidInput, intprec, opts.Precision)
		}
		precision = opts.Precision
		maxbits = math.MaxInt32
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrInvalidInput, opts.Mode)
	}

	w := bitstream.NewWriter(len(data) / 2)
	blocks := shape.Blocks(4)
	strides := shape.Strides()
	blockBuf := pool.GetFloat64(blockValues)
	defer pool.PutFloat64(blockBuf)
	perm := sequencyPermutation(nd)
	wide := intprec == 64

	var s64 blockScratch[int64]
	var s32 blockScratch[int32]
	if wide {
		s64 = getScratch[int64](blockValues)
		defer s64.release()
	} else {
		s32 = getScratch[int32](blockValues)
		defer s32.release()
	}

	for _, b := range blocks {
		gatherPadded(data, strides, b, blockBuf, nd)
		startBits := w.Len()
		if wide {
			encodeBlock(w, blockBuf, nd, perm, opts.Mode, minexp, precision, maxbits, s64)
		} else {
			encodeBlock(w, blockBuf, nd, perm, opts.Mode, minexp, precision, maxbits, s32)
		}
		if opts.Mode == ModeFixedRate {
			used := w.Len() - startBits
			for ; used < maxbits; used++ {
				w.WriteBit(0)
			}
		}
	}
	payload := w.Bytes()

	var out bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], magicFor[T]())
	out.Write(tmp[:4])
	out.WriteByte(byte(opts.Mode))
	out.WriteByte(byte(nd))
	param := opts.Tolerance
	switch opts.Mode {
	case ModeFixedRate:
		param = opts.Rate
	case ModeFixedPrecision:
		param = float64(opts.Precision)
	}
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(param))
	out.Write(tmp[:])
	for _, d := range shape {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(d))
		out.Write(tmp[:4])
	}
	out.Write(payload)
	return out.Bytes(), nil
}

// Decompress reconstructs the field from a stream produced by Compress. If
// shape is non-nil it is validated against the header.
func Decompress[T grid.Float](buf []byte, shape grid.Dims) ([]T, error) {
	if len(buf) < 4+1+1+8 {
		return nil, ErrCorrupt
	}
	if err := checkMagic[T](binary.LittleEndian.Uint32(buf[0:4])); err != nil {
		return nil, err
	}
	intprec := intprecFor[T]()
	mode := Mode(buf[4])
	nd := int(buf[5])
	if nd < 1 || nd > 3 {
		return nil, fmt.Errorf("%w: bad rank %d", ErrCorrupt, nd)
	}
	param := math.Float64frombits(binary.LittleEndian.Uint64(buf[6:14]))
	pos := 14
	if len(buf) < pos+4*nd {
		return nil, ErrCorrupt
	}
	hdrShape := make(grid.Dims, nd)
	for i := 0; i < nd; i++ {
		hdrShape[i] = int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
	}
	if err := hdrShape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if shape != nil && !hdrShape.Equal(shape) {
		return nil, fmt.Errorf("%w: shape mismatch: stream has %v, caller expects %v", ErrCorrupt, hdrShape, shape)
	}

	blockValues := 1 << (2 * nd)
	var minexp, maxbits, precision int
	switch mode {
	case ModeAccuracy:
		if !(param > 0) {
			return nil, fmt.Errorf("%w: bad tolerance %v", ErrCorrupt, param)
		}
		minexp = int(math.Floor(math.Log2(param)))
		maxbits = math.MaxInt32
	case ModeFixedRate:
		if param < 1 || param > 64 {
			return nil, fmt.Errorf("%w: bad rate %v", ErrCorrupt, param)
		}
		maxbits = int(math.Round(param * float64(blockValues)))
		if maxbits < 18 {
			maxbits = 18
		}
	case ModeFixedPrecision:
		precision = int(math.Round(param))
		if precision < 1 || precision > intprec {
			return nil, fmt.Errorf("%w: bad precision %v", ErrCorrupt, param)
		}
		maxbits = math.MaxInt32
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, mode)
	}

	r := bitstream.NewReader(buf[pos:])
	// The output comes from the element pool: the blocked open path recycles
	// block buffers after scattering them, and every element is written
	// before a successful return (the 4^d blocks tile the domain), so the
	// pool's stale contents never leak.
	out := getFloats[T](hdrShape.Len())
	done := false
	defer func() {
		if !done {
			putFloats(out)
		}
	}()
	blocks := hdrShape.Blocks(4)
	strides := hdrShape.Strides()
	blockBuf := pool.GetFloat64(blockValues)
	defer pool.PutFloat64(blockBuf)
	perm := sequencyPermutation(nd)
	wide := intprec == 64
	var s64 blockScratch[int64]
	var s32 blockScratch[int32]
	if wide {
		s64 = getScratch[int64](blockValues)
		defer s64.release()
	} else {
		s32 = getScratch[int32](blockValues)
		defer s32.release()
	}

	for _, b := range blocks {
		startRemaining := r.BitsRemaining()
		var err error
		if wide {
			err = decodeBlock(r, blockBuf, nd, perm, mode, minexp, precision, maxbits, s64)
		} else {
			err = decodeBlock(r, blockBuf, nd, perm, mode, minexp, precision, maxbits, s32)
		}
		if err != nil {
			return nil, err
		}
		if mode == ModeFixedRate {
			used := startRemaining - r.BitsRemaining()
			for ; used < maxbits; used++ {
				if _, err := r.ReadBit(); err != nil {
					return nil, fmt.Errorf("%w: truncated fixed-rate padding", ErrCorrupt)
				}
			}
		}
		scatterPadded(out, strides, b, blockBuf, nd)
	}
	done = true
	return out, nil
}

// getFloats and putFloats bridge the generic element type to the pool's
// concrete free lists.
func getFloats[T grid.Float](n int) []T {
	if intprecFor[T]() == 32 {
		return any(pool.GetFloat32(n)).([]T)
	}
	return any(pool.GetFloat64(n)).([]T)
}

func putFloats[T grid.Float](s []T) {
	switch v := any(s).(type) {
	case []float32:
		pool.PutFloat32(v)
	case []float64:
		pool.PutFloat64(v)
	}
}

// CompressedSizeFixedRate predicts the compressed size in bytes of a
// fixed-rate stream for the given shape and rate, without compressing.
// It is exact, which is what makes fixed-rate mode attractive for storage
// budgeting despite its poor rate distortion.
func CompressedSizeFixedRate(shape grid.Dims, rate float64) int {
	nd := shape.NDims()
	blockValues := 1 << (2 * nd)
	maxbits := int(math.Round(rate * float64(blockValues)))
	if maxbits < 18 {
		maxbits = 18
	}
	totalBits := len(shape.Blocks(4)) * maxbits
	header := 4 + 1 + 1 + 8 + 4*nd
	return header + (totalBits+7)/8
}

// --- block encoding -------------------------------------------------------

// gatherPadded copies a (possibly partial) block into a full 4^d buffer,
// padding missing samples by replicating the nearest valid sample along each
// axis, as ZFP does, to avoid introducing artificial discontinuities.
func gatherPadded[T grid.Float](data []T, strides []int, b grid.Block, dst []float64, nd int) {
	switch nd {
	case 1:
		for x := 0; x < 4; x++ {
			sx := clampIndex(x, b.Size[0])
			dst[x] = float64(data[(b.Start[0]+sx)*strides[0]])
		}
	case 2:
		for y := 0; y < 4; y++ {
			sy := clampIndex(y, b.Size[0])
			for x := 0; x < 4; x++ {
				sx := clampIndex(x, b.Size[1])
				dst[y*4+x] = float64(data[(b.Start[0]+sy)*strides[0]+(b.Start[1]+sx)*strides[1]])
			}
		}
	default:
		for z := 0; z < 4; z++ {
			sz := clampIndex(z, b.Size[0])
			for y := 0; y < 4; y++ {
				sy := clampIndex(y, b.Size[1])
				for x := 0; x < 4; x++ {
					sx := clampIndex(x, b.Size[2])
					dst[z*16+y*4+x] = float64(data[(b.Start[0]+sz)*strides[0]+(b.Start[1]+sy)*strides[1]+(b.Start[2]+sx)*strides[2]])
				}
			}
		}
	}
}

// scatterPadded writes the valid portion of a decoded 4^d block back into
// the output array, discarding padded samples.
func scatterPadded[T grid.Float](out []T, strides []int, b grid.Block, src []float64, nd int) {
	switch nd {
	case 1:
		for x := 0; x < b.Size[0]; x++ {
			out[(b.Start[0]+x)*strides[0]] = T(src[x])
		}
	case 2:
		for y := 0; y < b.Size[0]; y++ {
			for x := 0; x < b.Size[1]; x++ {
				out[(b.Start[0]+y)*strides[0]+(b.Start[1]+x)*strides[1]] = T(src[y*4+x])
			}
		}
	default:
		for z := 0; z < b.Size[0]; z++ {
			for y := 0; y < b.Size[1]; y++ {
				for x := 0; x < b.Size[2]; x++ {
					out[(b.Start[0]+z)*strides[0]+(b.Start[1]+y)*strides[1]+(b.Start[2]+x)*strides[2]] = T(src[z*16+y*4+x])
				}
			}
		}
	}
}

func clampIndex(i, size int) int {
	if i >= size {
		return size - 1
	}
	return i
}

// blockExponent returns the smallest e such that |v| < 2^e for every value
// in the block, and whether any value is nonzero.
func blockExponent(block []float64) (int, bool) {
	var maxAbs float64
	for _, v := range block {
		a := math.Abs(v)
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0, false
	}
	_, e := math.Frexp(maxAbs)
	return e, true
}

// blockScratch holds the per-block working slices of the coder. One
// instance is borrowed from the pool per Compress/Decompress call and shared
// by every 4^d block, so the hot loop itself never allocates.
type blockScratch[I coeff] struct {
	ints []I
	neg  []uint64
}

// getScratch's field stores are custody transfers into the returned struct;
// release is the matching put. poolcheck cannot track struct-field custody.
func getScratch[I coeff](size int) blockScratch[I] {
	var s blockScratch[I]
	if intprecOf[I]() == 32 {
		s.ints = any(pool.GetInt32(size)).([]I) //frazlint:allow poolcheck -- custody moves into the struct; release() puts it
	} else {
		s.ints = any(pool.GetInt64(size)).([]I) //frazlint:allow poolcheck -- custody moves into the struct; release() puts it
	}
	s.neg = pool.GetUint64(size) //frazlint:allow poolcheck -- custody moves into the struct; release() puts it
	return s
}

func (s blockScratch[I]) release() {
	switch v := any(s.ints).(type) {
	case []int32:
		pool.PutInt32(v)
	case []int64:
		pool.PutInt64(v)
	}
	pool.PutUint64(s.neg)
}

// encodeBlock encodes one 4^d block with coefficient domain I (int32 for
// float32 streams, int64 for float64).
func encodeBlock[I coeff](w *bitstream.Writer, block []float64, nd int, perm []int, mode Mode, minexp, precision, maxbits int, s blockScratch[I]) {
	intprec := intprecOf[I]()
	emax, nonzero := blockExponent(block)
	size := len(block)

	// Determine how many bit planes to keep.
	kmin := 0
	switch mode {
	case ModeAccuracy:
		prec := emax - minexp + guardPlanes(nd)
		if prec < 0 {
			prec = 0
		}
		if prec > intprec {
			prec = intprec
		}
		kmin = intprec - prec
		if !nonzero || prec == 0 {
			// Block reconstructs to all zeros within tolerance.
			w.WriteBit(0)
			return
		}
		w.WriteBit(1)
	case ModeFixedPrecision:
		kmin = intprec - precision
		if !nonzero {
			w.WriteBit(0)
			return
		}
		w.WriteBit(1)
	default:
		if !nonzero {
			w.WriteBit(0)
			return
		}
		w.WriteBit(1)
	}
	// Biased exponent (bias 16384 keeps it positive in 16 bits).
	w.WriteBits(uint64(emax+16384), 16)

	// Block floating point: scale to signed integers with intprec-2 bits.
	// The clamp keeps |q| strictly below 2^(intprec-2) so the coefficients
	// enter the lifting transform with two guard bits of headroom.
	scale := math.Ldexp(1, intprec-2-emax)
	qmax := math.Ldexp(1, intprec-2) - 1
	ints := s.ints[:size]
	for i, v := range block {
		q := v * scale
		if q > qmax {
			q = qmax
		} else if q < -qmax {
			q = -qmax
		}
		ints[i] = I(q)
	}

	// Decorrelating transform along each dimension.
	forwardTransform(ints, nd)

	// Reorder by total sequency and convert to negabinary.
	neg := s.neg[:size]
	for i, p := range perm {
		neg[i] = toNegabinary(ints[p])
	}

	budget := maxbits
	if mode == ModeFixedRate {
		budget = maxbits - 17 // header bits already spent
		if budget < 0 {
			budget = 0
		}
	}
	encodeInts(w, neg, kmin, budget, intprec)
}

func decodeBlock[I coeff](r *bitstream.Reader, block []float64, nd int, perm []int, mode Mode, minexp, precision, maxbits int, s blockScratch[I]) error {
	intprec := intprecOf[I]()
	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if flag == 0 {
		for i := range block {
			block[i] = 0
		}
		return nil
	}
	e, err := r.ReadBits(16)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	emax := int(e) - 16384
	size := len(block)

	kmin := 0
	switch mode {
	case ModeAccuracy:
		prec := emax - minexp + guardPlanes(nd)
		if prec < 0 {
			prec = 0
		}
		if prec > intprec {
			prec = intprec
		}
		kmin = intprec - prec
	case ModeFixedPrecision:
		kmin = intprec - precision
	}
	budget := maxbits
	if mode == ModeFixedRate {
		budget = maxbits - 17
		if budget < 0 {
			budget = 0
		}
	}
	neg := s.neg[:size]
	if err := decodeInts(r, neg, kmin, budget, intprec); err != nil {
		return err
	}
	ints := s.ints[:size]
	for i, p := range perm {
		ints[p] = fromNegabinary[I](neg[i])
	}
	inverseTransform(ints, nd)
	scale := math.Ldexp(1, emax-(intprec-2))
	for i := range block {
		block[i] = float64(ints[i]) * scale
	}
	return nil
}

// --- integer lifting transform ---------------------------------------------

// fwdLift applies ZFP's forward lifting transform to four values at the
// given stride.
func fwdLift[I coeff](p []I, base, stride int) {
	x := p[base]
	y := p[base+stride]
	z := p[base+2*stride]
	w := p[base+3*stride]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[base] = x
	p[base+stride] = y
	p[base+2*stride] = z
	p[base+3*stride] = w
}

// invLift applies the inverse lifting transform.
func invLift[I coeff](p []I, base, stride int) {
	x := p[base]
	y := p[base+stride]
	z := p[base+2*stride]
	w := p[base+3*stride]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[base] = x
	p[base+stride] = y
	p[base+2*stride] = z
	p[base+3*stride] = w
}

func forwardTransform[I coeff](p []I, nd int) {
	switch nd {
	case 1:
		fwdLift(p, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift(p, y*4, 1)
		}
		for x := 0; x < 4; x++ {
			fwdLift(p, x, 4)
		}
	default:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(p, z*16+y*4, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, z*16+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(p, y*4+x, 16)
			}
		}
	}
}

func inverseTransform[I coeff](p []I, nd int) {
	switch nd {
	case 1:
		invLift(p, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(p, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(p, y*4, 1)
		}
	default:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(p, y*4+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(p, z*16+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(p, z*16+y*4, 1)
			}
		}
	}
}

// --- negabinary -------------------------------------------------------------

const (
	negabinaryMask   = 0xaaaaaaaa
	negabinaryMask64 = 0xaaaaaaaaaaaaaaaa
)

func int32ToNegabinary(v int32) uint32 {
	return (uint32(v) + negabinaryMask) ^ negabinaryMask
}

func negabinaryToInt32(u uint32) int32 {
	return int32((u ^ negabinaryMask) - negabinaryMask)
}

func int64ToNegabinary(v int64) uint64 {
	return (uint64(v) + negabinaryMask64) ^ negabinaryMask64
}

func negabinaryToInt64(u uint64) int64 {
	return int64((u ^ negabinaryMask64) - negabinaryMask64)
}

// toNegabinary converts a coefficient to its width's negabinary code,
// widened to uint64 for the shared bit-plane coder.
func toNegabinary[I coeff](v I) uint64 {
	if intprecOf[I]() == 32 {
		return uint64(int32ToNegabinary(int32(v)))
	}
	return int64ToNegabinary(int64(v))
}

// fromNegabinary is the inverse of toNegabinary.
func fromNegabinary[I coeff](u uint64) I {
	if intprecOf[I]() == 32 {
		return I(negabinaryToInt32(uint32(u)))
	}
	return I(negabinaryToInt64(u))
}

// --- sequency permutation ----------------------------------------------------

// permutations holds the precomputed visiting orders for 1-D, 2-D, and 3-D
// blocks. They are computed once at package initialisation so that
// concurrent compressions (FRaZ searches regions in parallel goroutines)
// share them without synchronisation.
var permutations = [4][]int{
	nil,
	computeSequencyPermutation(1),
	computeSequencyPermutation(2),
	computeSequencyPermutation(3),
}

// sequencyPermutation returns the coefficient visiting order for a 4^d
// block: coefficients are ordered by total degree (sum of per-dimension
// frequencies), low frequencies first, which concentrates energy at the
// start of the embedded stream.
func sequencyPermutation(nd int) []int { return permutations[nd] }

func computeSequencyPermutation(nd int) []int {
	size := 1 << (2 * nd)
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	degree := func(i int) int {
		d := 0
		for k := 0; k < nd; k++ {
			d += (i >> (2 * k)) & 3
		}
		return d
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := degree(idx[a]), degree(idx[b])
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	return idx
}

// --- embedded bit-plane coder -----------------------------------------------

// encodeInts encodes the negabinary coefficients bit plane by bit plane with
// ZFP's group-testing scheme, spending at most budget bits and stopping at
// bit plane kmin. Planes run from intprec-1 (32 or 64 by element width)
// down. It returns the number of bits written.
func encodeInts(w *bitstream.Writer, data []uint64, kmin, budget, intprec int) int {
	size := len(data)
	bits := budget
	n := 0
	for k := intprec - 1; k >= kmin && bits > 0; k-- {
		// Extract bit plane k: bit i of x is coefficient i's bit.
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((data[i] >> uint(k)) & 1) << uint(i)
		}
		// Verbatim bits for coefficients already significant.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		for j := 0; j < m; j++ {
			w.WriteBit(uint(x) & 1)
			x >>= 1
		}
		// Group-test the remainder.
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x) & 1
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return budget - bits
}

// decodeInts is the inverse of encodeInts.
// decodeInts fills data (caller-provided, any prior contents) with the
// decoded negabinary coefficients.
func decodeInts(r *bitstream.Reader, data []uint64, kmin, budget, intprec int) error {
	size := len(data)
	for i := range data {
		data[i] = 0
	}
	bits := budget
	n := 0
	for k := intprec - 1; k >= kmin && bits > 0; k-- {
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x, err := r.ReadBits(uint(m))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		for n < size && bits > 0 {
			bits--
			b, err := r.ReadBit()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if b == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				bb, err := r.ReadBit()
				if err != nil {
					return fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
				if bb != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		for i := 0; x != 0; i++ {
			data[i] |= (x & 1) << uint(k)
			x >>= 1
		}
	}
	return nil
}
