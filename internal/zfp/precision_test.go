package zfp

import (
	"math"
	"testing"

	"fraz/internal/grid"
	"fraz/internal/metrics"
)

func TestFixedPrecisionRoundTrip(t *testing.T) {
	data, shape := smooth3D(15, 17, 19, 21)
	for _, prec := range []int{8, 16, 24, 32} {
		comp, err := Compress(data, shape, Options{Mode: ModeFixedPrecision, Precision: prec})
		if err != nil {
			t.Fatalf("precision %d: %v", prec, err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatalf("precision %d: %v", prec, err)
		}
		if len(dec) != len(data) {
			t.Fatalf("precision %d: length mismatch", prec)
		}
	}
}

func TestFixedPrecisionQualityImprovesWithPrecision(t *testing.T) {
	data, shape := smooth3D(20, 20, 20, 22)
	var prevPSNR float64 = -math.MaxFloat64
	var prevSize int
	for _, prec := range []int{6, 12, 20, 28} {
		comp, err := Compress(data, shape, Options{Mode: ModeFixedPrecision, Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatal(err)
		}
		psnr := metrics.PSNR(data, dec)
		if psnr < prevPSNR {
			t.Errorf("PSNR should not decrease with precision: %v at %d planes (prev %v)", psnr, prec, prevPSNR)
		}
		if len(comp) < prevSize {
			t.Errorf("compressed size should not shrink with precision: %d at %d planes (prev %d)", len(comp), prec, prevSize)
		}
		prevPSNR = psnr
		prevSize = len(comp)
	}
	if prevPSNR < 60 {
		t.Errorf("28 bit planes should reconstruct smooth data above 60 dB, got %v", prevPSNR)
	}
}

func TestFixedPrecisionControlsRelativeError(t *testing.T) {
	// Fixed precision keeps a constant number of planes below each block's
	// exponent, so blocks with large values get proportionally larger
	// absolute error — a relative-error-like behaviour.
	shape := grid.MustDims(4, 4, 4)
	small := make([]float32, shape.Len())
	large := make([]float32, shape.Len())
	for i := range small {
		small[i] = float32(1 + 0.001*float64(i%7))
		large[i] = small[i] * 1e6
	}
	run := func(data []float32) float64 {
		comp, err := Compress(data, shape, Options{Mode: ModeFixedPrecision, Precision: 16})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.MaxAbsError(data, dec)
	}
	errSmall := run(small)
	errLarge := run(large)
	if errSmall == 0 && errLarge == 0 {
		t.Skip("both reconstructions exact at this precision")
	}
	if !(errLarge > errSmall*1e3) {
		t.Errorf("absolute error should scale with magnitude under fixed precision: small=%g large=%g", errSmall, errLarge)
	}
}

func TestFixedPrecisionInvalidOptions(t *testing.T) {
	data := make([]float32, 16)
	shape := grid.MustDims(16)
	if _, err := Compress(data, shape, Options{Mode: ModeFixedPrecision, Precision: 0}); err == nil {
		t.Errorf("zero precision should fail")
	}
	if _, err := Compress(data, shape, Options{Mode: ModeFixedPrecision, Precision: 40}); err == nil {
		t.Errorf("precision above 32 should fail")
	}
}

func TestFixedPrecisionModeString(t *testing.T) {
	if ModeFixedPrecision.String() != "fixed-precision" {
		t.Errorf("unexpected mode name %q", ModeFixedPrecision.String())
	}
}
