package zfp

import (
	"testing"

	"fraz/internal/grid"
)

func TestBlockCount(t *testing.T) {
	cases := []struct {
		shape grid.Dims
		want  int
	}{
		{grid.MustDims(16), 4},
		{grid.MustDims(17), 5},
		{grid.MustDims(8, 8), 4},
		{grid.MustDims(9, 5), 6},
		{grid.MustDims(4, 4, 4), 1},
		{grid.MustDims(8, 8, 8), 8},
	}
	for _, c := range cases {
		if got := BlockCount(c.shape); got != c.want {
			t.Errorf("BlockCount(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
	if BlockCount(grid.Dims{0}) != 0 {
		t.Errorf("invalid shape should report zero blocks")
	}
}

func TestDecompressBlockMatchesFullDecompression(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func() ([]float32, grid.Dims)
	}{
		{"3d", func() ([]float32, grid.Dims) { return smooth3D(9, 10, 11, 31) }},
		{"2d", func() ([]float32, grid.Dims) { return smooth2D(13, 18, 32) }},
		{"1d", func() ([]float32, grid.Dims) { return smooth1D(37, 33) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, shape := tc.gen()
			comp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 10})
			if err != nil {
				t.Fatal(err)
			}
			full, err := Decompress[float32](comp, shape)
			if err != nil {
				t.Fatal(err)
			}
			blocks := shape.Blocks(4)
			if BlockCount(shape) != len(blocks) {
				t.Fatalf("BlockCount disagrees with grid.Blocks")
			}
			for bi := range blocks {
				values, b, err := DecompressBlock[float32](comp, bi)
				if err != nil {
					t.Fatalf("block %d: %v", bi, err)
				}
				want := grid.GatherBlock(full, shape, b, nil)
				if len(values) != len(want) {
					t.Fatalf("block %d: %d values, want %d", bi, len(values), len(want))
				}
				for i := range want {
					if values[i] != want[i] {
						t.Fatalf("block %d value %d: %v vs full decompression %v", bi, i, values[i], want[i])
					}
				}
			}
		})
	}
}

func TestDecompressAtMatchesFullDecompression(t *testing.T) {
	data, shape := smooth3D(7, 9, 6, 35)
	comp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 12})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	strides := shape.Strides()
	for _, idx := range [][]int{{0, 0, 0}, {6, 8, 5}, {3, 4, 2}, {5, 0, 5}} {
		got, err := DecompressAt[float32](comp, idx...)
		if err != nil {
			t.Fatalf("DecompressAt[float32](%v): %v", idx, err)
		}
		want := full[idx[0]*strides[0]+idx[1]*strides[1]+idx[2]*strides[2]]
		if got != want {
			t.Errorf("DecompressAt[float32](%v) = %v, want %v", idx, got, want)
		}
	}
}

func TestRandomAccessErrors(t *testing.T) {
	data, shape := smooth1D(64, 36)
	accComp, err := Compress(data, shape, Options{Mode: ModeAccuracy, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressBlock[float32](accComp, 0); err != ErrNotFixedRate {
		t.Errorf("accuracy-mode stream should be rejected, got %v", err)
	}
	frComp, err := Compress(data, shape, Options{Mode: ModeFixedRate, Rate: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressBlock[float32](frComp, -1); err == nil {
		t.Errorf("negative block index should fail")
	}
	if _, _, err := DecompressBlock[float32](frComp, 1000); err == nil {
		t.Errorf("out-of-range block index should fail")
	}
	if _, _, err := DecompressBlock[float32]([]byte{1, 2, 3}, 0); err == nil {
		t.Errorf("garbage stream should fail")
	}
	if _, err := DecompressAt[float32](frComp, 1, 2); err == nil {
		t.Errorf("rank mismatch should fail")
	}
	if _, err := DecompressAt[float32](frComp, 100); err == nil {
		t.Errorf("out-of-range index should fail")
	}
	bad := append([]byte(nil), frComp...)
	bad[0] ^= 0xFF
	if _, _, err := DecompressBlock[float32](bad, 0); err == nil {
		t.Errorf("bad magic should fail")
	}
}
