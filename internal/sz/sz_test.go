package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fraz/internal/grid"
	"fraz/internal/metrics"
)

// synthetic3D produces a smooth 3-D field with a small noise component,
// similar in character to simulation output.
func synthetic3D(nz, ny, nx int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(nz, ny, nx)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(seed))
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := math.Sin(float64(x)/7)*math.Cos(float64(y)/9) + 0.5*math.Sin(float64(z)/5)
				v += 0.01 * rng.NormFloat64()
				data[i] = float32(v)
				i++
			}
		}
	}
	return data, shape
}

func synthetic1D(n int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(n)
	data := make([]float32, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		data[i] = float32(math.Sin(float64(i)/40) + 0.05*rng.NormFloat64())
	}
	return data, shape
}

func roundTrip(t *testing.T, data []float32, shape grid.Dims, eb float64) []float32 {
	t.Helper()
	comp, err := Compress(data, shape, Options{ErrorBound: eb})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(dec) != len(data) {
		t.Fatalf("length mismatch: %d vs %d", len(dec), len(data))
	}
	maxErr := metrics.MaxAbsError(data, dec)
	if maxErr > eb+1e-9 {
		t.Fatalf("error bound violated: maxErr=%v > eb=%v", maxErr, eb)
	}
	return dec
}

func TestRoundTrip3D(t *testing.T) {
	data, shape := synthetic3D(16, 20, 24, 1)
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		roundTrip(t, data, shape, eb)
	}
}

func TestRoundTrip2D(t *testing.T) {
	shape := grid.MustDims(37, 53)
	data := make([]float32, shape.Len())
	for i := range data {
		y, x := i/53, i%53
		data[i] = float32(float64(x)*0.3 + float64(y)*0.7)
	}
	roundTrip(t, data, shape, 1e-3)
}

func TestRoundTrip1D(t *testing.T) {
	data, shape := synthetic1D(10000, 2)
	roundTrip(t, data, shape, 1e-4)
}

func TestRoundTripOddShapes(t *testing.T) {
	shapes := []grid.Dims{
		grid.MustDims(1),
		grid.MustDims(7),
		grid.MustDims(1, 1),
		grid.MustDims(5, 1, 13),
		grid.MustDims(6, 6, 6),
		grid.MustDims(7, 11, 13),
	}
	rng := rand.New(rand.NewSource(3))
	for _, shape := range shapes {
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = rng.Float32() * 10
		}
		roundTrip(t, data, shape, 1e-2)
	}
}

func TestConstantField(t *testing.T) {
	shape := grid.MustDims(10, 10, 10)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = 42.5
	}
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxAbsError(data, dec) > 1e-3 {
		t.Errorf("constant field error bound violated")
	}
	cr := metrics.CompressionRatio(len(data)*4, len(comp))
	if cr < 20 {
		t.Errorf("constant field should compress very well, got CR=%.1f", cr)
	}
}

func TestRandomNoiseStillBounded(t *testing.T) {
	shape := grid.MustDims(20, 20, 20)
	rng := rand.New(rand.NewSource(17))
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = rng.Float32()*2000 - 1000
	}
	roundTrip(t, data, shape, 0.5)
}

func TestExtremeValues(t *testing.T) {
	shape := grid.MustDims(64)
	data := make([]float32, 64)
	for i := range data {
		data[i] = float32(math.Pow(-10, float64(i%20)))
	}
	// A tiny bound forces most values into the unpredictable/literal path.
	roundTrip(t, data, shape, 1e-6)
}

func TestSmallerBoundGivesLowerRatio(t *testing.T) {
	data, shape := synthetic3D(24, 24, 24, 5)
	var prevSize int
	for i, eb := range []float64{1e-1, 1e-3, 1e-6} {
		comp, err := Compress(data, shape, Options{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(comp) < prevSize {
			t.Errorf("tighter bound %g should not compress better: %d < %d", eb, len(comp), prevSize)
		}
		prevSize = len(comp)
	}
}

func TestCompressionRatioReasonable(t *testing.T) {
	data, shape := synthetic3D(32, 32, 32, 7)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	cr := metrics.CompressionRatio(len(data)*4, len(comp))
	if cr < 4 {
		t.Errorf("smooth data at 1e-2 should reach at least 4:1, got %.2f", cr)
	}
}

func TestInvalidInputs(t *testing.T) {
	data := make([]float32, 10)
	if _, err := Compress(data, grid.Dims{5}, Options{ErrorBound: 0.1}); err == nil {
		t.Errorf("length/shape mismatch should fail")
	}
	if _, err := Compress(data, grid.Dims{10}, Options{ErrorBound: 0}); err == nil {
		t.Errorf("zero error bound should fail")
	}
	if _, err := Compress(data, grid.Dims{}, Options{ErrorBound: 0.1}); err == nil {
		t.Errorf("empty shape should fail")
	}
	if _, err := Compress(data, grid.Dims{10}, Options{ErrorBound: math.NaN()}); err == nil {
		t.Errorf("NaN bound should fail")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress[float32]([]byte{1, 2, 3}, nil); err == nil {
		t.Errorf("short buffer should fail")
	}
	data, shape := synthetic1D(100, 3)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	comp[0] ^= 0xFF // break magic
	if _, err := Decompress[float32](comp, shape); err == nil {
		t.Errorf("bad magic should fail")
	}
}

func TestDecompressShapeMismatch(t *testing.T) {
	data, shape := synthetic1D(100, 4)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress[float32](comp, grid.MustDims(50)); err == nil {
		t.Errorf("shape mismatch should fail")
	}
	// nil shape uses the embedded one
	if _, err := Decompress[float32](comp, nil); err != nil {
		t.Errorf("nil shape should use header shape: %v", err)
	}
}

func TestDecompressHeaderShape(t *testing.T) {
	data, shape := synthetic3D(8, 9, 10, 6)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressHeaderShape(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(shape) {
		t.Errorf("header shape = %v, want %v", got, shape)
	}
}

func TestAblationOptions(t *testing.T) {
	data, shape := synthetic3D(16, 16, 16, 8)
	for _, opts := range []Options{
		{ErrorBound: 1e-3, DisableRegression: true},
		{ErrorBound: 1e-3, DisableDictionary: true},
		{ErrorBound: 1e-3, DisableRegression: true, DisableDictionary: true},
		{ErrorBound: 1e-3, BlockSize: 4, Intervals: 256},
	} {
		comp, err := Compress(data, shape, opts)
		if err != nil {
			t.Fatalf("Compress(%+v): %v", opts, err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatalf("Decompress(%+v): %v", opts, err)
		}
		if metrics.MaxAbsError(data, dec) > opts.ErrorBound+1e-9 {
			t.Errorf("bound violated for %+v", opts)
		}
	}
}

func TestPropertyErrorBoundHolds(t *testing.T) {
	f := func(seed int64, ebExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := grid.MustDims(6, 7, 8)
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = float32(math.Sin(float64(i)/13)*50 + rng.NormFloat64())
		}
		eb := math.Pow(10, -float64(ebExp%6)-1)
		comp, err := Compress(data, shape, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			return false
		}
		return metrics.MaxAbsError(data, dec) <= eb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompress3D(b *testing.B) {
	data, shape := synthetic3D(64, 64, 64, 1)
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, shape, Options{ErrorBound: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress3D(b *testing.B) {
	data, shape := synthetic3D(64, 64, 64, 1)
	comp, err := Compress(data, shape, Options{ErrorBound: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress[float32](comp, shape); err != nil {
			b.Fatal(err)
		}
	}
}
